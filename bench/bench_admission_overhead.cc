// E14 — admission-control overhead. Claim (docs/robustness.md, "admission
// and degradation"): putting the AdmissionController in front of the
// Engine's serving entry points costs ≤ 2% wall time on an uncontended
// request path — one mutex acquisition, one slot increment, and one ring
// insertion per request, with zero admission state touched at all when the
// controller is disabled. Series: (a) the Admit/Release pair itself
// (disabled / enabled-uncontended), (b) an end-to-end Engine::Match request
// with admission off vs on, (c) the same for Engine::Mine — the expensive
// class, where the relative overhead should vanish entirely.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "granmine/engine/admission.h"
#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/sequence/sequence.h"
#include "granmine/tag/builder.h"

namespace granmine {
namespace {

// One serving workload shared by every engine-level series: the 3-variable
// chain over a 48-event sequence (same shape as tests/overload_test.cc).
struct Workload {
  std::unique_ptr<Engine> engine;
  EventStructure structure;
  EventSequence seq;
  DiscoveryProblem problem;
  TagBuildResult skeleton;
  SymbolMap symbols = SymbolMap::FromAssignment({0, 1, 2}, 6);
};

Workload* MakeWorkload(bool admission_enabled) {
  auto* w = new Workload();  // leaked: lives for the whole bench process
  EngineOptions options;
  options.admission.enabled = admission_enabled;
  auto engine = Engine::Create(std::make_unique<GranularitySystem>(), options);
  w->engine = std::move(*engine);
  const Granularity* unit = w->engine->system()->AddUniform("unit", 1);
  VariableId x0 = w->structure.AddVariable("X0");
  VariableId x1 = w->structure.AddVariable("X1");
  VariableId x2 = w->structure.AddVariable("X2");
  (void)w->structure.AddConstraint(x0, x1, Tcg::Of(0, 8, unit));
  (void)w->structure.AddConstraint(x1, x2, Tcg::Of(0, 8, unit));
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  TimePoint t = 0;
  for (int i = 0; i < 48; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += 1 + static_cast<TimePoint>((state >> 33) % 2);
    w->seq.Add(static_cast<EventTypeId>((state >> 13) % 6), t);
  }
  w->problem.structure = &w->structure;
  w->problem.reference_type = 0;
  w->problem.min_confidence = 0.05;
  w->skeleton = std::move(*BuildTagForStructure(w->structure));
  return w;
}

Workload* Plain() {
  static Workload* w = MakeWorkload(false);
  return w;
}

Workload* Admitted() {
  static Workload* w = MakeWorkload(true);
  return w;
}

// ---------------------------------------------------------------------------
// (a) The Admit/Release pair itself.

void BM_Admit_Disabled(benchmark::State& state) {
  AdmissionController controller{AdmissionOptions{}};
  for (auto _ : state) {
    auto ticket = controller.Admit(RequestClass::kMatch, nullptr, 0);
    benchmark::DoNotOptimize(ticket);
  }
}
BENCHMARK(BM_Admit_Disabled);

void BM_Admit_Uncontended(benchmark::State& state) {
  AdmissionOptions options;
  options.enabled = true;
  AdmissionController controller(options);
  for (auto _ : state) {
    auto ticket = controller.Admit(RequestClass::kMatch, nullptr, 0);
    benchmark::DoNotOptimize(ticket);
  }
  state.counters["admitted"] =
      static_cast<double>(controller.admitted_total());
}
BENCHMARK(BM_Admit_Uncontended);

// ---------------------------------------------------------------------------
// (b) End-to-end Engine::Match — the cheapest request class, so the largest
// relative admission overhead of any serving path.

void RunMatch(benchmark::State& state, Workload* w) {
  MatchRequest request;
  request.tag = &w->skeleton.tag;
  request.events = w->seq.View();
  request.symbols = &w->symbols;
  for (auto _ : state) {
    auto response = w->engine->Match(request);
    benchmark::DoNotOptimize(response);
  }
}

void BM_EngineMatch_NoAdmission(benchmark::State& state) {
  RunMatch(state, Plain());
}
BENCHMARK(BM_EngineMatch_NoAdmission);

void BM_EngineMatch_Admitted(benchmark::State& state) {
  RunMatch(state, Admitted());
}
BENCHMARK(BM_EngineMatch_Admitted);

// ---------------------------------------------------------------------------
// (c) End-to-end Engine::Mine — the expensive class.

void RunMine(benchmark::State& state, Workload* w) {
  MineRequest request;
  request.problem = &w->problem;
  request.sequence = &w->seq;
  std::uint64_t confirmed = 0;
  for (auto _ : state) {
    auto response = w->engine->Mine(request);
    benchmark::DoNotOptimize(response);
    confirmed += response.ok() ? response->report.completeness.confirmed : 0;
  }
  state.counters["confirmed_per_iter"] =
      state.iterations() > 0
          ? static_cast<double>(confirmed) /
                static_cast<double>(state.iterations())
          : 0.0;
}

void BM_EngineMine_NoAdmission(benchmark::State& state) {
  RunMine(state, Plain());
}
BENCHMARK(BM_EngineMine_NoAdmission);

void BM_EngineMine_Admitted(benchmark::State& state) {
  RunMine(state, Admitted());
}
BENCHMARK(BM_EngineMine_Admitted);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
