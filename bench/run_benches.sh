#!/usr/bin/env bash
# Runs the google-benchmark binaries from a build tree and optionally merges
# their JSON reports into a single file keyed by bench name:
#
#   bench/run_benches.sh --build-dir build --json BENCH.json
#   bench/run_benches.sh --json E12.json --min-time 0.05 bench_obs_overhead
#
# The merge is plain shell (printf + cat): each binary writes its own
# --benchmark_out JSON and the script wraps them as one object,
# {"bench_obs_overhead": {...}, "bench_stream": {...}, ...}, so no jq or
# python is needed on the runner.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: bench/run_benches.sh [options] [bench_name...]
  --build-dir DIR     build tree containing bench/ binaries (default: build)
  --json FILE         merge per-bench JSON reports into FILE
  --filter REGEX      forwarded as --benchmark_filter=REGEX
  --min-time SECS     forwarded as --benchmark_min_time=SECS
  --repetitions N     forwarded as --benchmark_repetitions=N
  bench_name...       run only these binaries (default: every bench_* present)
EOF
}

build_dir=build
json_out=""
filter=""
min_time=""
repetitions=""
benches=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir=$2; shift 2 ;;
    --json) json_out=$2; shift 2 ;;
    --filter) filter=$2; shift 2 ;;
    --min-time) min_time=$2; shift 2 ;;
    --repetitions) repetitions=$2; shift 2 ;;
    -h|--help) usage; exit 0 ;;
    --*) echo "unknown option: $1" >&2; usage >&2; exit 64 ;;
    *) benches+=("$1"); shift ;;
  esac
done

bin_dir="$build_dir/bench"
if [[ ! -d "$bin_dir" ]]; then
  echo "no bench binaries under '$bin_dir' — build first" >&2
  exit 66
fi

if [[ ${#benches[@]} -eq 0 ]]; then
  for binary in "$bin_dir"/bench_*; do
    [[ -x "$binary" && -f "$binary" ]] && benches+=("$(basename "$binary")")
  done
fi
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "nothing to run" >&2
  exit 66
fi

tmp_dir=""
if [[ -n "$json_out" ]]; then
  tmp_dir=$(mktemp -d)
  trap 'rm -rf "$tmp_dir"' EXIT
fi

for name in "${benches[@]}"; do
  binary="$bin_dir/$name"
  if [[ ! -x "$binary" ]]; then
    echo "missing bench binary: $binary" >&2
    exit 66
  fi
  args=()
  [[ -n "$filter" ]] && args+=("--benchmark_filter=$filter")
  [[ -n "$min_time" ]] && args+=("--benchmark_min_time=$min_time")
  [[ -n "$repetitions" ]] && args+=("--benchmark_repetitions=$repetitions")
  if [[ -n "$json_out" ]]; then
    args+=("--benchmark_out=$tmp_dir/$name.json" "--benchmark_out_format=json")
  fi
  echo "== $name =="
  "$binary" "${args[@]}"
done

if [[ -n "$json_out" ]]; then
  # A binary whose filter matched nothing leaves an empty (or missing) report;
  # merging it would produce invalid JSON, so those binaries are dropped from
  # the merge with a warning instead of corrupting the whole file.
  merged=()
  for name in "${benches[@]}"; do
    if [[ -s "$tmp_dir/$name.json" ]]; then
      merged+=("$name")
    else
      echo "warning: $name produced no JSON report; leaving it out of $json_out" >&2
    fi
  done
  if [[ ${#merged[@]} -eq 0 ]]; then
    echo "no JSON reports to merge" >&2
    exit 65
  fi
  {
    printf '{'
    first=1
    for name in "${merged[@]}"; do
      [[ $first -eq 1 ]] || printf ','
      first=0
      printf '\n"%s":\n' "$name"
      cat "$tmp_dir/$name.json"
    done
    printf '}\n'
  } > "$json_out"
  echo "wrote $json_out"
fi
