// E4 — Theorem 4: matching is O(|σ| (|S| min(|σ|, (|V|K)^p))^2). Series:
// wall time and configuration counts as each parameter grows — sequence
// length |σ|, chain length |V|, constraint range K, chain count p. Shape to
// check: roughly linear in |σ| (the configuration bound is what matters),
// and (|V|K)^p far below |σ| for realistic structures (the paper's remark).

#include <benchmark/benchmark.h>

#include "granmine/common/random.h"
#include "granmine/constraint/propagation.h"
#include "granmine/granularity/system.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"

namespace granmine {
namespace {

// A chain structure X0 -> X1 -> ... -> X_{v-1}, each edge [0, K] units.
EventStructure ChainStructure(const Granularity* unit, int variables,
                              std::int64_t k) {
  EventStructure s;
  for (int v = 0; v < variables; ++v) {
    s.AddVariable("X" + std::to_string(v));
  }
  for (int v = 1; v < variables; ++v) {
    (void)s.AddConstraint(v - 1, v, Tcg::Of(0, k, unit));
  }
  return s;
}

// p parallel chains of length 2 under one root, each edge [0, K] units.
EventStructure FanStructure(const Granularity* unit, int chains,
                            std::int64_t k) {
  EventStructure s;
  VariableId root = s.AddVariable("R");
  for (int c = 0; c < chains; ++c) {
    VariableId mid = s.AddVariable("M" + std::to_string(c));
    VariableId leaf = s.AddVariable("L" + std::to_string(c));
    (void)s.AddConstraint(root, mid, Tcg::Of(0, k, unit));
    (void)s.AddConstraint(mid, leaf, Tcg::Of(0, k, unit));
  }
  return s;
}

EventSequence RandomSequence(Rng& rng, std::size_t length, int type_count) {
  EventSequence seq;
  TimePoint t = 0;
  for (std::size_t i = 0; i < length; ++i) {
    t += rng.Uniform(1, 3);
    seq.Add(static_cast<EventTypeId>(rng.Uniform(0, type_count - 1)), t);
  }
  return seq;
}

void RunMatch(benchmark::State& state, const EventStructure& structure,
              std::size_t sequence_length, int type_count) {
  GranularitySystem toy;  // the structure's granularity lives elsewhere
  Result<TagBuildResult> built = BuildTagForStructure(structure);
  if (!built.ok()) {
    state.SkipWithError("TAG build failed");
    return;
  }
  TagMatcher matcher(&built->tag);
  Rng rng(99);
  EventSequence seq = RandomSequence(rng, sequence_length, type_count);
  // phi: variable v -> type (v % type_count).
  std::vector<EventTypeId> phi;
  for (int v = 0; v < structure.variable_count(); ++v) {
    phi.push_back(v % type_count);
  }
  SymbolMap symbols = SymbolMap::FromAssignment(phi, type_count);
  std::uint64_t configurations = 0;
  std::uint64_t accepted = 0;
  for (auto _ : state) {
    MatchStats stats;
    bool ok = matcher.Accepts(seq.View(), symbols, {}, &stats);
    benchmark::DoNotOptimize(ok);
    configurations += stats.configurations;
    accepted += ok;
  }
  state.counters["configs"] = benchmark::Counter(
      static_cast<double>(configurations), benchmark::Counter::kAvgIterations);
  state.counters["accepted"] = benchmark::Counter(
      static_cast<double>(accepted), benchmark::Counter::kAvgIterations);
  state.counters["events"] = static_cast<double>(sequence_length);
}

const Granularity* Unit() {
  static GranularitySystem* system = [] {
    auto owned = std::make_unique<GranularitySystem>();
    owned->AddUniform("unit", 1);
    return owned.release();
  }();
  return system->Find("unit");
}

void BM_Match_SequenceLength(benchmark::State& state) {
  EventStructure s = ChainStructure(Unit(), 4, 4);
  RunMatch(state, s, static_cast<std::size_t>(state.range(0)), 6);
}
BENCHMARK(BM_Match_SequenceLength)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_Match_ChainLength(benchmark::State& state) {
  EventStructure s =
      ChainStructure(Unit(), static_cast<int>(state.range(0)), 4);
  RunMatch(state, s, 2048, 6);
}
BENCHMARK(BM_Match_ChainLength)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

void BM_Match_RangeK(benchmark::State& state) {
  EventStructure s = ChainStructure(Unit(), 4, state.range(0));
  RunMatch(state, s, 2048, 6);
}
BENCHMARK(BM_Match_RangeK)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Match_Chains(benchmark::State& state) {
  EventStructure s = FanStructure(Unit(), static_cast<int>(state.range(0)), 4);
  RunMatch(state, s, 2048, 6);
}
BENCHMARK(BM_Match_Chains)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);

// PR6 comparison point: the step-kernel itself reads only tick primitives,
// but in the §5 pipeline every TAG run is preceded by a screening
// propagation whose constraint conversion hits the minsize/maxsize/mingap
// tables and the coverage cache. Measure that per-candidate unit of work —
// propagate + match on a Gregorian-granularity chain — against a warm
// hashed-memo system versus a frozen (sealed, id-indexed) one.
void RunScreeningPlusMatch(benchmark::State& state, bool frozen) {
  auto system = GranularitySystem::Gregorian();
  EventStructure s;
  for (int v = 0; v < 4; ++v) s.AddVariable("X" + std::to_string(v));
  (void)s.AddConstraint(0, 1, Tcg::Of(0, 3, system->Find("b-day")));
  (void)s.AddConstraint(1, 2, Tcg::Of(0, 2, system->Find("week")));
  (void)s.AddConstraint(2, 3, Tcg::Of(0, 1, system->Find("month")));
  // Warm the hashed memo either way, so the hashed variant measures the
  // steady-state memoized path, not first-fill cost.
  {
    ConstraintPropagator warm(&system->tables(), &system->coverage());
    benchmark::DoNotOptimize(warm.Propagate(s));
  }
  if (frozen) {
    if (!system->Freeze().ok()) {
      state.SkipWithError("Freeze failed");
      return;
    }
  }
  Result<TagBuildResult> built = BuildTagForStructure(s);
  if (!built.ok()) {
    state.SkipWithError("TAG build failed");
    return;
  }
  TagMatcher matcher(&built->tag);
  Rng rng(7);
  EventSequence seq = RandomSequence(rng, 2048, 6);
  std::vector<EventTypeId> phi;
  for (int v = 0; v < s.variable_count(); ++v) phi.push_back(v % 6);
  SymbolMap symbols = SymbolMap::FromAssignment(phi, 6);
  for (auto _ : state) {
    ConstraintPropagator propagator(&system->tables(), &system->coverage());
    auto screened = propagator.Propagate(s);
    benchmark::DoNotOptimize(screened);
    benchmark::DoNotOptimize(matcher.Accepts(seq.View(), symbols, {}));
  }
}
void BM_Match_ScreenedGregorian_Hashed(benchmark::State& state) {
  RunScreeningPlusMatch(state, /*frozen=*/false);
}
void BM_Match_ScreenedGregorian_Frozen(benchmark::State& state) {
  RunScreeningPlusMatch(state, /*frozen=*/true);
}
BENCHMARK(BM_Match_ScreenedGregorian_Hashed)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Match_ScreenedGregorian_Frozen)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
