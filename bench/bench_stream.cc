// E11 — streaming vs. batch re-scan: per-event ingest latency of the
// OnlineMiner (resident TAG runs advanced once per arrival) against the
// per-query cost of re-running the batch §5 pipeline over the full prefix,
// plus snapshot latency, retention sweeps (resident-state footprint), and
// the ingest thread sweep. Claim to check: at |σ| = 10⁴ an incremental
// update is ≥10× cheaper than answering the same question by re-scanning —
// in practice it is orders of magnitude cheaper, because a snapshot reads
// resident verdicts instead of re-running (candidate × root) TAG matches.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/stream/online_miner.h"

namespace granmine {
namespace {

constexpr int kTypeCount = 6;

struct StreamScenario {
  GranularitySystem system;
  EventStructure structure;
  DiscoveryProblem problem;
  std::vector<Event> events;
};

// A unit-granularity 3-variable chain (36 candidates) over a deterministic
// pseudo-random tape with frequent equal-timestamp groups; |σ| = count.
// Same shape as tests/stream_test.cc, scaled up.
StreamScenario* Scenario(std::size_t count) {
  static auto* scenarios = new std::vector<std::unique_ptr<StreamScenario>>();
  for (auto& existing : *scenarios) {
    if (existing->events.size() == count) return existing.get();
  }
  auto scenario = std::make_unique<StreamScenario>();
  const Granularity* unit = scenario->system.AddUniform("unit", 1);
  VariableId x0 = scenario->structure.AddVariable("X0");
  VariableId x1 = scenario->structure.AddVariable("X1");
  VariableId x2 = scenario->structure.AddVariable("X2");
  benchmark::DoNotOptimize(
      scenario->structure.AddConstraint(x0, x1, Tcg::Of(0, 8, unit)));
  benchmark::DoNotOptimize(
      scenario->structure.AddConstraint(x1, x2, Tcg::Of(0, 8, unit)));
  std::uint64_t state = 0x51ed2701afe4c9b3ULL;
  TimePoint t = 1;
  scenario->events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((state >> 33) % 2);
    scenario->events.push_back(
        Event{static_cast<EventTypeId>((state >> 13) % kTypeCount), t});
  }
  scenario->problem.structure = &scenario->structure;
  scenario->problem.reference_type = 0;
  scenario->problem.min_confidence = 0.05;
  scenario->problem.allowed.assign(3, {});
  scenario->problem.allowed[1] = {0, 1, 2, 3, 4, 5};
  scenario->problem.allowed[2] = {0, 1, 2, 3, 4, 5};
  scenarios->push_back(std::move(scenario));
  return scenarios->back().get();
}

OnlineMiner MakeMiner(StreamScenario* scenario, OnlineMinerOptions options) {
  auto miner =
      OnlineMiner::Create(&scenario->system, scenario->problem, options);
  if (!miner.ok()) std::abort();
  return std::move(*miner);
}

// Amortized per-event ingest cost (resident runs advanced, no snapshot).
// Args: event count, retention (0 = unbounded), threads.
void BM_StreamIngest(benchmark::State& state) {
  StreamScenario* scenario = Scenario(static_cast<std::size_t>(state.range(0)));
  OnlineMinerOptions options;
  if (state.range(1) > 0) options.retention = state.range(1);
  options.num_threads = static_cast<int>(state.range(2));
  std::size_t resident_roots = 0, resident_configs = 0;
  for (auto _ : state) {
    OnlineMiner miner = MakeMiner(scenario, options);
    for (const Event& event : scenario->events) {
      benchmark::DoNotOptimize(miner.Ingest(event));
    }
    resident_roots = miner.resident_roots();
    resident_configs = miner.resident_configurations();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(scenario->events.size()));
  state.counters["resident_roots"] = static_cast<double>(resident_roots);
  state.counters["resident_configs"] = static_cast<double>(resident_configs);
}
BENCHMARK(BM_StreamIngest)
    ->Args({1'000, 0, 1})
    ->Args({10'000, 0, 1})
    ->Args({10'000, 0, 4})
    ->Args({10'000, 64, 1})
    ->Args({10'000, 256, 1})
    ->Args({10'000, 1024, 1})
    ->Unit(benchmark::kMillisecond);

// On-demand snapshot over fully-ingested resident state — the streaming
// answer to "does the pattern still hold?". Args: event count, threads.
void BM_StreamSnapshot(benchmark::State& state) {
  StreamScenario* scenario = Scenario(static_cast<std::size_t>(state.range(0)));
  OnlineMinerOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  OnlineMiner miner = MakeMiner(scenario, options);
  for (const Event& event : scenario->events) {
    if (!miner.Ingest(event).ok()) std::abort();
  }
  std::size_t solutions = 0;
  for (auto _ : state) {
    auto report = miner.Snapshot();
    if (!report.ok()) std::abort();
    solutions = report->solutions.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_StreamSnapshot)
    ->Args({10'000, 1})
    ->Args({10'000, 4})
    ->Unit(benchmark::kMicrosecond);

// The baseline the streaming subsystem replaces: one batch Mine over the
// same prefix with the snapshot-equivalent options — what a per-event
// re-scan would pay on every arrival. Args: event count, threads.
void BM_BatchRescan(benchmark::State& state) {
  StreamScenario* scenario = Scenario(static_cast<std::size_t>(state.range(0)));
  OnlineMinerOptions stream_options;
  stream_options.num_threads = static_cast<int>(state.range(1));
  EventSequence sequence(scenario->events);
  Miner miner(&scenario->system, stream_options.BatchEquivalent());
  std::size_t solutions = 0;
  for (auto _ : state) {
    auto report = miner.Mine(scenario->problem, sequence);
    if (!report.ok()) std::abort();
    solutions = report->solutions.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_BatchRescan)
    ->Args({1'000, 1})
    ->Args({10'000, 1})
    ->Args({10'000, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
