// Serving-layer cost model (docs/serving.md). Two claims to check:
//
//  (a) the frame codec is not the bottleneck — AppendFrame (header build +
//      CRC32C over header and payload) and FrameParser::Feed/Next move
//      bytes far faster than a loopback socket can deliver them, across
//      payload sizes and even under pathologically torn delivery;
//  (b) a loopback round trip through the full stack (client encode →
//      poll loop → worker dispatch → service render → reply frame) costs
//      tens of microseconds for a ping and stays request-bound, not
//      framing-bound, for a real check call.
//
// The server fixture is started once and shared across iterations: the
// multi-second Gregorian Freeze() at Server::Start is a startup cost, not
// a per-request one, and benchmarking it here would only measure that.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "granmine/engine/engine.h"
#include "granmine/server/client.h"
#include "granmine/server/server.h"
#include "granmine/server/wire.h"

namespace granmine {
namespace {

constexpr const char* kStructure =
    "rise -> report : [1,1] b-day\n"
    "report -> rise2 : [0,5] day\n";

std::vector<std::uint8_t> Payload(std::size_t size) {
  std::vector<std::uint8_t> payload(size);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < size; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    payload[i] = static_cast<std::uint8_t>(state >> 56);
  }
  return payload;
}

void BM_ServerWire_AppendFrame(benchmark::State& state) {
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    server::AppendFrame(&out, server::FrameType::kStreamIngest, 7, payload);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ServerWire_AppendFrame)->Arg(64)->Arg(4096)->Arg(65536);

void BM_ServerWire_ParseFrame(benchmark::State& state) {
  const auto payload = Payload(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> wire;
  server::AppendFrame(&wire, server::FrameType::kStreamIngest, 7, payload);
  server::FrameParser parser;
  for (auto _ : state) {
    parser.Feed(wire);
    auto frame = parser.Next();
    if (!frame.ok() || !frame->has_value()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize((*frame)->payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ServerWire_ParseFrame)->Arg(64)->Arg(4096)->Arg(65536);

// Worst-case reassembly: the same frame delivered in 16-byte slices, the
// shape a drip-feeding peer or a tiny SO_RCVBUF produces.
void BM_ServerWire_ParseTornFrame(benchmark::State& state) {
  const auto payload = Payload(4096);
  std::vector<std::uint8_t> wire;
  server::AppendFrame(&wire, server::FrameType::kStreamIngest, 7, payload);
  server::FrameParser parser;
  for (auto _ : state) {
    for (std::size_t off = 0; off < wire.size(); off += 16) {
      const std::size_t n = std::min<std::size_t>(16, wire.size() - off);
      parser.Feed({wire.data() + off, n});
    }
    auto frame = parser.Next();
    if (!frame.ok() || !frame->has_value()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize((*frame)->payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_ServerWire_ParseTornFrame);

// One engine + server + connected client for every loopback benchmark; the
// Gregorian freeze is paid once here, as in a real deployment.
struct Loopback {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<server::Server> server;
  std::unique_ptr<server::Client> client;

  static Loopback* Get() {
    static Loopback* instance = [] {
      auto* loopback = new Loopback();
      auto engine = Engine::CreateGregorian(EngineOptions{});
      GM_CHECK(engine.ok());
      loopback->engine = std::move(*engine);
      loopback->server = std::make_unique<server::Server>(
          loopback->engine.get(), server::ServerOptions{});
      GM_CHECK(loopback->server->Start().ok());
      auto client =
          server::Client::Connect("127.0.0.1", loopback->server->port());
      GM_CHECK(client.ok());
      loopback->client = std::move(*client);
      return loopback;
    }();
    return instance;
  }
};

void BM_ServerLoopback_Ping(benchmark::State& state) {
  Loopback* loopback = Loopback::Get();
  for (auto _ : state) {
    if (!loopback->client->Ping().ok()) {
      state.SkipWithError("ping failed");
      return;
    }
  }
}
BENCHMARK(BM_ServerLoopback_Ping);

void BM_ServerLoopback_Check(benchmark::State& state) {
  Loopback* loopback = Loopback::Get();
  server::CheckCall call;
  call.structure_text = kStructure;
  for (auto _ : state) {
    auto response = loopback->client->Check(call);
    if (!response.ok() || response->exit_code != 0) {
      state.SkipWithError("check failed");
      return;
    }
    benchmark::DoNotOptimize(response->out.data());
  }
}
BENCHMARK(BM_ServerLoopback_Check);

void BM_ServerLoopback_Statusz(benchmark::State& state) {
  Loopback* loopback = Loopback::Get();
  for (auto _ : state) {
    auto response = loopback->client->Statusz();
    if (!response.ok() || response->exit_code != 0) {
      state.SkipWithError("statusz failed");
      return;
    }
    benchmark::DoNotOptimize(response->out.data());
  }
}
BENCHMARK(BM_ServerLoopback_Statusz);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
