// E2 — Theorem 1: consistency checking is NP-hard. The exact checker's cost
// explodes on the subset-sum reduction family while the approximate §3.2
// algorithm stays polynomial (and, per Figure 1(b), incomplete). Shape to
// check: exact nodes/time grow super-polynomially in k; approximate time
// stays flat; the Figure-1(b) contradiction is refuted only by the exact
// checker.

#include <benchmark/benchmark.h>

#include "granmine/constraint/exact.h"
#include "granmine/constraint/propagation.h"
#include "granmine/constraint/subset_sum.h"
#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"

namespace granmine {
namespace {

// Pairwise coprime numbers keep the calendar-aligned reduction faithful.
const std::vector<std::int64_t>& CoprimeNumbers() {
  static const std::vector<std::int64_t> kNumbers = {2, 3, 5, 7, 11, 13};
  return kNumbers;
}

SubsetSumInstance HardInstance(int k) {
  SubsetSumInstance instance;
  std::int64_t sum = 0;
  for (int i = 0; i < k; ++i) {
    instance.numbers.push_back(CoprimeNumbers()[i]);
    sum += CoprimeNumbers()[i];
  }
  // UNSAT but inside the reachable interval [0, sum]: missing the target by
  // exactly 1 requires leaving out a subset summing to 1, impossible with
  // every number >= 2 — so the checker must search exhaustively (the STP
  // relaxation alone cannot refute it).
  instance.target = sum - 1;
  return instance;
}

void BM_ExactSubsetSum(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  GranularitySystem system;
  const Granularity* month = system.AddUniform("month", 30);
  SubsetSumInstance instance = HardInstance(k);
  auto reduction = BuildSubsetSumStructure(&system, month, instance);
  if (!reduction.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  ExactOptions options;
  options.max_nodes = 2'000'000'000;
  ExactConsistencyChecker checker(&system.tables(), &system.coverage(),
                                  options);
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    Result<ExactResult> result = checker.Check(reduction->structure);
    benchmark::DoNotOptimize(result);
    if (result.ok()) nodes += result->nodes_explored;
  }
  state.counters["search_nodes"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ExactSubsetSum)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_ApproximateSubsetSum(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  GranularitySystem system;
  const Granularity* month = system.AddUniform("month", 30);
  auto reduction = BuildSubsetSumStructure(&system, month, HardInstance(k));
  if (!reduction.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  ConstraintPropagator propagator(&system.tables(), &system.coverage());
  benchmark::DoNotOptimize(propagator.Propagate(reduction->structure));
  std::int64_t refuted = 0;
  for (auto _ : state) {
    Result<PropagationResult> result =
        propagator.Propagate(reduction->structure);
    benchmark::DoNotOptimize(result);
    if (result.ok() && !result->consistent) ++refuted;
  }
  // The approximate algorithm typically cannot refute these instances —
  // that incompleteness is the point (reported as a counter).
  state.counters["refuted"] = benchmark::Counter(
      static_cast<double>(refuted), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ApproximateSubsetSum)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Figure1bExactRefutation(benchmark::State& state) {
  auto system = GranularitySystem::GregorianDays();
  auto structure = BuildFigure1b(*system);
  if (!structure.ok()) {
    state.SkipWithError("figure 1(b) failed");
    return;
  }
  const Granularity* month = system->Find("month");
  (void)structure->AddConstraint(0, 2, Tcg::Of(1, 11, month));
  ExactConsistencyChecker checker(&system->tables(), &system->coverage());
  // Warm the caches.
  benchmark::DoNotOptimize(checker.Check(*structure));
  std::int64_t refuted = 0;
  for (auto _ : state) {
    Result<ExactResult> result = checker.Check(*structure);
    if (result.ok() && !result->consistent) ++refuted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["refuted"] = benchmark::Counter(
      static_cast<double>(refuted), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Figure1bExactRefutation)->Unit(benchmark::kMillisecond);

void BM_Figure1bApproximateMiss(benchmark::State& state) {
  auto system = GranularitySystem::GregorianDays();
  auto structure = BuildFigure1b(*system);
  if (!structure.ok()) {
    state.SkipWithError("figure 1(b) failed");
    return;
  }
  (void)structure->AddConstraint(0, 2, Tcg::Of(1, 11, system->Find("month")));
  ConstraintPropagator propagator(&system->tables(), &system->coverage());
  benchmark::DoNotOptimize(propagator.Propagate(*structure));
  std::int64_t refuted = 0;
  for (auto _ : state) {
    Result<PropagationResult> result = propagator.Propagate(*structure);
    if (result.ok() && !result->consistent) ++refuted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["refuted"] = benchmark::Counter(
      static_cast<double>(refuted), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Figure1bApproximateMiss)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
