// E15 — persistence cost model. Three claims to check:
//
//  (a) snapshot save/load moves bytes at I/O-bound rates — the CRC32C frame
//      and the codec walk add no visible CPU wall (bytes_per_second counter);
//  (b) warm start is measurably cheaper than a cold Freeze(): installing the
//      sealed min-size/max-size/min-gap caches from a FrozenSystemImage
//      (decode + shape validation + k=1,2 spot checks) skips recomputing
//      every table row up to the sealed k-cap;
//  (c) a stream checkpoint (encode + atomic temp-file write + rename) is
//      cheap enough to take every few thousand events.
//
// BENCH_PR8.json is generated with
//   bench/run_benches.sh --json BENCH_PR8.json --repetitions 3
//       bench_persist bench_admission_overhead

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/persist/codecs.h"
#include "granmine/persist/stream_codec.h"
#include "granmine/sequence/sequence.h"
#include "granmine/stream/online_miner.h"

namespace granmine {
namespace {

constexpr int kTypeCount = 6;

std::string TempPath(const char* name) {
  return std::string("/tmp/granmine_bench_persist_") + name;
}

// A deterministic event tape over the Gregorian family's second ticks.
EventSequence MakeSequence(std::size_t count) {
  EventSequence sequence;
  std::uint64_t state = 0x51ed2701afe4c9b3ULL;
  TimePoint t = 1;
  for (std::size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((state >> 33) % 900);
    sequence.Add(Event{static_cast<EventTypeId>((state >> 13) % kTypeCount), t});
  }
  return sequence;
}

std::uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

// (a) Engine::SaveSnapshot throughput: frozen Gregorian image + an event
// sequence of range(0) events, through the atomic temp-file + rename path.
void BM_SnapshotSave(benchmark::State& state) {
  auto engine = Engine::CreateGregorian();
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const EventSequence sequence = MakeSequence(
      static_cast<std::size_t>(state.range(0)));
  const std::string path = TempPath("save.bin");
  SnapshotSaveOptions options;
  options.sequence = &sequence;
  // SaveSnapshot freezes the engine on first use; one warmup save keeps that
  // one-time cost out of the steady-state save throughput.
  if (!(*engine)->SaveSnapshot(path, options).ok()) {
    state.SkipWithError("warmup SaveSnapshot failed");
    return;
  }
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    Status saved = (*engine)->SaveSnapshot(path, options);
    if (!saved.ok()) {
      state.SkipWithError("SaveSnapshot failed");
      return;
    }
    bytes += FileBytes(path);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSave)->Arg(1000)->Arg(100000);

// (a) Engine::FromSnapshot throughput: read + CRC verify + decode + warm
// freeze + engine construction, i.e. the whole crash-recovery path.
void BM_SnapshotLoad(benchmark::State& state) {
  auto engine = Engine::CreateGregorian();
  if (!engine.ok()) {
    state.SkipWithError("engine creation failed");
    return;
  }
  const EventSequence sequence = MakeSequence(
      static_cast<std::size_t>(state.range(0)));
  const std::string path = TempPath("load.bin");
  SnapshotSaveOptions options;
  options.sequence = &sequence;
  if (!(*engine)->SaveSnapshot(path, options).ok()) {
    state.SkipWithError("SaveSnapshot failed");
    return;
  }
  const std::uint64_t bytes = FileBytes(path);
  std::uint64_t total = 0;
  for (auto _ : state) {
    EventSequence restored_sequence;
    auto restored = Engine::FromSnapshot(GranularitySystem::Gregorian(), path,
                                         EngineOptions{}, &restored_sequence);
    if (!restored.ok()) {
      state.SkipWithError("FromSnapshot failed");
      return;
    }
    benchmark::DoNotOptimize(restored_sequence.size());
    total += bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(total));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Arg(1000)->Arg(100000);

// (b) Cold start: build the Gregorian family and compute every sealed table
// row with Freeze(). The baseline warm start must beat.
void BM_ColdFreeze(benchmark::State& state) {
  for (auto _ : state) {
    std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();
    Status frozen = system->Freeze();
    if (!frozen.ok()) {
      state.SkipWithError("Freeze failed");
      return;
    }
    benchmark::DoNotOptimize(system.get());
  }
}
BENCHMARK(BM_ColdFreeze);

// (b) Warm start: decode the frozen image and install it with
// FreezeFromImage (shape checks + k=1,2 spot checks against the live
// definitions, no table recomputation). Family build cost is kept inside
// the loop exactly as in BM_ColdFreeze so the delta isolates
// freeze-vs-install.
void BM_WarmStartFromImage(benchmark::State& state) {
  std::unique_ptr<GranularitySystem> donor = GranularitySystem::Gregorian();
  if (!donor->Freeze().ok()) {
    state.SkipWithError("donor Freeze failed");
    return;
  }
  auto image = donor->ExportFrozenImage();
  if (!image.ok()) {
    state.SkipWithError("ExportFrozenImage failed");
    return;
  }
  const std::vector<std::uint8_t> payload =
      persist::EncodeFrozenSystemImage(*image);
  for (auto _ : state) {
    persist::Section section;
    section.type = persist::SectionType::kFrozenSystemImage;
    section.payload = payload;
    section.payload_offset = 36;
    auto decoded = persist::DecodeFrozenSystemImage(section);
    if (!decoded.ok()) {
      state.SkipWithError("DecodeFrozenSystemImage failed");
      return;
    }
    std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();
    Status installed = system->FreezeFromImage(*decoded);
    if (!installed.ok()) {
      state.SkipWithError("FreezeFromImage failed");
      return;
    }
    benchmark::DoNotOptimize(system.get());
  }
}
BENCHMARK(BM_WarmStartFromImage);

// (c) Stream checkpoint cadence cost: encode the resident session and write
// it through the atomic-rename path, on a live session of range(0) events
// (same shape as tests/stream_test.cc, 36 candidates).
void BM_StreamCheckpointSave(benchmark::State& state) {
  GranularitySystem system;
  const Granularity* unit = system.AddUniform("unit", 1);
  EventStructure structure;
  VariableId x0 = structure.AddVariable("X0");
  VariableId x1 = structure.AddVariable("X1");
  VariableId x2 = structure.AddVariable("X2");
  benchmark::DoNotOptimize(structure.AddConstraint(x0, x1, Tcg::Of(0, 8, unit)));
  benchmark::DoNotOptimize(structure.AddConstraint(x1, x2, Tcg::Of(0, 8, unit)));
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.reference_type = 0;
  problem.min_confidence = 0.05;
  problem.allowed.assign(3, {});
  problem.allowed[1] = {0, 1, 2, 3, 4, 5};
  problem.allowed[2] = {0, 1, 2, 3, 4, 5};
  auto miner = OnlineMiner::Create(&system, problem, OnlineMinerOptions{});
  if (!miner.ok()) {
    state.SkipWithError("OnlineMiner::Create failed");
    return;
  }
  std::uint64_t rng = 0x51ed2701afe4c9b3ULL;
  TimePoint t = 1;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((rng >> 33) % 2);
    if (!miner->Ingest(
                 Event{static_cast<EventTypeId>((rng >> 13) % kTypeCount), t})
             .ok()) {
      state.SkipWithError("Ingest failed");
      return;
    }
  }
  const std::string path = TempPath("checkpoint.bin");
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    Status saved = persist::SaveStreamCheckpoint(*miner, path);
    if (!saved.ok()) {
      state.SkipWithError("SaveStreamCheckpoint failed");
      return;
    }
    bytes += FileBytes(path);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_StreamCheckpointSave)->Arg(200)->Arg(2000);

// (c) The restore side: read + fingerprint check + state install over a
// freshly re-derived session.
void BM_StreamCheckpointRestore(benchmark::State& state) {
  GranularitySystem system;
  const Granularity* unit = system.AddUniform("unit", 1);
  EventStructure structure;
  VariableId x0 = structure.AddVariable("X0");
  VariableId x1 = structure.AddVariable("X1");
  VariableId x2 = structure.AddVariable("X2");
  benchmark::DoNotOptimize(structure.AddConstraint(x0, x1, Tcg::Of(0, 8, unit)));
  benchmark::DoNotOptimize(structure.AddConstraint(x1, x2, Tcg::Of(0, 8, unit)));
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.reference_type = 0;
  problem.min_confidence = 0.05;
  problem.allowed.assign(3, {});
  problem.allowed[1] = {0, 1, 2, 3, 4, 5};
  problem.allowed[2] = {0, 1, 2, 3, 4, 5};
  auto miner = OnlineMiner::Create(&system, problem, OnlineMinerOptions{});
  if (!miner.ok()) {
    state.SkipWithError("OnlineMiner::Create failed");
    return;
  }
  std::uint64_t rng = 0x51ed2701afe4c9b3ULL;
  TimePoint t = 1;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((rng >> 33) % 2);
    if (!miner->Ingest(
                 Event{static_cast<EventTypeId>((rng >> 13) % kTypeCount), t})
             .ok()) {
      state.SkipWithError("Ingest failed");
      return;
    }
  }
  const std::string path = TempPath("restore.bin");
  if (!persist::SaveStreamCheckpoint(*miner, path).ok()) {
    state.SkipWithError("SaveStreamCheckpoint failed");
    return;
  }
  for (auto _ : state) {
    auto restored = persist::RestoreStreamCheckpoint(&system, problem,
                                                     OnlineMinerOptions{}, path);
    if (!restored.ok()) {
      state.SkipWithError("RestoreStreamCheckpoint failed");
      return;
    }
    benchmark::DoNotOptimize(&*restored);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_StreamCheckpointRestore)->Arg(200)->Arg(2000);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
