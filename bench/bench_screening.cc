// E6 — §5.1 candidate screening through induced discovery problems: how the
// surviving candidate count shrinks with the confidence threshold θ and the
// screening depth k. Shape to check: the candidate space collapses as θ
// rises; k = 2 screens strictly more than k = 1 at equal θ.

#include <benchmark/benchmark.h>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

void RunScreening(benchmark::State& state, double theta, int depth) {
  auto system = GranularitySystem::Gregorian();
  StockWorkloadOptions workload_options;
  workload_options.trading_days = 60;
  workload_options.plant_probability = 0.6;
  workload_options.noise_events_per_day = 3.0;
  workload_options.noise_ticker_count = 5;
  workload_options.seed = 77;
  Workload workload = MakeStockWorkload(*system, workload_options);
  auto structure = BuildFigure1a(*system);
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = theta;
  problem.reference_type = *workload.registry.Find("IBM-rise");

  MinerOptions options;
  options.screening_depth = depth;
  Miner miner(system.get(), options);
  benchmark::DoNotOptimize(miner.Mine(problem, workload.sequence));
  double before = 0, after = 0, solutions = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    Result<MiningReport> report = miner.Mine(problem, workload.sequence);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      before += static_cast<double>(report->candidates_before);
      after += static_cast<double>(report->candidates_after_screening);
      solutions += static_cast<double>(report->solutions.size());
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["cand_before"] = before / static_cast<double>(runs);
    state.counters["cand_after"] = after / static_cast<double>(runs);
    state.counters["solutions"] = solutions / static_cast<double>(runs);
  }
}

void BM_Screening_K1(benchmark::State& state) {
  RunScreening(state, static_cast<double>(state.range(0)) / 100.0, 1);
}
BENCHMARK(BM_Screening_K1)
    ->Arg(10)
    ->Arg(25)
    ->Arg(40)
    ->Arg(60)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_Screening_K2(benchmark::State& state) {
  RunScreening(state, static_cast<double>(state.range(0)) / 100.0, 2);
}
BENCHMARK(BM_Screening_K2)
    ->Arg(10)
    ->Arg(25)
    ->Arg(40)
    ->Arg(60)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

void BM_Screening_Off(benchmark::State& state) {
  RunScreening(state, static_cast<double>(state.range(0)) / 100.0, 0);
}
BENCHMARK(BM_Screening_Off)
    ->Arg(10)
    ->Arg(40)
    ->Arg(80)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
