// E9 — thread scaling of the §5 mining pipeline: the step-5 (candidate ×
// reference occurrence) TAG scans fan out across the Executor; this sweeps
// the worker count over the E5 stock workload and the ATM-fraud workload.
// Shape to check: wall time ~1/threads up to the physical core count (the
// workload is embarrassingly parallel; the serial steps 1-4 bound the
// asymptote per Amdahl), and identical solution counts at every width.

#include <benchmark/benchmark.h>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

struct Scenario {
  std::unique_ptr<GranularitySystem> system;
  Workload workload;
  EventStructure structure;
  DiscoveryProblem problem;
};

// The E5 stock scenario with enough noise tickers that step 5 dominates.
Scenario MakeStockScenario() {
  Scenario scenario;
  scenario.system = GranularitySystem::Gregorian();
  StockWorkloadOptions options;
  options.trading_days = 60;
  options.plant_probability = 0.6;
  options.noise_events_per_day = 2.0;
  options.noise_ticker_count = 6;
  options.seed = 1234;
  scenario.workload = MakeStockWorkload(*scenario.system, options);
  auto structure = BuildFigure1a(*scenario.system);
  scenario.structure = *std::move(structure);
  scenario.problem.structure = &scenario.structure;
  scenario.problem.min_confidence = 0.15;
  scenario.problem.reference_type =
      *scenario.workload.registry.Find("IBM-rise");
  scenario.problem.allowed.assign(4, {});
  scenario.problem.allowed[3] = {
      *scenario.workload.registry.Find("IBM-fall")};
  return scenario;
}

// The introduction's ATM-fraud scenario: deposit, same-day activity,
// confirmation within two days; both non-root variables free.
Scenario MakeAtmScenario() {
  Scenario scenario;
  scenario.system = GranularitySystem::Gregorian();
  AtmWorkloadOptions options;
  options.days = 90;
  options.accounts = 3;
  options.plant_probability = 0.55;
  options.seed = 7;
  scenario.workload = MakeAtmWorkload(*scenario.system, options);
  const Granularity* day = scenario.system->Find("day");
  VariableId x0 = scenario.structure.AddVariable("deposit");
  VariableId x1 = scenario.structure.AddVariable("same-day-activity");
  VariableId x2 = scenario.structure.AddVariable("confirmation");
  benchmark::DoNotOptimize(
      scenario.structure.AddConstraint(x0, x1, Tcg::Same(day)));
  benchmark::DoNotOptimize(
      scenario.structure.AddConstraint(x0, x2, Tcg::Of(1, 2, day)));
  benchmark::DoNotOptimize(
      scenario.structure.AddConstraint(x1, x2, Tcg::Of(0, 2, day)));
  scenario.problem.structure = &scenario.structure;
  scenario.problem.min_confidence = 0.35;
  scenario.problem.reference_type =
      *scenario.workload.registry.Find("deposit-acct0");
  return scenario;
}

// Screening is kept at depth 1 so a meaningful candidate population reaches
// the parallel step-5 scan; deeper screening would shrink the fan-out to a
// handful of candidates and measure nothing but the serial prefix.
MinerOptions OptionsWithThreads(int threads) {
  MinerOptions options;
  options.screening_depth = 1;
  options.num_threads = threads;
  return options;
}

void RunScaling(benchmark::State& state, Scenario (*make)()) {
  Scenario scenario = make();
  const int threads = static_cast<int>(state.range(0));
  Miner miner(scenario.system.get(), OptionsWithThreads(threads));
  // Warm the shared table/coverage caches so every width measures the same
  // post-warmup regime.
  benchmark::DoNotOptimize(
      miner.Mine(scenario.problem, scenario.workload.sequence));
  double tag_runs = 0, solutions = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    Result<MiningReport> report =
        miner.Mine(scenario.problem, scenario.workload.sequence);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      tag_runs += static_cast<double>(report->tag_runs);
      solutions += static_cast<double>(report->solutions.size());
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["tag_runs"] = tag_runs / static_cast<double>(runs);
    state.counters["solutions"] = solutions / static_cast<double>(runs);
  }
  state.counters["threads"] = threads;
}

void BM_ParallelMining_Stock(benchmark::State& state) {
  RunScaling(state, MakeStockScenario);
}
void BM_ParallelMining_Atm(benchmark::State& state) {
  RunScaling(state, MakeAtmScenario);
}

// range(0) = MinerOptions::num_threads.
BENCHMARK(BM_ParallelMining_Stock)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_ParallelMining_Atm)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
