#ifndef GRANMINE_BENCH_BENCH_UTIL_H_
#define GRANMINE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "granmine/common/random.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/granularity/granularity.h"

namespace granmine {
namespace bench {

/// A random rooted DAG event structure: variable 0 is the root, every other
/// variable hangs off a random earlier parent (plus optional extra forward
/// edges), and each edge carries a TCG over a random granularity from
/// `granularities` with lower bound in [0, max_lo] and width in [0, w].
inline EventStructure RandomRootedStructure(
    Rng& rng, int variables,
    const std::vector<const Granularity*>& granularities, std::int64_t max_lo,
    std::int64_t max_width, double extra_edge_probability = 0.3) {
  EventStructure s;
  for (int v = 0; v < variables; ++v) {
    s.AddVariable("X" + std::to_string(v));
  }
  for (int v = 1; v < variables; ++v) {
    int parent = static_cast<int>(rng.Uniform(0, v - 1));
    std::int64_t lo = rng.Uniform(0, max_lo);
    const Granularity* g = granularities[rng.Index(granularities.size())];
    (void)s.AddConstraint(parent, v,
                          Tcg::Of(lo, lo + rng.Uniform(0, max_width), g));
  }
  for (int v = 2; v < variables; ++v) {
    if (!rng.Bernoulli(extra_edge_probability)) continue;
    int a = static_cast<int>(rng.Uniform(0, v - 1));
    if (s.FindEdge(a, v) != nullptr) continue;
    std::int64_t lo = rng.Uniform(0, max_lo);
    const Granularity* g = granularities[rng.Index(granularities.size())];
    (void)s.AddConstraint(a, v,
                          Tcg::Of(lo, lo + rng.Uniform(0, max_width), g));
  }
  return s;
}

}  // namespace bench
}  // namespace granmine

#endif  // GRANMINE_BENCH_BENCH_UTIL_H_
