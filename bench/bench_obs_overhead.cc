// E12/E16 — observability overhead. Claim (docs/observability.md): the
// metrics/trace/log layer costs ≤ 2% wall time on the mining and streaming
// hot paths when enabled, and exactly nothing when GRANMINE_OBS=OFF (the
// macros expand to empty token sequences — see the static_asserts in
// tests/obs_test.cc). Series: (a) the per-update primitives (counter add,
// histogram observe, trace span, log line, request-scope install) with the
// runtime switch off and on, (b) a full batch mining run, (c) a full stream
// ingest/snapshot run — each at obs level 0 (runtime off), 1 (metrics on),
// 2 (metrics + trace on), 3 (metrics + trace + structured log at the
// default info level, flight recorder attached — the E16 configuration).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/common/random.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/obs/obs.h"
#include "granmine/obs/context.h"
#include "granmine/obs/flight_recorder.h"
#include "granmine/obs/log.h"
#include "granmine/obs/metrics.h"
#include "granmine/obs/trace.h"
#include "granmine/stream/online_miner.h"

namespace granmine {
namespace {

GranularitySystem* UnitSystem() {
  static GranularitySystem* system = [] {
    auto owned = new GranularitySystem();
    owned->AddUniform("unit", 1);
    return owned;
  }();
  return system;
}

// The flight recorder the level-3 series attaches (engine-shaped setup: the
// recorder taps every record while the log serves the sink).
obs::FlightRecorder* BenchRecorder() {
  static obs::FlightRecorder* recorder = new obs::FlightRecorder();
  return recorder;
}

// Applies an obs level: 0 = everything off, 1 = metrics, 2 = metrics+trace,
// 3 = metrics+trace+structured log (info level, recorder attached, no sink —
// the file write is the caller's I/O, not the instrumentation's cost).
// Resets state so each series starts from empty shards and an empty trace.
void ApplyObsLevel(std::int64_t level) {
  obs::MetricsRegistry::Global().set_enabled(false);
  obs::MetricsRegistry::Global().Reset();
  obs::MetricsRegistry::Global().set_enabled(level >= 1);
  obs::TraceCollector::Global().Clear();
  obs::TraceCollector::Global().set_enabled(level >= 2);
  obs::EventLog::Global().ResetForTest();
  if (level >= 3) {
    obs::EventLog::Global().set_enabled(true);
    obs::EventLog::Global().AttachRecorder(BenchRecorder());
  }
}

// ---------------------------------------------------------------------------
// (a) The primitives themselves, through the same macros the library uses.

void BM_ObsCounterAdd(benchmark::State& state) {
  ApplyObsLevel(state.range(0));
  for (auto _ : state) {
    GM_COUNTER_ADD("granmine_bench_obs_total", "", 1);
  }
  ApplyObsLevel(0);
}
BENCHMARK(BM_ObsCounterAdd)->Arg(0)->Arg(1);

void BM_ObsHistogramObserve(benchmark::State& state) {
  ApplyObsLevel(state.range(0));
  std::uint64_t value = 0;
  for (auto _ : state) {
    GM_HISTOGRAM_OBSERVE("granmine_bench_obs_us", "", value++ & 0xfff);
  }
  ApplyObsLevel(0);
}
BENCHMARK(BM_ObsHistogramObserve)->Arg(0)->Arg(1);

void BM_ObsTraceSpan(benchmark::State& state) {
  ApplyObsLevel(state.range(0) == 0 ? 0 : 2);
  for (auto _ : state) {
    GM_TRACE_SPAN("bench_span");
    benchmark::ClobberMemory();
  }
  ApplyObsLevel(0);
}
BENCHMARK(BM_ObsTraceSpan)->Arg(0)->Arg(1);

// The logging path: 0 = inactive (the one relaxed load gating GM_LOG),
// 1 = enabled with no sink (render + mutex + counters; the site's token
// bucket admits the first burst then suppresses — the realistic steady
// state of a looping log site), 2 = enabled with a flight recorder attached
// (adds the ring append on every record).
void BM_ObsLogLine(benchmark::State& state) {
  ApplyObsLevel(0);
  obs::EventLog& log = obs::EventLog::Global();
  if (state.range(0) >= 1) log.set_enabled(true);
  if (state.range(0) >= 2) log.AttachRecorder(BenchRecorder());
  std::uint64_t value = 0;
  for (auto _ : state) {
    GM_LOG(::granmine::obs::LogLevel::kInfo, "bench", "bench line",
           {"value", std::to_string(value & 0xff)});
    ++value;
    benchmark::DoNotOptimize(value);
  }
  ApplyObsLevel(0);
}
BENCHMARK(BM_ObsLogLine)->Arg(0)->Arg(1)->Arg(2);

// Context propagation: the RequestScope install/restore pair every engine
// entry point and every scan-chunk worker pays (two thread-local stores).
void BM_ObsRequestScope(benchmark::State& state) {
  for (auto _ : state) {
    obs::RequestScope scope(42);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsRequestScope);

// ---------------------------------------------------------------------------
// (b) Batch mining — the bench_parallel_mining-shaped workload.

EventStructure ChainStructure(int variables, std::int64_t k) {
  EventStructure s;
  for (int v = 0; v < variables; ++v) {
    s.AddVariable("X" + std::to_string(v));
  }
  for (int v = 1; v < variables; ++v) {
    (void)s.AddConstraint(v - 1, v,
                          Tcg::Of(0, k, UnitSystem()->Find("unit")));
  }
  return s;
}

EventSequence RandomSequence(Rng& rng, std::size_t length, int type_count) {
  EventSequence seq;
  TimePoint t = 0;
  for (std::size_t i = 0; i < length; ++i) {
    t += rng.Uniform(1, 3);
    seq.Add(static_cast<EventTypeId>(rng.Uniform(0, type_count - 1)), t);
  }
  return seq;
}

// state.range(0): obs level.
void BM_Mine_ObsOverhead(benchmark::State& state) {
  EventStructure structure = ChainStructure(3, 10);
  Rng rng(4242);
  EventSequence sequence = RandomSequence(rng, 1200, 10);
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.reference_type = 0;
  problem.min_confidence = 0.05;
  Miner miner(UnitSystem());

  ApplyObsLevel(state.range(0));
  std::uint64_t confirmed = 0;
  for (auto _ : state) {
    auto report = miner.Mine(problem, sequence);
    if (!report.ok()) {
      state.SkipWithError("mining failed");
      return;
    }
    confirmed += report->completeness.confirmed;
  }
  state.counters["confirmed"] = benchmark::Counter(
      static_cast<double>(confirmed), benchmark::Counter::kAvgIterations);
  ApplyObsLevel(0);
}
BENCHMARK(BM_Mine_ObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// (c) Streaming — the bench_stream-shaped workload: ingest a disordered
// stream, snapshot periodically, seal and take the final snapshot.

void BM_Stream_ObsOverhead(benchmark::State& state) {
  GranularitySystem* system = UnitSystem();
  EventStructure structure = ChainStructure(3, 8);
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.reference_type = 0;
  problem.min_confidence = 0.05;
  problem.allowed.assign(3, {});
  problem.allowed[1] = {0, 1, 2, 3, 4, 5};
  problem.allowed[2] = {0, 1, 2, 3, 4, 5};

  std::vector<Event> events;
  std::uint64_t prng = 0x51ed2701afe4c9b3ULL;
  TimePoint t = 1;
  for (int i = 0; i < 512; ++i) {
    prng = prng * 6364136223846793005ULL + 1442695040888963407ULL;
    t += static_cast<TimePoint>((prng >> 33) % 2);
    events.push_back(Event{static_cast<EventTypeId>((prng >> 13) % 6), t});
  }

  ApplyObsLevel(state.range(0));
  std::uint64_t solutions = 0;
  for (auto _ : state) {
    OnlineMinerOptions options;
    Result<OnlineMiner> miner = OnlineMiner::Create(system, problem, options);
    if (!miner.ok()) {
      state.SkipWithError("stream create failed");
      return;
    }
    std::size_t since_snapshot = 0;
    for (const Event& event : events) {
      benchmark::DoNotOptimize(miner->Ingest(event));
      if (++since_snapshot == 64) {
        since_snapshot = 0;
        auto snapshot = miner->Snapshot();
        if (!snapshot.ok()) {
          state.SkipWithError("snapshot failed");
          return;
        }
        solutions += snapshot->solutions.size();
      }
    }
    miner->Seal();
    auto final_report = miner->Snapshot();
    if (!final_report.ok()) {
      state.SkipWithError("final snapshot failed");
      return;
    }
    solutions += final_report->solutions.size();
  }
  state.counters["solutions"] = benchmark::Counter(
      static_cast<double>(solutions), benchmark::Counter::kAvgIterations);
  ApplyObsLevel(0);
}
BENCHMARK(BM_Stream_ObsOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
