// E5 — the §5 discovery pipeline: the naive O(n^s) algorithm versus the
// cumulative optimization steps 1..4, on the Example-1 stock workload.
// Series: wall time, candidate counts and TAG runs per configuration as the
// number of event types n grows. Shape to check: naive cost grows ~n^2 in
// the two free variables while the screened pipeline stays nearly flat.

#include <benchmark/benchmark.h>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

namespace granmine {
namespace {

struct Scenario {
  std::unique_ptr<GranularitySystem> system;
  Workload workload;
  EventStructure structure;
  DiscoveryProblem problem;
};

Scenario MakeScenario(int noise_tickers) {
  Scenario scenario;
  scenario.system = GranularitySystem::Gregorian();
  StockWorkloadOptions options;
  options.trading_days = 60;
  options.plant_probability = 0.6;
  options.noise_events_per_day = 2.0;
  options.noise_ticker_count = noise_tickers;
  options.seed = 1234;
  scenario.workload = MakeStockWorkload(*scenario.system, options);
  auto structure = BuildFigure1a(*scenario.system);
  scenario.structure = *std::move(structure);
  scenario.problem.structure = &scenario.structure;
  scenario.problem.min_confidence = 0.15;
  scenario.problem.reference_type =
      *scenario.workload.registry.Find("IBM-rise");
  scenario.problem.allowed.assign(4, {});
  scenario.problem.allowed[3] = {
      *scenario.workload.registry.Find("IBM-fall")};
  return scenario;
}

MinerOptions StepsUpTo(int step) {
  MinerOptions options = MinerOptions::Naive();
  if (step >= 1) options.check_consistency = true;
  if (step >= 2) options.reduce_sequence = true;
  if (step >= 3) {
    options.reduce_roots = true;
    options.use_window_deadlines = true;
  }
  if (step >= 4) options.screening_depth = 1;
  if (step >= 5) options.screening_depth = 2;
  return options;
}

void RunMining(benchmark::State& state, int noise_tickers, int steps) {
  Scenario scenario = MakeScenario(noise_tickers);
  Miner miner(scenario.system.get(), StepsUpTo(steps));
  // Warm caches (tables, coverage).
  benchmark::DoNotOptimize(
      miner.Mine(scenario.problem, scenario.workload.sequence));
  double candidates = 0, tag_runs = 0, solutions = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    Result<MiningReport> report =
        miner.Mine(scenario.problem, scenario.workload.sequence);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      candidates += static_cast<double>(report->candidates_after_screening);
      tag_runs += static_cast<double>(report->tag_runs);
      solutions += static_cast<double>(report->solutions.size());
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["candidates"] = candidates / static_cast<double>(runs);
    state.counters["tag_runs"] = tag_runs / static_cast<double>(runs);
    state.counters["solutions"] = solutions / static_cast<double>(runs);
  }
}

void BM_Mining_Naive(benchmark::State& state) {
  RunMining(state, static_cast<int>(state.range(0)), 0);
}
void BM_Mining_Step1(benchmark::State& state) {
  RunMining(state, static_cast<int>(state.range(0)), 1);
}
void BM_Mining_Steps12(benchmark::State& state) {
  RunMining(state, static_cast<int>(state.range(0)), 2);
}
void BM_Mining_Steps123(benchmark::State& state) {
  RunMining(state, static_cast<int>(state.range(0)), 3);
}
void BM_Mining_Steps1234(benchmark::State& state) {
  RunMining(state, static_cast<int>(state.range(0)), 4);
}
void BM_Mining_Steps1234k2(benchmark::State& state) {
  RunMining(state, static_cast<int>(state.range(0)), 5);
}

// Gapped-workload variant: the same problem with heavy weekend noise of a
// type no variable may take — steps 2 and 3 earn their keep here (the clean
// workload above barely exercises them).
void RunWeekendNoise(benchmark::State& state, int steps) {
  Scenario scenario = MakeScenario(/*noise_tickers=*/3);
  // Inject ~8 weekend events per weekend across the horizon.
  EventTypeId weekend_type =
      scenario.workload.registry.Intern("weekend-batch");
  for (int weekend = 0; weekend < 12; ++weekend) {
    for (int burst = 0; burst < 8; ++burst) {
      scenario.workload.sequence.Add(
          weekend_type,
          (2 + 7 * weekend) * 86400 + burst * 3600);  // Saturdays
    }
  }
  Miner miner(scenario.system.get(), StepsUpTo(steps));
  benchmark::DoNotOptimize(
      miner.Mine(scenario.problem, scenario.workload.sequence));
  double events_after = 0, tag_runs = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    Result<MiningReport> report =
        miner.Mine(scenario.problem, scenario.workload.sequence);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      events_after += static_cast<double>(report->events_after_reduction);
      tag_runs += static_cast<double>(report->tag_runs);
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["events_after"] = events_after / static_cast<double>(runs);
    state.counters["tag_runs"] = tag_runs / static_cast<double>(runs);
  }
}
void BM_Mining_WeekendNoise_Naive(benchmark::State& state) {
  RunWeekendNoise(state, 0);
}
void BM_Mining_WeekendNoise_Steps123(benchmark::State& state) {
  RunWeekendNoise(state, 3);
}
void BM_Mining_WeekendNoise_Steps1234(benchmark::State& state) {
  RunWeekendNoise(state, 4);
}
BENCHMARK(BM_Mining_WeekendNoise_Naive)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_WeekendNoise_Steps123)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_WeekendNoise_Steps1234)->Unit(benchmark::kMillisecond);

// PR6 comparison point: the identical steps-1..4 pipeline against a warm
// hashed-memo system versus a frozen one, so the table/coverage lookup win
// is visible on its own and not folded into end-to-end noise. Both variants
// mine once untimed first, so the hashed side measures the steady-state
// memoized path (shared-mutex + pointer hash per lookup) and the frozen
// side the sealed id-indexed arrays.
void RunFrozenComparison(benchmark::State& state, bool frozen) {
  Scenario scenario = MakeScenario(/*noise_tickers=*/3);
  if (frozen && !scenario.system->Freeze().ok()) {
    state.SkipWithError("Freeze failed");
    return;
  }
  Miner miner(scenario.system.get(), StepsUpTo(4));
  benchmark::DoNotOptimize(
      miner.Mine(scenario.problem, scenario.workload.sequence));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        miner.Mine(scenario.problem, scenario.workload.sequence));
  }
}
void BM_Mining_HashedTables(benchmark::State& state) {
  RunFrozenComparison(state, /*frozen=*/false);
}
void BM_Mining_FrozenTables(benchmark::State& state) {
  RunFrozenComparison(state, /*frozen=*/true);
}
BENCHMARK(BM_Mining_HashedTables)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_FrozenTables)->Unit(benchmark::kMillisecond);

// range(0) = number of extra noise tickers (each adds 2 event types).
BENCHMARK(BM_Mining_Naive)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_Step1)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_Steps12)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_Steps123)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_Steps1234)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Mining_Steps1234k2)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
