// E10 — governor overhead and graceful degradation. Claim (DESIGN §6,
// docs/robustness.md): threading a ResourceGovernor through the matching
// and mining hot loops costs ≤ 2% wall time at the default check stride,
// because the per-iteration cost is one local countdown decrement plus a
// relaxed atomic load, with the clock read amortized across the stride.
// Series: (a) GovernorTicket::Charge microbenchmark (detached / attached at
// several strides), (b) TAG matching with and without a governor, (c) a
// full mining run with and without a governor, (d) the degradation curve —
// decided candidates as the step budget shrinks under the partial policy.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/random.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"

namespace granmine {
namespace {

const Granularity* Unit() {
  static GranularitySystem* system = [] {
    auto owned = std::make_unique<GranularitySystem>();
    owned->AddUniform("unit", 1);
    return owned.release();
  }();
  return system->Find("unit");
}

GranularitySystem* UnitSystem() {
  static GranularitySystem* system = [] {
    auto owned = std::make_unique<GranularitySystem>();
    owned->AddUniform("unit", 1);
    return owned.release();
  }();
  return system;
}

// ---------------------------------------------------------------------------
// (a) The ticket fast path itself.

void BM_TicketCharge_Detached(benchmark::State& state) {
  GovernorTicket ticket;
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ticket.Charge(index++));
  }
}
BENCHMARK(BM_TicketCharge_Detached);

void BM_TicketCharge_Attached(benchmark::State& state) {
  GovernorLimits limits;
  limits.check_stride = static_cast<std::uint32_t>(state.range(0));
  ResourceGovernor governor(limits);
  GovernorTicket ticket(&governor, GovernorScope::kGeneral);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ticket.Charge(index++));
  }
  state.counters["steps"] = static_cast<double>(governor.steps());
}
BENCHMARK(BM_TicketCharge_Attached)->Arg(1)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// (b) TAG matching with and without a governor.

EventStructure ChainStructure(int variables, std::int64_t k) {
  EventStructure s;
  for (int v = 0; v < variables; ++v) {
    s.AddVariable("X" + std::to_string(v));
  }
  for (int v = 1; v < variables; ++v) {
    (void)s.AddConstraint(v - 1, v, Tcg::Of(0, k, Unit()));
  }
  return s;
}

EventSequence RandomSequence(Rng& rng, std::size_t length, int type_count) {
  EventSequence seq;
  TimePoint t = 0;
  for (std::size_t i = 0; i < length; ++i) {
    t += rng.Uniform(1, 3);
    seq.Add(static_cast<EventTypeId>(rng.Uniform(0, type_count - 1)), t);
  }
  return seq;
}

// state.range(0) is the governor check stride; 0 means no governor at all.
void BM_Match_GovernorOverhead(benchmark::State& state) {
  constexpr int kTypes = 6;
  EventStructure s = ChainStructure(4, 4);
  Result<TagBuildResult> built = BuildTagForStructure(s);
  if (!built.ok()) {
    state.SkipWithError("TAG build failed");
    return;
  }
  TagMatcher matcher(&built->tag);
  Rng rng(99);
  EventSequence seq = RandomSequence(rng, 4096, kTypes);
  std::vector<EventTypeId> phi;
  for (int v = 0; v < s.variable_count(); ++v) phi.push_back(v % kTypes);
  SymbolMap symbols = SymbolMap::FromAssignment(phi, kTypes);

  std::unique_ptr<ResourceGovernor> governor;
  MatchOptions options;
  if (state.range(0) > 0) {
    GovernorLimits limits;
    limits.check_stride = static_cast<std::uint32_t>(state.range(0));
    governor = std::make_unique<ResourceGovernor>(limits);
    options.governor = governor.get();
  }
  std::uint64_t configurations = 0;
  for (auto _ : state) {
    MatchStats stats;
    MatchOutcome outcome = matcher.Run(seq.View(), symbols, options, &stats);
    benchmark::DoNotOptimize(outcome);
    configurations += stats.configurations;
  }
  state.counters["configs"] = benchmark::Counter(
      static_cast<double>(configurations), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Match_GovernorOverhead)
    ->Arg(0)   // baseline: no governor
    ->Arg(64)  // the default stride
    ->Arg(1)   // worst case: every configuration takes the slow path
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// (c, d) Full mining runs: overhead and the degradation curve.

struct MiningFixture {
  EventStructure structure;
  EventSequence sequence;
  DiscoveryProblem problem;

  MiningFixture() {
    structure = ChainStructure(3, 10);
    Rng rng(4242);
    sequence = RandomSequence(rng, 1200, 10);
    problem.structure = &structure;
    problem.reference_type = 0;
    problem.min_confidence = 0.05;
  }
};

// state.range(0): governor check stride, 0 = no governor.
void BM_Mine_GovernorOverhead(benchmark::State& state) {
  MiningFixture fixture;
  Miner miner(UnitSystem());
  std::unique_ptr<ResourceGovernor> governor;
  if (state.range(0) > 0) {
    GovernorLimits limits;
    limits.check_stride = static_cast<std::uint32_t>(state.range(0));
    governor = std::make_unique<ResourceGovernor>(limits);
  }
  std::uint64_t confirmed = 0;
  for (auto _ : state) {
    auto report = miner.Mine(fixture.problem, fixture.sequence, governor.get());
    if (!report.ok()) {
      state.SkipWithError("mining failed");
      return;
    }
    confirmed += report->completeness.confirmed;
  }
  state.counters["confirmed"] = benchmark::Counter(
      static_cast<double>(confirmed), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Mine_GovernorOverhead)
    ->Arg(0)
    ->Arg(64)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// state.range(0): the governor step budget. The counters record how much of
// the candidate space was decided before the budget tripped — the
// degradation curve for EXPERIMENTS.md E10 (deterministic, unlike a
// wall-clock deadline).
void BM_Mine_StepBudgetDegradation(benchmark::State& state) {
  MiningFixture fixture;
  MinerOptions options;
  options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  Miner miner(UnitSystem(), options);
  std::uint64_t decided = 0;
  std::uint64_t total = 0;
  for (auto _ : state) {
    GovernorLimits limits;
    limits.max_steps = static_cast<std::uint64_t>(state.range(0));
    // Stride 1 makes step accounting exact: at stride s, a matcher run with
    // fewer than s configurations flushes no steps at all, so a coarse
    // stride under-counts exactly the workloads a tight budget targets.
    limits.check_stride = 1;
    ResourceGovernor governor(limits);
    auto report = miner.Mine(fixture.problem, fixture.sequence, &governor);
    if (!report.ok()) {
      state.SkipWithError("mining failed");
      return;
    }
    decided += report->completeness.confirmed + report->completeness.refuted;
    total += report->candidates_after_screening;
  }
  state.counters["decided"] = benchmark::Counter(
      static_cast<double>(decided), benchmark::Counter::kAvgIterations);
  state.counters["candidates"] = benchmark::Counter(
      static_cast<double>(total), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_Mine_StepBudgetDegradation)
    ->Arg(2'000)
    ->Arg(10'000)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Arg(2'000'000)
    ->Arg(20'000'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
