// E7 — the Appendix-A.1 (Figure 3) conversion algorithm: cost of converting
// constraints between granularity pairs, and tightness of the emitted
// bounds: the paper's rule vs. the provably tight mingap-based variant vs.
// the true tightest bound obtained by exhaustive enumeration on a toy
// calendar. Shape to check: paper >= tight >= truth, usually equal, with the
// documented slack cases (e.g., [0,0]year -> [0,12]month vs. truth 11).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "granmine/constraint/convert_constraint.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

void BM_ConvertPair(benchmark::State& state, const char* source_name,
                    const char* target_name) {
  auto system = GranularitySystem::Gregorian();
  const Granularity* source = system->Find(source_name);
  const Granularity* target = system->Find(target_name);
  // Warm the table caches once; then the steady-state cost is measured.
  benchmark::DoNotOptimize(
      ConvertBounds(system->tables(), *source, *target, Bounds::Of(0, 8)));
  std::int64_t n = 0;
  for (auto _ : state) {
    Bounds converted = ConvertBounds(system->tables(), *source, *target,
                                     Bounds::Of(0, (n++ % 16) + 1));
    benchmark::DoNotOptimize(converted);
  }
}
BENCHMARK_CAPTURE(BM_ConvertPair, bday_to_hour, "b-day", "hour");
BENCHMARK_CAPTURE(BM_ConvertPair, week_to_day, "week", "day");
BENCHMARK_CAPTURE(BM_ConvertPair, month_to_day, "month", "day");
BENCHMARK_CAPTURE(BM_ConvertPair, year_to_month, "year", "month");
BENCHMARK_CAPTURE(BM_ConvertPair, bweek_to_bday, "b-week", "b-day");

// True tightest upper bound on tickdiff_target over all pairs satisfying
// tickdiff_source <= n, by enumeration over one joint period of a toy
// calendar.
std::int64_t TightestByEnumeration(const Granularity& source,
                                   const Granularity& target, std::int64_t n,
                                   TimePoint horizon) {
  std::int64_t best = 0;
  for (TimePoint t1 = 0; t1 < horizon; ++t1) {
    std::optional<Tick> z1s = source.TickContaining(t1);
    std::optional<Tick> z1t = target.TickContaining(t1);
    if (!z1s.has_value() || !z1t.has_value()) continue;
    for (TimePoint t2 = t1; t2 < 3 * horizon; ++t2) {
      std::optional<Tick> z2s = source.TickContaining(t2);
      std::optional<Tick> z2t = target.TickContaining(t2);
      if (!z2s.has_value() || !z2t.has_value()) continue;
      if (*z2s - *z1s > n) break;
      best = std::max(best, *z2t - *z1t);
    }
  }
  return best;
}

void BM_ConversionTightness(benchmark::State& state) {
  // Toy calendar: unit, a 3-wide type, a 7-wide type, and a gapped type.
  GranularitySystem toy;
  const Granularity* three = toy.AddUniform("three", 3);
  const Granularity* seven = toy.AddUniform("seven", 7);
  const Granularity* gapped =
      toy.AddSynthetic("gapped", 5, {TimeSpan::Of(0, 3)});
  // Sparse single-instant ticks (every 10 / every 20 instants): converting
  // the coarser into the finer is feasible (nested supports) and is a case
  // where the paper's minsize-based bound is strictly looser than the tight
  // mingap-based one (e.g., n=1: paper emits 3, tight emits the true 2).
  const Granularity* sparse10 =
      toy.AddSynthetic("sparse10", 10, {TimeSpan::Of(0, 0)});
  const Granularity* sparse20 =
      toy.AddSynthetic("sparse20", 20, {TimeSpan::Of(0, 0)});
  struct Pair {
    const Granularity* source;
    const Granularity* target;
  };
  const Pair pairs[] = {{three, seven},   {seven, three},
                        {gapped, three},  {three, gapped},
                        {gapped, seven},  {sparse20, sparse10}};
  double paper_slack = 0, tight_slack = 0;
  std::int64_t cases = 0, unsound = 0;
  for (auto _ : state) {
    paper_slack = tight_slack = 0;
    cases = unsound = 0;
    for (const Pair& pair : pairs) {
      if (!SupportCovers(*pair.target, *pair.source)) continue;
      for (std::int64_t n = 0; n <= 6; ++n) {
        std::int64_t truth =
            TightestByEnumeration(*pair.source, *pair.target, n, 35);
        std::int64_t paper = ConvertUpperBound(
            toy.tables(), *pair.source, *pair.target, n,
            ConversionRule::kPaper);
        std::int64_t tight = ConvertUpperBound(
            toy.tables(), *pair.source, *pair.target, n,
            ConversionRule::kTight);
        if (paper < truth || tight < truth) ++unsound;  // must stay 0
        paper_slack += static_cast<double>(paper - truth);
        tight_slack += static_cast<double>(tight - truth);
        ++cases;
      }
    }
    benchmark::DoNotOptimize(paper_slack);
  }
  state.counters["avg_paper_slack"] =
      paper_slack / static_cast<double>(cases);
  state.counters["avg_tight_slack"] =
      tight_slack / static_cast<double>(cases);
  state.counters["unsound"] = static_cast<double>(unsound);
}
BENCHMARK(BM_ConversionTightness)->Unit(benchmark::kMillisecond);

// The paper's worked slack case: [0,0]year converts to [0,12]month while
// the tightest per-structure bound is 11 — reported as counters.
void BM_YearToMonthSlack(benchmark::State& state) {
  auto system = GranularitySystem::GregorianDays();
  const Granularity* year = system->Find("year");
  const Granularity* month = system->Find("month");
  std::int64_t emitted = 0;
  for (auto _ : state) {
    Bounds converted = ConvertBounds(system->tables(), *year, *month,
                                     Bounds::Of(0, 0));
    benchmark::DoNotOptimize(converted);
    emitted = converted.hi;
  }
  state.counters["emitted_hi"] = static_cast<double>(emitted);
  state.counters["true_hi"] = 11.0;
}
BENCHMARK(BM_YearToMonthSlack);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
