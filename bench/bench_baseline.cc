// E8 — relation to [MTV95]: WINEPI frequent-episode mining vs. the
// granularity-aware miner. Two comparisons:
//   (a) cost on a single-granularity pattern both can express (the episode
//       framework's home turf) — WINEPI is cheaper, as expected;
//   (b) fidelity on a *same-day* pattern: a sliding window of any width
//       either misses cross-window-day pairs or admits cross-midnight
//       pairs, while the day-granularity TCG counts exactly; the counters
//       report the disagreement the paper's §1/§3 argument predicts.

#include <benchmark/benchmark.h>

#include "granmine/baseline/winepi.h"
#include "granmine/common/random.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"

namespace granmine {
namespace {

// Workload (a): plant serial A -> B -> C within 20 units, plus noise.
EventSequence SerialWorkload(std::size_t plants, int noise_types) {
  Rng rng(5);
  EventSequence seq;
  for (std::size_t i = 0; i < plants; ++i) {
    TimePoint base = static_cast<TimePoint>(i) * 50;
    seq.Add(0, base);
    seq.Add(1, base + rng.Uniform(2, 8));
    seq.Add(2, base + rng.Uniform(10, 18));
    for (int nz = 0; nz < 2; ++nz) {
      seq.Add(static_cast<EventTypeId>(3 + rng.Uniform(0, noise_types - 1)),
              base + rng.Uniform(0, 49));
    }
  }
  return seq;
}

void BM_Winepi_Serial(benchmark::State& state) {
  EventSequence seq = SerialWorkload(static_cast<std::size_t>(state.range(0)),
                                     4);
  WinepiOptions options;
  options.kind = Episode::Kind::kSerial;
  options.window_width = 20;
  options.min_frequency = 0.2;
  options.max_size = 3;
  double frequent = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    WinepiReport report = MineFrequentEpisodes(seq, options);
    benchmark::DoNotOptimize(report);
    frequent += static_cast<double>(report.frequent.size());
    ++runs;
  }
  state.counters["frequent"] = frequent / static_cast<double>(runs);
}
BENCHMARK(BM_Winepi_Serial)
    ->Arg(50)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_Miner_Serial(benchmark::State& state) {
  EventSequence seq = SerialWorkload(static_cast<std::size_t>(state.range(0)),
                                     4);
  GranularitySystem toy;
  const Granularity* unit = toy.AddUniform("unit", 1);
  EventStructure structure;
  VariableId x0 = structure.AddVariable("A");
  VariableId x1 = structure.AddVariable("B");
  VariableId x2 = structure.AddVariable("C");
  (void)structure.AddConstraint(x0, x1, Tcg::Of(0, 10, unit));
  (void)structure.AddConstraint(x1, x2, Tcg::Of(0, 16, unit));
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.2;
  problem.reference_type = 0;
  Miner miner(&toy);
  benchmark::DoNotOptimize(miner.Mine(problem, seq));
  double solutions = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    Result<MiningReport> report = miner.Mine(problem, seq);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      solutions += static_cast<double>(report->solutions.size());
      ++runs;
    }
  }
  if (runs > 0) state.counters["solutions"] = solutions / static_cast<double>(runs);
}
BENCHMARK(BM_Miner_Serial)
    ->Arg(50)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

// Workload (b): pairs A,B planted either within the same calendar day
// (positives) or across midnight within a few hours (negatives that any
// fixed window of width ~1 day wrongly accepts).
void BM_SameDayFidelity(benchmark::State& state) {
  auto system = GranularitySystem::Gregorian();
  Rng rng(11);
  EventSequence seq;
  std::size_t positives = 0, negatives = 0;
  for (int day = 1; day <= 120; ++day) {
    TimePoint midnight = static_cast<TimePoint>(day) * kSecondsPerDay;
    if (rng.Bernoulli(0.5)) {
      // Same-day pair (positive): 9am and 3pm.
      seq.Add(0, midnight + 9 * 3600);
      seq.Add(1, midnight + 15 * 3600);
      ++positives;
    } else {
      // Cross-midnight pair (negative): 11pm and 4am next day.
      seq.Add(0, midnight + 23 * 3600);
      seq.Add(1, midnight + kSecondsPerDay + 4 * 3600);
      ++negatives;
    }
  }

  // Ground truth by the day-granularity TCG (the miner's count).
  EventStructure structure;
  VariableId x0 = structure.AddVariable("A");
  VariableId x1 = structure.AddVariable("B");
  (void)structure.AddConstraint(x0, x1, Tcg::Same(system->Find("day")));
  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = 0.0;
  problem.reference_type = 0;
  Miner miner(system.get());

  Episode pair{Episode::Kind::kSerial, {0, 1}};
  double miner_matched = 0, winepi_freq = 0;
  std::int64_t runs = 0;
  for (auto _ : state) {
    Result<MiningReport> report = miner.Mine(problem, seq);
    WindowCount windows = CountWindows(pair, seq, kSecondsPerDay);
    benchmark::DoNotOptimize(report);
    benchmark::DoNotOptimize(windows);
    if (report.ok() && !report->solutions.empty()) {
      miner_matched += static_cast<double>(report->solutions[0].matched_roots);
    }
    winepi_freq += windows.Frequency();
    ++runs;
  }
  state.counters["planted_same_day"] = static_cast<double>(positives);
  state.counters["planted_cross_midnight"] = static_cast<double>(negatives);
  state.counters["miner_matched_roots"] =
      miner_matched / static_cast<double>(runs);
  // WINEPI has no notion of calendar days: its window frequency reflects
  // both kinds of pairs (the cross-midnight ones span < 1 day too).
  state.counters["winepi_window_freq"] =
      winepi_freq / static_cast<double>(runs);
}
BENCHMARK(BM_SameDayFidelity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
