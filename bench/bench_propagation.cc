// E1 — Theorem 2: the approximate propagation algorithm is polynomial,
// O(n^5 |M|^2 w). Series: wall time and fixpoint iterations as each of the
// three parameters grows while the others stay fixed. The *shape* to check
// against the paper: polynomial growth (no blow-up), iterations bounded.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "granmine/constraint/propagation.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

const GranularitySystem& System() {
  static GranularitySystem* system =
      GranularitySystem::GregorianDays().release();
  return *system;
}

std::vector<const Granularity*> GranularitySet(int m) {
  static const char* kNames[] = {"day", "week", "month", "b-day", "year",
                                 "b-week"};
  std::vector<const Granularity*> out;
  for (int i = 0; i < m; ++i) out.push_back(System().Find(kNames[i]));
  return out;
}

void RunPropagation(benchmark::State& state, int variables, int m,
                    std::int64_t width) {
  Rng rng(42);
  std::vector<const Granularity*> granularities = GranularitySet(m);
  std::vector<EventStructure> structures;
  for (int i = 0; i < 8; ++i) {
    structures.push_back(bench::RandomRootedStructure(
        rng, variables, granularities, /*max_lo=*/2, width));
  }
  ConstraintPropagator propagator(&System().tables(), &System().coverage());
  // Warm the table caches so the timing reflects the algorithm.
  for (const EventStructure& s : structures) {
    benchmark::DoNotOptimize(propagator.Propagate(s));
  }
  std::int64_t iterations_total = 0;
  std::size_t which = 0;
  for (auto _ : state) {
    Result<PropagationResult> result =
        propagator.Propagate(structures[which++ % structures.size()]);
    benchmark::DoNotOptimize(result);
    if (result.ok()) iterations_total += result->iterations;
  }
  state.counters["fixpoint_iters"] = benchmark::Counter(
      static_cast<double>(iterations_total), benchmark::Counter::kAvgIterations);
}

void BM_Propagation_Variables(benchmark::State& state) {
  RunPropagation(state, static_cast<int>(state.range(0)), 3, 8);
}
BENCHMARK(BM_Propagation_Variables)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_Propagation_Granularities(benchmark::State& state) {
  RunPropagation(state, 12, static_cast<int>(state.range(0)), 8);
}
BENCHMARK(BM_Propagation_Granularities)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_Propagation_Range(benchmark::State& state) {
  RunPropagation(state, 12, 3, state.range(0));
}
BENCHMARK(BM_Propagation_Range)
    ->Arg(2)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
