// E3 — Theorem 3: the TAG for a complex event type is constructible in
// polynomial time. Series: construction wall time, product-state count and
// chain count p as the structure grows (variables; fan-out shape).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "granmine/granularity/system.h"
#include "granmine/tag/builder.h"

namespace granmine {
namespace {

const GranularitySystem& System() {
  static GranularitySystem* system =
      GranularitySystem::GregorianDays().release();
  return *system;
}

void BM_TagBuild_Variables(benchmark::State& state) {
  Rng rng(7);
  std::vector<const Granularity*> granularities = {
      System().Find("day"), System().Find("week"), System().Find("month")};
  std::vector<EventStructure> structures;
  for (int i = 0; i < 8; ++i) {
    structures.push_back(bench::RandomRootedStructure(
        rng, static_cast<int>(state.range(0)), granularities, 2, 8,
        /*extra_edge_probability=*/0.2));
  }
  std::size_t which = 0;
  double states_total = 0, chains_total = 0;
  std::int64_t builds = 0;
  for (auto _ : state) {
    Result<TagBuildResult> built =
        BuildTagForStructure(structures[which++ % structures.size()]);
    benchmark::DoNotOptimize(built);
    if (built.ok()) {
      states_total += built->tag.state_count();
      chains_total += static_cast<double>(built->chains.size());
      ++builds;
    }
  }
  if (builds > 0) {
    state.counters["product_states"] = states_total / builds;
    state.counters["chains_p"] = chains_total / builds;
  }
}
BENCHMARK(BM_TagBuild_Variables)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

// Fan-out stresses the chain count p (state space is the product of chain
// positions, so p is the exponent the paper's Theorem-4 bound worries about).
void BM_TagBuild_FanOut(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  const Granularity* day = System().Find("day");
  EventStructure s;
  VariableId root = s.AddVariable("R");
  for (int i = 0; i < leaves; ++i) {
    VariableId mid = s.AddVariable("M" + std::to_string(i));
    VariableId leaf = s.AddVariable("L" + std::to_string(i));
    (void)s.AddConstraint(root, mid, Tcg::Of(0, 3, day));
    (void)s.AddConstraint(mid, leaf, Tcg::Of(0, 3, day));
  }
  double states = 0;
  std::int64_t builds = 0;
  for (auto _ : state) {
    Result<TagBuildResult> built = BuildTagForStructure(s);
    benchmark::DoNotOptimize(built);
    if (built.ok()) {
      states += built->tag.state_count();
      ++builds;
    }
  }
  if (builds > 0) state.counters["product_states"] = states / builds;
}
BENCHMARK(BM_TagBuild_FanOut)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
