// E0 (infrastructure microbenchmark, not a paper claim): costs of the
// granularity primitives every algorithm sits on — tick lookups, hulls,
// Appendix-A.1 table queries (cold vs. memoized) and support coverage.
// Useful for spotting regressions in the substrate.

#include <benchmark/benchmark.h>

#include "granmine/common/random.h"
#include "granmine/granularity/convert.h"
#include "granmine/granularity/system.h"

namespace granmine {
namespace {

const GranularitySystem& System() {
  static GranularitySystem* system = GranularitySystem::Gregorian().release();
  return *system;
}

void BM_TickContaining(benchmark::State& state, const char* name) {
  const Granularity* g = System().Find(name);
  Rng rng(1);
  std::vector<TimePoint> instants;
  for (int i = 0; i < 1024; ++i) {
    instants.push_back(rng.Uniform(0, 40LL * 366 * 86400));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->TickContaining(instants[i++ & 1023]));
  }
}
BENCHMARK_CAPTURE(BM_TickContaining, second, "second");
BENCHMARK_CAPTURE(BM_TickContaining, day, "day");
BENCHMARK_CAPTURE(BM_TickContaining, month, "month");
BENCHMARK_CAPTURE(BM_TickContaining, b_day, "b-day");
BENCHMARK_CAPTURE(BM_TickContaining, b_month, "b-month");

void BM_TickHull(benchmark::State& state, const char* name) {
  const Granularity* g = System().Find(name);
  Rng rng(2);
  std::vector<Tick> ticks;
  for (int i = 0; i < 1024; ++i) ticks.push_back(rng.Uniform(1, 4000));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->TickHull(ticks[i++ & 1023]));
  }
}
BENCHMARK_CAPTURE(BM_TickHull, month, "month");
BENCHMARK_CAPTURE(BM_TickHull, b_day, "b-day");
BENCHMARK_CAPTURE(BM_TickHull, b_month, "b-month");

void BM_TableQueryCold(benchmark::State& state, const char* name) {
  // Rebuild the system each iteration so every table query recomputes. The
  // untimed rebuild dominates wall time, so pin the iteration count instead
  // of letting the framework chase a time target.
  for (auto _ : state) {
    state.PauseTiming();
    auto fresh = GranularitySystem::Gregorian();
    const Granularity* g = fresh->Find(name);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fresh->tables().MaxSize(*g, 6));
  }
}
BENCHMARK_CAPTURE(BM_TableQueryCold, b_day, "b-day")
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);
BENCHMARK_CAPTURE(BM_TableQueryCold, month, "month")
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(30);

void BM_TableQueryWarm(benchmark::State& state, const char* name) {
  const Granularity* g = System().Find(name);
  benchmark::DoNotOptimize(System().tables().MaxSize(*g, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(System().tables().MaxSize(*g, 6));
  }
}
BENCHMARK_CAPTURE(BM_TableQueryWarm, b_day, "b-day");
BENCHMARK_CAPTURE(BM_TableQueryWarm, month, "month");

void BM_SupportCoverage(benchmark::State& state) {
  const Granularity* b_week = System().Find("b-week");
  const Granularity* b_day = System().Find("b-day");
  for (auto _ : state) {
    benchmark::DoNotOptimize(SupportCovers(*b_day, *b_week));
  }
}
BENCHMARK(BM_SupportCoverage)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace granmine

BENCHMARK_MAIN();
