// granmine_serve — the granmine network server (docs/serving.md).
//
//   granmine_serve [--host ADDR] [--port N] [--workers N]
//                  [--structure FILE]... [--snapshot FILE]
//                  [--threads N] [--deadline-ms N] [--mem-budget-mb N]
//                  [--max-queue N] [--degrade]
//                  [--metrics-out FILE] [--trace-out FILE]
//                  [--log-out FILE] [--log-level LVL]
//
// Owns one Engine for its whole lifetime and serves mine / check / dot /
// statusz / stream requests over the framed TCP protocol of
// src/granmine/server/wire.h. The granularity family is fixed at startup:
// --snapshot warm-starts it from a `granmine_cli save` snapshot (sealed
// caches installed, no recomputation), each --structure file's granularity
// definitions extend it, and Server::Start freezes it — requests arriving
// over the wire can use every granularity defined here but cannot define
// new ones (the build/serve phase split, docs/architecture.md).
//
// The shared engine flags mean exactly what they mean in granmine_cli: one
// parser, one set of error messages (granmine/io/cli_args.h). --max-queue /
// --degrade switch on the admission controller, which is the intended
// overload throttle for a long-lived server — a shed request comes back to
// the client as a retryable error frame with a suggested backoff instead of
// a stuck connection (docs/robustness.md).
//
// Runs until SIGINT/SIGTERM, then drains in-flight requests and exits 0.
// --metrics-out / --trace-out write their expositions during that shutdown.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/io/cli_args.h"
#include "granmine/io/text_format.h"
#include "granmine/server/server.h"

using namespace granmine;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  granmine_serve [--host ADDR] [--port N] [--workers N] "
      "[--structure FILE]... [--snapshot FILE] [--threads N] "
      "[--deadline-ms N] [--mem-budget-mb N] [--max-queue N] [--degrade] "
      "[--metrics-out FILE] [--trace-out FILE] [--log-out FILE] "
      "[--log-level LVL]\n");
  return 64;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  // Reuse the granmine_cli flag grammar by prepending a command word: the
  // server has no subcommands, every argument is a flag.
  std::vector<const char*> shifted;
  shifted.push_back(argv[0]);
  shifted.push_back("serve");
  for (int i = 1; i < argc; ++i) shifted.push_back(argv[i]);
  auto args = ParseCliArgs(static_cast<int>(shifted.size()), shifted.data());
  if (!args.ok()) return Usage();
  auto engine_flags = ParseEngineFlags(*args);
  if (!engine_flags.ok()) {
    std::fprintf(stderr, "%s\n", engine_flags.status().ToString().c_str());
    return 64;
  }

  server::ServerOptions server_options;
  if (args->flags.count("host")) server_options.host = args->flags.at("host");
  int exit_code = 0;
  auto flag_int = [&](const char* flag, std::int64_t max,
                      std::int64_t* out) -> bool {
    if (!args->flags.count(flag)) return true;
    auto parsed = ParsePositiveInt(flag, args->flags.at(flag));
    if (parsed.ok() && *parsed > max) {
      parsed = Status::Invalid("--" + std::string(flag) + " expects at most " +
                               std::to_string(max) + ", got '" +
                               args->flags.at(flag) + "'");
    }
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      exit_code = 64;
      return false;
    }
    *out = *parsed;
    return true;
  };
  std::int64_t port = 0;
  std::int64_t workers = server_options.workers;
  // "--port 0" is the explicit spelling of the default: bind an ephemeral
  // port (ParsePositiveInt would reject the 0).
  if (args->flags.count("port") && args->flags.at("port") == "0") {
    args->flags.erase("port");
  }
  if (!flag_int("port", 65535, &port) || !flag_int("workers", 64, &workers)) {
    return exit_code;
  }
  server_options.port = static_cast<std::uint16_t>(port);
  server_options.workers = static_cast<int>(workers);

  EngineOptions engine_options;
  engine_options.num_threads = engine_flags->threads.value_or(1);
  engine_options.limits.deadline_ms = engine_flags->deadline_ms.value_or(0);
  engine_options.limits.memory_budget_bytes =
      static_cast<std::uint64_t>(engine_flags->mem_budget_mb.value_or(0)) *
      1024 * 1024;
  engine_options.enable_metrics = !engine_flags->metrics_out.empty();
  engine_options.enable_tracing = !engine_flags->trace_out.empty();
  engine_options.enable_logging =
      engine_flags->log_level.has_value() || !engine_flags->log_out.empty();
  engine_options.log_level =
      engine_flags->log_level.value_or(obs::LogLevel::kInfo);
  engine_options.log_path = engine_flags->log_out;
  if (engine_flags->max_queue.has_value() || engine_flags->degrade) {
    engine_options.admission.enabled = true;
    engine_options.admission.max_queue =
        static_cast<std::size_t>(engine_flags->max_queue.value_or(16));
    engine_options.admission.degrade_when_saturated = engine_flags->degrade;
  }

  auto engine =
      args->flags.count("snapshot")
          ? Engine::FromSnapshot(GranularitySystem::Gregorian(),
                                 args->flags.at("snapshot"), engine_options)
          : Engine::CreateGregorian(engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 70;
  }
  // --structure is repeatable: each file is parsed for its granularity
  // definitions only, like `save --structure`, and they all extend the
  // family the server freezes at Start.
  for (const std::string& structure_path : args->structures) {
    auto text = ReadFileToString(structure_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    auto structure = ParseEventStructure(*text, (*engine)->system());
    if (!structure.ok()) {
      std::fprintf(stderr, "structure %s: %s\n", structure_path.c_str(),
                   structure.status().ToString().c_str());
      return 65;
    }
  }

  server::Server tcp_server(engine->get(), server_options);
  if (Status started = tcp_server.Start(); !started.ok()) {
    std::fprintf(stderr, "serve: %s\n", started.ToString().c_str());
    return 70;
  }
  std::printf("granmine_serve listening on %s:%u\n",
              server_options.host.c_str(),
              static_cast<unsigned>(tcp_server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutting down: draining in-flight requests\n");
  tcp_server.Stop();

  int obs_code = 0;
  if (!engine_flags->metrics_out.empty()) {
    if (Status status = (*engine)->WriteMetrics(engine_flags->metrics_out);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      obs_code = 74;
    }
  }
  if (!engine_flags->trace_out.empty()) {
    if (Status status = (*engine)->WriteTrace(engine_flags->trace_out);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      obs_code = 74;
    }
  }
  return obs_code;
}
