// The introduction's ATM-transaction scenario: discover which event types
// frequently follow a deposit *within the same day* and are confirmed by an
// alert within two days — bounds that cannot be translated faithfully into
// seconds (a "day" is not 86400 arbitrary seconds, §3).
//
// Run: ./atm_fraud [days] [confidence]

#include <cstdio>
#include <cstdlib>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/sequence/generators.h"

using namespace granmine;

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 120;
  double confidence = argc > 2 ? std::atof(argv[2]) : 0.35;

  std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();
  AtmWorkloadOptions workload_options;
  workload_options.days = days;
  workload_options.accounts = 3;
  workload_options.plant_probability = 0.55;
  workload_options.seed = 7;
  Workload workload = MakeAtmWorkload(*system, workload_options);
  std::printf("generated %zu ATM events over %d days (%zu fraud cascades "
              "planted)\n",
              workload.sequence.size(), days, workload.planted);

  // Structure: deposit X0, same-day activity X1, confirmation X2 within two
  // days of the deposit and after the activity.
  const Granularity* day = system->Find("day");
  EventStructure structure;
  VariableId x0 = structure.AddVariable("deposit");
  VariableId x1 = structure.AddVariable("same-day-activity");
  VariableId x2 = structure.AddVariable("confirmation");
  if (!structure.AddConstraint(x0, x1, Tcg::Same(day)).ok() ||
      !structure.AddConstraint(x0, x2, Tcg::Of(1, 2, day)).ok() ||
      !structure.AddConstraint(x1, x2, Tcg::Of(0, 2, day)).ok()) {
    return 1;
  }

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = confidence;
  problem.reference_type = *workload.registry.Find("deposit-acct0");

  Miner miner(system.get());
  Result<MiningReport> report = miner.Mine(problem, workload.sequence);
  if (!report.ok()) {
    std::fprintf(stderr, "mining: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("deposits (account 0): %zu; candidates %llu -> %llu after "
              "screening; %llu TAG runs\n",
              report->total_roots,
              static_cast<unsigned long long>(report->candidates_before),
              static_cast<unsigned long long>(
                  report->candidates_after_screening),
              static_cast<unsigned long long>(report->tag_runs));
  std::printf("patterns that follow a deposit with frequency > %.2f:\n",
              confidence);
  for (const DiscoveredType& found : report->solutions) {
    std::printf("  freq %.3f: deposit, then %s the same day, then %s within "
                "2 days\n",
                found.frequency,
                workload.registry.name(found.assignment[1]).c_str(),
                workload.registry.name(found.assignment[2]).c_str());
  }
  if (report->solutions.empty()) std::printf("  (none at this threshold)\n");
  return 0;
}
