// A tour of the granularity system: the standard Gregorian family, holiday
// overlays, fiscal years, Appendix-A.1 tables and the conversion operators.
//
// Run: ./calendar_tour

#include <cstdio>

#include "granmine/constraint/convert_constraint.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/io/text_format.h"

using namespace granmine;

namespace {

void ShowTick(const Granularity& g, TimePoint t) {
  std::optional<Tick> z = g.TickContaining(t);
  if (!z.has_value()) {
    std::printf("  %-12s: (outside support)\n", g.name().c_str());
    return;
  }
  std::optional<TimeSpan> hull = g.TickHull(*z);
  std::printf("  %-12s: tick %lld  [%s .. %s]\n", g.name().c_str(),
              static_cast<long long>(*z),
              FormatTimePoint(hull->first).c_str(),
              FormatTimePoint(hull->last).c_str());
}

}  // namespace

int main() {
  // Independence Day 1970 (Saturday) and Christmas 1970 (Friday) observed.
  auto system = GranularitySystem::Gregorian(
      {CivilDate{1970, 12, 25}, CivilDate{1971, 1, 1}});

  TimePoint now = *ParseTimePoint("1970-12-24 15:30:00");
  std::printf("instant %s belongs to:\n", FormatTimePoint(now).c_str());
  for (const char* name : {"second", "minute", "hour", "day", "week",
                           "month", "year", "b-day", "b-week", "b-month"}) {
    ShowTick(*system->Find(name), now);
  }

  std::printf("\nholidays in action (Christmas Friday removed):\n");
  const Granularity& b_day = *system->Find("b-day");
  TimePoint christmas = *ParseTimePoint("1970-12-25 12:00:00");
  std::printf("  %s has a b-day tick: %s\n",
              FormatTimePoint(christmas).c_str(),
              b_day.InSupport(christmas) ? "yes" : "no (holiday)");
  // Thu Dec 24 -> Mon Dec 28 is one business day with the holiday calendar.
  TimePoint thu = *ParseTimePoint("1970-12-24 10:00:00");
  TimePoint mon = *ParseTimePoint("1970-12-28 10:00:00");
  std::printf("  Thu Dec 24 -> Mon Dec 28 = %lld b-day(s)\n",
              static_cast<long long>(
                  *TickDifference(b_day, thu, mon)));

  std::printf("\nfiscal years (April..March):\n");
  const Granularity* fiscal =
      system->AddGroup("fiscal-year", system->Find("month"), 12, /*phase=*/3);
  for (const char* stamp : {"1970-06-15", "1971-02-15", "1971-04-02"}) {
    TimePoint t = *ParseTimePoint(std::string(stamp) + " 00:00:00");
    std::optional<Tick> fy = fiscal->TickContaining(t);
    std::printf("  %s is in fiscal year tick %lld\n", stamp,
                fy.has_value() ? static_cast<long long>(*fy) : -1);
  }

  std::printf("\nAppendix-A.1 tables (in seconds):\n");
  GranularityTables& tables = system->tables();
  const Granularity& month = *system->Find("month");
  std::printf("  minsize(month,1)=%lld  maxsize(month,1)=%lld  "
              "mingap(month,1)=%lld\n",
              static_cast<long long>(*tables.MinSize(month, 1)),
              static_cast<long long>(*tables.MaxSize(month, 1)),
              static_cast<long long>(*tables.MinGap(month, 1)));
  std::printf("  maxsize(b-day,2)=%lld seconds (= 5 days: the Christmas\n"
              "  holiday stretches Thu Dec 24 .. Mon Dec 28; without\n"
              "  holidays the paper's value is 4 days, Fri..Mon)\n",
              static_cast<long long>(*tables.MaxSize(b_day, 2)));

  std::printf("\nFigure-3 conversions:\n");
  Bounds same_day_in_seconds = ConvertBounds(
      tables, *system->Find("day"), *system->Find("second"), Bounds::Of(0, 0));
  std::printf("  [0,0]day  -> %s second   (implied, NOT equivalent: §3)\n",
              same_day_in_seconds.ToString().c_str());
  Bounds same_year_in_months = ConvertBounds(
      tables, *system->Find("year"), month, Bounds::Of(0, 0));
  std::printf("  [0,0]year -> %s month    (paper's slack case: truth 11;\n"
              "  second-precision tables give 13, day-grained ones 12)\n",
              same_year_in_months.ToString().c_str());
  Bounds bday_in_hours =
      ConvertBounds(tables, b_day, *system->Find("hour"), Bounds::Of(1, 1));
  std::printf("  [1,1]b-day -> %s hour\n", bday_in_hours.ToString().c_str());
  return 0;
}
