// granmine_cli — mine temporal patterns from text files.
//
//   granmine_cli mine  --structure S.txt --events E.txt --reference TYPE
//                      [--confidence 0.5] [--pin VAR=TYPE]... [--naive]
//                      [--threads N] [--deadline-ms N]
//                      [--on-budget abort|partial]
//   granmine_cli check --structure S.txt [--exact]
//   granmine_cli dot   --structure S.txt [--tag]
//   granmine_cli demo
//
// Structure files use the text DSL of granmine/io/text_format.h:
//     rise -> report : [1,1] b-day
//     report -> fall : [0,1] week
// Event files carry one "<timestamp> <type>" per line, timestamps either
// raw seconds or "YYYY-MM-DD[ HH:MM:SS]".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "granmine/constraint/exact.h"
#include "granmine/constraint/propagation.h"
#include "granmine/granularity/system.h"
#include "granmine/io/dot.h"
#include "granmine/io/text_format.h"
#include "granmine/mining/explain.h"
#include "granmine/mining/miner.h"
#include "granmine/tag/builder.h"

using namespace granmine;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  granmine_cli mine  --structure FILE --events FILE "
               "--reference TYPE [--confidence C] [--pin VAR=TYPE]... "
               "[--naive] [--threads N] [--deadline-ms N] "
               "[--on-budget abort|partial]\n"
               "  granmine_cli check --structure FILE [--exact]\n"
               "  granmine_cli dot   --structure FILE [--tag]\n"
               "  granmine_cli demo\n");
  return 64;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> pins;
  bool naive = false;
  bool exact = false;
  bool tag = false;
  bool explain = false;
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::Invalid("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--naive") {
      args.naive = true;
    } else if (flag == "--exact") {
      args.exact = true;
    } else if (flag == "--tag") {
      args.tag = true;
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--pin" && i + 1 < argc) {
      args.pins.emplace_back(argv[++i]);
    } else if (flag.rfind("--", 0) == 0 && flag.find('=') != std::string::npos) {
      std::size_t eq = flag.find('=');
      args.flags[flag.substr(2, eq - 2)] = flag.substr(eq + 1);
    } else if (flag.rfind("--", 0) == 0 && i + 1 < argc) {
      args.flags[flag.substr(2)] = argv[++i];
    } else {
      return Status::Invalid("unknown flag '" + flag + "'");
    }
  }
  return args;
}

int RunDemo();

int RunMine(const Args& args) {
  auto system = GranularitySystem::Gregorian();
  auto structure_text = ReadFile(args.flags.at("structure"));
  auto events_text = ReadFile(args.flags.at("events"));
  if (!structure_text.ok() || !events_text.ok()) {
    std::fprintf(stderr, "%s\n", (!structure_text.ok()
                                      ? structure_text.status()
                                      : events_text.status())
                                     .ToString()
                                     .c_str());
    return 66;
  }
  std::vector<std::string> names;
  auto structure = ParseEventStructure(*structure_text, system.get(), &names);
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  EventTypeRegistry registry;
  auto sequence = ParseEventSequence(*events_text, &registry);
  if (!sequence.ok()) {
    std::fprintf(stderr, "events: %s\n", sequence.status().ToString().c_str());
    return 65;
  }
  auto reference = registry.Find(args.flags.at("reference"));
  if (!reference.has_value()) {
    std::fprintf(stderr, "reference type '%s' does not occur\n",
                 args.flags.at("reference").c_str());
    return 65;
  }
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.reference_type = *reference;
  problem.min_confidence =
      args.flags.count("confidence") ? std::stod(args.flags.at("confidence"))
                                     : 0.5;
  problem.allowed.assign(static_cast<std::size_t>(structure->variable_count()),
                         {});
  for (const std::string& pin : args.pins) {
    std::size_t eq = pin.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --pin '%s' (expected VAR=TYPE)\n",
                   pin.c_str());
      return 64;
    }
    std::string var = pin.substr(0, eq), type = pin.substr(eq + 1);
    auto var_it = std::find(names.begin(), names.end(), var);
    auto type_id = registry.Find(type);
    if (var_it == names.end() || !type_id.has_value()) {
      std::fprintf(stderr, "unknown variable or type in --pin '%s'\n",
                   pin.c_str());
      return 65;
    }
    problem.allowed[static_cast<std::size_t>(var_it - names.begin())] = {
        *type_id};
  }

  MinerOptions options = args.naive ? MinerOptions::Naive() : MinerOptions{};
  if (args.flags.count("threads")) {
    const std::string& text = args.flags.at("threads");
    char* end = nullptr;
    long threads = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || threads < 0 || threads > 1024) {
      std::fprintf(stderr,
                   "--threads expects an integer in [0, 1024] "
                   "(0 = hardware concurrency), got '%s'\n",
                   text.c_str());
      return 64;
    }
    options.num_threads = static_cast<int>(threads);
  }
  if (args.flags.count("on-budget")) {
    const std::string& policy = args.flags.at("on-budget");
    if (policy == "abort") {
      options.on_exhaustion = MinerOptions::ExhaustionPolicy::kAbort;
    } else if (policy == "partial") {
      options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    } else {
      std::fprintf(stderr, "--on-budget expects 'abort' or 'partial', got '%s'\n",
                   policy.c_str());
      return 64;
    }
  }
  std::unique_ptr<ResourceGovernor> governor;
  if (args.flags.count("deadline-ms")) {
    const std::string& text = args.flags.at("deadline-ms");
    char* end = nullptr;
    long deadline_ms = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || deadline_ms <= 0) {
      std::fprintf(stderr, "--deadline-ms expects a positive integer, got '%s'\n",
                   text.c_str());
      return 64;
    }
    // A deadline without an explicit policy degrades gracefully: report
    // whatever was decided instead of failing the whole run.
    if (!args.flags.count("on-budget")) {
      options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    }
    GovernorLimits limits;
    limits.deadline_ms = deadline_ms;
    governor = std::make_unique<ResourceGovernor>(limits);
  }
  Miner miner(system.get(), options);
  auto report = miner.Mine(problem, *sequence, governor.get());
  if (!report.ok()) {
    std::fprintf(stderr, "mining: %s\n", report.status().ToString().c_str());
    return 70;
  }
  std::printf("events %zu (%zu after reduction), reference occurrences %zu "
              "(%zu survive), candidates %llu -> %llu, TAG runs %llu\n",
              report->events_before, report->events_after_reduction,
              report->total_roots, report->roots_after_reduction,
              static_cast<unsigned long long>(report->candidates_before),
              static_cast<unsigned long long>(
                  report->candidates_after_screening),
              static_cast<unsigned long long>(report->tag_runs));
  if (report->refuted_by_propagation) {
    std::printf("structure is INCONSISTENT (refuted by propagation)\n");
    return 0;
  }
  const MiningCompleteness& completeness = report->completeness;
  if (!completeness.complete) {
    std::printf(
        "PARTIAL result (stopped by %s): %llu confirmed, %llu refuted, "
        "%llu unknown, %llu not evaluated\n",
        std::string(StopCauseToString(completeness.stop)).c_str(),
        static_cast<unsigned long long>(completeness.confirmed),
        static_cast<unsigned long long>(completeness.refuted),
        static_cast<unsigned long long>(completeness.unknown),
        static_cast<unsigned long long>(completeness.not_evaluated));
    for (const UnknownCandidate& unknown : report->unknown_sample) {
      std::printf("  unknown (%s):",
                  std::string(StopCauseToString(unknown.reason)).c_str());
      for (std::size_t v = 0; v < unknown.assignment.size(); ++v) {
        std::printf(" %s=%s", names[v].c_str(),
                    registry.name(unknown.assignment[v]).c_str());
      }
      std::printf("\n");
    }
    if (completeness.unknown > report->unknown_sample.size()) {
      std::printf("  ... and %llu more unknown candidate(s)\n",
                  static_cast<unsigned long long>(
                      completeness.unknown - report->unknown_sample.size()));
    }
  }
  std::printf("%s%zu solution(s) with frequency > %.3f:\n",
              completeness.complete ? "" : "at least ",
              report->solutions.size(), problem.min_confidence);
  for (const DiscoveredType& found : report->solutions) {
    std::printf("  freq %.3f:", found.frequency);
    for (std::size_t v = 0; v < found.assignment.size(); ++v) {
      std::printf(" %s=%s", names[v].c_str(),
                  registry.name(found.assignment[v]).c_str());
    }
    std::printf("\n");
    if (args.explain) {
      auto explanations = ExplainSolution(*structure, found,
                                          problem.reference_type, *sequence,
                                          /*max_explanations=*/2);
      if (explanations.ok()) {
        for (const Explanation& explanation : *explanations) {
          std::printf("    occurrence:\n%s",
                      FormatExplanation(*structure, explanation, *sequence,
                                        registry)
                          .c_str());
        }
      }
    }
  }
  return 0;
}

int RunCheck(const Args& args) {
  auto system = GranularitySystem::Gregorian();
  auto text = ReadFile(args.flags.at("structure"));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 66;
  }
  auto structure = ParseEventStructure(*text, system.get());
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  ConstraintPropagator propagator(&system->tables(), &system->coverage());
  auto propagation = propagator.Propagate(*structure);
  if (!propagation.ok()) {
    std::fprintf(stderr, "propagation: %s\n",
                 propagation.status().ToString().c_str());
    return 70;
  }
  if (!propagation->consistent) {
    std::printf("INCONSISTENT (refuted by approximate propagation)\n");
    return 1;
  }
  std::printf("not refuted by approximate propagation (%d iterations)\n",
              propagation->iterations);
  if (args.exact) {
    ExactConsistencyChecker checker(&system->tables(), &system->coverage());
    auto result = checker.Check(*structure);
    if (!result.ok()) {
      std::fprintf(stderr, "exact: %s\n", result.status().ToString().c_str());
      return 70;
    }
    if (result->consistent) {
      std::printf("CONSISTENT (exact witness found, %llu nodes):\n",
                  static_cast<unsigned long long>(result->nodes_explored));
      for (VariableId v = 0; v < structure->variable_count(); ++v) {
        std::printf("  %s = %s\n", structure->variable_name(v).c_str(),
                    FormatTimePoint(result->witness[v]).c_str());
      }
    } else {
      std::printf("INCONSISTENT (exact, %llu nodes)\n",
                  static_cast<unsigned long long>(result->nodes_explored));
      return 1;
    }
  }
  return 0;
}

int RunDot(const Args& args) {
  auto system = GranularitySystem::Gregorian();
  auto text = ReadFile(args.flags.at("structure"));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 66;
  }
  std::vector<std::string> names;
  auto structure = ParseEventStructure(*text, system.get(), &names);
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  if (args.tag) {
    auto built = BuildTagForStructure(*structure);
    if (!built.ok()) {
      std::fprintf(stderr, "TAG: %s\n", built.status().ToString().c_str());
      return 70;
    }
    std::fputs(TagToDot(built->tag,
                        [&](Symbol s) {
                          return names[static_cast<std::size_t>(s)];
                        })
                   .c_str(),
               stdout);
  } else {
    std::fputs(EventStructureToDot(*structure).c_str(), stdout);
  }
  return 0;
}

int RunDemo() {
  std::printf("writing demo files demo_structure.txt / demo_events.txt\n");
  {
    std::ofstream s("demo_structure.txt");
    s << "rise -> report : [1,1] b-day\n"
         "report -> fall : [0,1] week\n"
         "rise -> hp     : [0,5] b-day\n"
         "hp -> fall     : [0,8] hour\n";
    std::ofstream e("demo_events.txt");
    e << "1970-01-05 10:00:00 IBM-rise\n"
         "1970-01-06 11:00:00 IBM-earnings-report\n"
         "1970-01-07 12:00:00 HP-rise\n"
         "1970-01-07 15:00:00 IBM-fall\n"
         "1970-01-12 10:00:00 IBM-rise\n"
         "1970-01-13 11:00:00 IBM-earnings-report\n"
         "1970-01-14 12:00:00 HP-rise\n"
         "1970-01-14 15:00:00 IBM-fall\n"
         "1970-01-19 10:00:00 IBM-rise\n";
  }
  std::printf("try:\n"
              "  granmine_cli mine --structure demo_structure.txt --events "
              "demo_events.txt --reference IBM-rise --confidence 0.5\n"
              "  granmine_cli check --structure demo_structure.txt --exact\n"
              "  granmine_cli dot --structure demo_structure.txt --tag\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) return Usage();
  auto need = [&](const char* flag) {
    return args->flags.count(flag) > 0;
  };
  if (args->command == "demo") return RunDemo();
  if (args->command == "mine" && need("structure") && need("events") &&
      need("reference")) {
    return RunMine(*args);
  }
  if (args->command == "check" && need("structure")) return RunCheck(*args);
  if (args->command == "dot" && need("structure")) return RunDot(*args);
  return Usage();
}
