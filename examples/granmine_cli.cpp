// granmine_cli — mine temporal patterns from text files.
//
//   granmine_cli mine   --structure S.txt --events E.txt --reference TYPE
//                       [--confidence 0.5] [--pin VAR=TYPE]... [--naive]
//                       [--threads N] [--deadline-ms N]
//                       [--on-budget abort|partial]
//                       [--metrics-out FILE] [--trace-out FILE]
//   granmine_cli stream --structure S.txt --reference TYPE
//                       --window SECS --slide SECS [--theta 0.5]
//                       [--events FILE|-] [--types T1,T2,...]
//                       [--pin VAR=TYPE]... [--tolerance SECS] [--threads N]
//                       [--checkpoint-every N --checkpoint-path FILE]
//                       [--metrics-out FILE] [--trace-out FILE]
//   granmine_cli save    --out FILE [--structure S.txt] [--events E.txt]
//   granmine_cli restore --snapshot FILE [--structure S.txt]
//   granmine_cli statusz --snapshot FILE
//   granmine_cli check  --structure S.txt [--exact]
//   granmine_cli dot    --structure S.txt [--tag]
//   granmine_cli demo
//
// Structure files use the text DSL of granmine/io/text_format.h:
//     rise -> report : [1,1] b-day
//     report -> fall : [0,1] week
// Event files carry one "<timestamp> <type>" per line, timestamps either
// raw seconds or "YYYY-MM-DD[ HH:MM:SS]".
//
// `stream` reads events from --events (default "-" = stdin) one line at a
// time, keeps the incremental miner's TAG runs resident, retains the last
// --window seconds of history, and prints a report snapshot every --slide
// seconds of watermark progress plus a final one at end of input. Because
// a stream never reveals its full type universe up front, every non-root
// variable needs a --pin or the shared --types list.
//
// `--checkpoint-every N --checkpoint-path FILE` makes `stream` write an
// atomic session checkpoint (docs/persistence.md) after every N accepted
// events. If FILE already exists at startup the session resumes from it
// instead of starting cold — so a crashed run restarted with the same
// command line picks up where the last checkpoint left off, provided the
// input continues from where the previous run stopped (the natural pipe /
// stdin shape; events re-fed from before the restored watermark are
// rejected as late arrivals, they are never double-counted within the
// tolerance horizon).
//
// `save` writes a versioned binary snapshot of the frozen granularity
// family (plus, optionally, a parsed event file) so later runs can warm
// start; `restore` proves the warm start: it rebuilds the same family,
// installs the sealed caches from the snapshot without recomputing them,
// and prints what it found.
//
// Every subcommand runs against one `Engine` (granmine/engine/engine.h)
// owning the Gregorian granularity family: the shared engine flags
// (--threads, --deadline-ms, --metrics-out, --trace-out) are parsed once
// into EngineFlags and configure the engine, and structures defined in the
// input files extend the family during the build phase — the first mining
// request freezes it into the dense id-indexed caches.
//
// --metrics-out enables the obs layer's metrics and writes a Prometheus text
// exposition on exit; --trace-out enables span tracing and writes Chrome
// trace_event JSON (open in https://ui.perfetto.dev). Both also print a
// one-line `stats:` block on stderr (stderr so the stdout byte-diff contract
// across --threads, docs/concurrency.md, is untouched).
//
// --log-out FILE routes every once-per-run diagnostic (the stats block, the
// --threads clamp warning, PARTIAL summaries, flight-recorder dumps) through
// the structured event log as JSON lines instead of the legacy stderr
// rendering; --log-level debug|info|warn|error sets the minimum severity
// (and enables the logger on its own, keeping stderr rendering).
//
// `statusz --snapshot FILE` warm-starts an engine from a snapshot and prints
// its point-in-time status as one JSON object; `stream --statusz-every N`
// emits the same JSON (plus a "stream" block with the live watermark /
// retention / checkpoint lag) to stderr after every N accepted events. See
// docs/observability.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "granmine/constraint/exact.h"
#include "granmine/constraint/propagation.h"
#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/io/cli_args.h"
#include "granmine/io/dot.h"
#include "granmine/io/text_format.h"
#include "granmine/mining/explain.h"
#include "granmine/mining/miner.h"
#include "granmine/persist/stream_codec.h"
#include "granmine/stream/online_miner.h"
#include "granmine/tag/builder.h"

using namespace granmine;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  granmine_cli mine   --structure FILE --events FILE "
      "--reference TYPE [--confidence C] [--pin VAR=TYPE]... "
      "[--naive] [--threads N] [--deadline-ms N] [--mem-budget-mb N] "
      "[--max-queue N] [--degrade] [--on-budget abort|partial] "
      "[--metrics-out FILE] [--trace-out FILE] [--log-out FILE] "
      "[--log-level LVL]\n"
      "  granmine_cli stream --structure FILE --reference TYPE "
      "--window SECS --slide SECS [--theta C] [--events FILE|-] "
      "[--types T1,T2,...] [--pin VAR=TYPE]... [--tolerance SECS] "
      "[--threads N] [--checkpoint-every N --checkpoint-path FILE] "
      "[--statusz-every N] [--metrics-out FILE] [--trace-out FILE] "
      "[--log-out FILE] [--log-level LVL]\n"
      "  granmine_cli save    --out FILE [--structure FILE] [--events FILE]\n"
      "  granmine_cli restore --snapshot FILE [--structure FILE]\n"
      "  granmine_cli statusz --snapshot FILE\n"
      "  granmine_cli check  --structure FILE [--exact]\n"
      "  granmine_cli dot    --structure FILE [--tag]\n"
      "  granmine_cli demo\n");
  return 64;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string FormatDouble2(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

// Whether once-per-run diagnostics go to the JSON sink (--log-out) instead
// of the legacy stderr rendering. The structured record is always emitted —
// it feeds the engine's flight recorder either way; only the human copy is
// conditional.
bool MachineLog() { return obs::EventLog::Global().sink_open(); }

// One once-per-run CLI diagnostic: a structured record (no rate limiting —
// these fire at most once per run), plus the legacy stderr line when no
// JSON sink is open. `legacy` carries its own trailing newline.
void CliDiag(obs::LogLevel level, const char* message,
             std::initializer_list<obs::LogField> fields,
             const std::string& legacy) {
  obs::EventLog::Global().Log(nullptr, level, "cli", message, fields);
  if (!MachineLog()) std::fputs(legacy.c_str(), stderr);
}

// Shared flag validation; on error prints the message and returns the
// sysexits code via `*exit_code`.
template <typename T>
bool Validated(Result<T> parsed, T* out, int* exit_code) {
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    *exit_code = 64;
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

// Resolves --pin bindings into problem->allowed. Returns false (printing
// the error) on a malformed pin or unknown variable/type name.
bool ApplyPins(const CliArgs& args, const std::vector<std::string>& names,
               EventTypeRegistry* registry, bool intern_types,
               DiscoveryProblem* problem, int* exit_code) {
  for (const std::string& pin : args.pins) {
    std::size_t eq = pin.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --pin '%s' (expected VAR=TYPE)\n", pin.c_str());
      *exit_code = 64;
      return false;
    }
    std::string var = pin.substr(0, eq), type = pin.substr(eq + 1);
    auto var_it = std::find(names.begin(), names.end(), var);
    if (var_it == names.end()) {
      std::fprintf(stderr, "unknown variable in --pin '%s'\n", pin.c_str());
      *exit_code = 65;
      return false;
    }
    std::optional<EventTypeId> type_id;
    if (intern_types) {
      type_id = registry->Intern(type);
    } else {
      type_id = registry->Find(type);
      if (!type_id.has_value()) {
        std::fprintf(stderr, "unknown type in --pin '%s'\n", pin.c_str());
        *exit_code = 65;
        return false;
      }
    }
    problem->allowed[static_cast<std::size_t>(var_it - names.begin())] = {
        *type_id};
  }
  return true;
}

int RunDemo();

int RunMine(const CliArgs& args, const EngineFlags& engine_flags,
            Engine* engine) {
  auto structure_text = ReadFileToString(args.flags.at("structure"));
  auto events_text = ReadFileToString(args.flags.at("events"));
  if (!structure_text.ok() || !events_text.ok()) {
    std::fprintf(stderr, "%s\n", (!structure_text.ok()
                                      ? structure_text.status()
                                      : events_text.status())
                                     .ToString()
                                     .c_str());
    return 66;
  }
  std::vector<std::string> names;
  auto structure =
      ParseEventStructure(*structure_text, engine->system(), &names);
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  EventTypeRegistry registry;
  auto sequence = ParseEventSequence(*events_text, &registry);
  if (!sequence.ok()) {
    std::fprintf(stderr, "events: %s\n", sequence.status().ToString().c_str());
    return 65;
  }
  auto reference = registry.Find(args.flags.at("reference"));
  if (!reference.has_value()) {
    std::fprintf(stderr, "reference type '%s' does not occur\n",
                 args.flags.at("reference").c_str());
    return 65;
  }
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.reference_type = *reference;
  problem.min_confidence = 0.5;
  int exit_code = 0;
  if (args.flags.count("confidence") &&
      !Validated(ParseConfidence("confidence", args.flags.at("confidence")),
                 &problem.min_confidence, &exit_code)) {
    return exit_code;
  }
  problem.allowed.assign(static_cast<std::size_t>(structure->variable_count()),
                         {});
  if (!ApplyPins(args, names, &registry, /*intern_types=*/false, &problem,
                 &exit_code)) {
    return exit_code;
  }

  MineRequest request;
  request.problem = &problem;
  request.sequence = &*sequence;
  request.options = args.naive ? MinerOptions::Naive() : MinerOptions{};
  if (args.flags.count("on-budget")) {
    const std::string& policy = args.flags.at("on-budget");
    if (policy == "abort") {
      request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kAbort;
    } else if (policy == "partial") {
      request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    } else {
      std::fprintf(stderr,
                   "--on-budget expects 'abort' or 'partial', got '%s'\n",
                   policy.c_str());
      return 64;
    }
  } else if (engine_flags.deadline_ms.has_value()) {
    // A deadline without an explicit policy degrades gracefully: report
    // whatever was decided instead of failing the whole run.
    request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  }
  auto response = engine->Mine(request);
  if (!response.ok()) {
    std::fprintf(stderr, "mining: %s\n",
                 response.status().ToString().c_str());
    return 70;
  }
  const MiningReport& report = response->report;
  // Diagnostics go to stderr (or the --log-out sink): stdout must stay
  // byte-identical across --threads (docs/concurrency.md), and wall-clock
  // never is.
  {
    const std::string stop =
        std::string(StopCauseToString(report.completeness.stop));
    const std::string elapsed = FormatDouble2(response->elapsed_ms);
    const std::string steps = std::to_string(response->governor_steps);
    CliDiag(obs::LogLevel::kInfo, "mine stats",
            {{"stop_cause", stop}, {"elapsed_ms", elapsed},
             {"governor_steps", steps}},
            "stats: stop-cause " + stop + ", elapsed " + elapsed +
                " ms, governor steps " + steps + "\n");
  }
  std::printf("events %zu (%zu after reduction), reference occurrences %zu "
              "(%zu survive), candidates %llu -> %llu, TAG runs %llu\n",
              report.events_before, report.events_after_reduction,
              report.total_roots, report.roots_after_reduction,
              static_cast<unsigned long long>(report.candidates_before),
              static_cast<unsigned long long>(
                  report.candidates_after_screening),
              static_cast<unsigned long long>(report.tag_runs));
  if (report.refuted_by_propagation) {
    std::printf("structure is INCONSISTENT (refuted by propagation)\n");
    return 0;
  }
  const MiningCompleteness& completeness = report.completeness;
  if (!completeness.complete) {
    // The structured copy of the PARTIAL summary rides alongside — never
    // instead of — the stdout header: partial results must be visible in the
    // report itself regardless of log routing (docs/robustness.md).
    obs::EventLog::Global().Log(
        nullptr, obs::LogLevel::kWarn, "cli", "partial result",
        {{"stop_cause", std::string(StopCauseToString(completeness.stop))},
         {"confirmed", std::to_string(completeness.confirmed)},
         {"refuted", std::to_string(completeness.refuted)},
         {"unknown", std::to_string(completeness.unknown)},
         {"not_evaluated", std::to_string(completeness.not_evaluated)}});
    std::printf(
        "PARTIAL result (stopped by %s after %.2f ms, %llu step(s) "
        "charged): %llu confirmed, %llu refuted, %llu unknown, "
        "%llu not evaluated\n",
        std::string(StopCauseToString(completeness.stop)).c_str(),
        response->elapsed_ms,
        static_cast<unsigned long long>(response->governor_steps),
        static_cast<unsigned long long>(completeness.confirmed),
        static_cast<unsigned long long>(completeness.refuted),
        static_cast<unsigned long long>(completeness.unknown),
        static_cast<unsigned long long>(completeness.not_evaluated));
    for (const UnknownCandidate& unknown : report.unknown_sample) {
      std::printf("  unknown (%s):",
                  std::string(StopCauseToString(unknown.reason)).c_str());
      for (std::size_t v = 0; v < unknown.assignment.size(); ++v) {
        std::printf(" %s=%s", names[v].c_str(),
                    registry.name(unknown.assignment[v]).c_str());
      }
      std::printf("\n");
    }
    if (completeness.unknown > report.unknown_sample.size()) {
      std::printf("  ... and %llu more unknown candidate(s)\n",
                  static_cast<unsigned long long>(
                      completeness.unknown - report.unknown_sample.size()));
    }
  }
  std::printf("%s%zu solution(s) with frequency > %.3f:\n",
              completeness.complete ? "" : "at least ",
              report.solutions.size(), problem.min_confidence);
  for (const DiscoveredType& found : report.solutions) {
    std::printf("  freq %.3f:", found.frequency);
    for (std::size_t v = 0; v < found.assignment.size(); ++v) {
      std::printf(" %s=%s", names[v].c_str(),
                  registry.name(found.assignment[v]).c_str());
    }
    std::printf("\n");
    if (args.explain) {
      auto explanations = ExplainSolution(*structure, found,
                                          problem.reference_type, *sequence,
                                          /*max_explanations=*/2);
      if (explanations.ok()) {
        for (const Explanation& explanation : *explanations) {
          std::printf("    occurrence:\n%s",
                      FormatExplanation(*structure, explanation, *sequence,
                                        registry)
                          .c_str());
        }
      }
    }
  }
  return 0;
}

void PrintStreamSnapshot(const MiningReport& report, const std::string& label,
                         const OnlineMiner& miner,
                         const std::vector<std::string>& names,
                         const EventTypeRegistry& registry) {
  std::printf("[%s] roots=%zu events=%zu resident-configs=%zu "
              "solutions=%zu%s\n",
              label.c_str(), report.total_roots,
              report.events_before, miner.resident_configurations(),
              report.solutions.size(),
              report.completeness.complete ? "" : " (partial)");
  for (const DiscoveredType& found : report.solutions) {
    std::printf("  freq %.3f:", found.frequency);
    for (std::size_t v = 0; v < found.assignment.size(); ++v) {
      std::printf(" %s=%s", names[v].c_str(),
                  registry.name(found.assignment[v]).c_str());
    }
    std::printf("\n");
  }
}

// Fills the "stream" block of a statusz snapshot from the live session:
// the miner's retention telemetry plus the CLI-owned checkpoint cadence
// counters (the miner does not know about checkpoints; the CLI drives them).
StatuszStream StreamStatus(const OnlineMiner& miner,
                           const StreamRequest& request,
                           std::uint64_t checkpoints_written,
                           std::int64_t accepted_since_checkpoint,
                           bool checkpointing) {
  StatuszStream status;
  status.watermark = miner.watermark();
  status.horizon = miner.horizon();
  status.retention = request.options.retention;
  status.tolerance = request.options.tolerance;
  status.buffered_events = miner.buffered_events();
  status.late_events = miner.late_events();
  status.shed_events = miner.shed_events();
  status.resident_roots = miner.resident_roots();
  status.resident_configurations = miner.resident_configurations();
  status.checkpoints_written = checkpoints_written;
  status.events_since_checkpoint =
      checkpointing ? accepted_since_checkpoint : -1;
  return status;
}

int RunStream(const CliArgs& args, Engine* engine) {
  auto structure_text = ReadFileToString(args.flags.at("structure"));
  if (!structure_text.ok()) {
    std::fprintf(stderr, "%s\n", structure_text.status().ToString().c_str());
    return 66;
  }
  std::vector<std::string> names;
  auto structure =
      ParseEventStructure(*structure_text, engine->system(), &names);
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  int exit_code = 0;
  StreamWindowArgs window;
  {
    const auto theta_it = args.flags.find("theta");
    const std::string* theta =
        theta_it == args.flags.end() ? nullptr : &theta_it->second;
    if (!Validated(ParseStreamWindow(args.flags.at("window"),
                                     args.flags.at("slide"), theta),
                   &window, &exit_code)) {
      return exit_code;
    }
  }

  // The stream's type universe is declared up front: the reference type,
  // every --pin target, and the shared --types pool for free variables.
  EventTypeRegistry registry;
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.reference_type = registry.Intern(args.flags.at("reference"));
  problem.min_confidence = window.theta;
  problem.allowed.assign(static_cast<std::size_t>(structure->variable_count()),
                         {});
  std::vector<EventTypeId> shared_pool;
  if (args.flags.count("types")) {
    std::istringstream list(args.flags.at("types"));
    std::string name;
    while (std::getline(list, name, ',')) {
      if (!name.empty()) shared_pool.push_back(registry.Intern(name));
    }
  }
  if (!ApplyPins(args, names, &registry, /*intern_types=*/true, &problem,
                 &exit_code)) {
    return exit_code;
  }
  auto root = structure->FindRoot();
  if (!root.ok()) {
    std::fprintf(stderr, "structure: %s\n", root.status().ToString().c_str());
    return 65;
  }
  for (VariableId v = 0; v < structure->variable_count(); ++v) {
    if (v == *root || !problem.allowed[static_cast<std::size_t>(v)].empty()) {
      continue;
    }
    if (shared_pool.empty()) {
      std::fprintf(stderr,
                   "variable '%s' has no candidate types: streaming cannot "
                   "discover the type universe from the (unbounded) input, "
                   "so bind it with --pin %s=TYPE or provide --types\n",
                   names[static_cast<std::size_t>(v)].c_str(),
                   names[static_cast<std::size_t>(v)].c_str());
      return 64;
    }
    problem.allowed[static_cast<std::size_t>(v)] = shared_pool;
  }

  StreamRequest request;
  request.problem = &problem;
  request.options.retention = window.window;
  if (args.flags.count("tolerance") &&
      !Validated(ParseNonNegativeInt("tolerance", args.flags.at("tolerance")),
                 &request.options.tolerance, &exit_code)) {
    return exit_code;
  }

  StreamCheckpointArgs checkpoint;
  if (!Validated(ParseStreamCheckpoint(args), &checkpoint, &exit_code)) {
    return exit_code;
  }
  // `--statusz-every N`: a point-in-time engine + session status JSON object
  // on stderr after every N accepted events — stderr, like the stats block,
  // so the stdout snapshot contract stays byte-diffable.
  std::int64_t statusz_every = 0;
  if (args.flags.count("statusz-every") &&
      !Validated(
          ParsePositiveInt("statusz-every", args.flags.at("statusz-every")),
          &statusz_every, &exit_code)) {
    return exit_code;
  }
  // Crash-safe resume: an existing checkpoint file means a previous run got
  // at least that far — restore it rather than starting cold. The restore
  // validates the checkpoint against this command line's problem geometry
  // (reference type, pins, window, tolerance) and refuses a mismatch.
  bool resume = false;
  if (checkpoint.every > 0) {
    if (std::FILE* probe = std::fopen(checkpoint.path.c_str(), "rb");
        probe != nullptr) {
      std::fclose(probe);
      resume = true;
    }
  }
  auto miner = resume ? engine->RestoreStream(request, checkpoint.path)
                      : engine->OpenStream(request);
  if (!miner.ok()) {
    std::fprintf(stderr, "stream: %s\n", miner.status().ToString().c_str());
    return 65;
  }
  if (resume) {
    std::fprintf(stderr, "resumed from checkpoint '%s' (watermark %s)\n",
                 checkpoint.path.c_str(),
                 FormatTimePoint(miner->watermark()).c_str());
  }

  const std::string events_path =
      args.flags.count("events") ? args.flags.at("events") : "-";
  std::ifstream file;
  if (events_path != "-") {
    file.open(events_path);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", events_path.c_str());
      return 66;
    }
  }
  std::istream& in = events_path == "-" ? std::cin : file;

  const auto wall_start = std::chrono::steady_clock::now();
  std::string line;
  std::size_t line_number = 0;
  std::uint64_t dropped_late = 0;
  std::uint64_t snapshots_taken = 0;
  std::uint64_t checkpoints_written = 0;
  std::int64_t accepted_since_checkpoint = 0;
  std::int64_t accepted_since_statusz = 0;
  TimePoint next_snapshot = kInfinity;  // armed by the first event
  while (std::getline(in, line)) {
    ++line_number;
    // Reuse the batch parser line-by-line: comments and blanks yield an
    // empty sequence, malformed lines a Status with context.
    auto parsed = ParseEventSequence(line, &registry);
    if (!parsed.ok()) {
      std::fprintf(stderr, "line %zu: %s\n", line_number,
                   parsed.status().ToString().c_str());
      return 65;
    }
    for (const Event& event : parsed->events()) {
      Status status = miner->Ingest(event);
      if (!status.ok()) {
        ++dropped_late;
        std::fprintf(stderr, "line %zu: dropped: %s\n", line_number,
                     status.ToString().c_str());
        continue;
      }
      if (next_snapshot == kInfinity) next_snapshot = event.time + window.slide;
      if (checkpoint.every > 0 && ++accepted_since_checkpoint >=
                                      checkpoint.every) {
        // Atomic temp-file-plus-rename: a crash mid-write leaves the previous
        // checkpoint intact, never a torn file.
        if (Status saved = persist::SaveStreamCheckpoint(*miner,
                                                         checkpoint.path);
            !saved.ok()) {
          std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
          return 74;
        }
        accepted_since_checkpoint = 0;
        ++checkpoints_written;
      }
      if (statusz_every > 0 && ++accepted_since_statusz >= statusz_every) {
        accepted_since_statusz = 0;
        const StatuszStream stream_status =
            StreamStatus(*miner, request, checkpoints_written,
                         accepted_since_checkpoint, checkpoint.every > 0);
        std::fprintf(stderr, "%s\n",
                     RenderStatuszJson(engine->Statusz(), &stream_status)
                         .c_str());
      }
    }
    while (miner->watermark() >= next_snapshot) {
      auto report = miner->Snapshot();
      if (!report.ok()) {
        std::fprintf(stderr, "snapshot: %s\n",
                     report.status().ToString().c_str());
        return 70;
      }
      PrintStreamSnapshot(*report, FormatTimePoint(miner->watermark()),
                          *miner, names, registry);
      ++snapshots_taken;
      next_snapshot += window.slide;
    }
  }

  // Flush a final checkpoint on clean end of input (before Seal, so the
  // saved session is still resumable): a graceful shutdown loses nothing;
  // only a crash can lose the events accepted since the last checkpoint.
  if (checkpoint.every > 0 && accepted_since_checkpoint > 0) {
    if (Status saved = persist::SaveStreamCheckpoint(*miner, checkpoint.path);
        !saved.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
      return 74;
    }
    ++checkpoints_written;
  }

  miner->Seal();
  auto report = miner->Snapshot();
  if (!report.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", report.status().ToString().c_str());
    return 70;
  }
  std::printf("final ");
  PrintStreamSnapshot(*report, "end of stream", *miner, names, registry);
  if (report->refuted_by_propagation) {
    std::printf("structure is INCONSISTENT (refuted by propagation)\n");
  }
  std::printf("ingested %zu retained events, rejected %llu late arrival(s)\n",
              report->events_before,
              static_cast<unsigned long long>(dropped_late));
  // stderr (or the --log-out sink) for the same reason as `mine`: stdout is
  // diffed across --threads.
  {
    const std::string stop =
        std::string(StopCauseToString(report->completeness.stop));
    const std::string elapsed =
        FormatDouble2(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count());
    const std::string snapshots = std::to_string(snapshots_taken + 1);
    const std::string late = std::to_string(dropped_late);
    const std::string checkpoints = std::to_string(checkpoints_written);
    CliDiag(obs::LogLevel::kInfo, "stream stats",
            {{"stop_cause", stop}, {"elapsed_ms", elapsed},
             {"snapshots", snapshots}, {"late_drops", late},
             {"checkpoints", checkpoints}},
            "stats: stop-cause " + stop + ", elapsed " + elapsed +
                " ms, snapshots " + snapshots + ", late drops " + late +
                ", checkpoints " + checkpoints + "\n");
  }
  return 0;
}

int RunCheck(const CliArgs& args, Engine* engine) {
  auto text = ReadFileToString(args.flags.at("structure"));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 66;
  }
  auto structure = ParseEventStructure(*text, engine->system());
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  // Build phase over (the structure may have defined new granularities):
  // freeze so the consistency checks run on the dense id-indexed caches.
  if (Status frozen = engine->Freeze(); !frozen.ok()) {
    std::fprintf(stderr, "freeze: %s\n", frozen.ToString().c_str());
    return 70;
  }
  const GranularitySystem& system = *engine->system();
  ConstraintPropagator propagator(&system.tables(), &system.coverage());
  auto propagation = propagator.Propagate(*structure);
  if (!propagation.ok()) {
    std::fprintf(stderr, "propagation: %s\n",
                 propagation.status().ToString().c_str());
    return 70;
  }
  if (!propagation->consistent) {
    std::printf("INCONSISTENT (refuted by approximate propagation)\n");
    return 1;
  }
  std::printf("not refuted by approximate propagation (%d iterations)\n",
              propagation->iterations);
  if (args.exact) {
    ExactConsistencyChecker checker(&system.tables(), &system.coverage());
    auto result = checker.Check(*structure);
    if (!result.ok()) {
      std::fprintf(stderr, "exact: %s\n", result.status().ToString().c_str());
      return 70;
    }
    if (result->consistent) {
      std::printf("CONSISTENT (exact witness found, %llu nodes):\n",
                  static_cast<unsigned long long>(result->nodes_explored));
      for (VariableId v = 0; v < structure->variable_count(); ++v) {
        std::printf("  %s = %s\n", structure->variable_name(v).c_str(),
                    FormatTimePoint(result->witness[v]).c_str());
      }
    } else {
      std::printf("INCONSISTENT (exact, %llu nodes)\n",
                  static_cast<unsigned long long>(result->nodes_explored));
      return 1;
    }
  }
  return 0;
}

int RunDot(const CliArgs& args, Engine* engine) {
  auto text = ReadFileToString(args.flags.at("structure"));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 66;
  }
  std::vector<std::string> names;
  auto structure = ParseEventStructure(*text, engine->system(), &names);
  if (!structure.ok()) {
    std::fprintf(stderr, "structure: %s\n",
                 structure.status().ToString().c_str());
    return 65;
  }
  if (args.tag) {
    auto built = BuildTagForStructure(*structure);
    if (!built.ok()) {
      std::fprintf(stderr, "TAG: %s\n", built.status().ToString().c_str());
      return 70;
    }
    std::fputs(TagToDot(built->tag,
                        [&](Symbol s) {
                          return names[static_cast<std::size_t>(s)];
                        })
                   .c_str(),
               stdout);
  } else {
    std::fputs(EventStructureToDot(*structure).c_str(), stdout);
  }
  return 0;
}

int RunSave(const CliArgs& args, Engine* engine) {
  int exit_code = 0;
  std::string out;
  if (!Validated(ParseOutputPath("out", args.flags.at("out")), &out,
                 &exit_code)) {
    return exit_code;
  }
  if (args.flags.count("structure")) {
    auto text = ReadFileToString(args.flags.at("structure"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    // Parsed for its granularity definitions only: they extend the family
    // the snapshot freezes, so a later `restore` of the same structure file
    // reconstructs an identical family.
    auto structure = ParseEventStructure(*text, engine->system());
    if (!structure.ok()) {
      std::fprintf(stderr, "structure: %s\n",
                   structure.status().ToString().c_str());
      return 65;
    }
  }
  EventTypeRegistry registry;
  std::optional<EventSequence> sequence;
  if (args.flags.count("events")) {
    auto text = ReadFileToString(args.flags.at("events"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    auto parsed = ParseEventSequence(*text, &registry);
    if (!parsed.ok()) {
      std::fprintf(stderr, "events: %s\n", parsed.status().ToString().c_str());
      return 65;
    }
    sequence = std::move(*parsed);
  }
  SnapshotSaveOptions options;
  if (sequence.has_value()) options.sequence = &*sequence;
  if (Status status = engine->SaveSnapshot(out, options); !status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 74;
  }
  std::printf("snapshot written to %s: frozen family of %zu granularities",
              out.c_str(), engine->system()->family().size());
  if (sequence.has_value()) {
    std::printf(", %zu events", sequence->size());
  }
  std::printf("\n");
  return 0;
}

int RunRestore(const CliArgs& args, const EngineOptions& engine_options) {
  // The warm-start contract (docs/persistence.md): rebuild the *same* family
  // definitions, then install the sealed caches from the snapshot instead of
  // recomputing them. FromSnapshot refuses a snapshot whose image disagrees
  // with the family built here.
  std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();
  if (args.flags.count("structure")) {
    auto text = ReadFileToString(args.flags.at("structure"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    auto structure = ParseEventStructure(*text, system.get());
    if (!structure.ok()) {
      std::fprintf(stderr, "structure: %s\n",
                   structure.status().ToString().c_str());
      return 65;
    }
  }
  EventSequence sequence;
  auto engine = Engine::FromSnapshot(std::move(system),
                                     args.flags.at("snapshot"), engine_options,
                                     &sequence);
  if (!engine.ok()) {
    std::fprintf(stderr, "restore: %s\n", engine.status().ToString().c_str());
    return engine.status().code() == StatusCode::kNotFound ? 66 : 65;
  }
  std::printf("warm start OK: family of %zu granularities restored "
              "pre-frozen (no table recomputation)",
              (*engine)->system()->family().size());
  if (sequence.size() > 0) {
    std::printf(", %zu stored events", sequence.size());
  }
  std::printf("\n");
  return 0;
}

int RunStatusz(const CliArgs& args, const EngineOptions& engine_options) {
  // statusz renders a live engine's point-in-time status; standalone it
  // warm-starts one from a family snapshot. (A stream checkpoint cannot be
  // decoded without its problem geometry, so the live-session counterpart is
  // `stream --statusz-every N`.)
  auto engine = Engine::FromSnapshot(GranularitySystem::Gregorian(),
                                     args.flags.at("snapshot"),
                                     engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "statusz: %s\n", engine.status().ToString().c_str());
    return engine.status().code() == StatusCode::kNotFound ? 66 : 65;
  }
  std::printf("%s\n", RenderStatuszJson((*engine)->Statusz()).c_str());
  return 0;
}

int RunDemo() {
  std::printf("writing demo files demo_structure.txt / demo_events.txt\n");
  {
    std::ofstream s("demo_structure.txt");
    s << "rise -> report : [1,1] b-day\n"
         "report -> fall : [0,1] week\n"
         "rise -> hp     : [0,5] b-day\n"
         "hp -> fall     : [0,8] hour\n";
    std::ofstream e("demo_events.txt");
    e << "1970-01-05 10:00:00 IBM-rise\n"
         "1970-01-06 11:00:00 IBM-earnings-report\n"
         "1970-01-07 12:00:00 HP-rise\n"
         "1970-01-07 15:00:00 IBM-fall\n"
         "1970-01-12 10:00:00 IBM-rise\n"
         "1970-01-13 11:00:00 IBM-earnings-report\n"
         "1970-01-14 12:00:00 HP-rise\n"
         "1970-01-14 15:00:00 IBM-fall\n"
         "1970-01-19 10:00:00 IBM-rise\n";
  }
  std::printf(
      "try:\n"
      "  granmine_cli mine --structure demo_structure.txt --events "
      "demo_events.txt --reference IBM-rise --confidence 0.5\n"
      "  granmine_cli stream --structure demo_structure.txt --events "
      "demo_events.txt --reference IBM-rise --window 1209600 --slide 604800 "
      "--pin report=IBM-earnings-report --pin hp=HP-rise --pin fall=IBM-fall\n"
      "  granmine_cli check --structure demo_structure.txt --exact\n"
      "  granmine_cli dot --structure demo_structure.txt --tag\n");
  return 0;
}

// Writes the requested exposition files after the command finished. Returns
// 0 or an I/O exit code; never overrides a failing command's own code.
int WriteObservability(const EngineFlags& flags, const Engine& engine) {
  int exit_code = 0;
  if (!flags.metrics_out.empty()) {
    if (Status status = engine.WriteMetrics(flags.metrics_out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      exit_code = 74;
    }
  }
  if (!flags.trace_out.empty()) {
    if (Status status = engine.WriteTrace(flags.trace_out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      exit_code = 74;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseCliArgs(argc, argv);
  if (!args.ok()) return Usage();
  // The engine flags are shared by every subcommand and validated once —
  // one parser, one set of error messages.
  auto engine_flags = ParseEngineFlags(*args);
  if (!engine_flags.ok()) {
    std::fprintf(stderr, "%s\n", engine_flags.status().ToString().c_str());
    return 64;
  }
  EngineOptions engine_options;
  engine_options.num_threads = engine_flags->threads.value_or(1);
  engine_options.limits.deadline_ms = engine_flags->deadline_ms.value_or(0);
  engine_options.limits.memory_budget_bytes =
      static_cast<std::uint64_t>(engine_flags->mem_budget_mb.value_or(0)) *
      1024 * 1024;
  engine_options.enable_metrics = !engine_flags->metrics_out.empty();
  engine_options.enable_tracing = !engine_flags->trace_out.empty();
  // --log-level alone enables the logger (stderr-rendered diagnostics keep
  // their legacy form); --log-out additionally opens the JSON-lines sink.
  engine_options.enable_logging =
      engine_flags->log_level.has_value() || !engine_flags->log_out.empty();
  engine_options.log_level =
      engine_flags->log_level.value_or(obs::LogLevel::kInfo);
  engine_options.log_path = engine_flags->log_out;
  // --max-queue or --degrade switch the admission controller on; a memory
  // or deadline stop then degrades to screening-only instead of failing the
  // run when --degrade is given (docs/robustness.md).
  if (engine_flags->max_queue.has_value() || engine_flags->degrade) {
    engine_options.admission.enabled = true;
    engine_options.admission.max_queue = static_cast<std::size_t>(
        engine_flags->max_queue.value_or(16));
    engine_options.admission.degrade_when_saturated = engine_flags->degrade;
  }
  auto engine = Engine::CreateGregorian(engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 70;
  }
  // Deferred from the parser so it can route through the logger the engine
  // just configured: recorded structurally always (the flight recorder sees
  // it), rendered on stderr only when no JSON sink is open.
  if (engine_flags->threads_clamp_warning.has_value()) {
    CliDiag(obs::LogLevel::kWarn, "threads clamped",
            {{"detail", *engine_flags->threads_clamp_warning}},
            "warning: " + *engine_flags->threads_clamp_warning + "\n");
  }
  auto need = [&](const char* flag) {
    return args->flags.count(flag) > 0;
  };
  int code = -1;
  if (args->command == "demo") {
    code = RunDemo();
  } else if (args->command == "mine" && need("structure") && need("events") &&
             need("reference")) {
    code = RunMine(*args, *engine_flags, engine->get());
  } else if (args->command == "stream" && need("structure") &&
             need("reference") && need("window") && need("slide")) {
    code = RunStream(*args, engine->get());
  } else if (args->command == "save" && need("out")) {
    code = RunSave(*args, engine->get());
  } else if (args->command == "restore" && need("snapshot")) {
    code = RunRestore(*args, engine_options);
  } else if (args->command == "statusz" && need("snapshot")) {
    code = RunStatusz(*args, engine_options);
  } else if (args->command == "check" && need("structure")) {
    code = RunCheck(*args, engine->get());
  } else if (args->command == "dot" && need("structure")) {
    code = RunDot(*args, engine->get());
  } else {
    return Usage();
  }
  const int obs_code = WriteObservability(*engine_flags, **engine);
  return code != 0 ? code : obs_code;
}
