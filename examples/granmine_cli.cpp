// granmine_cli — mine temporal patterns from text files.
//
//   granmine_cli mine   --structure S.txt --events E.txt --reference TYPE
//                       [--confidence 0.5] [--pin VAR=TYPE]... [--naive]
//                       [--threads N] [--deadline-ms N]
//                       [--on-budget abort|partial]
//                       [--metrics-out FILE] [--trace-out FILE]
//   granmine_cli stream --structure S.txt --reference TYPE
//                       --window SECS --slide SECS [--theta 0.5]
//                       [--events FILE|-] [--types T1,T2,...]
//                       [--pin VAR=TYPE]... [--tolerance SECS] [--threads N]
//                       [--checkpoint-every N --checkpoint-path FILE]
//                       [--metrics-out FILE] [--trace-out FILE]
//   granmine_cli save    --out FILE [--structure S.txt] [--events E.txt]
//   granmine_cli restore --snapshot FILE [--structure S.txt]
//   granmine_cli statusz --snapshot FILE
//   granmine_cli check  --structure S.txt [--exact]
//   granmine_cli dot    --structure S.txt [--tag]
//   granmine_cli demo
//
// Structure files use the text DSL of granmine/io/text_format.h:
//     rise -> report : [1,1] b-day
//     report -> fall : [0,1] week
// Event files carry one "<timestamp> <type>" per line, timestamps either
// raw seconds or "YYYY-MM-DD[ HH:MM:SS]".
//
// `stream` reads events from --events (default "-" = stdin) one line at a
// time, keeps the incremental miner's TAG runs resident, retains the last
// --window seconds of history, and prints a report snapshot every --slide
// seconds of watermark progress plus a final one at end of input. Because
// a stream never reveals its full type universe up front, every non-root
// variable needs a --pin or the shared --types list.
//
// `--checkpoint-every N --checkpoint-path FILE` makes `stream` write an
// atomic session checkpoint (docs/persistence.md) after every N accepted
// events. If FILE already exists at startup the session resumes from it
// instead of starting cold — so a crashed run restarted with the same
// command line picks up where the last checkpoint left off, provided the
// input continues from where the previous run stopped (the natural pipe /
// stdin shape; events re-fed from before the restored watermark are
// rejected as late arrivals, they are never double-counted within the
// tolerance horizon).
//
// `save` writes a versioned binary snapshot of the frozen granularity
// family (plus, optionally, a parsed event file) so later runs can warm
// start; `restore` proves the warm start: it rebuilds the same family,
// installs the sealed caches from the snapshot without recomputing them,
// and prints what it found.
//
// Every subcommand runs against one `Engine` (granmine/engine/engine.h)
// owning the Gregorian granularity family: the shared engine flags
// (--threads, --deadline-ms, --metrics-out, --trace-out) are parsed once
// into EngineFlags and configure the engine, and structures defined in the
// input files extend the family during the build phase — the first mining
// request freezes it into the dense id-indexed caches.
//
// --metrics-out enables the obs layer's metrics and writes a Prometheus text
// exposition on exit; --trace-out enables span tracing and writes Chrome
// trace_event JSON (open in https://ui.perfetto.dev). Both also print a
// one-line `stats:` block on stderr (stderr so the stdout byte-diff contract
// across --threads, docs/concurrency.md, is untouched).
//
// --log-out FILE routes every once-per-run diagnostic (the stats block, the
// --threads clamp warning, PARTIAL summaries, flight-recorder dumps) through
// the structured event log as JSON lines instead of the legacy stderr
// rendering; --log-level debug|info|warn|error sets the minimum severity
// (and enables the logger on its own, keeping stderr rendering).
//
// `statusz --snapshot FILE` warm-starts an engine from a snapshot and prints
// its point-in-time status as one JSON object; `stream --statusz-every N`
// emits the same JSON (plus a "stream" block with the live watermark /
// retention / checkpoint lag) to stderr after every N accepted events. See
// docs/observability.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "granmine/engine/engine.h"
#include "granmine/granularity/system.h"
#include "granmine/io/cli_args.h"
#include "granmine/io/text_format.h"
#include "granmine/persist/stream_codec.h"
#include "granmine/server/service.h"
#include "granmine/stream/online_miner.h"

using namespace granmine;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  granmine_cli mine   --structure FILE --events FILE "
      "--reference TYPE [--confidence C] [--pin VAR=TYPE]... "
      "[--naive] [--threads N] [--deadline-ms N] [--mem-budget-mb N] "
      "[--max-queue N] [--degrade] [--on-budget abort|partial] "
      "[--metrics-out FILE] [--trace-out FILE] [--log-out FILE] "
      "[--log-level LVL]\n"
      "  granmine_cli stream --structure FILE --reference TYPE "
      "--window SECS --slide SECS [--theta C] [--events FILE|-] "
      "[--types T1,T2,...] [--pin VAR=TYPE]... [--tolerance SECS] "
      "[--threads N] [--checkpoint-every N --checkpoint-path FILE] "
      "[--statusz-every N] [--metrics-out FILE] [--trace-out FILE] "
      "[--log-out FILE] [--log-level LVL]\n"
      "  granmine_cli save    --out FILE [--structure FILE] [--events FILE]\n"
      "  granmine_cli restore --snapshot FILE [--structure FILE]\n"
      "  granmine_cli statusz --snapshot FILE\n"
      "  granmine_cli check  --structure FILE [--exact]\n"
      "  granmine_cli dot    --structure FILE [--tag]\n"
      "  granmine_cli demo\n");
  return 64;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string FormatDouble2(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

// Whether once-per-run diagnostics go to the JSON sink (--log-out) instead
// of the legacy stderr rendering. The structured record is always emitted —
// it feeds the engine's flight recorder either way; only the human copy is
// conditional.
bool MachineLog() { return obs::EventLog::Global().sink_open(); }

// One once-per-run CLI diagnostic: a structured record (no rate limiting —
// these fire at most once per run), plus the legacy stderr line when no
// JSON sink is open. `legacy` carries its own trailing newline.
void CliDiag(obs::LogLevel level, const char* message,
             std::initializer_list<obs::LogField> fields,
             const std::string& legacy) {
  obs::EventLog::Global().Log(nullptr, level, "cli", message, fields);
  if (!MachineLog()) std::fputs(legacy.c_str(), stderr);
}

// Shared flag validation; on error prints the message and returns the
// sysexits code via `*exit_code`.
template <typename T>
bool Validated(Result<T> parsed, T* out, int* exit_code) {
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    *exit_code = 64;
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

// Prints a service-layer CallResult the way the in-process subcommands
// always rendered: errors and the legacy stats line to stderr (the stats
// line only when no --log-out sink is open — the service already emitted
// its structured twin), the report itself to stdout. Returns the exit code.
int EmitResult(const server::CallResult& result) {
  if (!result.err.empty()) std::fputs(result.err.c_str(), stderr);
  if (!MachineLog() && !result.diag.empty()) {
    std::fputs(result.diag.c_str(), stderr);
  }
  if (!result.out.empty()) std::fputs(result.out.c_str(), stdout);
  return result.exit_code;
}

int RunDemo();

// The mine / check / dot / stream semantics live in the shared service
// layer (granmine/server/service.h) so the TCP server serves the same
// bytes; the CLI's job is reduced to reading files, packing the call
// struct, and printing the rendered result.
int RunMine(const CliArgs& args, const EngineFlags& engine_flags,
            Engine* engine) {
  auto structure_text = ReadFileToString(args.flags.at("structure"));
  auto events_text = ReadFileToString(args.flags.at("events"));
  if (!structure_text.ok() || !events_text.ok()) {
    std::fprintf(stderr, "%s\n", (!structure_text.ok()
                                      ? structure_text.status()
                                      : events_text.status())
                                     .ToString()
                                     .c_str());
    return 66;
  }
  server::MineCall call;
  call.structure_text = std::move(*structure_text);
  call.events_text = std::move(*events_text);
  call.reference = args.flags.at("reference");
  if (args.flags.count("confidence")) {
    call.confidence = args.flags.at("confidence");
  }
  if (args.flags.count("on-budget")) call.on_budget = args.flags.at("on-budget");
  call.pins = args.pins;
  call.naive = args.naive;
  call.explain = args.explain;
  // A deadline without an explicit --on-budget degrades gracefully: report
  // whatever was decided instead of failing the whole run.
  call.default_partial = engine_flags.deadline_ms.has_value();
  return EmitResult(ServeMine(engine, call));
}

// Fills the "stream" block of a statusz snapshot from the live session:
// the miner's retention telemetry plus the CLI-owned checkpoint cadence
// counters (the miner does not know about checkpoints; the CLI drives them).
StatuszStream StreamStatus(const OnlineMiner& miner,
                           const StreamRequest& request,
                           std::uint64_t checkpoints_written,
                           std::int64_t accepted_since_checkpoint,
                           bool checkpointing) {
  StatuszStream status;
  status.watermark = miner.watermark();
  status.horizon = miner.horizon();
  status.retention = request.options.retention;
  status.tolerance = request.options.tolerance;
  status.buffered_events = miner.buffered_events();
  status.late_events = miner.late_events();
  status.shed_events = miner.shed_events();
  status.resident_roots = miner.resident_roots();
  status.resident_configurations = miner.resident_configurations();
  status.checkpoints_written = checkpoints_written;
  status.events_since_checkpoint =
      checkpointing ? accepted_since_checkpoint : -1;
  return status;
}

int RunStream(const CliArgs& args, Engine* engine) {
  auto structure_text = ReadFileToString(args.flags.at("structure"));
  if (!structure_text.ok()) {
    std::fprintf(stderr, "%s\n", structure_text.status().ToString().c_str());
    return 66;
  }
  server::StreamOpenCall call;
  call.structure_text = std::move(*structure_text);
  call.reference = args.flags.at("reference");
  call.window = args.flags.at("window");
  call.slide = args.flags.at("slide");
  if (args.flags.count("theta")) call.theta = args.flags.at("theta");
  if (args.flags.count("types")) call.types = args.flags.at("types");
  if (args.flags.count("tolerance")) call.tolerance = args.flags.at("tolerance");
  call.pins = args.pins;

  int exit_code = 0;
  StreamCheckpointArgs checkpoint;
  if (!Validated(ParseStreamCheckpoint(args), &checkpoint, &exit_code)) {
    return exit_code;
  }
  // `--statusz-every N`: a point-in-time engine + session status JSON object
  // on stderr after every N accepted events — stderr, like the stats block,
  // so the stdout snapshot contract stays byte-diffable.
  std::int64_t statusz_every = 0;
  if (args.flags.count("statusz-every") &&
      !Validated(
          ParsePositiveInt("statusz-every", args.flags.at("statusz-every")),
          &statusz_every, &exit_code)) {
    return exit_code;
  }
  // Crash-safe resume: an existing checkpoint file means a previous run got
  // at least that far — restore it rather than starting cold. The restore
  // validates the checkpoint against this command line's problem geometry
  // (reference type, pins, window, tolerance) and refuses a mismatch.
  bool resume = false;
  if (checkpoint.every > 0) {
    if (std::FILE* probe = std::fopen(checkpoint.path.c_str(), "rb");
        probe != nullptr) {
      std::fclose(probe);
      resume = true;
    }
  }
  auto opened = server::StreamSession::Open(
      engine, call, resume ? checkpoint.path : std::string());
  if (!opened.session) return EmitResult(opened.result);
  server::StreamSession& session = *opened.session;
  if (resume) {
    std::fprintf(stderr, "resumed from checkpoint '%s' (watermark %s)\n",
                 checkpoint.path.c_str(),
                 FormatTimePoint(session.miner().watermark()).c_str());
  }

  const std::string events_path =
      args.flags.count("events") ? args.flags.at("events") : "-";
  std::ifstream file;
  if (events_path != "-") {
    file.open(events_path);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", events_path.c_str());
      return 66;
    }
  }
  std::istream& in = events_path == "-" ? std::cin : file;

  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t checkpoints_written = 0;
  std::int64_t accepted_since_checkpoint = 0;
  std::int64_t accepted_since_statusz = 0;
  // The checkpoint / statusz cadence stays CLI-owned: the session runs this
  // hook after every accepted event, before that line's snapshot
  // evaluation — the same point in the loop the inline code occupied.
  auto after_accept = [&](OnlineMiner& miner) -> int {
    if (checkpoint.every > 0 &&
        ++accepted_since_checkpoint >= checkpoint.every) {
      // Atomic temp-file-plus-rename: a crash mid-write leaves the previous
      // checkpoint intact, never a torn file.
      if (Status saved = persist::SaveStreamCheckpoint(miner, checkpoint.path);
          !saved.ok()) {
        std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
        return 74;
      }
      accepted_since_checkpoint = 0;
      ++checkpoints_written;
    }
    if (statusz_every > 0 && ++accepted_since_statusz >= statusz_every) {
      accepted_since_statusz = 0;
      const StatuszStream stream_status =
          StreamStatus(miner, session.request(), checkpoints_written,
                       accepted_since_checkpoint, checkpoint.every > 0);
      std::fprintf(stderr, "%s\n",
                   RenderStatuszJson(engine->Statusz(), &stream_status)
                       .c_str());
    }
    return 0;
  };

  std::string line;
  while (std::getline(in, line)) {
    // One line per Ingest call keeps the session's line numbering (and so
    // its parse / drop diagnostics) identical to the inline loop's. The
    // appended newline matters: an empty chunk would not count a line.
    auto outcome = session.Ingest(line + "\n", after_accept);
    if (!outcome.result.err.empty()) {
      std::fputs(outcome.result.err.c_str(), stderr);
    }
    if (!outcome.result.out.empty()) {
      std::fputs(outcome.result.out.c_str(), stdout);
    }
    if (outcome.result.exit_code != 0) return outcome.result.exit_code;
  }

  // Flush a final checkpoint on clean end of input (before Seal, so the
  // saved session is still resumable): a graceful shutdown loses nothing;
  // only a crash can lose the events accepted since the last checkpoint.
  if (checkpoint.every > 0 && accepted_since_checkpoint > 0) {
    if (Status saved = persist::SaveStreamCheckpoint(session.miner(),
                                                     checkpoint.path);
        !saved.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
      return 74;
    }
    ++checkpoints_written;
  }

  server::CallResult sealed = session.Seal();
  if (!sealed.err.empty()) std::fputs(sealed.err.c_str(), stderr);
  if (!sealed.out.empty()) std::fputs(sealed.out.c_str(), stdout);
  if (sealed.exit_code != 0) return sealed.exit_code;
  // stderr (or the --log-out sink) for the same reason as `mine`: stdout is
  // diffed across --threads.
  {
    const std::string stop = session.seal_stop_cause();
    const std::string elapsed =
        FormatDouble2(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count());
    const std::string snapshots = std::to_string(session.snapshots_taken() + 1);
    const std::string late = std::to_string(session.dropped_late());
    const std::string checkpoints = std::to_string(checkpoints_written);
    CliDiag(obs::LogLevel::kInfo, "stream stats",
            {{"stop_cause", stop}, {"elapsed_ms", elapsed},
             {"snapshots", snapshots}, {"late_drops", late},
             {"checkpoints", checkpoints}},
            "stats: stop-cause " + stop + ", elapsed " + elapsed +
                " ms, snapshots " + snapshots + ", late drops " + late +
                ", checkpoints " + checkpoints + "\n");
  }
  return 0;
}

int RunCheck(const CliArgs& args, Engine* engine) {
  auto text = ReadFileToString(args.flags.at("structure"));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 66;
  }
  server::CheckCall call;
  call.structure_text = std::move(*text);
  call.exact = args.exact;
  return EmitResult(ServeCheck(engine, call));
}

int RunDot(const CliArgs& args, Engine* engine) {
  auto text = ReadFileToString(args.flags.at("structure"));
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 66;
  }
  server::DotCall call;
  call.structure_text = std::move(*text);
  call.tag = args.tag;
  return EmitResult(ServeDot(engine, call));
}

int RunSave(const CliArgs& args, Engine* engine) {
  int exit_code = 0;
  std::string out;
  if (!Validated(ParseOutputPath("out", args.flags.at("out")), &out,
                 &exit_code)) {
    return exit_code;
  }
  if (args.flags.count("structure")) {
    auto text = ReadFileToString(args.flags.at("structure"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    // Parsed for its granularity definitions only: they extend the family
    // the snapshot freezes, so a later `restore` of the same structure file
    // reconstructs an identical family.
    auto structure = ParseEventStructure(*text, engine->system());
    if (!structure.ok()) {
      std::fprintf(stderr, "structure: %s\n",
                   structure.status().ToString().c_str());
      return 65;
    }
  }
  EventTypeRegistry registry;
  std::optional<EventSequence> sequence;
  if (args.flags.count("events")) {
    auto text = ReadFileToString(args.flags.at("events"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    auto parsed = ParseEventSequence(*text, &registry);
    if (!parsed.ok()) {
      std::fprintf(stderr, "events: %s\n", parsed.status().ToString().c_str());
      return 65;
    }
    sequence = std::move(*parsed);
  }
  SnapshotSaveOptions options;
  if (sequence.has_value()) options.sequence = &*sequence;
  if (Status status = engine->SaveSnapshot(out, options); !status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 74;
  }
  std::printf("snapshot written to %s: frozen family of %zu granularities",
              out.c_str(), engine->system()->family().size());
  if (sequence.has_value()) {
    std::printf(", %zu events", sequence->size());
  }
  std::printf("\n");
  return 0;
}

int RunRestore(const CliArgs& args, const EngineOptions& engine_options) {
  // The warm-start contract (docs/persistence.md): rebuild the *same* family
  // definitions, then install the sealed caches from the snapshot instead of
  // recomputing them. FromSnapshot refuses a snapshot whose image disagrees
  // with the family built here.
  std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();
  if (args.flags.count("structure")) {
    auto text = ReadFileToString(args.flags.at("structure"));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 66;
    }
    auto structure = ParseEventStructure(*text, system.get());
    if (!structure.ok()) {
      std::fprintf(stderr, "structure: %s\n",
                   structure.status().ToString().c_str());
      return 65;
    }
  }
  EventSequence sequence;
  auto engine = Engine::FromSnapshot(std::move(system),
                                     args.flags.at("snapshot"), engine_options,
                                     &sequence);
  if (!engine.ok()) {
    std::fprintf(stderr, "restore: %s\n", engine.status().ToString().c_str());
    return engine.status().code() == StatusCode::kNotFound ? 66 : 65;
  }
  std::printf("warm start OK: family of %zu granularities restored "
              "pre-frozen (no table recomputation)",
              (*engine)->system()->family().size());
  if (sequence.size() > 0) {
    std::printf(", %zu stored events", sequence.size());
  }
  std::printf("\n");
  return 0;
}

int RunStatusz(const CliArgs& args, const EngineOptions& engine_options) {
  // statusz renders a live engine's point-in-time status; standalone it
  // warm-starts one from a family snapshot. (A stream checkpoint cannot be
  // decoded without its problem geometry, so the live-session counterpart is
  // `stream --statusz-every N`.)
  auto engine = Engine::FromSnapshot(GranularitySystem::Gregorian(),
                                     args.flags.at("snapshot"),
                                     engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "statusz: %s\n", engine.status().ToString().c_str());
    return engine.status().code() == StatusCode::kNotFound ? 66 : 65;
  }
  std::printf("%s\n", RenderStatuszJson((*engine)->Statusz()).c_str());
  return 0;
}

int RunDemo() {
  std::printf("writing demo files demo_structure.txt / demo_events.txt\n");
  {
    std::ofstream s("demo_structure.txt");
    s << "rise -> report : [1,1] b-day\n"
         "report -> fall : [0,1] week\n"
         "rise -> hp     : [0,5] b-day\n"
         "hp -> fall     : [0,8] hour\n";
    std::ofstream e("demo_events.txt");
    e << "1970-01-05 10:00:00 IBM-rise\n"
         "1970-01-06 11:00:00 IBM-earnings-report\n"
         "1970-01-07 12:00:00 HP-rise\n"
         "1970-01-07 15:00:00 IBM-fall\n"
         "1970-01-12 10:00:00 IBM-rise\n"
         "1970-01-13 11:00:00 IBM-earnings-report\n"
         "1970-01-14 12:00:00 HP-rise\n"
         "1970-01-14 15:00:00 IBM-fall\n"
         "1970-01-19 10:00:00 IBM-rise\n";
  }
  std::printf(
      "try:\n"
      "  granmine_cli mine --structure demo_structure.txt --events "
      "demo_events.txt --reference IBM-rise --confidence 0.5\n"
      "  granmine_cli stream --structure demo_structure.txt --events "
      "demo_events.txt --reference IBM-rise --window 1209600 --slide 604800 "
      "--pin report=IBM-earnings-report --pin hp=HP-rise --pin fall=IBM-fall\n"
      "  granmine_cli check --structure demo_structure.txt --exact\n"
      "  granmine_cli dot --structure demo_structure.txt --tag\n");
  return 0;
}

// Writes the requested exposition files after the command finished. Returns
// 0 or an I/O exit code; never overrides a failing command's own code.
int WriteObservability(const EngineFlags& flags, const Engine& engine) {
  int exit_code = 0;
  if (!flags.metrics_out.empty()) {
    if (Status status = engine.WriteMetrics(flags.metrics_out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      exit_code = 74;
    }
  }
  if (!flags.trace_out.empty()) {
    if (Status status = engine.WriteTrace(flags.trace_out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      exit_code = 74;
    }
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseCliArgs(argc, argv);
  if (!args.ok()) return Usage();
  // The engine flags are shared by every subcommand and validated once —
  // one parser, one set of error messages.
  auto engine_flags = ParseEngineFlags(*args);
  if (!engine_flags.ok()) {
    std::fprintf(stderr, "%s\n", engine_flags.status().ToString().c_str());
    return 64;
  }
  EngineOptions engine_options;
  engine_options.num_threads = engine_flags->threads.value_or(1);
  engine_options.limits.deadline_ms = engine_flags->deadline_ms.value_or(0);
  engine_options.limits.memory_budget_bytes =
      static_cast<std::uint64_t>(engine_flags->mem_budget_mb.value_or(0)) *
      1024 * 1024;
  engine_options.enable_metrics = !engine_flags->metrics_out.empty();
  engine_options.enable_tracing = !engine_flags->trace_out.empty();
  // --log-level alone enables the logger (stderr-rendered diagnostics keep
  // their legacy form); --log-out additionally opens the JSON-lines sink.
  engine_options.enable_logging =
      engine_flags->log_level.has_value() || !engine_flags->log_out.empty();
  engine_options.log_level =
      engine_flags->log_level.value_or(obs::LogLevel::kInfo);
  engine_options.log_path = engine_flags->log_out;
  // --max-queue or --degrade switch the admission controller on; a memory
  // or deadline stop then degrades to screening-only instead of failing the
  // run when --degrade is given (docs/robustness.md).
  if (engine_flags->max_queue.has_value() || engine_flags->degrade) {
    engine_options.admission.enabled = true;
    engine_options.admission.max_queue = static_cast<std::size_t>(
        engine_flags->max_queue.value_or(16));
    engine_options.admission.degrade_when_saturated = engine_flags->degrade;
  }
  auto engine = Engine::CreateGregorian(engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 70;
  }
  // Deferred from the parser so it can route through the logger the engine
  // just configured: recorded structurally always (the flight recorder sees
  // it), rendered on stderr only when no JSON sink is open.
  if (engine_flags->threads_clamp_warning.has_value()) {
    CliDiag(obs::LogLevel::kWarn, "threads clamped",
            {{"detail", *engine_flags->threads_clamp_warning}},
            "warning: " + *engine_flags->threads_clamp_warning + "\n");
  }
  auto need = [&](const char* flag) {
    return args->flags.count(flag) > 0;
  };
  int code = -1;
  if (args->command == "demo") {
    code = RunDemo();
  } else if (args->command == "mine" && need("structure") && need("events") &&
             need("reference")) {
    code = RunMine(*args, *engine_flags, engine->get());
  } else if (args->command == "stream" && need("structure") &&
             need("reference") && need("window") && need("slide")) {
    code = RunStream(*args, engine->get());
  } else if (args->command == "save" && need("out")) {
    code = RunSave(*args, engine->get());
  } else if (args->command == "restore" && need("snapshot")) {
    code = RunRestore(*args, engine_options);
  } else if (args->command == "statusz" && need("snapshot")) {
    code = RunStatusz(*args, engine_options);
  } else if (args->command == "check" && need("structure")) {
    code = RunCheck(*args, engine->get());
  } else if (args->command == "dot" && need("structure")) {
    code = RunDot(*args, engine->get());
  } else {
    return Usage();
  }
  const int obs_code = WriteObservability(*engine_flags, **engine);
  return code != 0 ? code : obs_code;
}
