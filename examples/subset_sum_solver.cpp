// Theorem 1 made executable: SUBSET SUM encoded as event-structure
// consistency. The reduction builds X/V/U variables with [0,n_i]month,
// [0,0]n_i-month and [n_i-1,n_i-1]month constraints; the exact checker's
// witness decodes back into the chosen subset.
//
// Run: ./subset_sum_solver target n1 n2 ...
//      ./subset_sum_solver            (demo instance {2,3,5,7}, target 10)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "granmine/constraint/subset_sum.h"
#include "granmine/granularity/system.h"

using namespace granmine;

int main(int argc, char** argv) {
  SubsetSumInstance instance;
  if (argc >= 3) {
    instance.target = std::atoll(argv[1]);
    for (int i = 2; i < argc; ++i) {
      instance.numbers.push_back(std::atoll(argv[i]));
    }
  } else {
    instance.numbers = {2, 3, 5, 7};
    instance.target = 10;
  }

  std::printf("SUBSET SUM: target %lld over {",
              static_cast<long long>(instance.target));
  for (std::size_t i = 0; i < instance.numbers.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(instance.numbers[i]));
  }
  std::printf("}\n");

  // A toy uniform 30-unit "month" keeps the witness search tractable while
  // exercising exactly the reduction of the Theorem-1 proof.
  GranularitySystem system;
  const Granularity* month = system.AddUniform("month", 30);

  Result<SubsetSumStructure> reduction =
      BuildSubsetSumStructure(&system, month, instance);
  if (!reduction.ok()) {
    std::fprintf(stderr, "reduction: %s\n",
                 reduction.status().ToString().c_str());
    return 1;
  }
  std::printf("\nreduction structure (%d variables, %zu edges):\n%s\n\n",
              reduction->structure.variable_count(),
              reduction->structure.edges().size(),
              reduction->structure.ToString().c_str());

  ExactOptions options;
  options.max_nodes = 50'000'000;
  Result<std::optional<std::vector<bool>>> solved =
      SolveSubsetSum(&system, month, instance, options);
  if (!solved.ok()) {
    std::fprintf(stderr, "solver: %s\n", solved.status().ToString().c_str());
    return 1;
  }
  if (!solved->has_value()) {
    std::printf("UNSATISFIABLE: no subset sums to %lld (the event structure "
                "is inconsistent)\n",
                static_cast<long long>(instance.target));
    return 2;
  }
  std::printf("SATISFIABLE — chosen subset: {");
  bool first = true;
  long long sum = 0;
  for (std::size_t i = 0; i < solved->value().size(); ++i) {
    if (solved->value()[i]) {
      std::printf("%s%lld", first ? "" : ", ",
                  static_cast<long long>(instance.numbers[i]));
      sum += instance.numbers[i];
      first = false;
    }
  }
  std::printf("} (sum %lld)\n", sum);
  return 0;
}
