// Industrial-plant malfunction analysis (the introduction's "events related
// to malfunctions in an industrial plant"): discover what escalates from an
// overheat warning within hours, using hour-granularity TCGs.
//
// Run: ./plant_monitoring [days] [confidence]

#include <cstdio>
#include <cstdlib>

#include "granmine/granularity/system.h"
#include "granmine/mining/miner.h"
#include "granmine/sequence/generators.h"

using namespace granmine;

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 90;
  double confidence = argc > 2 ? std::atof(argv[2]) : 0.3;

  std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();
  PlantWorkloadOptions workload_options;
  workload_options.days = days;
  workload_options.cascade_probability = 0.45;
  workload_options.seed = 99;
  Workload workload = MakePlantWorkload(*system, workload_options);
  std::printf("generated %zu plant events over %d days (%zu cascades)\n",
              workload.sequence.size(), days, workload.planted);

  // overheat X0; X1 within 2 hours; X2 within 3 hours of X0, after X1.
  const Granularity* hour = system->Find("hour");
  EventStructure structure;
  VariableId x0 = structure.AddVariable("warning");
  VariableId x1 = structure.AddVariable("escalation");
  VariableId x2 = structure.AddVariable("outcome");
  if (!structure.AddConstraint(x0, x1, Tcg::Of(0, 2, hour)).ok() ||
      !structure.AddConstraint(x0, x2, Tcg::Of(1, 3, hour)).ok() ||
      !structure.AddConstraint(x1, x2, Tcg::Of(0, 3, hour)).ok()) {
    return 1;
  }

  DiscoveryProblem problem;
  problem.structure = &structure;
  problem.min_confidence = confidence;
  problem.reference_type = *workload.registry.Find("overheat-warning");

  Miner miner(system.get());
  Result<MiningReport> report = miner.Mine(problem, workload.sequence);
  if (!report.ok()) {
    std::fprintf(stderr, "mining: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("warnings: %zu; candidates %llu -> %llu; TAG runs %llu\n",
              report->total_roots,
              static_cast<unsigned long long>(report->candidates_before),
              static_cast<unsigned long long>(
                  report->candidates_after_screening),
              static_cast<unsigned long long>(report->tag_runs));
  std::printf("escalation patterns with frequency > %.2f:\n", confidence);
  for (const DiscoveredType& found : report->solutions) {
    std::printf("  freq %.3f: warning -> %s (<=2h) -> %s (1-3h)\n",
                found.frequency,
                workload.registry.name(found.assignment[1]).c_str(),
                workload.registry.name(found.assignment[2]).c_str());
  }
  if (report->solutions.empty()) std::printf("  (none)\n");
  return 0;
}
