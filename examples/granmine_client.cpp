// granmine_client — run granmine_cli subcommands against a granmine_serve
// instance (docs/serving.md).
//
//   granmine_client mine    --connect HOST:PORT --structure FILE
//                           --events FILE --reference TYPE [--confidence C]
//                           [--pin VAR=TYPE]... [--naive] [--explain]
//                           [--on-budget abort|partial]
//   granmine_client stream  --connect HOST:PORT --structure FILE
//                           --reference TYPE --window SECS --slide SECS
//                           [--theta C] [--events FILE|-]
//                           [--types T1,T2,...] [--pin VAR=TYPE]...
//                           [--tolerance SECS]
//   granmine_client check   --connect HOST:PORT --structure FILE [--exact]
//   granmine_client dot     --connect HOST:PORT --structure FILE [--tag]
//   granmine_client statusz --connect HOST:PORT
//   granmine_client ping    --connect HOST:PORT
//
// Files are read client-side and shipped in the request frame; the server
// reads nothing from its own disk on behalf of a client. The reply carries
// the subcommand's exit code plus its exact stdout / stderr / stats bytes,
// which this binary replays verbatim — `granmine_client mine ...` and
// `granmine_cli mine ...` against the same engine state are byte-identical
// on stdout and exit with the same code (tests/server_test.cc pins this).
//
// A serving-layer error frame (admission shed, protocol violation) prints
// its message to stderr and exits 75 (EX_TEMPFAIL) when the server marked
// it retryable — re-run after the suggested backoff — or 70 otherwise.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "granmine/common/result.h"
#include "granmine/io/cli_args.h"
#include "granmine/server/client.h"

using namespace granmine;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  granmine_client mine    --connect HOST:PORT --structure FILE "
      "--events FILE --reference TYPE [--confidence C] [--pin VAR=TYPE]... "
      "[--naive] [--explain] [--on-budget abort|partial]\n"
      "  granmine_client stream  --connect HOST:PORT --structure FILE "
      "--reference TYPE --window SECS --slide SECS [--theta C] "
      "[--events FILE|-] [--types T1,T2,...] [--pin VAR=TYPE]... "
      "[--tolerance SECS]\n"
      "  granmine_client check   --connect HOST:PORT --structure FILE "
      "[--exact]\n"
      "  granmine_client dot     --connect HOST:PORT --structure FILE "
      "[--tag]\n"
      "  granmine_client statusz --connect HOST:PORT\n"
      "  granmine_client ping    --connect HOST:PORT\n");
  return 64;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Replays one server response the way the local subcommand printed it.
// A kErrorReply is a serving-layer failure, not a subcommand result.
int EmitResponse(const server::Response& response) {
  if (response.type == server::FrameType::kErrorReply) {
    std::fprintf(stderr, "server error: %s%s\n",
                 response.error.message.c_str(),
                 response.error.retryable ? " (retryable)" : "");
    return response.error.retryable ? 75 : 70;
  }
  if (!response.err.empty()) std::fputs(response.err.c_str(), stderr);
  if (!response.diag.empty()) std::fputs(response.diag.c_str(), stderr);
  if (!response.out.empty()) std::fputs(response.out.c_str(), stdout);
  return response.exit_code;
}

int RunStream(server::Client& client, const CliArgs& args,
              server::StreamOpenCall call) {
  auto opened = client.StreamOpen(call);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 70;
  }
  if (opened->type == server::FrameType::kErrorReply ||
      opened->exit_code != 0) {
    return EmitResponse(*opened);
  }
  const std::string events_path =
      args.flags.count("events") ? args.flags.at("events") : "-";
  std::ifstream file;
  if (events_path != "-") {
    file.open(events_path);
    if (!file) {
      std::fprintf(stderr, "cannot open '%s'\n", events_path.c_str());
      return 66;
    }
  }
  std::istream& in = events_path == "-" ? std::cin : file;
  std::string line;
  while (std::getline(in, line)) {
    // One line per frame: the commit ack ordering then matches the local
    // loop's diagnostics line for line. Batching lines into larger frames
    // would also be correct (acks are deterministic per chunk), just
    // coarser.
    auto ack = client.StreamIngest(line + "\n");
    if (!ack.ok()) {
      std::fprintf(stderr, "%s\n", ack.status().ToString().c_str());
      return 70;
    }
    if (int code = EmitResponse(*ack); code != 0) return code;
  }
  auto sealed = client.StreamSeal();
  if (!sealed.ok()) {
    std::fprintf(stderr, "%s\n", sealed.status().ToString().c_str());
    return 70;
  }
  return EmitResponse(*sealed);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseCliArgs(argc, argv);
  if (!args.ok() || !args->flags.count("connect")) return Usage();
  const std::string& connect = args->flags.at("connect");
  const std::size_t colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                 connect.c_str());
    return 64;
  }
  const std::string host = connect.substr(0, colon);
  const int port = std::atoi(connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                 connect.c_str());
    return 64;
  }

  auto client =
      server::Client::Connect(host, static_cast<std::uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 74;
  }

  auto need = [&](const char* flag) { return args->flags.count(flag) > 0; };
  auto read_file = [&](const char* flag, std::string* out) -> bool {
    auto text = ReadFileToString(args->flags.at(flag));
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return false;
    }
    *out = std::move(*text);
    return true;
  };

  if (args->command == "ping") {
    if (Status status = (*client)->Ping(); !status.ok()) {
      std::fprintf(stderr, "ping: %s\n", status.ToString().c_str());
      return 74;
    }
    std::printf("pong\n");
    return 0;
  }
  if (args->command == "statusz") {
    auto response = (*client)->Statusz();
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 70;
    }
    return EmitResponse(*response);
  }
  if (args->command == "mine" && need("structure") && need("events") &&
      need("reference")) {
    server::MineCall call;
    if (!read_file("structure", &call.structure_text) ||
        !read_file("events", &call.events_text)) {
      return 66;
    }
    call.reference = args->flags.at("reference");
    if (need("confidence")) call.confidence = args->flags.at("confidence");
    if (need("on-budget")) call.on_budget = args->flags.at("on-budget");
    call.pins = args->pins;
    call.naive = args->naive;
    call.explain = args->explain;
    auto response = (*client)->Mine(call);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 70;
    }
    return EmitResponse(*response);
  }
  if (args->command == "check" && need("structure")) {
    server::CheckCall call;
    if (!read_file("structure", &call.structure_text)) return 66;
    call.exact = args->exact;
    auto response = (*client)->Check(call);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 70;
    }
    return EmitResponse(*response);
  }
  if (args->command == "dot" && need("structure")) {
    server::DotCall call;
    if (!read_file("structure", &call.structure_text)) return 66;
    call.tag = args->tag;
    auto response = (*client)->Dot(call);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 70;
    }
    return EmitResponse(*response);
  }
  if (args->command == "stream" && need("structure") && need("reference") &&
      need("window") && need("slide")) {
    server::StreamOpenCall call;
    if (!read_file("structure", &call.structure_text)) return 66;
    call.reference = args->flags.at("reference");
    call.window = args->flags.at("window");
    call.slide = args->flags.at("slide");
    if (need("theta")) call.theta = args->flags.at("theta");
    if (need("types")) call.types = args->flags.at("types");
    if (need("tolerance")) call.tolerance = args->flags.at("tolerance");
    call.pins = args->pins;
    return RunStream(**client, *args, std::move(call));
  }
  return Usage();
}
