// Example 1 & 2 from the paper, end to end: generate a stock event sequence
// (IBM/HP rises, falls, earnings reports on business days), then solve the
// event-discovery problem (S, 0.8-ish, IBM-rise, σ) with the optimized §5
// pipeline and with the naive algorithm, printing both the discovered
// complex event types and the per-step reductions.
//
// Run: ./stock_mining [trading_days] [confidence]

#include <cstdio>
#include <cstdlib>

#include "granmine/granularity/system.h"
#include "granmine/mining/explain.h"
#include "granmine/mining/miner.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/generators.h"

using namespace granmine;

int main(int argc, char** argv) {
  int trading_days = argc > 1 ? std::atoi(argv[1]) : 120;
  double confidence = argc > 2 ? std::atof(argv[2]) : 0.4;

  std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();

  StockWorkloadOptions workload_options;
  workload_options.trading_days = trading_days;
  workload_options.plant_probability = 0.7;
  workload_options.noise_events_per_day = 2.0;
  workload_options.seed = 2024;
  Workload workload = MakeStockWorkload(*system, workload_options);
  std::printf("generated %zu events over %d trading days (%zu patterns "
              "planted, %d event types)\n",
              workload.sequence.size(), trading_days, workload.planted,
              workload.registry.size());

  Result<EventStructure> structure = BuildFigure1a(*system);
  if (!structure.ok()) return 1;

  // Example 2: reference type IBM-rise; X3 pinned to IBM-fall; X1, X2 free.
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.min_confidence = confidence;
  problem.reference_type = *workload.registry.Find("IBM-rise");
  problem.allowed.assign(4, {});
  problem.allowed[3] = {*workload.registry.Find("IBM-fall")};

  for (bool optimized : {false, true}) {
    MinerOptions options =
        optimized ? MinerOptions{} : MinerOptions::Naive();
    Miner miner(system.get(), options);
    Result<MiningReport> report = miner.Mine(problem, workload.sequence);
    if (!report.ok()) {
      std::fprintf(stderr, "%s mining: %s\n",
                   optimized ? "optimized" : "naive",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("\n=== %s pipeline ===\n", optimized ? "optimized" : "naive");
    std::printf("reference occurrences: %zu\n", report->total_roots);
    std::printf("events:     %zu -> %zu after step 2\n",
                report->events_before, report->events_after_reduction);
    std::printf("roots:      %zu -> %zu after step 3\n", report->total_roots,
                report->roots_after_reduction);
    std::printf("candidates: %llu -> %llu after step 4\n",
                static_cast<unsigned long long>(report->candidates_before),
                static_cast<unsigned long long>(
                    report->candidates_after_screening));
    std::printf("TAG runs:   %llu (%llu matcher configurations)\n",
                static_cast<unsigned long long>(report->tag_runs),
                static_cast<unsigned long long>(
                    report->matcher_configurations));
    std::printf("solutions (frequency > %.2f):\n", confidence);
    for (const DiscoveredType& found : report->solutions) {
      std::printf("  freq %.3f (%zu roots): X0=%s X1=%s X2=%s X3=%s\n",
                  found.frequency, found.matched_roots,
                  workload.registry.name(found.assignment[0]).c_str(),
                  workload.registry.name(found.assignment[1]).c_str(),
                  workload.registry.name(found.assignment[2]).c_str(),
                  workload.registry.name(found.assignment[3]).c_str());
    }
    if (report->solutions.empty()) std::printf("  (none)\n");
    if (optimized && !report->solutions.empty()) {
      auto explanations =
          ExplainSolution(*structure, report->solutions.front(),
                          problem.reference_type, workload.sequence, 1);
      if (explanations.ok() && !explanations->empty()) {
        std::printf("sample occurrence of the first solution:\n%s",
                    FormatExplanation(*structure, explanations->front(),
                                      workload.sequence, workload.registry)
                        .c_str());
      }
    }
  }
  return 0;
}
