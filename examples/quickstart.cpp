// Quickstart: the paper's Figure 1(a) end to end —
//   1. build a granularity system and an event structure with TCGs,
//   2. check consistency with the approximate propagation of §3.2,
//   3. inspect derived constraints (the §5.1 induced sub-structure),
//   4. build the Theorem-3 TAG and match a small event sequence.
//
// Run: ./quickstart

#include <cstdio>

#include "granmine/constraint/propagation.h"
#include "granmine/constraint/substructure.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/system.h"
#include "granmine/paper/figures.h"
#include "granmine/sequence/sequence.h"
#include "granmine/tag/builder.h"
#include "granmine/tag/matcher.h"

using namespace granmine;

int main() {
  // The standard second-based Gregorian system: second, minute, hour, day,
  // week, month, year, b-day, weekend-day, b-week, b-month.
  std::unique_ptr<GranularitySystem> system = GranularitySystem::Gregorian();

  // Figure 1(a): X0 -[1,1]b-day-> X1 -[0,1]week-> X3,
  //              X0 -[0,5]b-day-> X2 -[0,8]hour-> X3.
  Result<EventStructure> structure = BuildFigure1a(*system);
  if (!structure.ok()) {
    std::fprintf(stderr, "building structure: %s\n",
                 structure.status().ToString().c_str());
    return 1;
  }
  std::printf("Event structure:\n%s\n\n", structure->ToString().c_str());

  // Step 1: consistency via approximate propagation (Theorem 2).
  ConstraintPropagator propagator(&system->tables(), &system->coverage());
  Result<PropagationResult> propagation = propagator.Propagate(*structure);
  if (!propagation.ok()) {
    std::fprintf(stderr, "propagation: %s\n",
                 propagation.status().ToString().c_str());
    return 1;
  }
  std::printf("consistent (not refuted): %s, fixpoint after %d iterations\n",
              propagation->consistent ? "yes" : "no",
              propagation->iterations);

  // Derived constraints between the root X0 and the sink X3 (§5.1).
  Result<EventStructure> induced =
      InduceSubstructure(*structure, *propagation, {0, 3});
  if (induced.ok()) {
    std::printf("\nInduced approximated sub-structure on {X0, X3}:\n%s\n\n",
                induced->ToString().c_str());
  }

  // Theorem 3: the TAG (Figure 2).
  Result<TagBuildResult> built = BuildTagForStructure(*structure);
  if (!built.ok()) {
    std::fprintf(stderr, "TAG construction: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("TAG (%zu chains):\n%s\n\n", built->chains.size(),
              built->tag.ToString().c_str());

  // A tiny sequence: IBM-rise Mon 10:00, report Tue 11:00, HP-rise Wed
  // 12:00, IBM-fall Wed 15:00 (plus noise). Day 4 = Monday 1970-01-05.
  enum : EventTypeId { kRise, kReport, kHpRise, kFall, kNoise };
  auto at = [](std::int64_t day, int hour) {
    return day * kSecondsPerDay + hour * 3600;
  };
  EventSequence sequence;
  sequence.Add(kRise, at(4, 10));
  sequence.Add(kNoise, at(4, 12));
  sequence.Add(kReport, at(5, 11));
  sequence.Add(kNoise, at(6, 9));
  sequence.Add(kHpRise, at(6, 12));
  sequence.Add(kFall, at(6, 15));

  TagMatcher matcher(&built->tag);
  SymbolMap symbols =
      SymbolMap::FromAssignment({kRise, kReport, kHpRise, kFall}, 5);
  MatchStats stats;
  bool accepted = matcher.Accepts(sequence.View(), symbols, {}, &stats);
  std::printf("complex event type occurs in the sequence: %s\n",
              accepted ? "YES" : "no");
  std::printf("matcher explored %llu configurations over %llu events\n",
              static_cast<unsigned long long>(stats.configurations),
              static_cast<unsigned long long>(stats.events_scanned));
  return accepted ? 0 : 2;
}
