#!/usr/bin/env bash
# Verifies that the documentation's pointers into the repo resolve:
#
#  (a) every relative markdown link target ([text](path) with no URL
#      scheme) exists, resolved against the linking file's directory
#      (falling back to the repo root, so README-style `docs/foo.md`
#      links work from either convention);
#  (b) every backticked source reference (`src/...`, `docs/...`,
#      `tests/...`, `bench/...`, `examples/...`, `tools/...`) names an
#      existing file or directory, and a `path:LINE` suffix does not
#      point past the end of the file.
#
# Stale docs fail ctest (the docs_links test runs this from the repo
# root), not a reader. External links (http/https/mailto) and pure
# #anchors are out of scope — nothing here touches the network.
set -u

fail=0
err() {
  echo "check_docs_links: $1" >&2
  fail=1
}

docs=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)

for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")

  # (a) markdown links.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | "#"*) continue ;;
    esac
    path="${target%%#*}" # a #fragment on a relative link is fine
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      err "$doc: broken link target '$target'"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')

  # (b) backticked source references, optionally with :LINE.
  while IFS= read -r ref; do
    path="${ref%%:*}"
    line=""
    [ "$ref" != "$path" ] && line="${ref#*:}"
    if [ ! -e "$path" ]; then
      # Extension-less references name build targets (`bench/bench_stream`,
      # `examples/quickstart`); they resolve if the source file exists.
      if [ -e "$path.cc" ] || [ -e "$path.cpp" ]; then
        continue
      fi
      err "$doc: source reference '$ref' names a missing path"
      continue
    fi
    if [ -n "$line" ] && [ -f "$path" ]; then
      total=$(wc -l <"$path")
      if [ "$line" -gt "$total" ]; then
        err "$doc: '$ref' points past the end of $path ($total lines)"
      fi
    fi
  done < <(grep -oE '`(src|docs|tests|bench|examples|tools)/[A-Za-z0-9_./-]+(:[0-9]+)?`' "$doc" | tr -d '\`')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_docs_links: all links and source references resolve"
