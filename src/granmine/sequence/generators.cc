#include "granmine/sequence/generators.h"

#include <string>

#include "granmine/common/check.h"
#include "granmine/granularity/civil_calendar.h"

namespace granmine {

Workload MakeRandomWorkload(const RandomWorkloadOptions& options) {
  GM_CHECK(options.type_count >= 1);
  Workload out;
  for (int i = 0; i < options.type_count; ++i) {
    out.registry.Intern("E" + std::to_string(i));
  }
  Rng rng(options.seed);
  TimePoint t = options.start;
  for (std::size_t i = 0; i < options.length; ++i) {
    t += rng.ArrivalGap(options.mean_gap);
    out.sequence.Add(
        static_cast<EventTypeId>(rng.Uniform(0, options.type_count - 1)), t);
  }
  return out;
}

namespace {

// The first instant of business-day tick z, plus an hour-of-day offset.
TimePoint AtHour(const Granularity& b_day, Tick z, int hour, int minute = 0) {
  std::optional<TimeSpan> hull = b_day.TickHull(z);
  GM_CHECK(hull.has_value());
  return hull->first + hour * 3600 + minute * 60;
}

}  // namespace

Workload MakeStockWorkload(const GranularitySystem& system,
                           const StockWorkloadOptions& options) {
  const Granularity* b_day = system.Find("b-day");
  GM_CHECK(b_day != nullptr) << "stock workload needs a b-day granularity";
  Workload out;
  EventTypeId ibm_rise = out.registry.Intern("IBM-rise");
  EventTypeId ibm_fall = out.registry.Intern("IBM-fall");
  EventTypeId ibm_report = out.registry.Intern("IBM-earnings-report");
  EventTypeId hp_rise = out.registry.Intern("HP-rise");
  EventTypeId hp_fall = out.registry.Intern("HP-fall");
  std::vector<EventTypeId> noise_types = {ibm_rise, ibm_fall, hp_rise,
                                          hp_fall};
  for (int i = 0; i < options.noise_ticker_count; ++i) {
    noise_types.push_back(
        out.registry.Intern("T" + std::to_string(i) + "-rise"));
    noise_types.push_back(
        out.registry.Intern("T" + std::to_string(i) + "-fall"));
  }

  Rng rng(options.seed);
  // Anchor every 4th business day as a potential pattern start; leave three
  // days of room so the planted pattern fits before the next anchor.
  for (Tick day = 1; day + 3 <= options.trading_days; day += 4) {
    if (rng.Bernoulli(options.plant_probability)) {
      TimePoint t0 = AtHour(*b_day, day, 10);       // IBM-rise
      TimePoint t1 = AtHour(*b_day, day + 1, 11);   // report, [1,1]b-day
      TimePoint t3 = AtHour(*b_day, day + 2, 15);   // IBM-fall
      TimePoint t2 = t3 - 3 * 3600;                 // HP-rise, 3h before fall
      out.sequence.Add(ibm_rise, t0);
      out.sequence.Add(ibm_report, t1);
      out.sequence.Add(hp_rise, t2);
      out.sequence.Add(ibm_fall, t3);
      ++out.planted;
    } else {
      // A lone anchor (reference occurrence without the full pattern).
      out.sequence.Add(ibm_rise, AtHour(*b_day, day, 10));
    }
  }
  // Noise: random ticker events across all trading days at random minutes
  // of the 6.5-hour session starting 09:30.
  const std::int64_t session_minutes = 390;
  double expected = options.noise_events_per_day * options.trading_days;
  std::int64_t noise_count = static_cast<std::int64_t>(expected);
  for (std::int64_t i = 0; i < noise_count; ++i) {
    Tick day = rng.Uniform(1, options.trading_days);
    std::int64_t minute = rng.Uniform(0, session_minutes - 1);
    out.sequence.Add(noise_types[rng.Index(noise_types.size())],
                     AtHour(*b_day, day, 9, 30) + minute * 60);
  }
  return out;
}

Workload MakeAtmWorkload(const GranularitySystem& system,
                         const AtmWorkloadOptions& options) {
  const Granularity* day = system.Find("day");
  GM_CHECK(day != nullptr);
  Workload out;
  std::vector<EventTypeId> deposit(options.accounts);
  std::vector<EventTypeId> withdrawal(options.accounts);
  std::vector<EventTypeId> large_withdrawal(options.accounts);
  std::vector<EventTypeId> alert(options.accounts);
  for (int a = 0; a < options.accounts; ++a) {
    std::string suffix = "-acct" + std::to_string(a);
    deposit[a] = out.registry.Intern("deposit" + suffix);
    withdrawal[a] = out.registry.Intern("withdrawal" + suffix);
    large_withdrawal[a] = out.registry.Intern("large-withdrawal" + suffix);
    alert[a] = out.registry.Intern("alert" + suffix);
  }
  Rng rng(options.seed);
  for (Tick d = 1; d + 2 <= options.days; ++d) {
    std::optional<TimeSpan> hull = day->TickHull(d);
    GM_CHECK(hull.has_value());
    for (int a = 0; a < options.accounts; ++a) {
      if (rng.Bernoulli(options.deposits_per_day / 2.0)) {
        TimePoint td = hull->first + rng.Uniform(8, 12) * 3600;
        out.sequence.Add(deposit[a], td);
        if (rng.Bernoulli(options.plant_probability)) {
          // Same-day large withdrawal, alert within two days.
          out.sequence.Add(large_withdrawal[a],
                           td + rng.Uniform(1, 8) * 3600);
          std::optional<TimeSpan> alert_day =
              day->TickHull(d + rng.Uniform(1, 2));
          out.sequence.Add(alert[a],
                           alert_day->first + rng.Uniform(0, 23) * 3600);
          ++out.planted;
        }
      }
      double spins = options.noise_withdrawals_per_day;
      while (spins > 0.0) {
        if (rng.Bernoulli(std::min(spins, 1.0))) {
          out.sequence.Add(withdrawal[a],
                           hull->first + rng.Uniform(0, 86399));
        }
        spins -= 1.0;
      }
    }
  }
  return out;
}

Workload MakePlantWorkload(const GranularitySystem& system,
                           const PlantWorkloadOptions& options) {
  const Granularity* day = system.Find("day");
  const Granularity* hour = system.Find("hour");
  GM_CHECK(day != nullptr && hour != nullptr);
  Workload out;
  EventTypeId overheat = out.registry.Intern("overheat-warning");
  EventTypeId pressure = out.registry.Intern("pressure-drop");
  EventTypeId shutdown = out.registry.Intern("emergency-shutdown");
  EventTypeId maintenance = out.registry.Intern("maintenance-check");
  Rng rng(options.seed);
  for (Tick d = 1; d <= options.days; ++d) {
    std::optional<TimeSpan> hull = day->TickHull(d);
    std::int64_t warnings =
        static_cast<std::int64_t>(options.warnings_per_day);
    for (std::int64_t w = 0; w < warnings; ++w) {
      TimePoint tw = hull->first + rng.Uniform(0, 20) * 3600;
      out.sequence.Add(overheat, tw);
      if (rng.Bernoulli(options.cascade_probability)) {
        // Pressure drop within 2 hours, shutdown within 1 more hour.
        out.sequence.Add(pressure, tw + rng.Uniform(600, 7200));
        out.sequence.Add(shutdown, tw + rng.Uniform(7300, 10700));
        ++out.planted;
      }
    }
    out.sequence.Add(maintenance, hull->first + 6 * 3600);
  }
  return out;
}

}  // namespace granmine
