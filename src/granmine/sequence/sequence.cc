#include "granmine/sequence/sequence.h"

#include <algorithm>

#include "granmine/common/check.h"

namespace granmine {

EventSequence::EventSequence(std::vector<Event> events)
    : events_(std::move(events)) {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const Event& a, const Event& b) { return a.time < b.time; });
}

void EventSequence::Add(Event event) {
  if (events_.empty() || events_.back().time <= event.time) {
    events_.push_back(event);
    return;
  }
  // upper_bound keeps equal-timestamp events in insertion order, matching
  // the stable sort the lazy implementation used to apply.
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const Event& a, const Event& b) { return a.time < b.time; });
  events_.insert(pos, event);
}

std::vector<std::size_t> EventSequence::OccurrencesOf(EventTypeId type) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].type == type) out.push_back(i);
  }
  return out;
}

std::size_t EventSequence::CountOf(EventTypeId type) const {
  std::size_t count = 0;
  for (const Event& event : events_) {
    if (event.type == type) ++count;
  }
  return count;
}

std::span<const Event> EventSequence::SuffixFrom(std::size_t from) const {
  GM_CHECK(from <= events_.size());
  return std::span<const Event>(events_).subspan(from);
}

EventSequence EventSequence::Filter(
    const std::function<bool(const Event&)>& keep) const {
  EventSequence out;
  for (const Event& event : events_) {
    if (keep(event)) out.Add(event);
  }
  return out;
}

std::vector<EventTypeId> EventSequence::DistinctTypes() const {
  std::vector<EventTypeId> types;
  for (const Event& event : events_) types.push_back(event.type);
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());
  return types;
}

}  // namespace granmine
