#include "granmine/sequence/event.h"

#include "granmine/common/check.h"

namespace granmine {

EventTypeId EventTypeRegistry::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  EventTypeId id = static_cast<EventTypeId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<EventTypeId> EventTypeRegistry::Find(
    std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& EventTypeRegistry::name(EventTypeId id) const {
  GM_CHECK(id >= 0 && id < size()) << "unknown event type id " << id;
  return names_[static_cast<std::size_t>(id)];
}

}  // namespace granmine
