#ifndef GRANMINE_SEQUENCE_SEQUENCE_H_
#define GRANMINE_SEQUENCE_SEQUENCE_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "granmine/sequence/event.h"

namespace granmine {

/// A finite event sequence (§2), kept sorted by timestamp (stable for equal
/// timestamps). Events are appended in any order; the container re-sorts
/// lazily on first read access after a mutation.
class EventSequence {
 public:
  EventSequence() = default;
  explicit EventSequence(std::vector<Event> events);

  void Add(EventTypeId type, TimePoint time) {
    events_.push_back(Event{type, time});
    sorted_ = false;
  }
  void Add(Event event) {
    events_.push_back(event);
    sorted_ = false;
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// The events in timestamp order.
  const std::vector<Event>& events() const;
  std::span<const Event> View() const { return events(); }

  /// Indices (into events()) of the occurrences of `type`.
  std::vector<std::size_t> OccurrencesOf(EventTypeId type) const;

  /// Number of occurrences of `type`.
  std::size_t CountOf(EventTypeId type) const;

  /// The suffix starting at event index `from`.
  std::span<const Event> SuffixFrom(std::size_t from) const;

  /// A new sequence with only the events satisfying `keep`.
  EventSequence Filter(const std::function<bool(const Event&)>& keep) const;

  /// Distinct event types occurring in the sequence, ascending.
  std::vector<EventTypeId> DistinctTypes() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<Event> events_;
  mutable bool sorted_ = true;
};

}  // namespace granmine

#endif  // GRANMINE_SEQUENCE_SEQUENCE_H_
