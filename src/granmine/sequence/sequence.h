#ifndef GRANMINE_SEQUENCE_SEQUENCE_H_
#define GRANMINE_SEQUENCE_SEQUENCE_H_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "granmine/sequence/event.h"

namespace granmine {

/// A finite event sequence (§2), kept sorted by timestamp at all times
/// (stable for equal timestamps: later additions order after earlier ones).
/// `Add` inserts in sorted position — O(1) amortized for the common
/// append-in-time-order case, O(n) for an out-of-order insert — and the
/// vector constructor sorts eagerly, so every const accessor is a genuinely
/// read-only operation and a fully built sequence may be shared across
/// threads without synchronization.
class EventSequence {
 public:
  EventSequence() = default;
  explicit EventSequence(std::vector<Event> events);

  void Add(EventTypeId type, TimePoint time) { Add(Event{type, time}); }
  void Add(Event event);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// The events in timestamp order.
  const std::vector<Event>& events() const { return events_; }
  std::span<const Event> View() const { return events_; }

  /// Indices (into events()) of the occurrences of `type`.
  std::vector<std::size_t> OccurrencesOf(EventTypeId type) const;

  /// Number of occurrences of `type`.
  std::size_t CountOf(EventTypeId type) const;

  /// The suffix starting at event index `from`.
  std::span<const Event> SuffixFrom(std::size_t from) const;

  /// A new sequence with only the events satisfying `keep`.
  EventSequence Filter(const std::function<bool(const Event&)>& keep) const;

  /// Distinct event types occurring in the sequence, ascending.
  std::vector<EventTypeId> DistinctTypes() const;

 private:
  std::vector<Event> events_;
};

}  // namespace granmine

#endif  // GRANMINE_SEQUENCE_SEQUENCE_H_
