#ifndef GRANMINE_SEQUENCE_EVENT_H_
#define GRANMINE_SEQUENCE_EVENT_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "granmine/common/time_span.h"

namespace granmine {

/// Dense id of an event type ("IBM-rise", "deposit", ...) within a registry.
using EventTypeId = int;

/// An event (E, t) per §2: an event type occurring at a timestamp.
struct Event {
  EventTypeId type = 0;
  TimePoint time = 0;

  bool operator==(const Event&) const = default;
};

/// Interns event-type names to dense ids. Append-only; ids are stable.
class EventTypeRegistry {
 public:
  /// Returns the id of `name`, creating it on first use.
  EventTypeId Intern(std::string_view name);

  /// The id of `name` if present.
  std::optional<EventTypeId> Find(std::string_view name) const;

  const std::string& name(EventTypeId id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EventTypeId> ids_;
};

}  // namespace granmine

#endif  // GRANMINE_SEQUENCE_EVENT_H_
