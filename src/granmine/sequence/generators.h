#ifndef GRANMINE_SEQUENCE_GENERATORS_H_
#define GRANMINE_SEQUENCE_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/common/random.h"
#include "granmine/granularity/system.h"
#include "granmine/sequence/event.h"
#include "granmine/sequence/sequence.h"

namespace granmine {

/// A generated workload: an event sequence plus its type registry and the
/// number of pattern instances intentionally planted.
struct Workload {
  EventTypeRegistry registry;
  EventSequence sequence;
  std::size_t planted = 0;
};

/// Uniformly random events with geometric inter-arrival gaps.
struct RandomWorkloadOptions {
  int type_count = 8;
  std::size_t length = 1000;
  double mean_gap = 10.0;   ///< primitive instants between events
  TimePoint start = 0;
  std::uint64_t seed = 1;
};
Workload MakeRandomWorkload(const RandomWorkloadOptions& options);

/// The Example-1 stock workload over the second-based Gregorian calendar:
/// IBM/HP rises and falls sampled on business days, earnings reports, and —
/// with probability `plant_probability` per candidate anchor day — a planted
/// instance of the Figure-1(a) pattern:
///   IBM-rise; IBM-earnings-report one business day later; HP-rise within 5
///   business days of the rise and at most 8 hours before an IBM-fall that
///   happens in the same or next week as the report.
struct StockWorkloadOptions {
  int trading_days = 120;        ///< business days generated
  double plant_probability = 0.7;
  double noise_events_per_day = 3.0;  ///< extra random ticker events per day
  int noise_ticker_count = 4;        ///< extra ticker symbols (2 types each)
  std::uint64_t seed = 1;
};
/// `system` must be the second-based Gregorian system (needs "b-day").
Workload MakeStockWorkload(const GranularitySystem& system,
                           const StockWorkloadOptions& options);

/// ATM transactions (the introduction's motivating domain): deposits,
/// withdrawals and alerts per account; plants "deposit, then a large
/// withdrawal the same day, then an alert within 2 days" with the given
/// probability per deposit.
struct AtmWorkloadOptions {
  int days = 90;
  int accounts = 5;
  double deposits_per_day = 1.0;
  double plant_probability = 0.5;
  double noise_withdrawals_per_day = 2.0;
  std::uint64_t seed = 1;
};
/// `system` must be second-based Gregorian (needs "day").
Workload MakeAtmWorkload(const GranularitySystem& system,
                         const AtmWorkloadOptions& options);

/// Industrial-plant malfunction cascades: sensor warnings escalating to
/// shutdowns within hours, with periodic maintenance noise.
struct PlantWorkloadOptions {
  int days = 60;
  double warnings_per_day = 4.0;
  double cascade_probability = 0.4;  ///< warning escalates to a full cascade
  std::uint64_t seed = 1;
};
Workload MakePlantWorkload(const GranularitySystem& system,
                           const PlantWorkloadOptions& options);

}  // namespace granmine

#endif  // GRANMINE_SEQUENCE_GENERATORS_H_
