#ifndef GRANMINE_STREAM_INGESTOR_H_
#define GRANMINE_STREAM_INGESTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "granmine/common/math.h"
#include "granmine/common/status.h"
#include "granmine/common/watermark.h"
#include "granmine/sequence/event.h"

namespace granmine {

namespace persist {
class StreamSessionCodec;
}

struct IngestorOptions {
  /// Maximum out-of-order displacement: an arrival is accepted iff its
  /// timestamp is >= max_seen - tolerance. 0 = in-order streams only.
  std::int64_t tolerance = 0;
  /// How far behind the watermark committed state is retained. kInfinity =
  /// unbounded (no eviction).
  std::int64_t retention = kInfinity;
  /// Hard cap on buffered (admitted but not yet discarded) events. 0 =
  /// unbounded — the pre-overload-PR behavior. When the buffer is full every
  /// further arrival is *shed*: counted, rejected with a retryable
  /// ResourceExhausted Status, and never admitted, so the buffer never
  /// grows past the cap and the committed group sequence stays a
  /// deterministic function of the arrival sequence (a shed arrival is
  /// exactly an arrival that never happened).
  std::size_t max_buffered_events = 0;
};

/// Reorder buffer between a live, boundedly-out-of-order event stream and
/// the order-sensitive incremental matcher.
///
/// Arrivals are buffered in canonical (time, type) order. Once the watermark
/// (`max_seen - tolerance`) passes beyond a timestamp, its equal-timestamp
/// group can no longer grow, so the whole group becomes *ready* and is
/// surfaced — in canonical order — through `Ready()` / `Discard()`. The
/// canonical order makes every downstream result a function of the event
/// multiset alone: any two arrival orders that respect the tolerance commit
/// byte-identical group sequences.
///
/// An arrival below the watermark is late — it broke the disorder bound —
/// and is rejected with a deterministic InvalidArgument; accepting it would
/// retroactively change committed groups.
///
/// The ingestor never blocks; with `max_buffered_events` unset it also never
/// drops on-time events. With the cap set, an arrival that would overflow
/// the buffer is shed — counted, and rejected with a retryable
/// ResourceExhausted — before it is admitted, so committed groups are still
/// a pure function of the admitted arrivals. Eviction of *committed* state
/// beyond the retention horizon is the consumer's job (watch `horizon()`).
class StreamIngestor {
 public:
  explicit StreamIngestor(IngestorOptions options)
      : options_(options),
        tracker_(options.tolerance, options.retention) {}

  /// Buffers one arrival. InvalidArgument iff the event is late
  /// (`time < watermark()`); the stream remains usable after a rejection.
  Status Ingest(Event event);

  /// Makes every buffered event ready and every further arrival late.
  /// Terminal: use at end of stream before a final snapshot/report.
  void Seal() { tracker_.Seal(); }

  /// The committable prefix: all buffered events with time strictly below
  /// the watermark, in canonical (time, type) order. The span is invalidated
  /// by the next Ingest/Discard. Consume whole equal-timestamp groups and
  /// acknowledge with `Discard`.
  std::span<const Event> Ready() const;

  /// Drops the first `n` ready events (caller has consumed them).
  void Discard(std::size_t n);

  /// Buffered events that are NOT yet ready (time >= watermark), canonical
  /// order. With `Ready()` fully drained this is the entire buffer — a
  /// snapshot feeds these to a cloned matcher without disturbing the live
  /// stream. Invalidated by the next Ingest/Discard.
  std::span<const Event> Buffered() const;

  TimePoint watermark() const { return tracker_.watermark(); }
  TimePoint horizon() const { return tracker_.horizon(); }
  bool sealed() const { return tracker_.sealed(); }

  /// Arrivals rejected as late so far.
  std::uint64_t late_events() const { return late_events_; }
  /// Arrivals shed because the buffer was at max_buffered_events.
  std::uint64_t shed_events() const { return shed_events_; }
  /// Events currently buffered (ready + not ready).
  std::size_t buffered_events() const { return events_.size() - head_; }

 private:
  /// Checkpoint/restore (persist/stream_codec.cc): serializes the live
  /// buffer, counters, and tracker frontier; options_ come from the caller.
  friend class persist::StreamSessionCodec;

  std::size_t ReadyEnd() const;
  void Compact();

  IngestorOptions options_;
  WatermarkTracker tracker_;
  /// events_[head_..] are live, sorted by (time, type); [0, head_) are
  /// discarded slots awaiting compaction.
  std::vector<Event> events_;
  std::size_t head_ = 0;
  std::uint64_t late_events_ = 0;
  std::uint64_t shed_events_ = 0;
};

}  // namespace granmine

#endif  // GRANMINE_STREAM_INGESTOR_H_
