#include "granmine/stream/incremental_matcher.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/obs/obs.h"

namespace granmine {

IncrementalMatcher::IncrementalMatcher(
    const Tag* tag, std::shared_ptr<const std::vector<SymbolMap>> symbols,
    std::shared_ptr<const std::vector<char>> active,
    std::uint64_t max_configurations)
    : kernel_(tag),
      symbols_(std::move(symbols)),
      active_(std::move(active)),
      max_configurations_(max_configurations),
      candidate_count_(symbols_->size()),
      active_count_(static_cast<std::size_t>(
          std::count(active_->begin(), active_->end(), char{1}))) {
  GM_CHECK(active_->size() == candidate_count_);
}

void IncrementalMatcher::Finalize(RootRuns* root) {
  GM_COUNTER_ADD("granmine_stream_root_finalizations_total", "", 1);
  for (std::size_t c = 0; c < candidate_count_; ++c) {
    ResidentRun& slot = root->slots[c];
    if ((*active_)[c] != 0 && slot.verdict == RunVerdict::kPending) {
      // The batch run would scan to end-of-input and reject: no group at or
      // before the deadline accepted, and later groups are never fed.
      slot.verdict = RunVerdict::kRejected;
      slot.run.Reset();
    }
  }
  root->pending = 0;
}

void IncrementalMatcher::AdvanceGroup(
    std::span<const Event> group, std::span<const NewRootSpawn> new_roots,
    Executor* executor, std::vector<TagKernelScratch>* scratches) {
  if (group.empty()) {
    GM_CHECK(new_roots.empty());
    return;
  }
  GM_CHECK(scratches != nullptr && !scratches->empty());
  const TimePoint time = group.front().time;

  // Retire roots whose deadline has passed before this group: the batch run
  // breaks before feeding any group beyond the deadline.
  for (std::size_t r = 0; r < roots_.size(); ++r) {
    RootRuns& root = roots_[r];
    if (root.pending > 0 && time > root.deadline) Finalize(&root);
  }

  const std::size_t first_new = roots_.size();
  for (const NewRootSpawn& spawn : new_roots) {
    GM_CHECK(spawn.pos < group.size() && spawn.deadline >= time);
    RootRuns root;
    root.t0 = time;
    root.deadline = spawn.deadline;
    root.slots.resize(candidate_count_);
    root.pending = active_count_;
    roots_.push_back(std::move(root));
  }

  // One worker per root: slots are written by exactly one thread, so the
  // advance is race-free and bitwise deterministic at every thread count.
  auto advance_root = [&](std::size_t r, int worker) {
    RootRuns& root = roots_[r];
    if (root.pending == 0) return;
    const std::span<const Event> fed =
        r >= first_new ? group.subspan(new_roots[r - first_new].pos) : group;
    TagKernelScratch& scratch =
        (*scratches)[static_cast<std::size_t>(worker)];
    for (std::size_t c = 0; c < candidate_count_; ++c) {
      if ((*active_)[c] == 0) continue;
      ResidentRun& slot = root.slots[c];
      if (slot.verdict != RunVerdict::kPending) continue;
      switch (kernel_.AdvanceGroup(fed, (*symbols_)[c], /*anchored=*/true,
                                   &slot.run, &scratch, &slot.stats,
                                   max_configurations_, /*ticket=*/nullptr)) {
        case TagKernel::GroupOutcome::kAccepted:
          slot.verdict = RunVerdict::kAccepted;
          slot.run.Reset();
          --root.pending;
          break;
        case TagKernel::GroupOutcome::kDead:
          slot.verdict = RunVerdict::kRejected;
          slot.run.Reset();
          --root.pending;
          break;
        case TagKernel::GroupOutcome::kStopped:
          slot.verdict = RunVerdict::kUnknown;
          slot.run.Reset();
          --root.pending;
          break;
        case TagKernel::GroupOutcome::kAdvanced:
          break;
      }
    }
  };

  if (executor != nullptr && executor->num_threads() > 1) {
    executor->ParallelFor(roots_.size(), advance_root);
  } else {
    for (std::size_t r = 0; r < roots_.size(); ++r) advance_root(r, 0);
  }
}

void IncrementalMatcher::EvictBefore(TimePoint horizon) {
  std::size_t evicted = 0;
  while (!roots_.empty() && roots_.front().t0 < horizon) {
    roots_.pop_front();
    ++evicted;
  }
  if (evicted > 0) {
    GM_COUNTER_ADD("granmine_stream_roots_evicted_total", "", evicted);
  }
}

std::size_t IncrementalMatcher::resident_configurations() const {
  std::size_t total = 0;
  for (std::size_t r = 0; r < roots_.size(); ++r) {
    const RootRuns& root = roots_[r];
    if (root.pending == 0) continue;
    for (const ResidentRun& slot : root.slots) {
      if (slot.verdict == RunVerdict::kPending) {
        total += slot.run.frontier.size();
      }
    }
  }
  return total;
}

std::size_t IncrementalMatcher::pending_runs() const {
  std::size_t total = 0;
  for (std::size_t r = 0; r < roots_.size(); ++r) total += roots_[r].pending;
  return total;
}

}  // namespace granmine
