#ifndef GRANMINE_STREAM_ONLINE_MINER_H_
#define GRANMINE_STREAM_ONLINE_MINER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "granmine/common/executor.h"
#include "granmine/common/math.h"
#include "granmine/common/result.h"
#include "granmine/common/ring_buffer.h"
#include "granmine/constraint/propagation.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/discovery.h"
#include "granmine/mining/miner.h"
#include "granmine/mining/reduction.h"
#include "granmine/stream/incremental_matcher.h"
#include "granmine/stream/ingestor.h"
#include "granmine/tag/builder.h"

namespace granmine {

namespace persist {
class StreamSessionCodec;
}

struct OnlineMinerOptions {
  /// Out-of-order tolerance of the input stream (see StreamIngestor).
  std::int64_t tolerance = 0;
  /// Retention horizon: reference occurrences anchored more than this far
  /// behind the watermark are evicted with their counts retracted, so a
  /// snapshot covers exactly the retained suffix. kInfinity = keep all.
  std::int64_t retention = kInfinity;
  /// Step-5 parallelism for both the per-group advance (fanned across
  /// roots) and snapshot candidate merges. Same semantics as
  /// MinerOptions::num_threads.
  int num_threads = 1;
  /// Candidate-space cap. Unlike the batch miner, the streaming miner keeps
  /// one resident run per (root, candidate), so memory is
  /// O(max_candidates × resident roots) — hence the much lower default.
  std::uint64_t max_candidates = 100'000;
  /// Matcher budget per anchored run.
  std::uint64_t max_configurations_per_run = 50'000'000;
  /// Reorder-buffer cap (see IngestorOptions::max_buffered_events): 0 =
  /// unbounded; otherwise arrivals beyond the cap are shed with a counted,
  /// retryable ResourceExhausted instead of growing the buffer. Shed
  /// arrivals never enter the retained prefix, so the equivalence contract
  /// holds over the *admitted* arrivals verbatim.
  std::size_t max_buffered_events = 0;
  /// Request id (obs/context.h) stamped by the Engine when the stream is
  /// opened; every ingest/evict/snapshot span and log line of this session
  /// attributes to it. Not part of the checkpoint fingerprint.
  std::uint64_t request_id = 0;

  /// The batch MinerOptions every snapshot is byte-identical to: steps 1/2
  /// and window deadlines on (they are per-event/per-root monotone), steps
  /// 3/4 off (their pruning depends on the whole sequence, which a stream
  /// never has), partial-result policy.
  MinerOptions BatchEquivalent() const {
    MinerOptions batch;
    batch.check_consistency = true;
    batch.reduce_sequence = true;
    batch.reduce_roots = false;
    batch.screening_depth = 0;
    batch.use_window_deadlines = true;
    batch.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    batch.max_candidates = max_candidates;
    batch.max_configurations_per_run = max_configurations_per_run;
    batch.num_threads = num_threads;
    batch.request_id = request_id;
    return batch;
  }
};

/// Online §5 discovery over a live event stream: ingests boundedly
/// out-of-order events, folds each committed group into resident TAG runs
/// exactly once (IncrementalMatcher), and serves mining-report snapshots on
/// demand without rescanning history.
///
/// **Equivalence contract** (the subsystem's invariant, enforced by
/// tests/stream_test.cc): at any point, `Snapshot()` is byte-identical to
/// `Miner(system, options.BatchEquivalent()).Mine(problem, prefix)` where
/// `prefix` is the canonical sequence of every retained committed event plus
/// everything still buffered — at every thread count, and under any
/// governor whose trips are deterministic (injected kMine faults, local
/// budgets). Late events never enter `prefix`; evicted groups leave it,
/// with their root and frequency contributions retracted.
///
/// Differences from the batch entry point, all checked at Create:
///  - every non-root variable needs an explicit non-empty allowed set (the
///    batch default — "the sequence's distinct types" — is unknowable on a
///    stream);
///  - the problem is validated once, up front;
///  - an inconsistent structure still yields a miner (snapshots report
///    refuted_by_propagation, with only the event counters live).
///
/// `problem.structure` and `system` must outlive the miner. Not thread-safe
/// externally; internally the group advance fans out across an executor.
class OnlineMiner {
 public:
  static Result<OnlineMiner> Create(GranularitySystem* system,
                                    const DiscoveryProblem& problem,
                                    OnlineMinerOptions options);

  OnlineMiner(OnlineMiner&&) = default;
  OnlineMiner& operator=(OnlineMiner&&) = default;

  /// Feeds one arrival. InvalidArgument iff the event is late (rejected,
  /// stream stays usable); otherwise buffers it and folds every group the
  /// advanced watermark committed into the resident runs.
  Status Ingest(Event event);
  Status Ingest(EventTypeId type, TimePoint time) {
    return Ingest(Event{type, time});
  }

  /// Terminal flush: commits everything buffered (no further out-of-order
  /// slack) and makes every later arrival late. Use before the final
  /// snapshot at end of stream.
  void Seal();

  /// The mining report over the current retained prefix — see the
  /// equivalence contract above. Cheap relative to a batch re-scan: runs
  /// are already decided or resident; the snapshot clones the resident
  /// state, flushes the reorder buffer into the clone, and merges verdicts
  /// in candidate order (deterministic at every thread count). `governor`
  /// applies to the merge scan only, mirroring the batch step-5 charge
  /// points (GovernorScope::kMine, global candidate index).
  Result<MiningReport> Snapshot(const ResourceGovernor* governor = nullptr);

  // --- telemetry -----------------------------------------------------------
  TimePoint watermark() const { return ingestor_.watermark(); }
  TimePoint horizon() const { return ingestor_.horizon(); }
  std::size_t buffered_events() const { return ingestor_.buffered_events(); }
  std::uint64_t late_events() const { return ingestor_.late_events(); }
  std::uint64_t shed_events() const { return ingestor_.shed_events(); }
  /// Reference occurrences with resident (live or frozen) runs.
  std::size_t resident_roots() const {
    return core_.matcher.has_value() ? core_.matcher->root_count() : 0;
  }
  /// Live TAG configurations across all pending resident runs — the E11
  /// resident-state metric.
  std::size_t resident_configurations() const {
    return core_.matcher.has_value() ? core_.matcher->resident_configurations()
                                     : 0;
  }
  std::size_t pending_runs() const {
    return core_.matcher.has_value() ? core_.matcher->pending_runs() : 0;
  }
  std::uint64_t candidates() const { return scan_total_; }

 private:
  /// Checkpoint/restore (persist/stream_codec.cc): serializes the dynamic
  /// state (ingestor buffer, core counters/groups, resident runs) against a
  /// fingerprint of the static configuration; everything else is re-derived
  /// by Create on restore.
  friend class persist::StreamSessionCodec;

  /// Accounting for one committed equal-timestamp group, retained so
  /// eviction can retract exactly what the group contributed.
  struct GroupRecord {
    TimePoint time = 0;
    std::size_t raw = 0;        ///< raw events committed
    std::size_t raw_roots = 0;  ///< raw reference occurrences
    std::size_t reduced = 0;    ///< events surviving step-2 reduction
  };

  /// Every piece of mutable mining state a snapshot must see — deep-copied
  /// by Snapshot so the reorder buffer can be flushed into the copy without
  /// committing it on the live stream.
  struct Core {
    std::size_t raw_events = 0;
    std::size_t raw_roots = 0;
    std::size_t reduced_events = 0;
    RingBuffer<GroupRecord> groups;
    /// Absent when propagation refuted the structure (nothing to match).
    std::optional<IncrementalMatcher> matcher;
  };

  OnlineMiner(GranularitySystem* system, DiscoveryProblem problem,
              OnlineMinerOptions options, VariableId root,
              std::unique_ptr<PropagationResult> propagation);

  /// Folds every group the ingestor has made ready into `core_`, then
  /// applies retention eviction.
  void DrainReady();
  void CommitGroup(Core* core, std::span<const Event> raw_group);
  void EvictCore(Core* core, TimePoint horizon);

  GranularitySystem* system_;
  DiscoveryProblem problem_;
  OnlineMinerOptions options_;
  VariableId root_;
  /// Heap-allocated for address stability (reducer_ points into it).
  std::unique_ptr<PropagationResult> propagation_;
  bool consistent_;
  std::vector<std::vector<EventTypeId>> allowed_;
  int type_count_;
  std::uint64_t candidates_before_;
  std::uint64_t scan_total_;
  bool clamped_;
  /// Owns the skeleton Tag the resident kernels point at (address-stable);
  /// null when the structure is inconsistent.
  std::unique_ptr<TagBuildResult> skeleton_;
  std::optional<EventReducer> reducer_;

  StreamIngestor ingestor_;
  Core core_;

  /// Group-advance fan-out pool (null when effectively serial) and the
  /// per-worker kernel scratches (at least one).
  std::unique_ptr<Executor> executor_;
  std::vector<TagKernelScratch> scratches_;

  // Commit scratch (contents ephemeral; kept to avoid reallocation).
  std::vector<Event> reduced_scratch_;
  std::vector<IncrementalMatcher::NewRootSpawn> spawn_scratch_;
};

}  // namespace granmine

#endif  // GRANMINE_STREAM_ONLINE_MINER_H_
