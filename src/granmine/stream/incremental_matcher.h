#ifndef GRANMINE_STREAM_INCREMENTAL_MATCHER_H_
#define GRANMINE_STREAM_INCREMENTAL_MATCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "granmine/common/executor.h"
#include "granmine/common/ring_buffer.h"
#include "granmine/sequence/event.h"
#include "granmine/tag/step_kernel.h"

namespace granmine {

namespace persist {
class StreamSessionCodec;
}

/// Verdict of one resident (root, candidate) run.
enum class RunVerdict : std::uint8_t {
  kPending,   ///< frontier live; more groups may decide it
  kAccepted,  ///< anchored match found (monotone: final)
  kRejected,  ///< frontier died, or the root's deadline passed while pending
  kUnknown,   ///< per-run configuration budget exhausted
};

/// One resident anchored TAG run: the frontier (while pending) plus the
/// stats the batch matcher would have reported for the same run. Once
/// decided, the frontier is released and the stats freeze — a decided run
/// costs ~sizeof this struct until its root is evicted.
struct ResidentRun {
  TagRunState run;
  MatchStats stats;
  RunVerdict verdict = RunVerdict::kPending;
};

/// A reference occurrence committed from the stream: one resident run per
/// candidate assignment, anchored at the occurrence.
struct RootRuns {
  TimePoint t0 = 0;
  /// From ComputeRootWindows: groups after this instant cannot affect the
  /// root, so passing it finalizes every pending run as rejected (the main
  /// GC lever of the streaming subsystem).
  TimePoint deadline = 0;
  std::vector<ResidentRun> slots;  ///< indexed by candidate
  /// Active candidates still pending (skip-whole-root optimization;
  /// maintained only on the serial paths and by the owning worker).
  std::size_t pending = 0;
};

/// Keeps the TAG configuration sets of every live (root, candidate) pair
/// resident across committed groups, so each event is folded into every
/// affected run exactly once — the streaming replacement for batch step 5's
/// full re-scan.
///
/// Equivalence contract: after advancing over the same canonical group
/// sequence the batch matcher would scan, every slot's (verdict, stats) is
/// exactly what `TagMatcher::Run` returns for that (root suffix, candidate)
/// — both sides drive the shared `TagKernel` through identical group
/// advances. Roots are finalized (pending → rejected, frontier freed) as
/// soon as the first group beyond their deadline commits; the batch run
/// would simply never feed those groups, so outcomes and stats agree.
///
/// Work fans out across roots on the executor: each root is advanced by one
/// worker, so slot updates are race-free and results are bitwise identical
/// at every thread count. Not thread-safe externally.
class IncrementalMatcher {
 public:
  /// A reference occurrence to spawn during AdvanceGroup: `pos` indexes the
  /// occurrence inside the (reduced, canonical) group — its first advance
  /// covers the group suffix from `pos`, mirroring the batch scan of
  /// `SuffixFrom(occurrence)`.
  struct NewRootSpawn {
    std::size_t pos = 0;
    TimePoint deadline = 0;
  };

  /// `tag` must outlive the matcher. `symbols[c]` / `(*active)[c]` describe
  /// candidate c (shared, immutable — snapshot clones alias them).
  /// Inactive candidates (statically refuted by type constraints) get no
  /// runs, matching the batch evaluator's early return.
  IncrementalMatcher(const Tag* tag,
                     std::shared_ptr<const std::vector<SymbolMap>> symbols,
                     std::shared_ptr<const std::vector<char>> active,
                     std::uint64_t max_configurations);

  /// Advances every live run over one committed group (non-empty, one
  /// timestamp, canonical order, already reduced), spawning `new_roots`
  /// first. `executor` may be null (inline serial); `scratches` must have
  /// one entry per executor worker (at least one).
  void AdvanceGroup(std::span<const Event> group,
                    std::span<const NewRootSpawn> new_roots,
                    Executor* executor,
                    std::vector<TagKernelScratch>* scratches);

  /// Drops every root with t0 strictly below `horizon` (retention eviction;
  /// roots leave in commit order from the front).
  void EvictBefore(TimePoint horizon);

  std::size_t root_count() const { return roots_.size(); }
  /// Roots in commit (= canonical time) order — the batch scan order.
  const RootRuns& root(std::size_t i) const { return roots_[i]; }

  std::size_t candidate_count() const { return candidate_count_; }

  /// Live TAG configurations across all pending runs (telemetry; the E11
  /// resident-state metric).
  std::size_t resident_configurations() const;
  /// Pending (undecided) runs across all roots.
  std::size_t pending_runs() const;

 private:
  /// Checkpoint/restore (persist/stream_codec.cc): serializes roots_ (the
  /// only dynamic state); kernel/symbols/active are rebuilt by Create.
  friend class persist::StreamSessionCodec;

  void Finalize(RootRuns* root);

  TagKernel kernel_;
  std::shared_ptr<const std::vector<SymbolMap>> symbols_;
  std::shared_ptr<const std::vector<char>> active_;
  std::uint64_t max_configurations_;
  std::size_t candidate_count_;
  std::size_t active_count_;
  RingBuffer<RootRuns> roots_;
};

}  // namespace granmine

#endif  // GRANMINE_STREAM_INCREMENTAL_MATCHER_H_
