#include "granmine/stream/ingestor.h"

#include <algorithm>
#include <string>

#include "granmine/common/check.h"
#include "granmine/obs/obs.h"

namespace granmine {

namespace {

bool CanonicalLess(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.type < b.type;
}

}  // namespace

Status StreamIngestor::Ingest(Event event) {
  if (tracker_.IsLate(event.time)) {
    ++late_events_;
    GM_COUNTER_ADD("granmine_stream_events_late_total", "", 1);
    return Status::Invalid(
        "late event: type " + std::to_string(event.type) + " at t=" +
        std::to_string(event.time) + " is below the watermark t=" +
        std::to_string(tracker_.watermark()) +
        " (out-of-order tolerance exceeded)");
  }
  if (options_.max_buffered_events > 0 &&
      buffered_events() >= options_.max_buffered_events) {
    // Shedding happens BEFORE the watermark observes the arrival: a shed
    // event is an arrival that never happened, so the committed group
    // sequence stays a deterministic function of the admitted arrivals.
    ++shed_events_;
    GM_COUNTER_ADD("granmine_stream_events_shed_total", "", 1);
    return Status::ResourceExhausted(
        "reorder buffer full (" +
        std::to_string(options_.max_buffered_events) +
        " events buffered): arrival shed; retry after the consumer drains "
        "ready groups");
  }
  tracker_.Observe(event.time);
  auto pos = std::upper_bound(events_.begin() + static_cast<std::ptrdiff_t>(
                                                    head_),
                              events_.end(), event, CanonicalLess);
  events_.insert(pos, event);
  return Status::OK();
}

std::size_t StreamIngestor::ReadyEnd() const {
  const TimePoint mark = tracker_.watermark();
  // First live index with time >= mark; everything before it is committable.
  auto it = std::lower_bound(
      events_.begin() + static_cast<std::ptrdiff_t>(head_), events_.end(),
      mark,
      [](const Event& e, TimePoint t) { return e.time < t; });
  return static_cast<std::size_t>(it - events_.begin());
}

std::span<const Event> StreamIngestor::Ready() const {
  return {events_.data() + head_, ReadyEnd() - head_};
}

std::span<const Event> StreamIngestor::Buffered() const {
  const std::size_t ready_end = ReadyEnd();
  return {events_.data() + ready_end, events_.size() - ready_end};
}

void StreamIngestor::Discard(std::size_t n) {
  GM_CHECK(head_ + n <= ReadyEnd()) << "Discard beyond the ready prefix";
  head_ += n;
  Compact();
}

void StreamIngestor::Compact() {
  if (head_ >= 1024 && head_ * 2 >= events_.size()) {
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

}  // namespace granmine
