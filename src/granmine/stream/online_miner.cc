#include "granmine/stream/online_miner.h"

#include <algorithm>
#include <utility>

#include "granmine/common/check.h"
#include "granmine/mining/scan_driver.h"
#include "granmine/mining/windows.h"
#include "granmine/obs/context.h"
#include "granmine/obs/obs.h"

namespace granmine {

namespace {

// Smallest type universe covering σ and E0. The batch miner also folds the
// sequence's types in, but step-2 reduction drops every event whose type
// lies outside σ ∪ {E0} before the matcher sees it, so the smaller universe
// is behavior-identical.
int StreamTypeUniverseSize(
    const DiscoveryProblem& problem,
    const std::vector<std::vector<EventTypeId>>& allowed) {
  EventTypeId max_type = problem.reference_type;
  for (const std::vector<EventTypeId>& types : allowed) {
    for (EventTypeId type : types) max_type = std::max(max_type, type);
  }
  return max_type + 1;
}

}  // namespace

OnlineMiner::OnlineMiner(GranularitySystem* system, DiscoveryProblem problem,
                         OnlineMinerOptions options, VariableId root,
                         std::unique_ptr<PropagationResult> propagation)
    : system_(system),
      problem_(std::move(problem)),
      options_(options),
      root_(root),
      propagation_(std::move(propagation)),
      consistent_(propagation_->consistent),
      allowed_(ResolveAllowedTypes(problem_, EventSequence{}, root_)),
      type_count_(StreamTypeUniverseSize(problem_, allowed_)),
      candidates_before_(CandidateCount(allowed_, root_)),
      scan_total_(std::min(candidates_before_, options_.max_candidates)),
      clamped_(candidates_before_ > options_.max_candidates),
      ingestor_(IngestorOptions{options_.tolerance, options_.retention,
                                options_.max_buffered_events}),
      scratches_(static_cast<std::size_t>(
          Executor::Resolve(options_.num_threads))) {
  if (consistent_) reducer_.emplace(propagation_.get(), allowed_);
  if (Executor::Resolve(options_.num_threads) > 1) {
    executor_ = std::make_unique<Executor>(options_.num_threads);
  }
}

Result<OnlineMiner> OnlineMiner::Create(GranularitySystem* system,
                                        const DiscoveryProblem& problem,
                                        OnlineMinerOptions options) {
  GM_CHECK(system != nullptr);
  if (problem.structure == nullptr) {
    return Status::Invalid("discovery problem has no structure");
  }
  GM_ASSIGN_OR_RETURN(VariableId root, problem.structure->FindRoot());
  const EventStructure& structure = *problem.structure;
  for (const TypeConstraint& constraint : problem.type_constraints) {
    if (constraint.a < 0 || constraint.a >= structure.variable_count() ||
        constraint.b < 0 || constraint.b >= structure.variable_count()) {
      return Status::Invalid("type constraint references unknown variables");
    }
  }
  if (options.tolerance < 0) {
    return Status::Invalid("stream tolerance must be non-negative");
  }
  if (options.retention < 0) {
    return Status::Invalid("stream retention must be non-negative");
  }
  for (VariableId v = 0; v < structure.variable_count(); ++v) {
    if (v == root) continue;
    if (static_cast<std::size_t>(v) >= problem.allowed.size() ||
        problem.allowed[static_cast<std::size_t>(v)].empty()) {
      return Status::Invalid(
          "streaming discovery requires an explicit non-empty allowed-type "
          "set for every non-root variable (the batch default expands free "
          "variables to the sequence's distinct types, which a stream never "
          "knows)");
    }
  }

  ConstraintPropagator propagator(&system->tables(), &system->coverage(),
                                  PropagationOptions{});
  GM_ASSIGN_OR_RETURN(PropagationResult propagated,
                      propagator.Propagate(structure));
  OnlineMiner miner(system, problem, options, root,
                    std::make_unique<PropagationResult>(std::move(propagated)));

  if (miner.consistent_) {
    GM_ASSIGN_OR_RETURN(TagBuildResult skeleton,
                        BuildTagForStructure(structure));
    miner.skeleton_ = std::make_unique<TagBuildResult>(std::move(skeleton));

    // Precompute every candidate's symbol map and static (type-constraint)
    // verdict once; the resident matcher and every snapshot share them.
    auto symbols = std::make_shared<std::vector<SymbolMap>>();
    auto active = std::make_shared<std::vector<char>>();
    symbols->reserve(static_cast<std::size_t>(miner.scan_total_));
    active->reserve(static_cast<std::size_t>(miner.scan_total_));
    std::vector<std::size_t> odometer =
        OdometerAt(miner.allowed_, miner.root_, 0);
    std::vector<EventTypeId> phi(miner.allowed_.size());
    for (std::uint64_t index = 0; index < miner.scan_total_; ++index) {
      for (std::size_t v = 0; v < phi.size(); ++v) {
        phi[v] = miner.allowed_[v][odometer[v]];
      }
      bool satisfied = true;
      for (const TypeConstraint& constraint : problem.type_constraints) {
        if (!constraint.SatisfiedBy(phi)) {
          satisfied = false;
          break;
        }
      }
      active->push_back(satisfied ? char{1} : char{0});
      symbols->push_back(
          satisfied ? SymbolMap::FromAssignment(phi, miner.type_count_)
                    : SymbolMap{});
      AdvanceOdometer(miner.allowed_, miner.root_, &odometer);
    }
    miner.core_.matcher.emplace(&miner.skeleton_->tag, std::move(symbols),
                                std::move(active),
                                options.max_configurations_per_run);
  }
  return miner;
}

Status OnlineMiner::Ingest(Event event) {
  obs::RequestScope gm_obs_request(options_.request_id);
  GM_TRACE_SPAN("stream_ingest");
  GM_RETURN_NOT_OK(ingestor_.Ingest(event));
  GM_COUNTER_ADD("granmine_stream_events_ingested_total", "", 1);
  DrainReady();
  return Status::OK();
}

void OnlineMiner::Seal() {
  obs::RequestScope gm_obs_request(options_.request_id);
  ingestor_.Seal();
  DrainReady();
}

void OnlineMiner::DrainReady() {
  std::span<const Event> ready = ingestor_.Ready();
  std::size_t i = 0;
  while (i < ready.size()) {
    std::size_t j = i + 1;
    while (j < ready.size() && ready[j].time == ready[i].time) ++j;
    CommitGroup(&core_, ready.subspan(i, j - i));
    i = j;
  }
  if (!ready.empty()) ingestor_.Discard(ready.size());
  {
    GM_TRACE_SPAN("stream_evict");
    EvictCore(&core_, ingestor_.horizon());
  }
}

void OnlineMiner::CommitGroup(Core* core, std::span<const Event> raw_group) {
  GM_TRACE_SPAN("stream_commit_group");
  // Only the live core's commits count as stream progress; the snapshot path
  // re-commits the reorder buffer into a throwaway clone.
  if (core == &core_) {
    GM_COUNTER_ADD("granmine_stream_groups_committed_total", "", 1);
  }
  GroupRecord record;
  record.time = raw_group.front().time;
  record.raw = raw_group.size();
  for (const Event& event : raw_group) {
    if (event.type == problem_.reference_type) ++record.raw_roots;
  }
  reduced_scratch_.clear();
  if (consistent_) {
    for (const Event& event : raw_group) {
      if (reducer_->Keep(event)) reduced_scratch_.push_back(event);
    }
  }
  record.reduced = reduced_scratch_.size();
  core->raw_events += record.raw;
  core->raw_roots += record.raw_roots;
  core->reduced_events += record.reduced;
  core->groups.push_back(record);
  if (!core->matcher.has_value() || reduced_scratch_.empty()) return;

  spawn_scratch_.clear();
  bool have_windows = false;
  TimePoint deadline = kInfinity;
  for (std::size_t pos = 0; pos < reduced_scratch_.size(); ++pos) {
    if (reduced_scratch_[pos].type != problem_.reference_type) continue;
    if (!have_windows) {
      // One window computation serves every reference occurrence of the
      // group (they share t0).
      deadline = ComputeRootWindows(*problem_.structure, root_, *propagation_,
                                    record.time)
                     .deadline;
      have_windows = true;
    }
    spawn_scratch_.push_back({pos, deadline});
  }
  if (core == &core_ && !spawn_scratch_.empty()) {
    GM_COUNTER_ADD("granmine_stream_roots_spawned_total", "",
                   spawn_scratch_.size());
  }
  core->matcher->AdvanceGroup(reduced_scratch_, spawn_scratch_,
                              executor_.get(), &scratches_);
}

void OnlineMiner::EvictCore(Core* core, TimePoint horizon) {
  while (!core->groups.empty() && core->groups.front().time < horizon) {
    const GroupRecord& record = core->groups.front();
    core->raw_events -= record.raw;
    core->raw_roots -= record.raw_roots;
    core->reduced_events -= record.reduced;
    core->groups.pop_front();
  }
  if (core->matcher.has_value()) core->matcher->EvictBefore(horizon);
}

Result<MiningReport> OnlineMiner::Snapshot(const ResourceGovernor* governor) {
  obs::RequestScope gm_obs_request(options_.request_id);
  GM_TRACE_SPAN("stream_snapshot");
  GM_COUNTER_ADD("granmine_stream_snapshots_total", "", 1);
  std::span<const Event> buffered = ingestor_.Buffered();

  MiningReport report;
  report.total_roots = core_.raw_roots;
  for (const Event& event : buffered) {
    if (event.type == problem_.reference_type) ++report.total_roots;
  }
  report.events_before = core_.raw_events + buffered.size();
  if (report.total_roots == 0) {
    return report;  // the problem is defined only when E0 occurs
  }
  if (!consistent_) {
    report.refuted_by_propagation = true;
    report.events_after_reduction = report.events_before;
    return report;
  }

  // Flush the reorder buffer into a clone of the resident state; the live
  // stream keeps its tolerance slack.
  Core flushed = core_;
  std::size_t i = 0;
  while (i < buffered.size()) {
    std::size_t j = i + 1;
    while (j < buffered.size() && buffered[j].time == buffered[i].time) ++j;
    CommitGroup(&flushed, buffered.subspan(i, j - i));
    i = j;
  }

  report.candidates_before = candidates_before_;
  report.events_after_reduction = flushed.reduced_events;
  report.roots_after_reduction = flushed.matcher->root_count();
  report.candidates_after_screening = candidates_before_;
  if (report.candidates_after_screening == 0) return report;

  // Step-5 merge: identical accounting to the batch scan, with each
  // (root, candidate) verdict read from its resident run instead of being
  // recomputed.
  const IncrementalMatcher& matcher = *flushed.matcher;
  const std::size_t root_count = matcher.root_count();
  const std::size_t total_roots = report.total_roots;
  auto evaluate = [&](const std::vector<EventTypeId>& phi,
                      std::uint64_t index, int /*worker*/, ScanOutcome* out,
                      StopCause* reason) {
    for (const TypeConstraint& constraint : problem_.type_constraints) {
      if (!constraint.SatisfiedBy(phi)) {
        ++out->refuted;  // statically excluded: decided without a scan
        return CandidateFate::kDecided;
      }
    }
    std::size_t matched = 0;
    for (std::size_t r = 0; r < root_count; ++r) {
      const ResidentRun& slot =
          matcher.root(r).slots[static_cast<std::size_t>(index)];
      ++out->tag_runs;
      out->configurations += slot.stats.configurations;
      out->transitions += slot.stats.transitions;
      out->kernel_groups += slot.stats.groups_advanced;
      if (slot.verdict == RunVerdict::kUnknown) {
        *reason = slot.stats.stopped != StopCause::kNone
                      ? slot.stats.stopped
                      : StopCause::kStepBudget;
        if (slot.stats.budget_exhausted) out->budget_exhausted = true;
        return CandidateFate::kUnknown;
      }
      // kPending at snapshot time = the batch run reaches end of prefix
      // without accepting: rejected.
      if (slot.verdict == RunVerdict::kAccepted) ++matched;
    }
    double frequency =
        static_cast<double>(matched) / static_cast<double>(total_roots);
    if (frequency > problem_.min_confidence) {
      out->solutions.push_back(DiscoveredType{phi, frequency, matched});
      ++out->confirmed;
    } else {
      ++out->refuted;
    }
    return CandidateFate::kDecided;
  };

  ScanDriverOptions scan_options;
  scan_options.num_threads = options_.num_threads;
  scan_options.partial = true;
  scan_options.governor = governor;
  scan_options.request_id = options_.request_id;
  ScanMergeResult merged =
      ScanCandidates(allowed_, root_, scan_total_, scan_options, evaluate);
  GM_RETURN_NOT_OK(merged.status);
  report.tag_runs += merged.tag_runs;
  report.matcher_configurations += merged.configurations;
  report.completeness.confirmed = merged.confirmed;
  report.completeness.refuted = merged.refuted;
  report.completeness.unknown = merged.unknown;
  report.completeness.not_evaluated = merged.not_evaluated;
  report.solutions = std::move(merged.solutions);
  report.unknown_sample = std::move(merged.unknown_sample);
  StopCause first_stop = merged.first_stop;
  if (clamped_) {
    report.completeness.not_evaluated +=
        report.candidates_after_screening - scan_total_;
    if (first_stop == StopCause::kNone) first_stop = StopCause::kStepBudget;
  }
  report.completeness.stop = first_stop;
  report.completeness.complete = report.completeness.unknown == 0 &&
                                 report.completeness.not_evaluated == 0;
  return report;
}

}  // namespace granmine
