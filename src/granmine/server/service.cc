#include "granmine/server/service.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <utility>

#include "granmine/common/math.h"
#include "granmine/constraint/exact.h"
#include "granmine/constraint/propagation.h"
#include "granmine/io/cli_args.h"
#include "granmine/io/dot.h"
#include "granmine/mining/explain.h"
#include "granmine/obs/log.h"
#include "granmine/tag/builder.h"

namespace granmine::server {

namespace {

// printf-append into a string: the service renders with the CLI's exact
// format strings, so the bytes match std::printf output by construction.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  char stack[512];
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(stack, sizeof(stack), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack)) {
    out->append(stack, static_cast<std::size_t>(needed));
  } else {
    std::string big(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, copy);
    out->append(big.data(), static_cast<std::size_t>(needed));
  }
  va_end(copy);
}

std::string FormatDouble2(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

// The service twin of the CLI's CliDiag: the structured record is emitted
// here (component "cli", preserving the --log-out record shape), the legacy
// stderr rendering is returned in CallResult::diag for the caller to print
// or ship.
void ServiceDiag(obs::LogLevel level, const char* message,
                 std::initializer_list<obs::LogField> fields,
                 const std::string& legacy, CallResult* result) {
  obs::EventLog::Global().Log(nullptr, level, "cli", message, fields);
  result->diag += legacy;
}

// Shared flag validation: renders the parse error and the CLI's usage exit
// code into `result`.
template <typename T>
bool Validated(Result<T> parsed, T* out, CallResult* result) {
  if (!parsed.ok()) {
    result->err += parsed.status().ToString() + "\n";
    result->exit_code = 64;
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

// Resolves pin bindings into problem->allowed; on failure renders the CLI's
// message and exit code.
bool ApplyPins(const std::vector<std::string>& pins,
               const std::vector<std::string>& names,
               EventTypeRegistry* registry, bool intern_types,
               DiscoveryProblem* problem, CallResult* result) {
  for (const std::string& pin : pins) {
    std::size_t eq = pin.find('=');
    if (eq == std::string::npos) {
      AppendF(&result->err, "bad --pin '%s' (expected VAR=TYPE)\n",
              pin.c_str());
      result->exit_code = 64;
      return false;
    }
    std::string var = pin.substr(0, eq), type = pin.substr(eq + 1);
    auto var_it = std::find(names.begin(), names.end(), var);
    if (var_it == names.end()) {
      AppendF(&result->err, "unknown variable in --pin '%s'\n", pin.c_str());
      result->exit_code = 65;
      return false;
    }
    std::optional<EventTypeId> type_id;
    if (intern_types) {
      type_id = registry->Intern(type);
    } else {
      type_id = registry->Find(type);
      if (!type_id.has_value()) {
        AppendF(&result->err, "unknown type in --pin '%s'\n", pin.c_str());
        result->exit_code = 65;
        return false;
      }
    }
    problem->allowed[static_cast<std::size_t>(var_it - names.begin())] = {
        *type_id};
  }
  return true;
}

void AppendStreamSnapshot(const MiningReport& report, const std::string& label,
                          const OnlineMiner& miner,
                          const std::vector<std::string>& names,
                          const EventTypeRegistry& registry,
                          std::string* out) {
  AppendF(out,
          "[%s] roots=%zu events=%zu resident-configs=%zu "
          "solutions=%zu%s\n",
          label.c_str(), report.total_roots, report.events_before,
          miner.resident_configurations(), report.solutions.size(),
          report.completeness.complete ? "" : " (partial)");
  for (const DiscoveredType& found : report.solutions) {
    AppendF(out, "  freq %.3f:", found.frequency);
    for (std::size_t v = 0; v < found.assignment.size(); ++v) {
      AppendF(out, " %s=%s", names[v].c_str(),
              registry.name(found.assignment[v]).c_str());
    }
    out->append("\n");
  }
}

}  // namespace

CallResult ServeMine(Engine* engine, const MineCall& call) {
  CallResult result;
  std::vector<std::string> names;
  auto structure =
      ParseEventStructure(call.structure_text, engine->system(), &names);
  if (!structure.ok()) {
    result.err = "structure: " + structure.status().ToString() + "\n";
    result.exit_code = 65;
    return result;
  }
  EventTypeRegistry registry;
  auto sequence = ParseEventSequence(call.events_text, &registry);
  if (!sequence.ok()) {
    result.err = "events: " + sequence.status().ToString() + "\n";
    result.exit_code = 65;
    return result;
  }
  auto reference = registry.Find(call.reference);
  if (!reference.has_value()) {
    AppendF(&result.err, "reference type '%s' does not occur\n",
            call.reference.c_str());
    result.exit_code = 65;
    return result;
  }
  DiscoveryProblem problem;
  problem.structure = &*structure;
  problem.reference_type = *reference;
  problem.min_confidence = 0.5;
  if (!call.confidence.empty() &&
      !Validated(ParseConfidence("confidence", call.confidence),
                 &problem.min_confidence, &result)) {
    return result;
  }
  problem.allowed.assign(static_cast<std::size_t>(structure->variable_count()),
                         {});
  if (!ApplyPins(call.pins, names, &registry, /*intern_types=*/false, &problem,
                 &result)) {
    return result;
  }

  MineRequest request;
  request.problem = &problem;
  request.sequence = &*sequence;
  request.options = call.naive ? MinerOptions::Naive() : MinerOptions{};
  if (!call.on_budget.empty()) {
    if (call.on_budget == "abort") {
      request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kAbort;
    } else if (call.on_budget == "partial") {
      request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
    } else {
      AppendF(&result.err,
              "--on-budget expects 'abort' or 'partial', got '%s'\n",
              call.on_budget.c_str());
      result.exit_code = 64;
      return result;
    }
  } else if (call.default_partial) {
    // A deadline without an explicit policy degrades gracefully: report
    // whatever was decided instead of failing the whole run.
    request.options.on_exhaustion = MinerOptions::ExhaustionPolicy::kPartial;
  }
  auto response = engine->Mine(request);
  if (!response.ok()) {
    result.engine_status = response.status();
    result.err = "mining: " + response.status().ToString() + "\n";
    result.exit_code = 70;
    return result;
  }
  const MiningReport& report = response->report;
  {
    const std::string stop =
        std::string(StopCauseToString(report.completeness.stop));
    const std::string elapsed = FormatDouble2(response->elapsed_ms);
    const std::string steps = std::to_string(response->governor_steps);
    ServiceDiag(obs::LogLevel::kInfo, "mine stats",
                {{"stop_cause", stop},
                 {"elapsed_ms", elapsed},
                 {"governor_steps", steps}},
                "stats: stop-cause " + stop + ", elapsed " + elapsed +
                    " ms, governor steps " + steps + "\n",
                &result);
  }
  AppendF(&result.out,
          "events %zu (%zu after reduction), reference occurrences %zu "
          "(%zu survive), candidates %llu -> %llu, TAG runs %llu\n",
          report.events_before, report.events_after_reduction,
          report.total_roots, report.roots_after_reduction,
          static_cast<unsigned long long>(report.candidates_before),
          static_cast<unsigned long long>(report.candidates_after_screening),
          static_cast<unsigned long long>(report.tag_runs));
  if (report.refuted_by_propagation) {
    result.out += "structure is INCONSISTENT (refuted by propagation)\n";
    return result;
  }
  const MiningCompleteness& completeness = report.completeness;
  if (!completeness.complete) {
    // The structured copy of the PARTIAL summary rides alongside — never
    // instead of — the stdout header: partial results must be visible in the
    // report itself regardless of log routing (docs/robustness.md).
    obs::EventLog::Global().Log(
        nullptr, obs::LogLevel::kWarn, "cli", "partial result",
        {{"stop_cause", std::string(StopCauseToString(completeness.stop))},
         {"confirmed", std::to_string(completeness.confirmed)},
         {"refuted", std::to_string(completeness.refuted)},
         {"unknown", std::to_string(completeness.unknown)},
         {"not_evaluated", std::to_string(completeness.not_evaluated)}});
    AppendF(&result.out,
            "PARTIAL result (stopped by %s after %.2f ms, %llu step(s) "
            "charged): %llu confirmed, %llu refuted, %llu unknown, "
            "%llu not evaluated\n",
            std::string(StopCauseToString(completeness.stop)).c_str(),
            response->elapsed_ms,
            static_cast<unsigned long long>(response->governor_steps),
            static_cast<unsigned long long>(completeness.confirmed),
            static_cast<unsigned long long>(completeness.refuted),
            static_cast<unsigned long long>(completeness.unknown),
            static_cast<unsigned long long>(completeness.not_evaluated));
    for (const UnknownCandidate& unknown : report.unknown_sample) {
      AppendF(&result.out, "  unknown (%s):",
              std::string(StopCauseToString(unknown.reason)).c_str());
      for (std::size_t v = 0; v < unknown.assignment.size(); ++v) {
        AppendF(&result.out, " %s=%s", names[v].c_str(),
                registry.name(unknown.assignment[v]).c_str());
      }
      result.out += "\n";
    }
    if (completeness.unknown > report.unknown_sample.size()) {
      AppendF(&result.out, "  ... and %llu more unknown candidate(s)\n",
              static_cast<unsigned long long>(completeness.unknown -
                                              report.unknown_sample.size()));
    }
  }
  AppendF(&result.out, "%s%zu solution(s) with frequency > %.3f:\n",
          completeness.complete ? "" : "at least ", report.solutions.size(),
          problem.min_confidence);
  for (const DiscoveredType& found : report.solutions) {
    AppendF(&result.out, "  freq %.3f:", found.frequency);
    for (std::size_t v = 0; v < found.assignment.size(); ++v) {
      AppendF(&result.out, " %s=%s", names[v].c_str(),
              registry.name(found.assignment[v]).c_str());
    }
    result.out += "\n";
    if (call.explain) {
      auto explanations =
          ExplainSolution(*structure, found, problem.reference_type, *sequence,
                          /*max_explanations=*/2);
      if (explanations.ok()) {
        for (const Explanation& explanation : *explanations) {
          AppendF(&result.out, "    occurrence:\n%s",
                  FormatExplanation(*structure, explanation, *sequence,
                                    registry)
                      .c_str());
        }
      }
    }
  }
  return result;
}

CallResult ServeCheck(Engine* engine, const CheckCall& call) {
  CallResult result;
  auto structure = ParseEventStructure(call.structure_text, engine->system());
  if (!structure.ok()) {
    result.err = "structure: " + structure.status().ToString() + "\n";
    result.exit_code = 65;
    return result;
  }
  // Build phase over (the structure may have defined new granularities):
  // freeze so the consistency checks run on the dense id-indexed caches.
  if (Status frozen = engine->Freeze(); !frozen.ok()) {
    result.engine_status = frozen;
    result.err = "freeze: " + frozen.ToString() + "\n";
    result.exit_code = 70;
    return result;
  }
  const GranularitySystem& system = *engine->system();
  ConstraintPropagator propagator(&system.tables(), &system.coverage());
  auto propagation = propagator.Propagate(*structure);
  if (!propagation.ok()) {
    result.engine_status = propagation.status();
    result.err = "propagation: " + propagation.status().ToString() + "\n";
    result.exit_code = 70;
    return result;
  }
  if (!propagation->consistent) {
    result.out += "INCONSISTENT (refuted by approximate propagation)\n";
    result.exit_code = 1;
    return result;
  }
  AppendF(&result.out,
          "not refuted by approximate propagation (%d iterations)\n",
          propagation->iterations);
  if (call.exact) {
    ExactConsistencyChecker checker(&system.tables(), &system.coverage());
    auto exact = checker.Check(*structure);
    if (!exact.ok()) {
      result.engine_status = exact.status();
      result.err = "exact: " + exact.status().ToString() + "\n";
      result.exit_code = 70;
      return result;
    }
    if (exact->consistent) {
      AppendF(&result.out, "CONSISTENT (exact witness found, %llu nodes):\n",
              static_cast<unsigned long long>(exact->nodes_explored));
      for (VariableId v = 0; v < structure->variable_count(); ++v) {
        AppendF(&result.out, "  %s = %s\n",
                structure->variable_name(v).c_str(),
                FormatTimePoint(exact->witness[v]).c_str());
      }
    } else {
      AppendF(&result.out, "INCONSISTENT (exact, %llu nodes)\n",
              static_cast<unsigned long long>(exact->nodes_explored));
      result.exit_code = 1;
      return result;
    }
  }
  return result;
}

CallResult ServeDot(Engine* engine, const DotCall& call) {
  CallResult result;
  std::vector<std::string> names;
  auto structure =
      ParseEventStructure(call.structure_text, engine->system(), &names);
  if (!structure.ok()) {
    result.err = "structure: " + structure.status().ToString() + "\n";
    result.exit_code = 65;
    return result;
  }
  if (call.tag) {
    auto built = BuildTagForStructure(*structure);
    if (!built.ok()) {
      result.engine_status = built.status();
      result.err = "TAG: " + built.status().ToString() + "\n";
      result.exit_code = 70;
      return result;
    }
    result.out += TagToDot(built->tag, [&](Symbol s) {
      return names[static_cast<std::size_t>(s)];
    });
  } else {
    result.out += EventStructureToDot(*structure);
  }
  return result;
}

StreamSession::OpenOutcome StreamSession::Open(Engine* engine,
                                               const StreamOpenCall& call,
                                               const std::string& resume_path) {
  OpenOutcome outcome;
  std::unique_ptr<StreamSession> session(new StreamSession());
  CallResult& result = outcome.result;
  auto structure = ParseEventStructure(call.structure_text, engine->system(),
                                       &session->names_);
  if (!structure.ok()) {
    result.err = "structure: " + structure.status().ToString() + "\n";
    result.exit_code = 65;
    return outcome;
  }
  session->structure_.emplace(std::move(*structure));
  StreamWindowArgs window;
  {
    const std::string* theta = call.theta.empty() ? nullptr : &call.theta;
    if (!Validated(ParseStreamWindow(call.window, call.slide, theta), &window,
                   &result)) {
      return outcome;
    }
  }

  // The stream's type universe is declared up front: the reference type,
  // every pin target, and the shared types pool for free variables.
  DiscoveryProblem& problem = session->problem_;
  problem.structure = &*session->structure_;
  problem.reference_type = session->registry_.Intern(call.reference);
  problem.min_confidence = window.theta;
  problem.allowed.assign(
      static_cast<std::size_t>(session->structure_->variable_count()), {});
  std::vector<EventTypeId> shared_pool;
  if (!call.types.empty()) {
    std::istringstream list(call.types);
    std::string name;
    while (std::getline(list, name, ',')) {
      if (!name.empty()) shared_pool.push_back(session->registry_.Intern(name));
    }
  }
  if (!ApplyPins(call.pins, session->names_, &session->registry_,
                 /*intern_types=*/true, &problem, &result)) {
    return outcome;
  }
  auto root = session->structure_->FindRoot();
  if (!root.ok()) {
    result.err += "structure: " + root.status().ToString() + "\n";
    result.exit_code = 65;
    return outcome;
  }
  for (VariableId v = 0; v < session->structure_->variable_count(); ++v) {
    if (v == *root || !problem.allowed[static_cast<std::size_t>(v)].empty()) {
      continue;
    }
    if (shared_pool.empty()) {
      AppendF(&result.err,
              "variable '%s' has no candidate types: streaming cannot "
              "discover the type universe from the (unbounded) input, "
              "so bind it with --pin %s=TYPE or provide --types\n",
              session->names_[static_cast<std::size_t>(v)].c_str(),
              session->names_[static_cast<std::size_t>(v)].c_str());
      result.exit_code = 64;
      return outcome;
    }
    problem.allowed[static_cast<std::size_t>(v)] = shared_pool;
  }

  session->request_.problem = &problem;
  session->request_.options.retention = window.window;
  if (!call.tolerance.empty() &&
      !Validated(ParseNonNegativeInt("tolerance", call.tolerance),
                 &session->request_.options.tolerance, &result)) {
    return outcome;
  }
  session->slide_ = window.slide;
  session->next_snapshot_ = kInfinity;  // armed by the first accepted event

  auto miner = resume_path.empty()
                   ? engine->OpenStream(session->request_)
                   : engine->RestoreStream(session->request_, resume_path);
  if (!miner.ok()) {
    result.engine_status = miner.status();
    result.err += "stream: " + miner.status().ToString() + "\n";
    result.exit_code = 65;
    return outcome;
  }
  session->miner_.emplace(std::move(*miner));
  outcome.session = std::move(session);
  return outcome;
}

StreamSession::IngestOutcome StreamSession::Ingest(
    std::string_view chunk,
    const std::function<int(OnlineMiner&)>& after_accept) {
  IngestOutcome outcome;
  CallResult& result = outcome.result;
  std::istringstream in{std::string(chunk)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_number_;
    // Reuse the batch parser line-by-line: comments and blanks yield an
    // empty sequence, malformed lines a Status with context.
    auto parsed = ParseEventSequence(line, &registry_);
    if (!parsed.ok()) {
      AppendF(&result.err, "line %zu: %s\n", line_number_,
              parsed.status().ToString().c_str());
      result.exit_code = 65;
      return outcome;
    }
    for (const Event& event : parsed->events()) {
      Status status = miner_->Ingest(event);
      if (!status.ok()) {
        ++dropped_late_;
        ++outcome.rejected_late;
        AppendF(&result.err, "line %zu: dropped: %s\n", line_number_,
                status.ToString().c_str());
        continue;
      }
      ++accepted_total_;
      ++outcome.accepted;
      if (next_snapshot_ == kInfinity) next_snapshot_ = event.time + slide_;
      if (after_accept) {
        if (int code = after_accept(*miner_); code != 0) {
          result.exit_code = code;
          return outcome;
        }
      }
    }
    while (miner_->watermark() >= next_snapshot_) {
      auto report = miner_->Snapshot();
      if (!report.ok()) {
        result.engine_status = report.status();
        result.err += "snapshot: " + report.status().ToString() + "\n";
        result.exit_code = 70;
        return outcome;
      }
      AppendStreamSnapshot(*report, FormatTimePoint(miner_->watermark()),
                           *miner_, names_, registry_, &result.out);
      ++snapshots_taken_;
      next_snapshot_ += slide_;
    }
  }
  return outcome;
}

CallResult StreamSession::Seal() {
  CallResult result;
  miner_->Seal();
  auto report = miner_->Snapshot();
  if (!report.ok()) {
    result.engine_status = report.status();
    result.err += "snapshot: " + report.status().ToString() + "\n";
    result.exit_code = 70;
    return result;
  }
  result.out += "final ";
  AppendStreamSnapshot(*report, "end of stream", *miner_, names_, registry_,
                       &result.out);
  if (report->refuted_by_propagation) {
    result.out += "structure is INCONSISTENT (refuted by propagation)\n";
  }
  AppendF(&result.out,
          "ingested %zu retained events, rejected %llu late arrival(s)\n",
          report->events_before,
          static_cast<unsigned long long>(dropped_late_));
  seal_stop_cause_ = std::string(StopCauseToString(report->completeness.stop));
  return result;
}

}  // namespace granmine::server
