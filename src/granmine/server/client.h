#ifndef GRANMINE_SERVER_CLIENT_H_
#define GRANMINE_SERVER_CLIENT_H_

// A small blocking client for the granmine wire protocol (docs/serving.md):
// connects, exchanges preambles, and runs one call at a time over the
// connection. It exists for granmine_client, the loopback differential
// tests and the benches — it is intentionally synchronous and single-
// threaded (one Client per thread; the server side multiplexes).

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "granmine/common/result.h"
#include "granmine/server/wire.h"

namespace granmine::server {

/// One decoded server response, whichever reply frame type arrived.
struct Response {
  FrameType type = FrameType::kReply;
  std::uint64_t corr_id = 0;
  /// kReply / kStreamAck payloads.
  int exit_code = 0;
  std::string out;
  std::string err;
  std::string diag;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_late = 0;
  /// kErrorReply payload.
  ErrorBody error;
};

class Client {
 public:
  /// Connects, sends the preamble and validates the server's.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Result<Response> Mine(const MineCall& call);
  Result<Response> Check(const CheckCall& call);
  Result<Response> Dot(const DotCall& call);
  Result<Response> Statusz();
  Result<Response> StreamOpen(const StreamOpenCall& call);
  Result<Response> StreamIngest(std::string_view lines);
  Result<Response> StreamSeal();
  Status Ping();

  /// One framed round trip: send `type` with `payload`, return the first
  /// reply frame whose correlation id matches (unknown reply types from a
  /// newer server are skipped — the client-side forward-compat rule).
  Result<Response> Call(FrameType type, std::span<const std::uint8_t> payload);

  /// Raw transport access for protocol fault-injection tests (torn writes,
  /// corrupted frames).
  Status SendBytes(std::span<const std::uint8_t> bytes);
  Result<Frame> ReadFrame();
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  Status ReadExact(std::span<std::uint8_t> out);

  int fd_ = -1;
  std::uint64_t next_corr_ = 0;
};

}  // namespace granmine::server

#endif  // GRANMINE_SERVER_CLIENT_H_
