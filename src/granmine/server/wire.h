#ifndef GRANMINE_SERVER_WIRE_H_
#define GRANMINE_SERVER_WIRE_H_

// The granmine RPC wire format (docs/serving.md): a 12-byte connection
// preamble followed by length-prefixed, CRC-checked frames, built on the
// persist layer's little-endian Encoder/Decoder conventions
// (docs/persistence.md). The format is deliberately snapshot-shaped —
// magic + u32 version up front, a CRC32C over every frame, unknown frame
// types skippable by construction — so the forward-compatibility rules
// operators already know from snapshots apply on the wire too.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/common/ring_buffer.h"
#include "granmine/persist/snapshot.h"

namespace granmine::server {

/// Connection preamble: 8 magic bytes + u32 wire version, sent by both
/// sides immediately after connect. "GMRPC01\0" — the trailing NUL pads the
/// magic to 8 bytes, mirroring the snapshot magic convention.
inline constexpr std::size_t kMagicSize = 8;
inline constexpr char kWireMagic[kMagicSize + 1] = "GMRPC01\0";
inline constexpr std::uint32_t kWireVersion = 1;
inline constexpr std::size_t kPreambleSize = kMagicSize + 4;

/// Frame header: u32 type | u32 flags | u64 correlation id | u64 payload
/// length | u32 CRC32C over the first 24 header bytes plus the payload.
inline constexpr std::size_t kFrameHeaderSize = 28;

/// Plausibility bound on a single frame payload. A header announcing more
/// is a protocol error (likely stream desync), not an allocation request.
inline constexpr std::uint64_t kMaxPayloadBytes = 16ull * 1024 * 1024;

/// Frame types. Append-only: values are wire contract, never renumbered.
/// Requests live below 64, replies at 64 and above; a receiver that does
/// not know a type CRC-checks and skips the frame (responding kErrorReply
/// kUnsupported if it is a server), so new types degrade gracefully.
enum class FrameType : std::uint32_t {
  // Requests (client -> server).
  kMine = 1,
  kCheck = 2,
  kDot = 3,
  kStatusz = 4,
  kStreamOpen = 5,
  kStreamIngest = 6,
  kStreamSeal = 7,
  kPing = 8,
  // Replies (server -> client).
  kReply = 64,
  kErrorReply = 65,
  kStreamAck = 66,
  kPong = 67,
};

/// One decoded frame: CRC-verified, payload materialized.
struct Frame {
  FrameType type = FrameType::kPing;
  std::uint32_t flags = 0;
  std::uint64_t corr_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Appends the 12-byte preamble to `out`.
void AppendPreamble(std::vector<std::uint8_t>* out);

/// Validates a peer's preamble bytes (exactly kPreambleSize of them).
Status CheckPreamble(std::span<const std::uint8_t> bytes);

/// Appends one complete frame (header + payload, CRC stamped) to `out`.
void AppendFrame(std::vector<std::uint8_t>* out, FrameType type,
                 std::uint64_t corr_id, std::span<const std::uint8_t> payload);

/// Incremental frame parser over a connection's receive buffer. Bytes are
/// fed in whatever fragments the transport delivers (down to one byte at a
/// time); `Next()` yields a frame exactly when a complete, CRC-valid one is
/// buffered. Any error (oversized length, CRC mismatch) is a protocol
/// error: the stream offset is unrecoverable and the connection must be
/// torn down.
class FrameParser {
 public:
  explicit FrameParser(std::uint64_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Feed(std::span<const std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) buffer_.push_back(b);
  }

  /// One complete frame if buffered, std::nullopt if more bytes are needed,
  /// or a Status naming the absolute stream offset of the corruption.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered() const { return buffer_.size(); }
  /// Absolute offset of the next frame boundary in the byte stream.
  std::uint64_t consumed() const { return consumed_; }

 private:
  RingBuffer<std::uint8_t> buffer_;
  std::uint64_t max_payload_;
  std::uint64_t consumed_ = 0;
};

// --- Payload codecs ------------------------------------------------------
//
// Payloads reuse persist::Encoder / persist::Decoder: little-endian
// fixed-width integers and u32-length-prefixed strings. Every decoder ends
// with ExpectEnd, so trailing garbage inside a CRC-valid frame is still a
// codec mismatch with a byte offset.

/// One `mine` request, carried by value: the server reads no files, the
/// client ships the structure / event texts. String knobs that the CLI
/// validates ("confidence", "on-budget", …) travel as the raw flag text and
/// are validated server-side with the same error messages, so a bad value
/// round-trips the exact granmine_cli diagnostic.
struct MineCall {
  std::string structure_text;
  std::string events_text;
  std::string reference;
  std::string confidence;  ///< empty = the 0.5 default
  std::string on_budget;   ///< empty = policy unset
  std::vector<std::string> pins;
  bool naive = false;
  bool explain = false;
  /// CLI parity: a deadline without an explicit --on-budget degrades to a
  /// partial report instead of failing the run.
  bool default_partial = false;
};

struct CheckCall {
  std::string structure_text;
  bool exact = false;
};

struct DotCall {
  std::string structure_text;
  bool tag = false;
};

struct StreamOpenCall {
  std::string structure_text;
  std::string reference;
  std::string window;     ///< raw flag text, validated server-side
  std::string slide;
  std::string theta;      ///< empty = the 0.5 default
  std::string types;      ///< comma-separated shared pool; empty = none
  std::string tolerance;  ///< empty = unset
  std::vector<std::string> pins;
};

std::vector<std::uint8_t> EncodeMineCall(const MineCall& call);
Status DecodeMineCall(std::span<const std::uint8_t> payload, MineCall* out);

std::vector<std::uint8_t> EncodeCheckCall(const CheckCall& call);
Status DecodeCheckCall(std::span<const std::uint8_t> payload, CheckCall* out);

std::vector<std::uint8_t> EncodeDotCall(const DotCall& call);
Status DecodeDotCall(std::span<const std::uint8_t> payload, DotCall* out);

std::vector<std::uint8_t> EncodeStreamOpenCall(const StreamOpenCall& call);
Status DecodeStreamOpenCall(std::span<const std::uint8_t> payload,
                            StreamOpenCall* out);

/// kStreamIngest payload: raw event-file lines, no envelope.
std::vector<std::uint8_t> EncodeIngestChunk(std::string_view lines);

/// kReply payload: the subcommand's exit code plus its exact stdout /
/// stderr / stats bytes (docs/serving.md, "Reply"). `out` is byte-identical
/// to what granmine_cli would have printed for the same request.
struct ReplyBody {
  std::int32_t exit_code = 0;
  std::string out;
  std::string err;
  std::string diag;
};

std::vector<std::uint8_t> EncodeReply(const ReplyBody& reply);
Status DecodeReply(std::span<const std::uint8_t> payload, ReplyBody* out);

/// kErrorReply payload: a serving-layer error (admission shed, protocol
/// violation, unknown frame type) — distinct from an application error,
/// which travels as a kReply with a non-zero exit code.
struct ErrorBody {
  std::uint32_t status_code = 0;  ///< StatusCode numeric value
  bool retryable = false;         ///< re-submit after backoff_ms is safe
  bool fatal = false;             ///< server closes the connection after this
  std::uint64_t backoff_ms = 0;   ///< suggested retry delay (retryable only)
  std::string message;
};

std::vector<std::uint8_t> EncodeError(const ErrorBody& error);
Status DecodeError(std::span<const std::uint8_t> payload, ErrorBody* out);

/// kStreamAck payload: one deterministic commit acknowledgement per
/// kStreamIngest / kStreamSeal frame — the counts and snapshot bytes are a
/// pure function of the lines ingested so far, independent of timing.
struct StreamAckBody {
  std::uint64_t accepted = 0;       ///< events accepted by this frame
  std::uint64_t rejected_late = 0;  ///< late arrivals rejected by this frame
  std::int32_t exit_code = 0;
  std::string out;  ///< snapshot blocks emitted by this frame, CLI bytes
  std::string err;  ///< per-line drop/parse diagnostics, CLI bytes
};

std::vector<std::uint8_t> EncodeStreamAck(const StreamAckBody& ack);
Status DecodeStreamAck(std::span<const std::uint8_t> payload,
                       StreamAckBody* out);

}  // namespace granmine::server

#endif  // GRANMINE_SERVER_WIRE_H_
