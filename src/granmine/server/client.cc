#include "granmine/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "granmine/persist/crc32c.h"

namespace granmine::server {

namespace {

std::uint32_t GetU32Le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t GetU64Le(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(GetU32Le(in)) |
         static_cast<std::uint64_t>(GetU32Le(in + 4)) << 32;
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::Internal("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return status;
  }
  auto client = std::unique_ptr<Client>(new Client(fd));
  std::vector<std::uint8_t> hello;
  AppendPreamble(&hello);
  GM_RETURN_NOT_OK(client->SendBytes(hello));
  std::uint8_t peer[kPreambleSize];
  GM_RETURN_NOT_OK(client->ReadExact(peer));
  GM_RETURN_NOT_OK(CheckPreamble(peer));
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendBytes(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed the connection mid-send must
    // surface as an EPIPE Status, not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadExact(std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd_, out.data() + got, out.size() - got);
    if (n == 0) {
      return Status::Internal("connection closed by server after " +
                              std::to_string(got) + " bytes");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  std::uint8_t header[kFrameHeaderSize];
  GM_RETURN_NOT_OK(ReadExact(header));
  Frame frame;
  frame.type = static_cast<FrameType>(GetU32Le(header));
  frame.flags = GetU32Le(header + 4);
  frame.corr_id = GetU64Le(header + 8);
  const std::uint64_t payload_len = GetU64Le(header + 16);
  if (payload_len > kMaxPayloadBytes) {
    return Status::Invalid("reply payload length " +
                           std::to_string(payload_len) + " exceeds the " +
                           std::to_string(kMaxPayloadBytes) + "-byte bound");
  }
  frame.payload.resize(static_cast<std::size_t>(payload_len));
  GM_RETURN_NOT_OK(ReadExact(frame.payload));
  std::uint32_t crc = persist::ExtendCrc32c(
      persist::kCrc32cInit, std::span<const std::uint8_t>(header, 24));
  crc = persist::ExtendCrc32c(crc, frame.payload);
  if (crc != GetU32Le(header + 24)) {
    return Status::Invalid("reply frame CRC mismatch");
  }
  return frame;
}

Result<Response> Client::Call(FrameType type,
                              std::span<const std::uint8_t> payload) {
  const std::uint64_t corr = ++next_corr_;
  std::vector<std::uint8_t> bytes;
  AppendFrame(&bytes, type, corr, payload);
  GM_RETURN_NOT_OK(SendBytes(bytes));
  while (true) {
    auto frame = ReadFrame();
    GM_RETURN_NOT_OK(frame.status());
    Response response;
    response.type = frame->type;
    response.corr_id = frame->corr_id;
    switch (frame->type) {
      case FrameType::kReply: {
        ReplyBody reply;
        GM_RETURN_NOT_OK(DecodeReply(frame->payload, &reply));
        response.exit_code = reply.exit_code;
        response.out = std::move(reply.out);
        response.err = std::move(reply.err);
        response.diag = std::move(reply.diag);
        break;
      }
      case FrameType::kStreamAck: {
        StreamAckBody ack;
        GM_RETURN_NOT_OK(DecodeStreamAck(frame->payload, &ack));
        response.exit_code = ack.exit_code;
        response.out = std::move(ack.out);
        response.err = std::move(ack.err);
        response.accepted = ack.accepted;
        response.rejected_late = ack.rejected_late;
        break;
      }
      case FrameType::kErrorReply: {
        GM_RETURN_NOT_OK(DecodeError(frame->payload, &response.error));
        break;
      }
      case FrameType::kPong:
        break;
      default:
        // An unknown reply type from a newer server: skip it — the
        // client-side half of the forward-compatibility contract.
        continue;
    }
    if (frame->corr_id != corr) continue;  // stale reply; keep reading
    return response;
  }
}

Result<Response> Client::Mine(const MineCall& call) {
  return Call(FrameType::kMine, EncodeMineCall(call));
}

Result<Response> Client::Check(const CheckCall& call) {
  return Call(FrameType::kCheck, EncodeCheckCall(call));
}

Result<Response> Client::Dot(const DotCall& call) {
  return Call(FrameType::kDot, EncodeDotCall(call));
}

Result<Response> Client::Statusz() { return Call(FrameType::kStatusz, {}); }

Result<Response> Client::StreamOpen(const StreamOpenCall& call) {
  return Call(FrameType::kStreamOpen, EncodeStreamOpenCall(call));
}

Result<Response> Client::StreamIngest(std::string_view lines) {
  return Call(FrameType::kStreamIngest, EncodeIngestChunk(lines));
}

Result<Response> Client::StreamSeal() {
  return Call(FrameType::kStreamSeal, {});
}

Status Client::Ping() {
  auto response = Call(FrameType::kPing, {});
  GM_RETURN_NOT_OK(response.status());
  if (response->type != FrameType::kPong) {
    return Status::Internal("expected pong, got frame type " +
                            std::to_string(
                                static_cast<std::uint32_t>(response->type)));
  }
  return Status::OK();
}

}  // namespace granmine::server
