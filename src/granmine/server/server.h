#ifndef GRANMINE_SERVER_SERVER_H_
#define GRANMINE_SERVER_SERVER_H_

// The granmine network serving layer: a long-lived TCP server owning one
// Engine, speaking the framed wire protocol of server/wire.h
// (docs/serving.md). One poll-based event loop thread owns every socket and
// the per-connection ring buffers; frames parse incrementally as bytes
// arrive and dispatch to a small worker pool, so a slow mine on one
// connection never blocks another connection's reads or writes. Each
// connection's requests run strictly in order, one at a time — that is
// what makes stream ingest acknowledgements deterministic.
//
// Overload behaviour is the Engine's: Mine / stream-open requests pass
// through the AdmissionController inside the engine entry points, and a
// shed comes back to the client as a retryable kErrorReply carrying the
// reason and the suggested backoff (engine/admission.h, IsRetryableShed).

#include <cstdint>
#include <memory>
#include <string>

#include "granmine/common/result.h"

namespace granmine {
class Engine;
}

namespace granmine::server {

struct ServerOptions {
  /// Listen address. Defaults to loopback: granmine speaks an
  /// unauthenticated protocol, so exposing it beyond the host is an
  /// explicit operator decision (docs/serving.md, "Runbook").
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (read it back with port() after Start).
  std::uint16_t port = 0;
  /// Dispatch worker threads. 2 keeps a cheap statusz/check responsive
  /// while one long mine runs; admission slots, not workers, are the
  /// intended concurrency throttle.
  int workers = 2;
  /// Per-frame payload bound; frames announcing more are protocol errors.
  std::uint64_t max_payload_bytes = 0;  ///< 0 = wire.h default
  /// Per-connection pipelining depth: request frames parsed but not yet
  /// dispatched. A peer that exceeds it stops being read (plain TCP
  /// backpressure) until workers drain its queue, so pipelining many
  /// max-size frames cannot grow the heap past
  /// max_pending_frames * max_payload_bytes per connection.
  std::size_t max_pending_frames = 16;
  /// Per-connection cap on buffered response bytes. A peer that pipelines
  /// requests but never reads its replies is disconnected when its outbox
  /// crosses this bound instead of buffering without bound.
  std::size_t max_outbox_bytes = 64ull * 1024 * 1024;
};

/// A running server. Start() freezes the engine (the network layer is a
/// serve-phase artifact: define granularities before starting) and spawns
/// the loop + worker threads; Stop() — also run by the destructor — drains
/// in-flight requests and joins them. Thread-safe: Start/Stop/telemetry may
/// be called from any thread.
class Server {
 public:
  explicit Server(Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  void Stop();

  /// The bound port (valid after a successful Start).
  std::uint16_t port() const;

  /// Lifetime telemetry, mirrored into granmine_server_* metrics.
  std::uint64_t connections_accepted() const;
  std::uint64_t frames_dispatched() const;
  std::uint64_t frame_errors() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace granmine::server

#endif  // GRANMINE_SERVER_SERVER_H_
