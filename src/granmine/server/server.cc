#include "granmine/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "granmine/common/ring_buffer.h"
#include "granmine/engine/admission.h"
#include "granmine/engine/engine.h"
#include "granmine/engine/statusz.h"
#include "granmine/obs/context.h"
#include "granmine/obs/obs.h"
#include "granmine/server/service.h"
#include "granmine/server/wire.h"

namespace granmine::server {

namespace {

void NoteRequestMetric(FrameType type) {
  // Metric label bodies must be string literals (obs/obs.h) — hence the
  // switch instead of a formatted label.
  switch (type) {
    case FrameType::kMine:
      GM_COUNTER_ADD("granmine_server_requests_total", "type=\"mine\"", 1);
      break;
    case FrameType::kCheck:
      GM_COUNTER_ADD("granmine_server_requests_total", "type=\"check\"", 1);
      break;
    case FrameType::kDot:
      GM_COUNTER_ADD("granmine_server_requests_total", "type=\"dot\"", 1);
      break;
    case FrameType::kStatusz:
      GM_COUNTER_ADD("granmine_server_requests_total", "type=\"statusz\"", 1);
      break;
    case FrameType::kStreamOpen:
      GM_COUNTER_ADD("granmine_server_requests_total",
                     "type=\"stream-open\"", 1);
      break;
    case FrameType::kStreamIngest:
      GM_COUNTER_ADD("granmine_server_requests_total",
                     "type=\"stream-ingest\"", 1);
      break;
    case FrameType::kStreamSeal:
      GM_COUNTER_ADD("granmine_server_requests_total",
                     "type=\"stream-seal\"", 1);
      break;
    default:
      break;
  }
}

bool IsDispatchableRequest(FrameType type) {
  switch (type) {
    case FrameType::kMine:
    case FrameType::kCheck:
    case FrameType::kDot:
    case FrameType::kStatusz:
    case FrameType::kStreamOpen:
    case FrameType::kStreamIngest:
    case FrameType::kStreamSeal:
      return true;
    default:
      return false;
  }
}

}  // namespace

struct Server::Impl {
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;  ///< for log lines; dense accept order

    // Read side — touched only by the loop thread.
    FrameParser parser;
    std::uint8_t preamble[kPreambleSize];
    std::size_t preamble_got = 0;
    bool preamble_ok = false;

    // Cross-thread state — guarded by Impl::mu_.
    RingBuffer<std::uint8_t> outbox;
    std::deque<std::pair<Frame, std::uint64_t>> pending;  // frame, request id
    bool busy = false;   ///< one dispatched frame in flight on a worker
    bool fatal = false;  ///< protocol error: flush the error frame, close
    bool dead = false;   ///< peer gone: destroy once no worker holds it

    // Session state — touched only by the worker holding `busy` (the mutex
    // hand-off on busy orders the accesses between successive workers).
    std::unique_ptr<StreamSession> stream;
  };

  struct Job {
    Connection* conn = nullptr;
    Frame frame;
    std::uint64_t request_id = 0;
  };

  Impl(Engine* engine, ServerOptions options)
      : engine_(engine), options_(std::move(options)) {
    if (options_.max_payload_bytes == 0) {
      options_.max_payload_bytes = kMaxPayloadBytes;
    }
    if (options_.max_pending_frames == 0) {
      options_.max_pending_frames = ServerOptions{}.max_pending_frames;
    }
    if (options_.max_outbox_bytes == 0) {
      options_.max_outbox_bytes = ServerOptions{}.max_outbox_bytes;
    }
  }

  Engine* engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::thread loop_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;
  std::deque<Job> jobs_;
  bool stop_ = false;

  // Loop-thread-only connection table (workers reach connections through
  // Job::conn, never through this map).
  std::map<int, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::int64_t> inflight_{0};

  void Wake() {
    const char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_w_, &byte, 1);
  }

  void EnqueueBytesLocked(Connection* conn,
                          const std::vector<std::uint8_t>& bytes) {
    for (std::uint8_t b : bytes) conn->outbox.push_back(b);
    if (conn->outbox.size() > options_.max_outbox_bytes && !conn->dead) {
      // A peer that pipelines requests but never drains its replies: drop
      // the connection rather than buffer without bound. No error frame —
      // the outbox is exactly what the peer has stopped reading.
      conn->dead = true;
      GM_COUNTER_ADD("granmine_server_overflow_disconnects_total", "", 1);
    }
  }

  void SendFrame(Connection* conn, FrameType type, std::uint64_t corr_id,
                 std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> bytes;
    AppendFrame(&bytes, type, corr_id, payload);
    std::lock_guard<std::mutex> lock(mu_);
    EnqueueBytesLocked(conn, bytes);
  }

  /// A serving-layer error frame. `fatal` additionally poisons the
  /// connection: the loop flushes this frame, then closes.
  void SendError(Connection* conn, std::uint64_t corr_id, const Status& status,
                 bool retryable, std::uint64_t backoff_ms, bool fatal) {
    ErrorBody error;
    error.status_code = static_cast<std::uint32_t>(status.code());
    error.retryable = retryable;
    error.fatal = fatal;
    error.backoff_ms = backoff_ms;
    error.message = status.ToString();
    std::vector<std::uint8_t> bytes;
    AppendFrame(&bytes, FrameType::kErrorReply, corr_id, EncodeError(error));
    std::lock_guard<std::mutex> lock(mu_);
    EnqueueBytesLocked(conn, bytes);
    if (fatal) conn->fatal = true;
  }

  Status Start() {
    {
      // Claim started_ inside the same critical section as the check: two
      // concurrent Start() calls must not both pass it and double-build
      // sockets and thread pools. Every failure path below rolls the claim
      // back through FailStart.
      std::lock_guard<std::mutex> lock(mu_);
      if (started_) return Status::Invalid("server already started");
      started_ = true;
      stop_ = false;
    }
    // The network layer is a serve-phase artifact: freeze up front so
    // every worker parses structures against an immutable family (and the
    // multi-second Gregorian freeze is paid before the first request, not
    // inside it).
    if (Status frozen = engine_->Freeze(); !frozen.ok()) {
      return FailStart(std::move(frozen));
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (listen_fd_ < 0) {
      return FailStart(
          Status::Internal(std::string("socket: ") + std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      return FailStart(
          Status::Invalid("bad listen address '" + options_.host + "'"));
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return FailStart(Status::Internal(
          "bind " + options_.host + ":" + std::to_string(options_.port) +
          ": " + std::strerror(errno)));
    }
    if (::listen(listen_fd_, 128) < 0) {
      return FailStart(
          Status::Internal(std::string("listen: ") + std::strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
    port_ = ntohs(bound.sin_port);

    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
      return FailStart(
          Status::Internal(std::string("pipe2: ") + std::strerror(errno)));
    }
    wake_r_ = pipe_fds[0];
    wake_w_ = pipe_fds[1];

    const int workers = options_.workers > 0 ? options_.workers : 1;
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerThread(); });
    }
    loop_ = std::thread([this] { LoopThread(); });
    GM_LOG(obs::LogLevel::kInfo, "server", "listening",
           {"host", options_.host}, {"port", std::to_string(port_)},
           {"workers", std::to_string(workers)});
    return Status::OK();
  }

  Status FailStart(Status status) {
    CloseStartupFds();
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
    return status;
  }

  void CloseStartupFds() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
    listen_fd_ = wake_r_ = wake_w_ = -1;
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!started_) return;
      stop_ = true;
    }
    job_cv_.notify_all();
    Wake();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    loop_.join();
    // Both thread groups are gone: tear the sockets down directly.
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    CloseStartupFds();
    GM_GAUGE_SET("granmine_server_connections_active", "", 0);
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }

  // --- Event loop --------------------------------------------------------

  void LoopThread() {
    std::vector<pollfd> fds;
    while (true) {
      fds.clear();
      fds.push_back({listen_fd_, POLLIN, 0});
      fds.push_back({wake_r_, POLLIN, 0});
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_) return;
        for (auto& [fd, conn] : conns_) {
          short events = 0;
          // Backpressure: a connection at its pipelining cap stops being
          // read — the kernel socket buffer fills and TCP flow control
          // pushes back on the peer — until workers drain pending.
          const bool stalled =
              conn->pending.size() >= options_.max_pending_frames;
          if (!conn->fatal && !conn->dead && !stalled) events |= POLLIN;
          if (!conn->outbox.empty()) events |= POLLOUT;
          if (events != 0) fds.push_back({fd, events, 0});
        }
      }
      if (::poll(fds.data(), fds.size(), 200) < 0 && errno != EINTR) return;
      if (fds[1].revents & POLLIN) {
        char drain[64];
        while (::read(wake_r_, drain, sizeof(drain)) > 0) {
        }
      }
      if (fds[0].revents & POLLIN) AcceptNew();
      for (std::size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        auto it = conns_.find(fds[i].fd);
        if (it == conns_.end()) continue;
        Connection* conn = it->second.get();
        if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) ReadFrom(conn);
        if (fds[i].revents & POLLOUT) FlushTo(conn);
      }
      // Frames that sat buffered while a connection was at its pipelining
      // cap parse here, once workers drain pending (their Wake lands the
      // loop back in this iteration).
      for (auto& [fd, conn] : conns_) {
        if (conn->parser.buffered() > 0) ParseFrames(conn.get());
      }
      ReapConnections();
    }
  }

  void AcceptNew() {
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->id = ++next_conn_id_;
      conn->parser = FrameParser(options_.max_payload_bytes);
      std::vector<std::uint8_t> hello;
      AppendPreamble(&hello);
      {
        std::lock_guard<std::mutex> lock(mu_);
        EnqueueBytesLocked(conn.get(), hello);
      }
      GM_LOG(obs::LogLevel::kDebug, "server", "connection accepted",
             {"conn", std::to_string(conn->id)});
      conns_.emplace(fd, std::move(conn));
      accepted_.fetch_add(1, std::memory_order_relaxed);
      GM_COUNTER_ADD("granmine_server_connections_total", "", 1);
      GM_GAUGE_SET("granmine_server_connections_active", "", conns_.size());
    }
  }

  void ReadFrom(Connection* conn) {
    std::uint8_t buf[16384];
    while (true) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        GM_COUNTER_ADD("granmine_server_bytes_read_total", "", n);
        std::size_t offset = 0;
        if (!conn->preamble_ok) {
          while (conn->preamble_got < kPreambleSize &&
                 offset < static_cast<std::size_t>(n)) {
            conn->preamble[conn->preamble_got++] = buf[offset++];
          }
          if (conn->preamble_got == kPreambleSize) {
            Status status = CheckPreamble(
                std::span<const std::uint8_t>(conn->preamble, kPreambleSize));
            if (!status.ok()) {
              NoteFrameError("preamble");
              SendError(conn, 0, status, /*retryable=*/false, 0,
                        /*fatal=*/true);
              return;
            }
            conn->preamble_ok = true;
          }
        }
        if (offset < static_cast<std::size_t>(n)) {
          conn->parser.Feed(std::span<const std::uint8_t>(
              buf + offset, static_cast<std::size_t>(n) - offset));
        }
        continue;
      }
      if (n == 0) {
        MarkDead(conn);
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      MarkDead(conn);
      break;
    }
    ParseFrames(conn);
  }

  void ParseFrames(Connection* conn) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (conn->fatal || conn->dead) return;
        // At the pipelining cap: leave the rest buffered; the loop retries
        // once workers drain pending.
        if (conn->pending.size() >= options_.max_pending_frames) return;
      }
      auto next = conn->parser.Next();
      if (!next.ok()) {
        // A framing error (CRC mismatch, implausible length) means the byte
        // stream is desynchronized — unrecoverable, so the error frame is
        // fatal and the connection closes after the flush.
        NoteFrameError("protocol");
        SendError(conn, 0, next.status(), /*retryable=*/false, 0,
                  /*fatal=*/true);
        return;
      }
      if (!next->has_value()) return;
      Frame frame = std::move(**next);
      // The wire request id is minted at frame decode (docs/serving.md):
      // every span and log line from here to the reply shares it.
      const std::uint64_t request_id = engine_->MintRequestId();
      {
        obs::RequestScope scope(request_id);
        GM_LOG(obs::LogLevel::kDebug, "server", "frame decoded",
               {"conn", std::to_string(conn->id)},
               {"type", std::to_string(static_cast<std::uint32_t>(frame.type))},
               {"corr_id", std::to_string(frame.corr_id)},
               {"bytes", std::to_string(frame.payload.size())});
      }
      if (frame.type == FrameType::kPing) {
        // Answered inline from the loop: a liveness probe should not queue
        // behind a long mine.
        SendFrame(conn, FrameType::kPong, frame.corr_id, {});
        continue;
      }
      if (!IsDispatchableRequest(frame.type)) {
        // Unknown frame type: CRC-checked, skipped, answered — the
        // forward-compatibility contract (docs/serving.md). Not fatal; the
        // next frame parses normally.
        NoteFrameError("unknown-type");
        SendError(conn, frame.corr_id,
                  Status::Unsupported(
                      "unknown frame type " +
                      std::to_string(static_cast<std::uint32_t>(frame.type))),
                  /*retryable=*/false, 0, /*fatal=*/false);
        continue;
      }
      std::lock_guard<std::mutex> lock(mu_);
      conn->pending.emplace_back(std::move(frame), request_id);
      ScheduleLocked(conn);
    }
  }

  void NoteFrameError(const char* kind) {
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    if (std::strcmp(kind, "preamble") == 0) {
      GM_COUNTER_ADD("granmine_server_frame_errors_total",
                     "kind=\"preamble\"", 1);
    } else if (std::strcmp(kind, "unknown-type") == 0) {
      GM_COUNTER_ADD("granmine_server_frame_errors_total",
                     "kind=\"unknown-type\"", 1);
    } else if (std::strcmp(kind, "decode") == 0) {
      GM_COUNTER_ADD("granmine_server_frame_errors_total", "kind=\"decode\"",
                     1);
    } else {
      GM_COUNTER_ADD("granmine_server_frame_errors_total",
                     "kind=\"protocol\"", 1);
    }
  }

  void MarkDead(Connection* conn) {
    std::lock_guard<std::mutex> lock(mu_);
    conn->dead = true;
  }

  void FlushTo(Connection* conn) {
    std::uint8_t buf[16384];
    while (true) {
      std::size_t staged = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        staged = std::min(conn->outbox.size(), sizeof(buf));
        for (std::size_t i = 0; i < staged; ++i) buf[i] = conn->outbox[i];
      }
      if (staged == 0) return;
      // MSG_NOSIGNAL: a peer that closed with replies still queued must
      // surface as EPIPE here, not as a process-killing SIGPIPE.
      const ssize_t written = ::send(conn->fd, buf, staged, MSG_NOSIGNAL);
      if (written > 0) {
        GM_COUNTER_ADD("granmine_server_bytes_written_total", "", written);
        std::lock_guard<std::mutex> lock(mu_);
        for (ssize_t i = 0; i < written; ++i) conn->outbox.pop_front();
        if (static_cast<std::size_t>(written) < staged) return;
        continue;
      }
      if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (written < 0 && errno == EINTR) continue;
      MarkDead(conn);
      return;
    }
  }

  void ReapConnections() {
    for (auto it = conns_.begin(); it != conns_.end();) {
      Connection* conn = it->second.get();
      bool reap = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const bool idle = !conn->busy && conn->pending.empty();
        reap = idle && (conn->dead || (conn->fatal && conn->outbox.empty()));
      }
      if (reap) {
        GM_LOG(obs::LogLevel::kDebug, "server", "connection closed",
               {"conn", std::to_string(conn->id)});
        ::close(conn->fd);
        it = conns_.erase(it);
        GM_GAUGE_SET("granmine_server_connections_active", "", conns_.size());
      } else {
        ++it;
      }
    }
  }

  /// Moves the next pending frame onto the job queue. At most one job per
  /// connection is in flight (busy), which keeps each connection's requests
  /// strictly ordered — the invariant behind deterministic stream acks.
  void ScheduleLocked(Connection* conn) {
    if (conn->busy || conn->fatal || conn->pending.empty()) return;
    conn->busy = true;
    Job job;
    job.conn = conn;
    job.frame = std::move(conn->pending.front().first);
    job.request_id = conn->pending.front().second;
    conn->pending.pop_front();
    jobs_.push_back(std::move(job));
    job_cv_.notify_one();
  }

  // --- Worker pool -------------------------------------------------------

  void WorkerThread() {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        job_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ set and queue drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      GM_GAUGE_SET("granmine_server_inflight", "",
                   inflight_.fetch_add(1, std::memory_order_relaxed) + 1);
      std::vector<std::uint8_t> response = Dispatch(job);
      GM_GAUGE_SET("granmine_server_inflight", "",
                   inflight_.fetch_sub(1, std::memory_order_relaxed) - 1);
      {
        std::lock_guard<std::mutex> lock(mu_);
        EnqueueBytesLocked(job.conn, response);
        job.conn->busy = false;
        ScheduleLocked(job.conn);
      }
      Wake();
    }
  }

  std::vector<std::uint8_t> Dispatch(Job& job) {
    obs::RequestScope scope(job.request_id);
    GM_TRACE_SPAN("server_dispatch");
    dispatched_.fetch_add(1, std::memory_order_relaxed);
    NoteRequestMetric(job.frame.type);
    const std::uint64_t corr = job.frame.corr_id;
    std::vector<std::uint8_t> out;
    switch (job.frame.type) {
      case FrameType::kMine: {
        MineCall call;
        if (Status st = DecodeMineCall(job.frame.payload, &call); !st.ok()) {
          return EncodeDecodeError(corr, st);
        }
        return FinishCall(corr, ServeMine(engine_, call));
      }
      case FrameType::kCheck: {
        CheckCall call;
        if (Status st = DecodeCheckCall(job.frame.payload, &call); !st.ok()) {
          return EncodeDecodeError(corr, st);
        }
        return FinishCall(corr, ServeCheck(engine_, call));
      }
      case FrameType::kDot: {
        DotCall call;
        if (Status st = DecodeDotCall(job.frame.payload, &call); !st.ok()) {
          return EncodeDecodeError(corr, st);
        }
        return FinishCall(corr, ServeDot(engine_, call));
      }
      case FrameType::kStatusz: {
        ReplyBody reply;
        reply.out = RenderStatuszJson(engine_->Statusz()) + "\n";
        AppendFrame(&out, FrameType::kReply, corr, EncodeReply(reply));
        return out;
      }
      case FrameType::kStreamOpen: {
        if (job.conn->stream != nullptr) {
          AppendErrorFrame(&out, corr,
                           Status::Invalid(
                               "a stream session is already open on this "
                               "connection (seal it first)"),
                           false, 0, false);
          return out;
        }
        StreamOpenCall call;
        if (Status st = DecodeStreamOpenCall(job.frame.payload, &call);
            !st.ok()) {
          return EncodeDecodeError(corr, st);
        }
        auto opened = StreamSession::Open(engine_, call);
        if (opened.session == nullptr) {
          return FinishCall(corr, std::move(opened.result));
        }
        job.conn->stream = std::move(opened.session);
        AppendFrame(&out, FrameType::kReply, corr,
                    EncodeReply(ReplyBody{}));
        return out;
      }
      case FrameType::kStreamIngest: {
        if (job.conn->stream == nullptr) {
          AppendErrorFrame(&out, corr,
                           Status::Invalid("no open stream session on this "
                                           "connection"),
                           false, 0, false);
          return out;
        }
        const std::string_view chunk(
            reinterpret_cast<const char*>(job.frame.payload.data()),
            job.frame.payload.size());
        auto ingested = job.conn->stream->Ingest(chunk);
        StreamAckBody ack;
        ack.accepted = ingested.accepted;
        ack.rejected_late = ingested.rejected_late;
        ack.exit_code = ingested.result.exit_code;
        ack.out = std::move(ingested.result.out);
        ack.err = std::move(ingested.result.err);
        // A failing chunk (parse error, snapshot failure) ends the session,
        // like end-of-run in the CLI; the ack carries the exit code.
        if (ack.exit_code != 0) job.conn->stream.reset();
        AppendFrame(&out, FrameType::kStreamAck, corr, EncodeStreamAck(ack));
        return out;
      }
      case FrameType::kStreamSeal: {
        if (job.conn->stream == nullptr) {
          AppendErrorFrame(&out, corr,
                           Status::Invalid("no open stream session on this "
                                           "connection"),
                           false, 0, false);
          return out;
        }
        StreamSession* session = job.conn->stream.get();
        CallResult sealed = session->Seal();
        StreamAckBody ack;
        // The seal ack reports session totals, not per-frame deltas.
        ack.accepted = session->accepted_total();
        ack.rejected_late = session->dropped_late();
        ack.exit_code = sealed.exit_code;
        ack.out = std::move(sealed.out);
        ack.err = std::move(sealed.err);
        job.conn->stream.reset();
        AppendFrame(&out, FrameType::kStreamAck, corr, EncodeStreamAck(ack));
        return out;
      }
      default:
        // Unreachable: ParseFrames only enqueues dispatchable types.
        AppendErrorFrame(&out, corr,
                         Status::Internal("undispatchable frame type"), false,
                         0, false);
        return out;
    }
  }

  void AppendErrorFrame(std::vector<std::uint8_t>* out, std::uint64_t corr,
                        const Status& status, bool retryable,
                        std::uint64_t backoff_ms, bool fatal) {
    ErrorBody error;
    error.status_code = static_cast<std::uint32_t>(status.code());
    error.retryable = retryable;
    error.fatal = fatal;
    error.backoff_ms = backoff_ms;
    error.message = status.ToString();
    AppendFrame(out, FrameType::kErrorReply, corr, EncodeError(error));
  }

  std::vector<std::uint8_t> EncodeDecodeError(std::uint64_t corr,
                                              const Status& status) {
    // A CRC-valid frame with a malformed payload is a client codec bug, not
    // a stream desync: report it, keep the connection.
    NoteFrameError("decode");
    std::vector<std::uint8_t> out;
    AppendErrorFrame(&out, corr, status, false, 0, false);
    return out;
  }

  std::vector<std::uint8_t> FinishCall(std::uint64_t corr, CallResult result) {
    std::vector<std::uint8_t> out;
    double backoff_ms = 0;
    if (!result.engine_status.ok() &&
        IsRetryableShed(result.engine_status, &backoff_ms)) {
      // The PR 7 retry contract on the wire: shed ⇒ retryable error frame
      // carrying the reason and the suggested backoff.
      GM_COUNTER_ADD("granmine_server_sheds_total", "", 1);
      AppendErrorFrame(&out, corr, result.engine_status, /*retryable=*/true,
                       static_cast<std::uint64_t>(std::llround(backoff_ms)),
                       /*fatal=*/false);
      return out;
    }
    ReplyBody reply;
    reply.exit_code = result.exit_code;
    reply.out = std::move(result.out);
    reply.err = std::move(result.err);
    reply.diag = std::move(result.diag);
    AppendFrame(&out, FrameType::kReply, corr, EncodeReply(reply));
    return out;
  }
};

Server::Server(Engine* engine, ServerOptions options)
    : impl_(std::make_unique<Impl>(engine, std::move(options))) {}

Server::~Server() { Stop(); }

Status Server::Start() { return impl_->Start(); }

void Server::Stop() { impl_->Stop(); }

std::uint16_t Server::port() const { return impl_->port_; }

std::uint64_t Server::connections_accepted() const {
  return impl_->accepted_.load(std::memory_order_relaxed);
}

std::uint64_t Server::frames_dispatched() const {
  return impl_->dispatched_.load(std::memory_order_relaxed);
}

std::uint64_t Server::frame_errors() const {
  return impl_->frame_errors_.load(std::memory_order_relaxed);
}

}  // namespace granmine::server
