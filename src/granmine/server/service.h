#ifndef GRANMINE_SERVER_SERVICE_H_
#define GRANMINE_SERVER_SERVICE_H_

// The request service layer shared by granmine_cli and the TCP server: one
// implementation of the mine / check / dot / stream subcommand semantics
// that renders into strings instead of printing. The CLI prints the strings
// verbatim and the server ships them in reply frames, which is what makes
// the server's responses byte-identical to CLI stdout by construction
// (tests/server_test.cc pins the differential).
//
// Diagnostics keep the CLI's split: `CallResult::out` is the stdout
// contract (byte-diffable across thread counts, docs/concurrency.md),
// `err` carries error messages, and `diag` carries the once-per-run legacy
// stats rendering whose structured twin this layer logs directly
// (component "cli", preserving the --log-out record shape the CLI always
// emitted).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/engine/engine.h"
#include "granmine/io/text_format.h"
#include "granmine/sequence/sequence.h"
#include "granmine/server/wire.h"
#include "granmine/stream/online_miner.h"

namespace granmine::server {

/// One served request's complete outcome. Exit codes follow the CLI's
/// sysexits conventions (64 usage, 65 data, 70 software failure).
struct CallResult {
  int exit_code = 0;
  std::string out;   ///< stdout bytes, byte-identical to granmine_cli
  std::string err;   ///< stderr bytes (error messages, drop diagnostics)
  std::string diag;  ///< legacy stats rendering (CLI: stderr unless --log-out)
  /// The raw engine Status when an entry point failed — lets the server
  /// distinguish a retryable admission shed (IsRetryableShed) from an
  /// application error without re-parsing `err`.
  Status engine_status = Status::OK();
};

CallResult ServeMine(Engine* engine, const MineCall& call);
CallResult ServeCheck(Engine* engine, const CheckCall& call);
CallResult ServeDot(Engine* engine, const DotCall& call);

/// One live streaming session: the `granmine_cli stream` loop factored into
/// open / ingest / seal steps so the CLI drives it from stdin and the
/// server drives it from kStreamIngest frames, with identical bytes out.
///
/// Thread safety: externally synchronized, like OnlineMiner itself (the
/// server funnels each connection's frames through one worker at a time).
class StreamSession {
 public:
  struct OpenOutcome {
    /// Null unless `result.exit_code == 0`.
    std::unique_ptr<StreamSession> session;
    CallResult result;
  };

  /// Validates the call (structure, window geometry, pins, type universe,
  /// tolerance) exactly like the CLI flag order, then opens the engine
  /// stream — from `resume_path`'s checkpoint when non-empty, cold
  /// otherwise. Validation failures come back with the CLI's message and
  /// exit code; an admission shed surfaces in `result.engine_status`.
  static OpenOutcome Open(Engine* engine, const StreamOpenCall& call,
                          const std::string& resume_path = "");

  struct IngestOutcome {
    CallResult result;
    std::uint64_t accepted = 0;       ///< events accepted by this chunk
    std::uint64_t rejected_late = 0;  ///< late arrivals rejected
  };

  /// Ingests one chunk of event-file lines ('\n'-separated; a chunk with no
  /// trailing newline still counts its last line). Snapshot blocks fall out
  /// in `result.out` exactly when the watermark crosses a slide boundary —
  /// a pure function of the lines ingested, never of timing. `after_accept`
  /// (may be empty) runs after each accepted event, before that line's
  /// snapshot evaluation — the CLI's checkpoint/statusz cadence hook; a
  /// non-zero return aborts the chunk with that exit code.
  IngestOutcome Ingest(std::string_view chunk,
                       const std::function<int(OnlineMiner&)>& after_accept =
                           nullptr);

  /// Seals the stream and renders the final snapshot block, the
  /// INCONSISTENT line if refuted, and the ingest totals — the CLI's
  /// end-of-input epilogue, byte for byte.
  CallResult Seal();

  OnlineMiner& miner() { return *miner_; }
  const StreamRequest& request() const { return request_; }
  const std::vector<std::string>& names() const { return names_; }
  std::uint64_t accepted_total() const { return accepted_total_; }
  std::uint64_t dropped_late() const { return dropped_late_; }
  std::uint64_t snapshots_taken() const { return snapshots_taken_; }
  /// Stop cause of the final snapshot, for the CLI's stats line ("" before
  /// Seal).
  const std::string& seal_stop_cause() const { return seal_stop_cause_; }

 private:
  StreamSession() = default;

  EventTypeRegistry registry_;
  std::vector<std::string> names_;
  std::optional<EventStructure> structure_;
  DiscoveryProblem problem_;
  StreamRequest request_;
  std::int64_t slide_ = 0;
  std::optional<OnlineMiner> miner_;
  std::size_t line_number_ = 0;
  std::uint64_t accepted_total_ = 0;
  std::uint64_t dropped_late_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  TimePoint next_snapshot_ = 0;  // re-set to kInfinity in Open
  std::string seal_stop_cause_;
};

}  // namespace granmine::server

#endif  // GRANMINE_SERVER_SERVICE_H_
