#include "granmine/server/wire.h"

#include <cstring>

#include "granmine/persist/crc32c.h"

namespace granmine::server {

namespace {

void PutU32Le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64Le(std::uint8_t* out, std::uint64_t v) {
  PutU32Le(out, static_cast<std::uint32_t>(v));
  PutU32Le(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32Le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t GetU64Le(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(GetU32Le(in)) |
         static_cast<std::uint64_t>(GetU32Le(in + 4)) << 32;
}

void PutPins(persist::Encoder* enc, const std::vector<std::string>& pins) {
  enc->PutU32(static_cast<std::uint32_t>(pins.size()));
  for (const std::string& pin : pins) enc->PutString(pin);
}

Status GetPins(persist::Decoder* dec, std::vector<std::string>* pins) {
  std::uint32_t count = 0;
  GM_RETURN_NOT_OK(dec->GetU32("pin count", &count));
  // Each pin costs at least its 4-byte length prefix; a count beyond
  // remaining/4 cannot be satisfied — reject before reserving.
  if (count > dec->remaining() / 4) {
    return dec->Corrupt("pin count " + std::to_string(count) +
                        " exceeds remaining payload");
  }
  pins->clear();
  pins->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string pin;
    GM_RETURN_NOT_OK(dec->GetString("pin", &pin));
    pins->push_back(std::move(pin));
  }
  return Status::OK();
}

}  // namespace

void AppendPreamble(std::vector<std::uint8_t>* out) {
  const auto* magic = reinterpret_cast<const std::uint8_t*>(kWireMagic);
  out->insert(out->end(), magic, magic + kMagicSize);
  std::uint8_t version[4];
  PutU32Le(version, kWireVersion);
  out->insert(out->end(), version, version + 4);
}

Status CheckPreamble(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kPreambleSize) {
    return Status::Invalid("preamble: expected " +
                           std::to_string(kPreambleSize) + " bytes, got " +
                           std::to_string(bytes.size()));
  }
  if (std::memcmp(bytes.data(), kWireMagic, kMagicSize) != 0) {
    return Status::Invalid("preamble: bad magic (not a granmine RPC peer)");
  }
  const std::uint32_t version = GetU32Le(bytes.data() + kMagicSize);
  if (version != kWireVersion) {
    return Status::Unsupported("preamble: wire version " +
                               std::to_string(version) + ", this build speaks " +
                               std::to_string(kWireVersion));
  }
  return Status::OK();
}

void AppendFrame(std::vector<std::uint8_t>* out, FrameType type,
                 std::uint64_t corr_id,
                 std::span<const std::uint8_t> payload) {
  std::uint8_t header[kFrameHeaderSize];
  PutU32Le(header, static_cast<std::uint32_t>(type));
  PutU32Le(header + 4, 0);  // flags: reserved, receivers ignore unknown bits
  PutU64Le(header + 8, corr_id);
  PutU64Le(header + 16, static_cast<std::uint64_t>(payload.size()));
  std::uint32_t crc = persist::ExtendCrc32c(
      persist::kCrc32cInit, std::span<const std::uint8_t>(header, 24));
  crc = persist::ExtendCrc32c(crc, payload);
  PutU32Le(header + 24, crc);
  out->insert(out->end(), header, header + kFrameHeaderSize);
  out->insert(out->end(), payload.begin(), payload.end());
}

Result<std::optional<Frame>> FrameParser::Next() {
  if (buffer_.size() < kFrameHeaderSize) return std::optional<Frame>{};
  std::uint8_t header[kFrameHeaderSize];
  for (std::size_t i = 0; i < kFrameHeaderSize; ++i) header[i] = buffer_[i];
  const std::uint64_t payload_len = GetU64Le(header + 16);
  if (payload_len > max_payload_) {
    return Status::Invalid(
        "frame at offset " + std::to_string(consumed_) +
        ": payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(max_payload_) + "-byte bound");
  }
  if (buffer_.size() < kFrameHeaderSize + payload_len) {
    return std::optional<Frame>{};
  }
  Frame frame;
  frame.type = static_cast<FrameType>(GetU32Le(header));
  frame.flags = GetU32Le(header + 4);
  frame.corr_id = GetU64Le(header + 8);
  frame.payload.resize(static_cast<std::size_t>(payload_len));
  for (std::size_t i = 0; i < frame.payload.size(); ++i) {
    frame.payload[i] = buffer_[kFrameHeaderSize + i];
  }
  std::uint32_t crc = persist::ExtendCrc32c(
      persist::kCrc32cInit, std::span<const std::uint8_t>(header, 24));
  crc = persist::ExtendCrc32c(crc, frame.payload);
  const std::uint32_t stored = GetU32Le(header + 24);
  if (crc != stored) {
    return Status::Invalid("frame at offset " + std::to_string(consumed_) +
                           ": CRC mismatch (stored " + std::to_string(stored) +
                           ", computed " + std::to_string(crc) + ")");
  }
  for (std::size_t i = 0; i < kFrameHeaderSize + frame.payload.size(); ++i) {
    buffer_.pop_front();
  }
  consumed_ += kFrameHeaderSize + frame.payload.size();
  return std::optional<Frame>{std::move(frame)};
}

std::vector<std::uint8_t> EncodeMineCall(const MineCall& call) {
  persist::Encoder enc;
  enc.PutString(call.structure_text);
  enc.PutString(call.events_text);
  enc.PutString(call.reference);
  enc.PutString(call.confidence);
  enc.PutString(call.on_budget);
  enc.PutU8(static_cast<std::uint8_t>((call.naive ? 1 : 0) |
                                      (call.explain ? 2 : 0) |
                                      (call.default_partial ? 4 : 0)));
  PutPins(&enc, call.pins);
  return enc.buffer();
}

Status DecodeMineCall(std::span<const std::uint8_t> payload, MineCall* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetString("structure text", &out->structure_text));
  GM_RETURN_NOT_OK(dec.GetString("events text", &out->events_text));
  GM_RETURN_NOT_OK(dec.GetString("reference", &out->reference));
  GM_RETURN_NOT_OK(dec.GetString("confidence", &out->confidence));
  GM_RETURN_NOT_OK(dec.GetString("on-budget", &out->on_budget));
  std::uint8_t flags = 0;
  GM_RETURN_NOT_OK(dec.GetU8("mine flags", &flags));
  out->naive = (flags & 1) != 0;
  out->explain = (flags & 2) != 0;
  out->default_partial = (flags & 4) != 0;
  GM_RETURN_NOT_OK(GetPins(&dec, &out->pins));
  return dec.ExpectEnd("mine call");
}

std::vector<std::uint8_t> EncodeCheckCall(const CheckCall& call) {
  persist::Encoder enc;
  enc.PutString(call.structure_text);
  enc.PutU8(call.exact ? 1 : 0);
  return enc.buffer();
}

Status DecodeCheckCall(std::span<const std::uint8_t> payload, CheckCall* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetString("structure text", &out->structure_text));
  std::uint8_t exact = 0;
  GM_RETURN_NOT_OK(dec.GetU8("exact flag", &exact));
  out->exact = exact != 0;
  return dec.ExpectEnd("check call");
}

std::vector<std::uint8_t> EncodeDotCall(const DotCall& call) {
  persist::Encoder enc;
  enc.PutString(call.structure_text);
  enc.PutU8(call.tag ? 1 : 0);
  return enc.buffer();
}

Status DecodeDotCall(std::span<const std::uint8_t> payload, DotCall* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetString("structure text", &out->structure_text));
  std::uint8_t tag = 0;
  GM_RETURN_NOT_OK(dec.GetU8("tag flag", &tag));
  out->tag = tag != 0;
  return dec.ExpectEnd("dot call");
}

std::vector<std::uint8_t> EncodeStreamOpenCall(const StreamOpenCall& call) {
  persist::Encoder enc;
  enc.PutString(call.structure_text);
  enc.PutString(call.reference);
  enc.PutString(call.window);
  enc.PutString(call.slide);
  enc.PutString(call.theta);
  enc.PutString(call.types);
  enc.PutString(call.tolerance);
  PutPins(&enc, call.pins);
  return enc.buffer();
}

Status DecodeStreamOpenCall(std::span<const std::uint8_t> payload,
                            StreamOpenCall* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetString("structure text", &out->structure_text));
  GM_RETURN_NOT_OK(dec.GetString("reference", &out->reference));
  GM_RETURN_NOT_OK(dec.GetString("window", &out->window));
  GM_RETURN_NOT_OK(dec.GetString("slide", &out->slide));
  GM_RETURN_NOT_OK(dec.GetString("theta", &out->theta));
  GM_RETURN_NOT_OK(dec.GetString("types", &out->types));
  GM_RETURN_NOT_OK(dec.GetString("tolerance", &out->tolerance));
  GM_RETURN_NOT_OK(GetPins(&dec, &out->pins));
  return dec.ExpectEnd("stream open call");
}

std::vector<std::uint8_t> EncodeIngestChunk(std::string_view lines) {
  return std::vector<std::uint8_t>(lines.begin(), lines.end());
}

std::vector<std::uint8_t> EncodeReply(const ReplyBody& reply) {
  persist::Encoder enc;
  enc.PutI32(reply.exit_code);
  enc.PutString(reply.out);
  enc.PutString(reply.err);
  enc.PutString(reply.diag);
  return enc.buffer();
}

Status DecodeReply(std::span<const std::uint8_t> payload, ReplyBody* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetI32("exit code", &out->exit_code));
  GM_RETURN_NOT_OK(dec.GetString("stdout", &out->out));
  GM_RETURN_NOT_OK(dec.GetString("stderr", &out->err));
  GM_RETURN_NOT_OK(dec.GetString("diag", &out->diag));
  return dec.ExpectEnd("reply");
}

std::vector<std::uint8_t> EncodeError(const ErrorBody& error) {
  persist::Encoder enc;
  enc.PutU32(error.status_code);
  enc.PutU8(error.retryable ? 1 : 0);
  enc.PutU8(error.fatal ? 1 : 0);
  enc.PutU64(error.backoff_ms);
  enc.PutString(error.message);
  return enc.buffer();
}

Status DecodeError(std::span<const std::uint8_t> payload, ErrorBody* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetU32("status code", &out->status_code));
  std::uint8_t retryable = 0, fatal = 0;
  GM_RETURN_NOT_OK(dec.GetU8("retryable flag", &retryable));
  GM_RETURN_NOT_OK(dec.GetU8("fatal flag", &fatal));
  out->retryable = retryable != 0;
  out->fatal = fatal != 0;
  GM_RETURN_NOT_OK(dec.GetU64("backoff ms", &out->backoff_ms));
  GM_RETURN_NOT_OK(dec.GetString("message", &out->message));
  return dec.ExpectEnd("error reply");
}

std::vector<std::uint8_t> EncodeStreamAck(const StreamAckBody& ack) {
  persist::Encoder enc;
  enc.PutU64(ack.accepted);
  enc.PutU64(ack.rejected_late);
  enc.PutI32(ack.exit_code);
  enc.PutString(ack.out);
  enc.PutString(ack.err);
  return enc.buffer();
}

Status DecodeStreamAck(std::span<const std::uint8_t> payload,
                       StreamAckBody* out) {
  persist::Decoder dec(payload, 0);
  GM_RETURN_NOT_OK(dec.GetU64("accepted", &out->accepted));
  GM_RETURN_NOT_OK(dec.GetU64("rejected late", &out->rejected_late));
  GM_RETURN_NOT_OK(dec.GetI32("exit code", &out->exit_code));
  GM_RETURN_NOT_OK(dec.GetString("stdout", &out->out));
  GM_RETURN_NOT_OK(dec.GetString("stderr", &out->err));
  return dec.ExpectEnd("stream ack");
}

}  // namespace granmine::server
