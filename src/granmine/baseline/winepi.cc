#include "granmine/baseline/winepi.h"

#include <algorithm>
#include <set>

#include "granmine/common/check.h"

namespace granmine {

namespace {

// All (k-1)-subepisodes obtained by dropping one element (order/multiset
// preserved).
std::vector<std::vector<EventTypeId>> SubEpisodes(
    const std::vector<EventTypeId>& types) {
  std::vector<std::vector<EventTypeId>> out;
  for (std::size_t drop = 0; drop < types.size(); ++drop) {
    std::vector<EventTypeId> sub;
    for (std::size_t i = 0; i < types.size(); ++i) {
      if (i != drop) sub.push_back(types[i]);
    }
    out.push_back(std::move(sub));
  }
  return out;
}

std::vector<std::vector<EventTypeId>> GenerateCandidates(
    Episode::Kind kind,
    const std::vector<std::vector<EventTypeId>>& frequent_prev) {
  std::set<std::vector<EventTypeId>> frequent_set(frequent_prev.begin(),
                                                  frequent_prev.end());
  std::set<std::vector<EventTypeId>> candidates;
  if (kind == Episode::Kind::kParallel) {
    // Extend each canonical (sorted) multiset with a frequent singleton type
    // >= its last element.
    std::set<EventTypeId> singles;
    for (const auto& f : frequent_prev) {
      if (f.size() == 1) singles.insert(f[0]);
    }
    // frequent_prev may be of size k-1 > 1; collect types from all of them.
    for (const auto& f : frequent_prev) {
      for (EventTypeId t : f) singles.insert(t);
    }
    for (const auto& f : frequent_prev) {
      for (EventTypeId t : singles) {
        if (t < f.back()) continue;
        std::vector<EventTypeId> candidate = f;
        candidate.push_back(t);
        candidates.insert(std::move(candidate));
      }
    }
  } else {
    // Serial join: alpha + last(beta) when alpha[1:] == beta[:-1].
    for (const auto& alpha : frequent_prev) {
      for (const auto& beta : frequent_prev) {
        bool joinable = true;
        for (std::size_t i = 1; i < alpha.size(); ++i) {
          if (alpha[i] != beta[i - 1]) {
            joinable = false;
            break;
          }
        }
        if (!joinable) continue;
        std::vector<EventTypeId> candidate = alpha;
        candidate.push_back(beta.back());
        candidates.insert(std::move(candidate));
      }
    }
  }
  // Apriori pruning: every subepisode must be frequent.
  std::vector<std::vector<EventTypeId>> out;
  for (const auto& candidate : candidates) {
    bool keep = true;
    for (const auto& sub : SubEpisodes(candidate)) {
      std::vector<EventTypeId> canonical = sub;
      if (kind == Episode::Kind::kParallel) {
        std::sort(canonical.begin(), canonical.end());
      }
      if (frequent_set.find(canonical) == frequent_set.end()) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(candidate);
  }
  return out;
}

}  // namespace

WinepiReport MineFrequentEpisodes(const EventSequence& sequence,
                                  const WinepiOptions& options) {
  GM_CHECK(options.max_size >= 1);
  WinepiReport report;
  if (sequence.empty()) return report;

  // Level 1: singleton episodes over the distinct types.
  std::vector<std::vector<EventTypeId>> level;
  for (EventTypeId type : sequence.DistinctTypes()) {
    level.push_back({type});
  }

  for (int size = 1; size <= options.max_size && !level.empty(); ++size) {
    std::vector<std::vector<EventTypeId>> frequent_here;
    for (const std::vector<EventTypeId>& types : level) {
      Episode episode{options.kind, types};
      ++report.candidates_evaluated;
      WindowCount count =
          CountWindows(episode, sequence, options.window_width);
      double frequency = count.Frequency();
      if (frequency >= options.min_frequency) {
        report.frequent.push_back(FrequentEpisode{episode, frequency});
        frequent_here.push_back(types);
      }
    }
    if (size == options.max_size) break;
    level = GenerateCandidates(options.kind, frequent_here);
  }
  return report;
}

}  // namespace granmine
