#ifndef GRANMINE_BASELINE_EPISODE_H_
#define GRANMINE_BASELINE_EPISODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/sequence/sequence.h"

namespace granmine {

/// An episode in the sense of Mannila, Toivonen & Verkamo (KDD'95) — the
/// baseline the paper positions itself against: a collection of event types
/// that must occur inside a sliding window, either in order (serial) or in
/// any order (parallel).
struct Episode {
  enum class Kind { kSerial, kParallel };

  Kind kind = Kind::kSerial;
  /// Types with multiplicity; serial episodes are ordered, parallel ones
  /// are kept sorted (canonical multiset form).
  std::vector<EventTypeId> types;

  bool operator==(const Episode&) const = default;
  std::string ToString() const;
};

/// Number of window positions w (windows are [w, w+width), w ranging over
/// [first - width + 1, last] per MTV95) in which the episode occurs, plus
/// the total number of window positions. frequency = contained / total.
struct WindowCount {
  std::int64_t contained = 0;
  std::int64_t total = 0;

  double Frequency() const {
    return total == 0 ? 0.0
                      : static_cast<double>(contained) /
                            static_cast<double>(total);
  }
};

/// Counts the windows of `width` containing the episode over `sequence`.
WindowCount CountWindows(const Episode& episode, const EventSequence& sequence,
                         std::int64_t width);

/// Whether the episode occurs somewhere within the half-open time window
/// [window_start, window_start + width). Reference implementation used for
/// differential tests of CountWindows.
bool OccursInWindow(const Episode& episode, const EventSequence& sequence,
                    TimePoint window_start, std::int64_t width);

}  // namespace granmine

#endif  // GRANMINE_BASELINE_EPISODE_H_
