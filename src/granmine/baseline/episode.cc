#include "granmine/baseline/episode.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

std::string Episode::ToString() const {
  std::ostringstream os;
  os << (kind == Kind::kSerial ? "serial" : "parallel") << "<";
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (i > 0) os << (kind == Kind::kSerial ? " -> " : ", ");
    os << types[i];
  }
  os << ">";
  return os.str();
}

namespace {

// For a serial episode: the windows containing an occurrence are the union
// over occurrence end-events e_j of [t_j - width + 1, s_j], where s_j is the
// latest start of an occurrence ending at e_j. The DP below computes s_j.
std::vector<TimeSpan> SerialWindowIntervals(const Episode& episode,
                                            const EventSequence& sequence,
                                            std::int64_t width) {
  const std::vector<Event>& events = sequence.events();
  const std::size_t k = episode.types.size();
  // best_start[l] = latest start time of an occurrence of the prefix of
  // length l+1 seen so far (nullopt = none).
  std::vector<std::optional<TimePoint>> best_start(k);
  std::vector<TimeSpan> intervals;
  for (const Event& event : events) {
    // Descend so a single event cannot serve two levels.
    for (std::size_t l = k; l-- > 0;) {
      if (event.type != episode.types[l]) continue;
      std::optional<TimePoint> start =
          l == 0 ? std::optional<TimePoint>(event.time) : best_start[l - 1];
      if (!start.has_value()) continue;
      if (l + 1 == k) {
        // Occurrence [start, event.time]: contained in windows
        // [event.time - width + 1, *start] (if the span fits the window).
        TimeSpan span = TimeSpan::Of(event.time - width + 1, *start);
        if (!span.empty()) {
          if (!intervals.empty() && intervals.back().last >= span.first - 1 &&
              intervals.back().first <= span.first) {
            intervals.back().last = std::max(intervals.back().last, span.last);
          } else {
            intervals.push_back(span);
          }
        }
      } else if (!best_start[l].has_value() || *start > *best_start[l]) {
        best_start[l] = start;
      }
    }
  }
  return intervals;
}

// For a parallel episode: sweep window starts; the containment predicate
// changes only when an event enters (w = t - width + 1) or leaves
// (w = t + 1) the window, so evaluate per breakpoint segment.
std::vector<TimeSpan> ParallelWindowIntervals(const Episode& episode,
                                              const EventSequence& sequence,
                                              std::int64_t width) {
  const std::vector<Event>& events = sequence.events();
  std::map<EventTypeId, int> needed;
  for (EventTypeId type : episode.types) ++needed[type];

  // Breakpoints where window contents change.
  std::vector<TimePoint> breaks;
  for (const Event& event : events) {
    if (needed.count(event.type) == 0) continue;
    breaks.push_back(event.time - width + 1);
    breaks.push_back(event.time + 1);
  }
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end()), breaks.end());

  std::map<EventTypeId, int> have;
  int satisfied = 0;
  auto bump = [&](EventTypeId type, int delta) {
    auto it = needed.find(type);
    if (it == needed.end()) return;
    int before = have[type];
    have[type] = before + delta;
    if (delta > 0 && before + delta == it->second) ++satisfied;
    if (delta < 0 && before == it->second) --satisfied;
  };

  std::vector<TimeSpan> intervals;
  std::size_t enter = 0;  // next event to enter (ordered by t - width + 1)
  std::size_t leave = 0;  // next event to leave (ordered by t + 1)
  for (std::size_t b = 0; b < breaks.size(); ++b) {
    TimePoint w = breaks[b];
    while (enter < events.size() && events[enter].time - width + 1 <= w) {
      bump(events[enter].type, +1);
      ++enter;
    }
    while (leave < events.size() && events[leave].time + 1 <= w) {
      bump(events[leave].type, -1);
      ++leave;
    }
    if (satisfied == static_cast<int>(needed.size())) {
      TimePoint segment_end =
          b + 1 < breaks.size() ? breaks[b + 1] - 1 : w;
      if (!intervals.empty() && intervals.back().last >= w - 1) {
        intervals.back().last = std::max(intervals.back().last, segment_end);
      } else {
        intervals.push_back(TimeSpan::Of(w, segment_end));
      }
    }
  }
  return intervals;
}

}  // namespace

WindowCount CountWindows(const Episode& episode, const EventSequence& sequence,
                         std::int64_t width) {
  GM_CHECK(width >= 1);
  GM_CHECK(!episode.types.empty());
  WindowCount count;
  if (sequence.empty()) return count;
  const TimePoint first = sequence.events().front().time;
  const TimePoint last = sequence.events().back().time;
  const TimeSpan domain = TimeSpan::Of(first - width + 1, last);
  count.total = domain.length();

  std::vector<TimeSpan> intervals =
      episode.kind == Episode::Kind::kSerial
          ? SerialWindowIntervals(episode, sequence, width)
          : ParallelWindowIntervals(episode, sequence, width);
  // Intervals may overlap (serial merging is only local); count the union.
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeSpan& a, const TimeSpan& b) {
              return a.first < b.first;
            });
  TimePoint cursor = domain.first - 1;
  for (const TimeSpan& interval : intervals) {
    TimeSpan clipped = interval.Intersect(domain);
    if (clipped.empty()) continue;
    TimePoint from = std::max(clipped.first, cursor + 1);
    if (from <= clipped.last) {
      count.contained += clipped.last - from + 1;
      cursor = clipped.last;
    } else {
      cursor = std::max(cursor, clipped.last);
    }
  }
  return count;
}

bool OccursInWindow(const Episode& episode, const EventSequence& sequence,
                    TimePoint window_start, std::int64_t width) {
  const TimePoint window_end = window_start + width - 1;  // inclusive
  const std::vector<Event>& events = sequence.events();
  if (episode.kind == Episode::Kind::kParallel) {
    std::map<EventTypeId, int> needed;
    for (EventTypeId type : episode.types) ++needed[type];
    for (const Event& event : events) {
      if (event.time < window_start || event.time > window_end) continue;
      auto it = needed.find(event.type);
      if (it != needed.end() && --it->second == 0) needed.erase(it);
    }
    return needed.empty();
  }
  // Serial: greedy earliest match inside the window.
  std::size_t level = 0;
  for (const Event& event : events) {
    if (event.time < window_start || event.time > window_end) continue;
    if (event.type == episode.types[level]) {
      if (++level == episode.types.size()) return true;
    }
  }
  return false;
}

}  // namespace granmine
