#ifndef GRANMINE_BASELINE_WINEPI_H_
#define GRANMINE_BASELINE_WINEPI_H_

#include <cstdint>
#include <vector>

#include "granmine/baseline/episode.h"

namespace granmine {

/// Options for the WINEPI frequent-episode miner of [MTV95].
struct WinepiOptions {
  Episode::Kind kind = Episode::Kind::kSerial;
  std::int64_t window_width = 100;
  double min_frequency = 0.1;  ///< fraction of windows (>=, per MTV95)
  int max_size = 5;
};

struct FrequentEpisode {
  Episode episode;
  double frequency = 0.0;
};

struct WinepiReport {
  std::vector<FrequentEpisode> frequent;  ///< all sizes, discovery order
  std::uint64_t candidates_evaluated = 0;
};

/// Level-wise WINEPI: size-k candidates are generated from frequent
/// (k-1)-episodes (Apriori join + subepisode pruning) and verified against
/// the sliding-window frequency. The technique the paper cites as its
/// candidate-reduction inspiration (§5.1).
WinepiReport MineFrequentEpisodes(const EventSequence& sequence,
                                  const WinepiOptions& options);

}  // namespace granmine

#endif  // GRANMINE_BASELINE_WINEPI_H_
