#ifndef GRANMINE_PERSIST_CRC32C_H_
#define GRANMINE_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace granmine::persist {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum the snapshot format frames every section with. Software
/// slice-by-one implementation: section payloads are small relative to the
/// scans they cache, so portability beats SSE4.2 here. Detects all
/// single-bit and all burst errors up to 32 bits, which the snapshot fuzz
/// suite leans on.
///
/// `Extend(crc, data)` continues a running checksum (start from
/// `kCrc32cInit`, i.e. 0); `Crc32c(data)` is the one-shot form.
inline constexpr std::uint32_t kCrc32cInit = 0;

std::uint32_t ExtendCrc32c(std::uint32_t crc,
                           std::span<const std::uint8_t> data);

inline std::uint32_t Crc32c(std::span<const std::uint8_t> data) {
  return ExtendCrc32c(kCrc32cInit, data);
}

}  // namespace granmine::persist

#endif  // GRANMINE_PERSIST_CRC32C_H_
