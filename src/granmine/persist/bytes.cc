#include "granmine/persist/bytes.h"

#include <cstdio>
#include <utility>

namespace granmine::persist {

Result<std::unique_ptr<FileSource>> FileSource::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open snapshot '" + path + "' for reading");
  }
  return std::unique_ptr<FileSource>(new FileSource(file, path));
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSource::Read(std::span<std::uint8_t> out, std::size_t* read) {
  if (out.empty()) {
    *read = 0;
    return Status::OK();
  }
  *read = std::fread(out.data(), 1, out.size(), file_);
  offset_ += *read;
  if (*read < out.size() && std::ferror(file_) != 0) {
    return Status::Internal("read error in '" + path_ + "' at byte offset " +
                            std::to_string(offset_));
  }
  return Status::OK();
}

Result<std::unique_ptr<AtomicFileSink>> AtomicFileSink::Open(
    const std::string& path) {
  std::string temp_path = path + ".tmp";
  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create snapshot temp file '" + temp_path +
                            "'");
  }
  return std::unique_ptr<AtomicFileSink>(
      new AtomicFileSink(file, path, std::move(temp_path)));
}

AtomicFileSink::~AtomicFileSink() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  // An uncommitted sink abandons its temp file so a cancelled or failed
  // checkpoint leaves the previous snapshot at `path_` untouched and no
  // partial bytes behind.
  if (!committed_) std::remove(temp_path_.c_str());
}

Status AtomicFileSink::Append(std::span<const std::uint8_t> data) {
  if (file_ == nullptr) {
    return Status::Internal("snapshot sink for '" + path_ + "' is closed");
  }
  if (data.empty()) return Status::OK();
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::Internal("write error on snapshot temp file '" +
                            temp_path_ + "' at byte offset " +
                            std::to_string(bytes_written_));
  }
  bytes_written_ += data.size();
  return Status::OK();
}

Status AtomicFileSink::Commit() {
  if (file_ == nullptr) {
    return Status::Internal("snapshot sink for '" + path_ +
                            "' already committed or closed");
  }
  const bool flushed = std::fflush(file_) == 0;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!flushed || !closed) {
    std::remove(temp_path_.c_str());
    return Status::Internal("cannot flush snapshot temp file '" + temp_path_ +
                            "'");
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path_.c_str());
    return Status::Internal("cannot rename '" + temp_path_ + "' over '" +
                            path_ + "'");
  }
  committed_ = true;
  return Status::OK();
}

}  // namespace granmine::persist
