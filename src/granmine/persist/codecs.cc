#include "granmine/persist/codecs.h"

#include <utility>

#include "granmine/granularity/tables.h"

namespace granmine::persist {

namespace {

/// Largest family / event count a decoder will allocate for. Far above any
/// real snapshot; exists so a bit-flipped count fails with Invalid instead
/// of an allocation attempt (the CRC catches flips first, but the decoders
/// are also exercised standalone by the fuzz suite).
constexpr std::uint64_t kMaxDecodedEvents = std::uint64_t{1} << 32;
constexpr std::uint32_t kMaxDecodedFamily = 1u << 20;
constexpr std::int64_t kMaxDecodedKCap = std::int64_t{1} << 16;

}  // namespace

std::vector<std::uint8_t> EncodeEventSequence(const EventSequence& sequence) {
  Encoder enc;
  enc.PutU64(sequence.size());
  for (const Event& event : sequence.events()) {
    enc.PutI32(event.type);
    enc.PutI64(event.time);
  }
  return enc.buffer();
}

Result<EventSequence> DecodeEventSequence(const Section& section) {
  Decoder dec(section.payload, section.payload_offset);
  std::uint64_t count = 0;
  GM_RETURN_NOT_OK(dec.GetU64("event count", &count));
  // Each event is 12 bytes; a count the payload cannot hold is corrupt, and
  // checking before reserving keeps a flipped count from demanding memory.
  if (count > kMaxDecodedEvents || count * 12 > dec.remaining()) {
    return dec.Corrupt("event count " + std::to_string(count) +
                       " exceeds payload");
  }
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Event event;
    GM_RETURN_NOT_OK(dec.GetI32("event type", &event.type));
    GM_RETURN_NOT_OK(dec.GetI64("event time", &event.time));
    events.push_back(event);
  }
  GM_RETURN_NOT_OK(dec.ExpectEnd("event sequence"));
  return EventSequence(std::move(events));
}

std::vector<std::uint8_t> EncodeFrozenSystemImage(
    const FrozenSystemImage& image) {
  Encoder enc;
  const std::uint32_t n = static_cast<std::uint32_t>(image.names.size());
  enc.PutU32(n);
  enc.PutI64(image.sealed_k_cap);
  for (const std::string& name : image.names) enc.PutString(name);
  for (const GranularityTables::SealedRow& row : image.table_rows) {
    for (const std::vector<std::int64_t>* table :
         {&row.minsize, &row.maxsize, &row.mingap}) {
      for (std::int64_t v : *table) enc.PutI64(v);
    }
  }
  // Coverage is bit-packed row-major, LSB-first within each byte.
  std::uint8_t byte = 0;
  int bit = 0;
  for (std::size_t i = 0; i < image.coverage.size(); ++i) {
    if (image.coverage[i]) byte |= static_cast<std::uint8_t>(1u << bit);
    if (++bit == 8) {
      enc.PutU8(byte);
      byte = 0;
      bit = 0;
    }
  }
  if (bit != 0) enc.PutU8(byte);
  return enc.buffer();
}

Result<FrozenSystemImage> DecodeFrozenSystemImage(const Section& section) {
  Decoder dec(section.payload, section.payload_offset);
  std::uint32_t n = 0;
  FrozenSystemImage image;
  GM_RETURN_NOT_OK(dec.GetU32("family size", &n));
  GM_RETURN_NOT_OK(dec.GetI64("sealed k cap", &image.sealed_k_cap));
  if (n > kMaxDecodedFamily) {
    return dec.Corrupt("family size " + std::to_string(n) + " is implausible");
  }
  if (image.sealed_k_cap < 1 || image.sealed_k_cap > kMaxDecodedKCap) {
    return dec.Corrupt("sealed k cap " + std::to_string(image.sealed_k_cap) +
                       " is implausible");
  }
  image.names.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    GM_RETURN_NOT_OK(dec.GetString("granularity name", &name));
    image.names.push_back(std::move(name));
  }
  const std::uint64_t width =
      static_cast<std::uint64_t>(image.sealed_k_cap) + 1;
  if (std::uint64_t{n} * 3 * width * 8 > dec.remaining()) {
    return dec.Corrupt("sealed tables exceed payload");
  }
  image.table_rows.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GranularityTables::SealedRow& row = image.table_rows[i];
    for (std::vector<std::int64_t>* table :
         {&row.minsize, &row.maxsize, &row.mingap}) {
      table->resize(static_cast<std::size_t>(width));
      for (std::uint64_t k = 0; k < width; ++k) {
        GM_RETURN_NOT_OK(dec.GetI64("sealed table value", &(*table)[k]));
      }
    }
  }
  const std::uint64_t cells = std::uint64_t{n} * n;
  const std::uint64_t packed = (cells + 7) / 8;
  if (packed > dec.remaining()) {
    return dec.Corrupt("coverage matrix exceeds payload");
  }
  image.coverage.resize(static_cast<std::size_t>(cells));
  std::uint8_t byte = 0;
  for (std::uint64_t i = 0; i < cells; ++i) {
    if (i % 8 == 0) GM_RETURN_NOT_OK(dec.GetU8("coverage byte", &byte));
    image.coverage[static_cast<std::size_t>(i)] = ((byte >> (i % 8)) & 1u) != 0;
  }
  GM_RETURN_NOT_OK(dec.ExpectEnd("frozen system image"));
  return image;
}

}  // namespace granmine::persist
