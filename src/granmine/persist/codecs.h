#ifndef GRANMINE_PERSIST_CODECS_H_
#define GRANMINE_PERSIST_CODECS_H_

#include <cstdint>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/granularity/system.h"
#include "granmine/persist/snapshot.h"
#include "granmine/sequence/sequence.h"

namespace granmine::persist {

/// Section codecs for the kFrozenSystemImage and kEventSequence payloads
/// (docs/persistence.md). Encoders produce a payload for
/// SnapshotWriter::WriteSection; decoders consume a CRC-verified Section and
/// report corruption with absolute byte offsets via the Decoder contract.
/// Decoding validates structure only — matching a frozen image against a
/// live family is `GranularitySystem::FreezeFromImage`'s job.

std::vector<std::uint8_t> EncodeEventSequence(const EventSequence& sequence);
Result<EventSequence> DecodeEventSequence(const Section& section);

std::vector<std::uint8_t> EncodeFrozenSystemImage(
    const FrozenSystemImage& image);
Result<FrozenSystemImage> DecodeFrozenSystemImage(const Section& section);

}  // namespace granmine::persist

#endif  // GRANMINE_PERSIST_CODECS_H_
