#include "granmine/persist/stream_codec.h"

#include <algorithm>
#include <utility>

#include "granmine/obs/obs.h"
#include "granmine/persist/bytes.h"

namespace granmine::persist {

namespace {

/// Bumped when the kStreamSession payload layout changes. Separate from the
/// container's format version: the container frames stay readable, only
/// this one section becomes Unsupported.
constexpr std::uint32_t kStreamSessionVersion = 1;

void EncodeStats(Encoder* enc, const MatchStats& stats) {
  enc->PutU64(stats.configurations);
  enc->PutU64(stats.peak_frontier);
  enc->PutU64(stats.events_scanned);
  enc->PutU64(stats.transitions);
  enc->PutU64(stats.groups_advanced);
  enc->PutU8(stats.budget_exhausted ? 1 : 0);
  enc->PutI32(static_cast<std::int32_t>(stats.stopped));
}

Status DecodeStats(Decoder* dec, MatchStats* stats) {
  std::uint64_t peak = 0;
  std::uint8_t exhausted = 0;
  std::int32_t stopped = 0;
  GM_RETURN_NOT_OK(dec->GetU64("stats configurations",
                               &stats->configurations));
  GM_RETURN_NOT_OK(dec->GetU64("stats peak frontier", &peak));
  GM_RETURN_NOT_OK(dec->GetU64("stats events scanned",
                               &stats->events_scanned));
  GM_RETURN_NOT_OK(dec->GetU64("stats transitions", &stats->transitions));
  GM_RETURN_NOT_OK(dec->GetU64("stats groups advanced",
                               &stats->groups_advanced));
  GM_RETURN_NOT_OK(dec->GetU8("stats budget flag", &exhausted));
  GM_RETURN_NOT_OK(dec->GetI32("stats stop cause", &stopped));
  if (exhausted > 1) return dec->Corrupt("stats budget flag is not boolean");
  if (stopped < static_cast<std::int32_t>(StopCause::kNone) ||
      stopped > static_cast<std::int32_t>(StopCause::kDegraded)) {
    return dec->Corrupt("stats stop cause " + std::to_string(stopped) +
                        " is out of range");
  }
  stats->peak_frontier = static_cast<std::size_t>(peak);
  stats->budget_exhausted = exhausted != 0;
  stats->stopped = static_cast<StopCause>(stopped);
  return Status::OK();
}

}  // namespace

std::vector<std::uint8_t> StreamSessionCodec::Encode(const OnlineMiner& miner) {
  Encoder enc;
  enc.PutU32(kStreamSessionVersion);

  // Fingerprint of the static configuration: restore re-derives everything
  // else from (system, problem, options), so this is what must match.
  enc.PutI64(miner.options_.tolerance);
  enc.PutI64(miner.options_.retention);
  enc.PutU64(miner.options_.max_candidates);
  enc.PutU64(miner.options_.max_configurations_per_run);
  enc.PutI32(static_cast<std::int32_t>(miner.root_));
  enc.PutU8(miner.consistent_ ? 1 : 0);
  enc.PutI32(miner.type_count_);
  enc.PutU64(miner.candidates_before_);
  enc.PutI32(miner.problem_.reference_type);

  // Ingestor: watermark frontier, counters, and the live reorder buffer.
  const StreamIngestor& ingestor = miner.ingestor_;
  enc.PutI64(ingestor.tracker_.max_seen_);
  enc.PutU8(ingestor.tracker_.any_ ? 1 : 0);
  enc.PutU8(ingestor.tracker_.sealed_ ? 1 : 0);
  enc.PutU64(ingestor.late_events_);
  enc.PutU64(ingestor.shed_events_);
  enc.PutU64(ingestor.events_.size() - ingestor.head_);
  for (std::size_t i = ingestor.head_; i < ingestor.events_.size(); ++i) {
    enc.PutI32(ingestor.events_[i].type);
    enc.PutI64(ingestor.events_[i].time);
  }

  // Core accounting: the committed-group records retention needs.
  const OnlineMiner::Core& core = miner.core_;
  enc.PutU64(core.raw_events);
  enc.PutU64(core.raw_roots);
  enc.PutU64(core.reduced_events);
  enc.PutU64(core.groups.size());
  for (std::size_t i = 0; i < core.groups.size(); ++i) {
    const OnlineMiner::GroupRecord& record = core.groups[i];
    enc.PutI64(record.time);
    enc.PutU64(record.raw);
    enc.PutU64(record.raw_roots);
    enc.PutU64(record.reduced);
  }

  enc.PutU8(core.matcher.has_value() ? 1 : 0);
  if (!core.matcher.has_value()) return enc.buffer();

  // Resident runs. Frontiers are unordered in memory; writing them in
  // canonical (state, resets) order makes the same session state always
  // encode to the same bytes, so checkpoint files can be compared directly.
  const IncrementalMatcher& matcher = *core.matcher;
  const std::size_t clock_count = matcher.kernel_.clock_count();
  enc.PutU64(clock_count);
  enc.PutU64(matcher.candidate_count_);
  enc.PutU64(matcher.roots_.size());
  std::vector<const TagConfig*> ordered;
  for (std::size_t r = 0; r < matcher.roots_.size(); ++r) {
    const RootRuns& root = matcher.roots_[r];
    enc.PutI64(root.t0);
    enc.PutI64(root.deadline);
    enc.PutU64(root.pending);
    for (const ResidentRun& slot : root.slots) {
      enc.PutU8(static_cast<std::uint8_t>(slot.verdict));
      EncodeStats(&enc, slot.stats);
      enc.PutU8(slot.run.seeded ? 1 : 0);
      ordered.clear();
      ordered.reserve(slot.run.frontier.size());
      for (const TagConfig& config : slot.run.frontier) {
        ordered.push_back(&config);
      }
      std::sort(ordered.begin(), ordered.end(),
                [](const TagConfig* a, const TagConfig* b) {
                  if (a->state != b->state) return a->state < b->state;
                  return a->resets < b->resets;
                });
      enc.PutU64(ordered.size());
      for (const TagConfig* config : ordered) {
        enc.PutI32(config->state);
        for (std::int64_t reset : config->resets) enc.PutI64(reset);
      }
    }
  }
  return enc.buffer();
}

Status StreamSessionCodec::Decode(const Section& section, OnlineMiner* miner) {
  if (section.type != SectionType::kStreamSession) {
    return Status::Internal("Decode called on a non-stream-session section");
  }
  Decoder dec(section.payload, section.payload_offset);
  std::uint32_t version = 0;
  GM_RETURN_NOT_OK(dec.GetU32("stream-session version", &version));
  if (version != kStreamSessionVersion) {
    return Status::Unsupported("stream-session payload version " +
                               std::to_string(version) +
                               " is not supported (this build reads version " +
                               std::to_string(kStreamSessionVersion) + ")");
  }

  struct Fingerprint {
    std::int64_t tolerance, retention;
    std::uint64_t max_candidates, max_configurations;
    std::int32_t root;
    std::uint8_t consistent;
    std::int32_t type_count;
    std::uint64_t candidates_before;
    std::int32_t reference_type;
  } fp{};
  GM_RETURN_NOT_OK(dec.GetI64("fingerprint tolerance", &fp.tolerance));
  GM_RETURN_NOT_OK(dec.GetI64("fingerprint retention", &fp.retention));
  GM_RETURN_NOT_OK(dec.GetU64("fingerprint candidate cap",
                              &fp.max_candidates));
  GM_RETURN_NOT_OK(dec.GetU64("fingerprint configuration cap",
                              &fp.max_configurations));
  GM_RETURN_NOT_OK(dec.GetI32("fingerprint root", &fp.root));
  GM_RETURN_NOT_OK(dec.GetU8("fingerprint consistency", &fp.consistent));
  GM_RETURN_NOT_OK(dec.GetI32("fingerprint type count", &fp.type_count));
  GM_RETURN_NOT_OK(dec.GetU64("fingerprint candidate count",
                              &fp.candidates_before));
  GM_RETURN_NOT_OK(dec.GetI32("fingerprint reference type",
                              &fp.reference_type));
  if (fp.consistent > 1) {
    return dec.Corrupt("fingerprint consistency flag is not boolean");
  }
  if (fp.tolerance != miner->options_.tolerance ||
      fp.retention != miner->options_.retention ||
      fp.max_candidates != miner->options_.max_candidates ||
      fp.max_configurations != miner->options_.max_configurations_per_run ||
      fp.root != static_cast<std::int32_t>(miner->root_) ||
      (fp.consistent != 0) != miner->consistent_ ||
      fp.type_count != miner->type_count_ ||
      fp.candidates_before != miner->candidates_before_ ||
      fp.reference_type != miner->problem_.reference_type) {
    return Status::Invalid(
        "stream checkpoint fingerprint does not match this session's "
        "problem/options; refusing to install state from a different "
        "configuration (payload at byte offset " +
        std::to_string(section.payload_offset) + ")");
  }

  StreamIngestor& ingestor = miner->ingestor_;
  std::uint8_t any = 0, sealed = 0;
  GM_RETURN_NOT_OK(dec.GetI64("watermark max seen",
                              &ingestor.tracker_.max_seen_));
  GM_RETURN_NOT_OK(dec.GetU8("watermark any flag", &any));
  GM_RETURN_NOT_OK(dec.GetU8("watermark sealed flag", &sealed));
  if (any > 1 || sealed > 1) {
    return dec.Corrupt("watermark flag is not boolean");
  }
  ingestor.tracker_.any_ = any != 0;
  ingestor.tracker_.sealed_ = sealed != 0;
  GM_RETURN_NOT_OK(dec.GetU64("late-event counter", &ingestor.late_events_));
  GM_RETURN_NOT_OK(dec.GetU64("shed-event counter", &ingestor.shed_events_));
  std::uint64_t buffered = 0;
  GM_RETURN_NOT_OK(dec.GetU64("buffered-event count", &buffered));
  if (buffered > dec.remaining() / 12) {
    return dec.Corrupt("buffered-event count " + std::to_string(buffered) +
                       " exceeds payload");
  }
  ingestor.events_.clear();
  ingestor.head_ = 0;
  ingestor.events_.reserve(static_cast<std::size_t>(buffered));
  for (std::uint64_t i = 0; i < buffered; ++i) {
    Event event;
    GM_RETURN_NOT_OK(dec.GetI32("buffered event type", &event.type));
    GM_RETURN_NOT_OK(dec.GetI64("buffered event time", &event.time));
    ingestor.events_.push_back(event);
  }

  OnlineMiner::Core& core = miner->core_;
  std::uint64_t raw_events = 0, raw_roots = 0, reduced_events = 0;
  std::uint64_t group_count = 0;
  GM_RETURN_NOT_OK(dec.GetU64("raw-event counter", &raw_events));
  GM_RETURN_NOT_OK(dec.GetU64("raw-root counter", &raw_roots));
  GM_RETURN_NOT_OK(dec.GetU64("reduced-event counter", &reduced_events));
  GM_RETURN_NOT_OK(dec.GetU64("group-record count", &group_count));
  if (group_count > dec.remaining() / 32) {
    return dec.Corrupt("group-record count " + std::to_string(group_count) +
                       " exceeds payload");
  }
  core.raw_events = static_cast<std::size_t>(raw_events);
  core.raw_roots = static_cast<std::size_t>(raw_roots);
  core.reduced_events = static_cast<std::size_t>(reduced_events);
  core.groups.clear();
  for (std::uint64_t i = 0; i < group_count; ++i) {
    OnlineMiner::GroupRecord record;
    std::uint64_t raw = 0, roots = 0, reduced = 0;
    GM_RETURN_NOT_OK(dec.GetI64("group time", &record.time));
    GM_RETURN_NOT_OK(dec.GetU64("group raw count", &raw));
    GM_RETURN_NOT_OK(dec.GetU64("group root count", &roots));
    GM_RETURN_NOT_OK(dec.GetU64("group reduced count", &reduced));
    record.raw = static_cast<std::size_t>(raw);
    record.raw_roots = static_cast<std::size_t>(roots);
    record.reduced = static_cast<std::size_t>(reduced);
    core.groups.push_back(record);
  }

  std::uint8_t has_matcher = 0;
  GM_RETURN_NOT_OK(dec.GetU8("matcher presence flag", &has_matcher));
  if (has_matcher > 1) {
    return dec.Corrupt("matcher presence flag is not boolean");
  }
  if ((has_matcher != 0) != core.matcher.has_value()) {
    return dec.Corrupt("matcher presence disagrees with the re-derived "
                       "propagation verdict");
  }
  if (has_matcher == 0) return dec.ExpectEnd("stream session");

  IncrementalMatcher& matcher = *core.matcher;
  std::uint64_t clock_count = 0, candidate_count = 0, root_count = 0;
  GM_RETURN_NOT_OK(dec.GetU64("clock count", &clock_count));
  GM_RETURN_NOT_OK(dec.GetU64("candidate count", &candidate_count));
  GM_RETURN_NOT_OK(dec.GetU64("resident-root count", &root_count));
  if (clock_count != matcher.kernel_.clock_count()) {
    return dec.Corrupt("checkpoint clock count " +
                       std::to_string(clock_count) +
                       " disagrees with the re-derived TAG");
  }
  if (candidate_count != matcher.candidate_count_) {
    return dec.Corrupt("checkpoint candidate count " +
                       std::to_string(candidate_count) +
                       " disagrees with the re-derived candidate space");
  }
  if (root_count > dec.remaining() / 24) {
    return dec.Corrupt("resident-root count " + std::to_string(root_count) +
                       " exceeds payload");
  }
  matcher.roots_.clear();
  for (std::uint64_t r = 0; r < root_count; ++r) {
    RootRuns root;
    std::uint64_t pending = 0;
    GM_RETURN_NOT_OK(dec.GetI64("root t0", &root.t0));
    GM_RETURN_NOT_OK(dec.GetI64("root deadline", &root.deadline));
    GM_RETURN_NOT_OK(dec.GetU64("root pending count", &pending));
    if (pending > candidate_count) {
      return dec.Corrupt("root pending count exceeds the candidate count");
    }
    root.pending = static_cast<std::size_t>(pending);
    root.slots.resize(static_cast<std::size_t>(candidate_count));
    for (ResidentRun& slot : root.slots) {
      std::uint8_t verdict = 0, seeded = 0;
      GM_RETURN_NOT_OK(dec.GetU8("run verdict", &verdict));
      if (verdict > static_cast<std::uint8_t>(RunVerdict::kUnknown)) {
        return dec.Corrupt("run verdict " + std::to_string(verdict) +
                           " is out of range");
      }
      slot.verdict = static_cast<RunVerdict>(verdict);
      GM_RETURN_NOT_OK(DecodeStats(&dec, &slot.stats));
      GM_RETURN_NOT_OK(dec.GetU8("run seeded flag", &seeded));
      if (seeded > 1) return dec.Corrupt("run seeded flag is not boolean");
      slot.run.seeded = seeded != 0;
      std::uint64_t frontier = 0;
      GM_RETURN_NOT_OK(dec.GetU64("frontier size", &frontier));
      if (frontier > dec.remaining() / (4 + clock_count * 8)) {
        return dec.Corrupt("frontier size " + std::to_string(frontier) +
                           " exceeds payload");
      }
      for (std::uint64_t c = 0; c < frontier; ++c) {
        TagConfig config;
        GM_RETURN_NOT_OK(dec.GetI32("config state", &config.state));
        config.resets.resize(static_cast<std::size_t>(clock_count));
        for (std::int64_t& reset : config.resets) {
          GM_RETURN_NOT_OK(dec.GetI64("config reset", &reset));
        }
        if (!slot.run.frontier.insert(std::move(config)).second) {
          return dec.Corrupt("duplicate configuration in frontier");
        }
      }
    }
    matcher.roots_.push_back(std::move(root));
  }
  return dec.ExpectEnd("stream session");
}

Status SaveStreamCheckpoint(const OnlineMiner& miner, const std::string& path,
                            SnapshotIoOptions io) {
  GM_TRACE_SPAN("persist_save_checkpoint");
  GM_ASSIGN_OR_RETURN(std::unique_ptr<AtomicFileSink> sink,
                      AtomicFileSink::Open(path));
  SnapshotWriter writer(sink.get(), io);
  GM_RETURN_NOT_OK(writer.WriteHeader());
  GM_RETURN_NOT_OK(writer.WriteSection(SectionType::kStreamSession,
                                       StreamSessionCodec::Encode(miner)));
  GM_RETURN_NOT_OK(writer.Finish());
  GM_RETURN_NOT_OK(sink->Commit());
  GM_COUNTER_ADD("granmine_persist_checkpoints_total", "", 1);
  return Status::OK();
}

Result<OnlineMiner> RestoreStreamCheckpoint(GranularitySystem* system,
                                            const DiscoveryProblem& problem,
                                            OnlineMinerOptions options,
                                            const std::string& path,
                                            SnapshotIoOptions io) {
  GM_TRACE_SPAN("persist_restore_checkpoint");
  GM_ASSIGN_OR_RETURN(std::unique_ptr<FileSource> source,
                      FileSource::Open(path));
  GM_ASSIGN_OR_RETURN(std::vector<Section> sections,
                      ReadAllSections(source.get(), io));
  const Section* session = nullptr;
  for (const Section& section : sections) {
    if (section.type == SectionType::kStreamSession) {
      session = &section;
      break;
    }
  }
  if (session == nullptr) {
    return Status::Invalid("snapshot '" + path +
                           "' carries no stream-session section");
  }
  GM_ASSIGN_OR_RETURN(OnlineMiner miner,
                      OnlineMiner::Create(system, problem, options));
  GM_RETURN_NOT_OK(StreamSessionCodec::Decode(*session, &miner));
  GM_COUNTER_ADD("granmine_persist_restores_total", "", 1);
  return miner;
}

}  // namespace granmine::persist
