#ifndef GRANMINE_PERSIST_STREAM_CODEC_H_
#define GRANMINE_PERSIST_STREAM_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/persist/snapshot.h"
#include "granmine/stream/online_miner.h"

namespace granmine::persist {

/// Serializes the *dynamic* state of an OnlineMiner session into the
/// kStreamSession section and installs it back into a freshly created miner
/// (docs/persistence.md). The split mirrors OnlineMiner::Create: everything
/// Create derives deterministically from (system, problem, options) —
/// propagation, the skeleton TAG, per-candidate symbol maps — is rebuilt on
/// restore; the codec carries only what the stream itself accumulated:
///
///  - the watermark frontier, reorder buffer, and late/shed counters;
///  - the committed-group accounting (§5 event/root/reduction counts);
///  - every resident root's runs: verdicts, batch-identical MatchStats, and
///    the live TAG configuration frontiers, written in a canonical sorted
///    order so the same state always encodes to the same bytes.
///
/// A fingerprint of the static configuration (tolerance, retention, budgets,
/// root, type universe, reference type) is checked on restore, so a
/// checkpoint cannot be installed into a session it did not come from.
///
/// This class is the single friend key into OnlineMiner, StreamIngestor,
/// WatermarkTracker, and IncrementalMatcher.
class StreamSessionCodec {
 public:
  static std::vector<std::uint8_t> Encode(const OnlineMiner& miner);

  /// Installs a decoded session into `miner`, which must be freshly created
  /// by OnlineMiner::Create with the same system/problem/options the
  /// checkpoint was taken under. Invalid with byte offsets on corrupt
  /// payloads and on fingerprint mismatches; `miner` must be discarded
  /// after a failed install.
  static Status Decode(const Section& section, OnlineMiner* miner);
};

/// Writes a complete checkpoint (header + kStreamSession + trailer) to
/// `path` through an AtomicFileSink: the bytes appear under `path` only on
/// success, so a crash or governor cancellation mid-write leaves any
/// previous checkpoint untouched.
Status SaveStreamCheckpoint(const OnlineMiner& miner, const std::string& path,
                            SnapshotIoOptions io = {});

/// Re-creates the session from `path`: runs OnlineMiner::Create on the
/// given (system, problem, options) — which must match the checkpointed
/// session — then installs the dynamic state. The restored miner's
/// subsequent snapshots are byte-identical to an uninterrupted run over the
/// same arrivals, at every thread count.
Result<OnlineMiner> RestoreStreamCheckpoint(GranularitySystem* system,
                                            const DiscoveryProblem& problem,
                                            OnlineMinerOptions options,
                                            const std::string& path,
                                            SnapshotIoOptions io = {});

}  // namespace granmine::persist

#endif  // GRANMINE_PERSIST_STREAM_CODEC_H_
