#include "granmine/persist/crc32c.h"

#include <array>

namespace granmine::persist {

namespace {

// Reflected CRC-32C table, generated once at static-init time from the
// reversed Castagnoli polynomial.
std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t ExtendCrc32c(std::uint32_t crc,
                           std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> kTable = MakeTable();
  crc = ~crc;
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace granmine::persist
