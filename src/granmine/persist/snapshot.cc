#include "granmine/persist/snapshot.h"

#include <algorithm>
#include <cstring>

#include "granmine/obs/obs.h"
#include "granmine/persist/crc32c.h"

namespace granmine::persist {

namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 4;
constexpr std::size_t kFrameBytes = 4 + 4 + 8 + 4;
/// Truncated-input reads grow the payload buffer in bounded slices so a
/// bit-flipped length field can never trigger one huge allocation before the
/// missing bytes are noticed.
constexpr std::size_t kReadChunk = std::size_t{1} << 20;

void AppendLeU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendLeU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t LoadLeU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t LoadLeU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// Charges `bytes` of checkpoint I/O against the governor as steps (one per
/// kGovernedBytesPerStep, accumulated so small sections still add up).
/// Returns the refusal cause, kNone to continue.
StopCause ChargeIo(GovernorTicket* ticket, std::uint64_t* charged,
                   std::uint64_t bytes) {
  *charged += bytes;
  while (*charged >= kGovernedBytesPerStep) {
    *charged -= kGovernedBytesPerStep;
    if (StopCause cause = ticket->Charge(*charged); cause != StopCause::kNone) {
      return cause;
    }
  }
  return StopCause::kNone;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(ByteSink* sink, SnapshotIoOptions options)
    : sink_(sink),
      options_(options),
      ticket_(options.governor, GovernorScope::kGeneral) {}

Status SnapshotWriter::WriteHeader() {
  if (header_written_) {
    return Status::Internal("snapshot header already written");
  }
  std::vector<std::uint8_t> header;
  header.insert(header.end(), std::begin(kSnapshotMagic),
                std::end(kSnapshotMagic));
  AppendLeU32(&header, kSnapshotFormatVersion);
  AppendLeU32(&header, 0);  // reserved
  GM_RETURN_NOT_OK(sink_->Append(header));
  header_written_ = true;
  return Status::OK();
}

Status SnapshotWriter::WriteSection(SectionType type,
                                    std::span<const std::uint8_t> payload) {
  if (!header_written_ || finished_) {
    return Status::Internal("snapshot section written outside header/finish");
  }
  GM_TRACE_SPAN("persist_write_section");
  if (StopCause cause =
          ChargeIo(&ticket_, &charged_bytes_, kFrameBytes + payload.size());
      cause != StopCause::kNone) {
    return StopCauseToStatus(cause, "snapshot write");
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameBytes);
  AppendLeU32(&frame, static_cast<std::uint32_t>(type));
  AppendLeU32(&frame, 0);  // reserved
  AppendLeU64(&frame, payload.size());
  // The CRC covers the frame fields above AND the payload, so a flipped
  // length or type is caught before the reader trusts either.
  std::uint32_t crc = ExtendCrc32c(kCrc32cInit, frame);
  crc = ExtendCrc32c(crc, payload);
  AppendLeU32(&frame, crc);
  GM_RETURN_NOT_OK(sink_->Append(frame));
  GM_RETURN_NOT_OK(sink_->Append(payload));
  ++sections_written_;
  GM_COUNTER_ADD("granmine_persist_sections_written_total", "", 1);
  GM_COUNTER_ADD("granmine_persist_bytes_written_total", "",
                 kFrameBytes + payload.size());
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  GM_RETURN_NOT_OK(WriteSection(SectionType::kEnd, {}));
  --sections_written_;  // the trailer is framing, not content
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::SnapshotReader(ByteSource* source, SnapshotIoOptions options)
    : source_(source),
      options_(options),
      ticket_(options.governor, GovernorScope::kGeneral) {}

Status SnapshotReader::ReadExact(std::span<std::uint8_t> out,
                                 const char* what) {
  std::size_t total = 0;
  while (total < out.size()) {
    std::size_t n = 0;
    GM_RETURN_NOT_OK(source_->Read(out.subspan(total), &n));
    if (n == 0) {
      return Status::Invalid(
          "snapshot truncated reading " + std::string(what) +
          " at byte offset " + std::to_string(source_->offset()));
    }
    total += n;
  }
  return Status::OK();
}

Status SnapshotReader::ReadHeader() {
  if (header_read_) return Status::Internal("snapshot header already read");
  std::uint8_t header[kHeaderBytes];
  GM_RETURN_NOT_OK(ReadExact(header, "header"));
  if (std::memcmp(header, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Invalid(
        "not a granmine snapshot (bad magic at byte offset 0)");
  }
  format_version_ = LoadLeU32(header + 8);
  if (format_version_ != kSnapshotFormatVersion) {
    return Status::Unsupported(
        "snapshot format version " + std::to_string(format_version_) +
        " is not supported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  header_read_ = true;
  return Status::OK();
}

Result<Section> SnapshotReader::Next() {
  if (!header_read_) return Status::Internal("snapshot header not read");
  if (done_) return Status::Internal("snapshot already fully read");
  GM_TRACE_SPAN("persist_read_section");
  const std::uint64_t frame_offset = source_->offset();
  std::uint8_t frame[kFrameBytes];
  GM_RETURN_NOT_OK(ReadExact(frame, "section frame"));
  const std::uint32_t type = LoadLeU32(frame);
  const std::uint64_t length = LoadLeU64(frame + 8);
  const std::uint32_t stored_crc = LoadLeU32(frame + 16);

  Section section;
  section.type = static_cast<SectionType>(type);
  section.payload_offset = source_->offset();
  if (StopCause cause = ChargeIo(&ticket_, &charged_bytes_, kFrameBytes);
      cause != StopCause::kNone) {
    return StopCauseToStatus(cause, "snapshot read");
  }
  if (options_.governor != nullptr && length > 0) {
    // A corrupted length can demand gigabytes; charge it against the memory
    // budget *before* the buffer grows so the refusal is a clean Status.
    if (StopCause cause = options_.governor->ChargeMemory(
            GovernorScope::kGeneral, charged_bytes_, length);
        cause != StopCause::kNone) {
      return StopCauseToStatus(cause, "snapshot section buffer");
    }
  }
  // The length field is untrusted until the CRC passes, so I/O is charged
  // chunk by chunk as bytes actually arrive — never upfront from `length`,
  // which a bit flip can inflate to exabytes.
  Status read_status = Status::OK();
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kReadChunk));
    if (StopCause cause = ChargeIo(&ticket_, &charged_bytes_, chunk);
        cause != StopCause::kNone) {
      read_status = StopCauseToStatus(cause, "snapshot read");
      break;
    }
    const std::size_t old = section.payload.size();
    section.payload.resize(old + chunk);
    read_status = ReadExact(
        std::span<std::uint8_t>(section.payload).subspan(old), "section payload");
    if (!read_status.ok()) break;
    remaining -= chunk;
  }
  if (options_.governor != nullptr && length > 0) {
    options_.governor->ReleaseMemory(length);
  }
  GM_RETURN_NOT_OK(read_status);

  std::uint32_t crc = ExtendCrc32c(
      kCrc32cInit, std::span<const std::uint8_t>(frame, kFrameBytes - 4));
  crc = ExtendCrc32c(crc, section.payload);
  if (crc != stored_crc) {
    return Status::Invalid(
        "snapshot section CRC mismatch (frame at byte offset " +
        std::to_string(frame_offset) + ", payload length " +
        std::to_string(length) + ")");
  }
  if (section.type == SectionType::kEnd) {
    if (!section.payload.empty()) {
      return Status::Invalid("snapshot trailer carries payload at byte offset " +
                             std::to_string(section.payload_offset));
    }
    done_ = true;
  }
  GM_COUNTER_ADD("granmine_persist_sections_read_total", "", 1);
  GM_COUNTER_ADD("granmine_persist_bytes_read_total", "",
                 kFrameBytes + length);
  return section;
}

Result<std::vector<Section>> ReadAllSections(ByteSource* source,
                                             SnapshotIoOptions options) {
  SnapshotReader reader(source, options);
  GM_RETURN_NOT_OK(reader.ReadHeader());
  std::vector<Section> sections;
  while (!reader.done()) {
    GM_ASSIGN_OR_RETURN(Section section, reader.Next());
    if (section.type != SectionType::kEnd) {
      sections.push_back(std::move(section));
    }
  }
  return sections;
}

// ---------------------------------------------------------------------------
// Encoder / Decoder

void Encoder::PutU32(std::uint32_t v) { AppendLeU32(&buffer_, v); }
void Encoder::PutU64(std::uint64_t v) { AppendLeU64(&buffer_, v); }

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

Status Decoder::Corrupt(const std::string& detail) const {
  return Status::Invalid("snapshot: " + detail + " at byte offset " +
                         std::to_string(offset()));
}

Status Decoder::GetU8(const char* field, std::uint8_t* out) {
  if (remaining() < 1) {
    return Corrupt("truncated reading " + std::string(field));
  }
  *out = data_[pos_++];
  return Status::OK();
}

Status Decoder::GetU32(const char* field, std::uint32_t* out) {
  if (remaining() < 4) {
    return Corrupt("truncated reading " + std::string(field));
  }
  *out = LoadLeU32(data_.data() + pos_);
  pos_ += 4;
  return Status::OK();
}

Status Decoder::GetU64(const char* field, std::uint64_t* out) {
  if (remaining() < 8) {
    return Corrupt("truncated reading " + std::string(field));
  }
  *out = LoadLeU64(data_.data() + pos_);
  pos_ += 8;
  return Status::OK();
}

Status Decoder::GetI64(const char* field, std::int64_t* out) {
  std::uint64_t raw = 0;
  GM_RETURN_NOT_OK(GetU64(field, &raw));
  *out = static_cast<std::int64_t>(raw);
  return Status::OK();
}

Status Decoder::GetI32(const char* field, std::int32_t* out) {
  std::uint32_t raw = 0;
  GM_RETURN_NOT_OK(GetU32(field, &raw));
  *out = static_cast<std::int32_t>(raw);
  return Status::OK();
}

Status Decoder::GetString(const char* field, std::string* out) {
  std::uint32_t length = 0;
  GM_RETURN_NOT_OK(GetU32(field, &length));
  if (remaining() < length) {
    return Corrupt("truncated reading " + std::string(field) + " (" +
                   std::to_string(length) + " bytes declared, " +
                   std::to_string(remaining()) + " available)");
  }
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_), length);
  pos_ += length;
  return Status::OK();
}

Status Decoder::ExpectEnd(const char* what) const {
  if (remaining() != 0) {
    return Corrupt(std::to_string(remaining()) + " trailing byte(s) after " +
                   std::string(what));
  }
  return Status::OK();
}

}  // namespace granmine::persist
