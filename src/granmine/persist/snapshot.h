#ifndef GRANMINE_PERSIST_SNAPSHOT_H_
#define GRANMINE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/result.h"
#include "granmine/common/status.h"
#include "granmine/persist/bytes.h"

namespace granmine::persist {

/// The versioned, section-framed binary snapshot container
/// (docs/persistence.md). Layout, all integers little-endian fixed-width:
///
///   header:   8-byte magic "GMSNAP01" | u32 format version | u32 reserved
///   section*: u32 type | u32 reserved | u64 payload length
///             | u32 crc32c(frame fields + payload) | payload bytes
///   trailer:  one section of type kEnd with empty payload
///
/// Readers skip sections whose type they do not know (the length makes every
/// frame forward-skippable), so old binaries read new snapshots; a format
/// *version* bump is reserved for changes that break the framing itself and
/// decodes to Unsupported. The CRC covers the frame fields too, so a bit
/// flip in a length can never walk the reader silently into garbage. The
/// kEnd trailer distinguishes clean end-of-snapshot from a file truncated
/// between sections.
///
/// Decode failures are three-valued by Status code (never a crash):
///   - kInvalidArgument: definitely corrupt (truncated / bit-flipped /
///     malformed), message carries the absolute byte offset;
///   - kUnsupported: well-formed but from an incompatible format version;
///   - other codes (kResourceExhausted, kCancelled, kInternal): the
///     *environment* failed — budget refusal or I/O — the bytes themselves
///     were not judged.
inline constexpr std::uint8_t kSnapshotMagic[8] = {'G', 'M', 'S', 'N',
                                                   'A', 'P', '0', '1'};
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Section payload types. Values are wire format — append, never renumber.
enum class SectionType : std::uint32_t {
  kEnd = 0,                ///< trailer; empty payload
  kFrozenSystemImage = 1,  ///< sealed granularity tables + coverage matrix
  kEventSequence = 2,      ///< a batch event sequence
  kStreamSession = 3,      ///< full OnlineMiner dynamic state
  kMeta = 4,               ///< free-form producer string (skippable)
};

/// Governor/accounting knobs shared by snapshot writers and readers.
/// Checkpoint I/O is governed like any other computation: bytes are charged
/// as steps (one per kGovernedBytesPerStep), payload buffers as memory, and
/// a refusal surfaces the StopCause as a Status — cancellable mid-write,
/// with the atomic sink guaranteeing no partial file escapes.
struct SnapshotIoOptions {
  const ResourceGovernor* governor = nullptr;
};

/// Bytes of section payload charged as one governor step.
inline constexpr std::uint64_t kGovernedBytesPerStep = 4096;

/// Streams the container format to a sink: `WriteHeader`, any number of
/// `WriteSection`, then `Finish` (which emits the kEnd trailer). Not
/// thread-safe; one writer per sink.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(ByteSink* sink, SnapshotIoOptions options = {});

  Status WriteHeader();
  Status WriteSection(SectionType type, std::span<const std::uint8_t> payload);
  Status Finish();

  std::uint64_t sections_written() const { return sections_written_; }

 private:
  ByteSink* sink_;
  SnapshotIoOptions options_;
  GovernorTicket ticket_;
  std::uint64_t charged_bytes_ = 0;
  std::uint64_t sections_written_ = 0;
  bool header_written_ = false;
  bool finished_ = false;
};

/// One decoded section: its payload plus the absolute offset of the
/// payload's first byte, so section codecs can report error positions in
/// file coordinates.
struct Section {
  SectionType type = SectionType::kEnd;
  std::uint64_t payload_offset = 0;
  std::vector<std::uint8_t> payload;
};

/// Pull-reader over the container: `ReadHeader` validates magic + version,
/// then `Next` yields sections until the kEnd trailer (`Next` returns a
/// section with type kEnd and `done()` flips). Unknown section types are
/// surfaced to the caller, who may ignore them — the reader has already
/// CRC-verified and consumed the frame.
class SnapshotReader {
 public:
  explicit SnapshotReader(ByteSource* source, SnapshotIoOptions options = {});

  Status ReadHeader();
  /// Reads the next CRC-verified section. After the kEnd trailer `done()`
  /// is true and further calls fail.
  Result<Section> Next();

  bool done() const { return done_; }
  std::uint32_t format_version() const { return format_version_; }

 private:
  /// Reads exactly `out.size()` bytes or fails with a truncation Status
  /// naming `what` and the offset where input ran out.
  Status ReadExact(std::span<std::uint8_t> out, const char* what);

  ByteSource* source_;
  SnapshotIoOptions options_;
  GovernorTicket ticket_;
  std::uint64_t charged_bytes_ = 0;
  std::uint32_t format_version_ = 0;
  bool header_read_ = false;
  bool done_ = false;
};

/// Convenience: reads the header and every section into memory. Sections
/// appear in file order, trailer excluded.
Result<std::vector<Section>> ReadAllSections(ByteSource* source,
                                             SnapshotIoOptions options = {});

/// Little-endian payload builder used by the section codecs. Append-only;
/// the buffer is handed to SnapshotWriter::WriteSection.
class Encoder {
 public:
  void PutU8(std::uint8_t v) { buffer_.push_back(v); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::span<const std::uint8_t> view() const { return buffer_; }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian payload reader. Every getter takes the
/// field name it is decoding; on exhausted input the Status names the field
/// and the *absolute* byte offset (payload base + local position), so a
/// truncated or bit-flipped snapshot pinpoints where decoding died.
class Decoder {
 public:
  Decoder(std::span<const std::uint8_t> data, std::uint64_t base_offset)
      : data_(data), base_offset_(base_offset) {}

  Status GetU8(const char* field, std::uint8_t* out);
  Status GetU32(const char* field, std::uint32_t* out);
  Status GetU64(const char* field, std::uint64_t* out);
  Status GetI64(const char* field, std::int64_t* out);
  Status GetI32(const char* field, std::int32_t* out);
  Status GetString(const char* field, std::string* out);

  /// Fails unless every payload byte has been consumed — trailing garbage
  /// inside a CRC-valid section still means a codec/format mismatch.
  Status ExpectEnd(const char* what) const;

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Absolute offset of the next unread byte.
  std::uint64_t offset() const { return base_offset_ + pos_; }

  /// The truncation Status getters fail with, exposed for codecs that do
  /// their own structural validation.
  Status Corrupt(const std::string& detail) const;

 private:
  std::span<const std::uint8_t> data_;
  std::uint64_t base_offset_;
  std::size_t pos_ = 0;
};

}  // namespace granmine::persist

#endif  // GRANMINE_PERSIST_SNAPSHOT_H_
