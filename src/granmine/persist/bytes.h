#ifndef GRANMINE_PERSIST_BYTES_H_
#define GRANMINE_PERSIST_BYTES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/common/status.h"

namespace granmine::persist {

/// Destination of snapshot bytes. Implementations report failures through
/// Status (never exceptions) and track the running offset so framing errors
/// can name the exact byte position.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Appends `data` verbatim. On failure the sink is dead: further appends
  /// may fail and the consumer must discard the output.
  virtual Status Append(std::span<const std::uint8_t> data) = 0;

  /// Bytes successfully appended so far.
  std::uint64_t bytes_written() const { return bytes_written_; }

 protected:
  std::uint64_t bytes_written_ = 0;
};

/// Source of snapshot bytes. `Read` is *best effort*: it returns the number
/// of bytes actually delivered (short reads signal end of input, not an
/// error), so a truncated file surfaces as a decode-layer Status with offset
/// context instead of an I/O failure.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads up to `out.size()` bytes into `out`; sets `*read` to the count
  /// delivered (0 at end of input). A non-OK Status is an environmental I/O
  /// failure, not truncation.
  virtual Status Read(std::span<std::uint8_t> out, std::size_t* read) = 0;

  /// Bytes consumed so far — the offset of the next unread byte.
  std::uint64_t offset() const { return offset_; }

 protected:
  std::uint64_t offset_ = 0;
};

/// In-memory sink appending to an owned buffer.
class VectorSink : public ByteSink {
 public:
  Status Append(std::span<const std::uint8_t> data) override {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    bytes_written_ += data.size();
    return Status::OK();
  }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// In-memory source over a borrowed span (must outlive the source).
class SpanSource : public ByteSource {
 public:
  explicit SpanSource(std::span<const std::uint8_t> data) : data_(data) {}

  Status Read(std::span<std::uint8_t> out, std::size_t* read) override {
    const std::size_t n =
        std::min(out.size(), data_.size() - static_cast<std::size_t>(offset_));
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = data_[static_cast<std::size_t>(offset_) + i];
    }
    offset_ += n;
    *read = n;
    return Status::OK();
  }

 private:
  std::span<const std::uint8_t> data_;
};

/// Buffered stdio file source.
class FileSource : public ByteSource {
 public:
  /// NotFound when the file cannot be opened for reading.
  static Result<std::unique_ptr<FileSource>> Open(const std::string& path);

  ~FileSource() override;
  Status Read(std::span<std::uint8_t> out, std::size_t* read) override;

 private:
  FileSource(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
};

/// Crash-safe file sink: bytes accumulate in `path + ".tmp"` and only an
/// explicit, fully flushed `Commit()` renames the temp file over `path` —
/// the POSIX atomic-replace idiom, so a reader of `path` sees either the
/// previous complete snapshot or the new complete snapshot, never a torn
/// write. Destruction without Commit unlinks the temp file (abandoned
/// checkpoint, e.g. a governor refusal mid-write).
class AtomicFileSink : public ByteSink {
 public:
  /// Fails (Internal) when the temp file cannot be created.
  static Result<std::unique_ptr<AtomicFileSink>> Open(const std::string& path);

  ~AtomicFileSink() override;

  Status Append(std::span<const std::uint8_t> data) override;

  /// Flushes and atomically renames the temp file onto the target path.
  /// After Commit the sink is closed; further appends fail.
  Status Commit();

 private:
  AtomicFileSink(std::FILE* file, std::string path, std::string temp_path)
      : file_(file), path_(std::move(path)), temp_path_(std::move(temp_path)) {}

  std::FILE* file_;
  std::string path_;
  std::string temp_path_;
  bool committed_ = false;
};

}  // namespace granmine::persist

#endif  // GRANMINE_PERSIST_BYTES_H_
