#ifndef GRANMINE_MINING_EXTENSIONS_H_
#define GRANMINE_MINING_EXTENSIONS_H_

#include <span>
#include <string>

#include "granmine/granularity/granularity.h"
#include "granmine/mining/discovery.h"
#include "granmine/sequence/event.h"
#include "granmine/sequence/sequence.h"

namespace granmine {

/// §6 extension: the reference type "needs not be a regular event type. It
/// can be the event type, say, 'the beginning of a week'". This injects one
/// pseudo-event of `type` at the first instant of every tick of `g` that
/// intersects the sequence's time range, so a discovery problem anchored on
/// `type` answers "what happens in most weeks?". Returns the number of
/// events added.
std::size_t InjectBoundaryEvents(const Granularity& g, EventTypeId type,
                                 EventSequence* sequence);

/// §6 extension: "the reference type E0 can be extended to be a set of
/// types instead of a single one". Interns a fresh combined pseudo-type in
/// `registry` (named `name`), appends one combined event at the timestamp of
/// every occurrence of any type in `reference_set`, and returns the combined
/// id to use as the problem's reference type. The duplicates share their
/// originals' timestamps, so every TCG behaves identically; frequency then
/// counts over the union of the set's occurrences.
EventTypeId CombineReferenceTypes(std::span<const EventTypeId> reference_set,
                                  const std::string& name,
                                  EventTypeRegistry* registry,
                                  EventSequence* sequence);

}  // namespace granmine

#endif  // GRANMINE_MINING_EXTENSIONS_H_
