#include "granmine/mining/windows.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

RootWindows ComputeRootWindows(const EventStructure& structure,
                               VariableId root,
                               const PropagationResult& propagation,
                               TimePoint t0) {
  const int n = structure.variable_count();
  RootWindows out;
  out.windows.assign(static_cast<std::size_t>(n),
                     TimeSpan::Of(t0, kInfinity));
  out.windows[static_cast<std::size_t>(root)] = TimeSpan::Point(t0);

  // The root's ticks must be defined wherever propagation requires.
  for (const Granularity* g : propagation.granularities) {
    if (propagation.IsDefinedIn(g, root) && !g->InSupport(t0)) {
      out.root_viable = false;
      return out;
    }
  }
  out.root_viable = true;

  for (VariableId v = 0; v < n; ++v) {
    if (v == root) continue;
    TimeSpan window = out.windows[static_cast<std::size_t>(v)];
    for (const Granularity* g : propagation.granularities) {
      if (!propagation.IsDefinedIn(g, root) ||
          !propagation.IsDefinedIn(g, v)) {
        continue;
      }
      Bounds bounds = propagation.GetBounds(g, root, v);
      if (bounds.lo <= -kInfinity && bounds.hi >= kInfinity) continue;
      std::optional<Tick> z0 = g->TickContaining(t0);
      GM_CHECK(z0.has_value());  // root viability checked above
      TimePoint lo = window.first;
      TimePoint hi = window.last;
      if (bounds.lo > -kInfinity) {
        Tick first_tick = std::max<Tick>(*z0 + bounds.lo, 1);
        std::optional<TimeSpan> hull = g->TickHull(first_tick);
        GM_CHECK(hull.has_value());
        lo = std::max(lo, hull->first);
      }
      if (bounds.hi < kInfinity) {
        Tick last_tick = *z0 + bounds.hi;
        if (last_tick < 1) {
          window = TimeSpan::Empty();
          break;
        }
        std::optional<TimeSpan> hull = g->TickHull(last_tick);
        GM_CHECK(hull.has_value());
        hi = std::min(hi, hull->last);
      }
      window = TimeSpan::Of(lo, hi);
      if (window.empty()) break;
    }
    out.windows[static_cast<std::size_t>(v)] = window;
  }

  out.deadline = t0;
  for (const TimeSpan& window : out.windows) {
    if (window.empty()) continue;
    out.deadline = std::max(out.deadline, window.last);
  }
  return out;
}

bool UsableForVariable(const PropagationResult& propagation, VariableId v,
                       const TimeSpan& window, TimePoint t) {
  if (!window.Contains(t)) return false;
  for (const Granularity* g : propagation.granularities) {
    if (propagation.IsDefinedIn(g, v) && !g->InSupport(t)) return false;
  }
  return true;
}

}  // namespace granmine
