#ifndef GRANMINE_MINING_WINDOWS_H_
#define GRANMINE_MINING_WINDOWS_H_

#include <vector>

#include "granmine/common/time_span.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/constraint/propagation.h"

namespace granmine {

/// Per-reference-occurrence windows derived from the propagation result:
/// for a root anchored at t0, variable v must fall inside `windows[v]`
/// (intersection over every granularity of the hull of the derived tick
/// range). The upper ends bound how far the step-5 TAG scan must look.
struct RootWindows {
  /// False when t0 itself violates a definedness requirement of the root —
  /// the §5 step-3 rule discards such reference occurrences outright.
  bool root_viable = false;
  /// Inclusive instant window per variable (root's is [t0, t0]). An open
  /// upper end is kInfinity.
  std::vector<TimeSpan> windows;
  /// max over variables of windows[v].last (kInfinity when any is open):
  /// events after this instant cannot matter for this reference occurrence.
  TimePoint deadline = kInfinity;
};

/// Computes the windows for the reference occurrence at `t0`.
RootWindows ComputeRootWindows(const EventStructure& structure,
                               VariableId root,
                               const PropagationResult& propagation,
                               TimePoint t0);

/// Whether an event at instant `t` could be bound to variable `v`: it lies
/// in the variable's window and satisfies every definedness requirement the
/// propagation derived for v.
bool UsableForVariable(const PropagationResult& propagation, VariableId v,
                       const TimeSpan& window, TimePoint t);

}  // namespace granmine

#endif  // GRANMINE_MINING_WINDOWS_H_
