#include "granmine/mining/explain.h"

#include <sstream>

#include "granmine/common/check.h"
#include "granmine/io/text_format.h"
#include "granmine/tag/oracle.h"

namespace granmine {

Result<std::vector<Explanation>> ExplainSolution(
    const EventStructure& structure, const DiscoveredType& solution,
    EventTypeId reference_type, const EventSequence& sequence,
    std::size_t max_explanations) {
  if (static_cast<int>(solution.assignment.size()) !=
      structure.variable_count()) {
    return Status::Invalid("assignment size mismatch");
  }
  GM_ASSIGN_OR_RETURN(VariableId root, structure.FindRoot());
  if (solution.assignment[static_cast<std::size_t>(root)] != reference_type) {
    return Status::Invalid("solution does not assign E0 to the root");
  }
  std::vector<Explanation> out;
  for (std::size_t at : sequence.OccurrencesOf(reference_type)) {
    if (out.size() >= max_explanations) break;
    OracleOptions options;
    options.anchored_root_index = 0;
    std::optional<std::vector<std::size_t>> witness =
        FindOccurrenceBruteForce(structure, solution.assignment,
                                 sequence.SuffixFrom(at), options);
    if (!witness.has_value()) continue;
    Explanation explanation;
    explanation.root_event = at;
    explanation.witness.reserve(witness->size());
    for (std::size_t relative : *witness) {
      explanation.witness.push_back(at + relative);
    }
    out.push_back(std::move(explanation));
  }
  return out;
}

std::string FormatExplanation(const EventStructure& structure,
                              const Explanation& explanation,
                              const EventSequence& sequence,
                              const EventTypeRegistry& registry,
                              std::int64_t units_per_day) {
  std::ostringstream os;
  for (VariableId v = 0; v < structure.variable_count(); ++v) {
    const Event& event =
        sequence.events()[explanation.witness[static_cast<std::size_t>(v)]];
    os << "  " << structure.variable_name(v) << " = "
       << registry.name(event.type) << " @ "
       << FormatTimePoint(event.time, units_per_day) << "\n";
  }
  return os.str();
}

}  // namespace granmine
