#ifndef GRANMINE_MINING_MINER_H_
#define GRANMINE_MINING_MINER_H_

#include <cstdint>

#include "granmine/common/executor.h"
#include "granmine/common/result.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/discovery.h"
#include "granmine/sequence/sequence.h"
#include "granmine/tag/matcher.h"

namespace granmine {

/// Which of the §5 optimization steps run; every step is independently
/// toggleable for the E5 ablation benchmarks. The naive algorithm of §5 is
/// `MinerOptions::Naive()` (every optimization off, pure step-5 scan).
struct MinerOptions {
  /// Step 1: discard inconsistent structures via approximate propagation.
  bool check_consistency = true;
  /// Step 2: reduce the event sequence by definedness requirements.
  bool reduce_sequence = true;
  /// Step 3: discard reference occurrences whose derived windows are
  /// unsatisfiable.
  bool reduce_roots = true;
  /// Step 4: screen candidate types through induced discovery problems up
  /// to this many non-root variables (0 = off; 1 = window screening;
  /// >= 2 adds sub-chain induced problems).
  int screening_depth = 1;
  /// Truncate step-5 TAG scans at the derived per-root deadline.
  bool use_window_deadlines = true;

  /// What to do when a budget (matcher configurations, governor deadline /
  /// step budget / cancellation, max_candidates) interrupts the run.
  enum class ExhaustionPolicy {
    /// Fail the whole run with ResourceExhausted/Cancelled — the historical
    /// behavior, and the default.
    kAbort,
    /// Return OK with whatever was decided: undecided candidates become
    /// three-valued *unknown* verdicts (`MiningReport::completeness`,
    /// `unknown_sample`), never silently dropped.
    kPartial,
  };
  ExhaustionPolicy on_exhaustion = ExhaustionPolicy::kAbort;

  /// Degraded (screening-only) serving: run steps 1-4 — propagation,
  /// reduction, window viability, screening — but skip the step-5 exact
  /// scan entirely. Every candidate that survives screening is reported as
  /// *unknown* with StopCause::kDegraded (the screening verdicts that DID
  /// refute candidates remain exact, so the report still never says
  /// something wrong; it just says less). The Engine flips this on under
  /// admission pressure or after a memory stop; the report goes through the
  /// normal PARTIAL machinery regardless of `on_exhaustion`.
  bool degrade_to_screening = false;

  /// Abort with ResourceExhausted when the candidate space (after
  /// screening) still exceeds this. Under ExhaustionPolicy::kPartial the
  /// scan instead covers the first max_candidates candidates and reports
  /// the rest as not_evaluated.
  std::uint64_t max_candidates = 10'000'000;
  /// Cap on the number of k >= 2 induced problems evaluated.
  int max_induced_problems = 64;
  /// Matcher budget per anchored run.
  std::uint64_t max_configurations_per_run = 50'000'000;
  /// Step-5 parallelism: worker threads fanning the (candidate × reference
  /// occurrence) TAG scans across an Executor. 1 (the default) runs the
  /// serial path, bit-identical to the single-threaded implementation;
  /// values <= 0 use the hardware concurrency. Any value yields the same
  /// MiningReport solutions in the same (lexicographic assignment) order —
  /// results are merged back in candidate-index order.
  int num_threads = 1;
  /// Borrowed thread pool for the step-5 scan (the Engine threads its own
  /// here so every Mine request reuses one pool). When set it supersedes
  /// `num_threads`; when null the scan constructs a transient pool. The
  /// report is identical either way.
  Executor* executor = nullptr;
  /// Request id (obs/context.h) stamped by the Engine at admission; workers
  /// re-install it as their RequestScope so spans and log lines emitted from
  /// pool threads attribute to the originating request. 0 = unattributed.
  std::uint64_t request_id = 0;

  static MinerOptions Naive() {
    MinerOptions options;
    options.check_consistency = false;
    options.reduce_sequence = false;
    options.reduce_roots = false;
    options.screening_depth = 0;
    options.use_window_deadlines = false;
    return options;
  }
};

/// The §5 discovery procedure: steps 1-4 shrink the search space, step 5
/// scans the sequence with one anchored TAG run per (candidate, reference
/// occurrence), using a single skeleton TAG for every candidate. With
/// `MinerOptions::num_threads > 1` the step-5 scans fan out across a fixed
/// thread pool: the skeleton TAG, the reduced sequence and the shared
/// granularity caches are read-only by then, each worker keeps its own
/// match scratch, and per-candidate results are merged deterministically.
class Miner {
 public:
  /// `system` provides the shared table/coverage caches; it must own every
  /// granularity used by the structures mined.
  explicit Miner(GranularitySystem* system,
                 MinerOptions options = MinerOptions{});

  /// Solves the discovery problem on `sequence`. Solutions are returned in
  /// lexicographic assignment order.
  ///
  /// `governor`, when given, imposes a shared wall-clock deadline / step
  /// budget / cancellation token on every phase (propagation, screening,
  /// matching, the step-5 scan). A trip either fails the run or degrades it
  /// to a partial report, per MinerOptions::on_exhaustion. The report is a
  /// deterministic function of (problem, sequence, options) for injected
  /// faults and local budgets — byte-identical across runs and thread
  /// counts; wall-clock deadline trips are inherently timing-dependent.
  Result<MiningReport> Mine(const DiscoveryProblem& problem,
                            const EventSequence& sequence,
                            const ResourceGovernor* governor = nullptr) const;

 private:
  GranularitySystem* system_;
  MinerOptions options_;
};

}  // namespace granmine

#endif  // GRANMINE_MINING_MINER_H_
