#ifndef GRANMINE_MINING_SCREENING_H_
#define GRANMINE_MINING_SCREENING_H_

#include <cstdint>
#include <vector>

#include "granmine/constraint/propagation.h"
#include "granmine/mining/windows.h"
#include "granmine/sequence/sequence.h"

namespace granmine {

/// §5.1 step-4 screening at k = 1: for each non-root variable v and each
/// candidate type E, measure how often an E-event usable for v falls inside
/// v's derived window around a reference occurrence. Types whose frequency
/// is not strictly above `min_confidence` cannot appear in any solution
/// (every full occurrence restricts to an occurrence of the induced
/// two-variable sub-structure) and are pruned from `allowed`.
///
/// `windows[i]` are the per-variable windows of the i-th surviving
/// reference occurrence; `total_roots` is the frequency denominator (all
/// reference occurrences of the input sequence).
void ScreenByWindows(const PropagationResult& propagation,
                     const EventSequence& sequence,
                     const std::vector<RootWindows>& windows,
                     VariableId root, std::size_t total_roots,
                     double min_confidence,
                     std::vector<std::vector<EventTypeId>>* allowed);

/// Indices of the first event at-or-after each instant, for window scans.
/// (Thin wrapper over binary search on the sorted event vector.)
std::size_t FirstEventAtOrAfter(const EventSequence& sequence, TimePoint t);

}  // namespace granmine

#endif  // GRANMINE_MINING_SCREENING_H_
