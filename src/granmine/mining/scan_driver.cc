#include "granmine/mining/scan_driver.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "granmine/common/executor.h"
#include "granmine/common/governor_alloc.h"
#include "granmine/obs/context.h"
#include "granmine/obs/obs.h"

namespace granmine {

std::uint64_t CandidateCount(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root) {
  std::uint64_t product = 1;
  for (std::size_t v = 0; v < allowed.size(); ++v) {
    if (static_cast<VariableId>(v) == root) continue;
    std::uint64_t size = allowed[v].size();
    if (size == 0) return 0;
    if (product > (std::uint64_t{1} << 62) / size) {
      return std::uint64_t{1} << 62;  // saturate
    }
    product *= size;
  }
  return product;
}

std::vector<std::size_t> OdometerAt(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root,
    std::uint64_t index) {
  const int n = static_cast<int>(allowed.size());
  std::vector<std::size_t> odometer(static_cast<std::size_t>(n), 0);
  for (int v = n - 1; v >= 0 && index > 0; --v) {
    if (static_cast<VariableId>(v) == root) continue;
    std::uint64_t size = allowed[static_cast<std::size_t>(v)].size();
    odometer[static_cast<std::size_t>(v)] =
        static_cast<std::size_t>(index % size);
    index /= size;
  }
  return odometer;
}

bool AdvanceOdometer(const std::vector<std::vector<EventTypeId>>& allowed,
                     VariableId root, std::vector<std::size_t>* odometer) {
  int v = static_cast<int>(allowed.size()) - 1;
  while (v >= 0) {
    if (static_cast<VariableId>(v) == root) {
      --v;
      continue;
    }
    if (++(*odometer)[static_cast<std::size_t>(v)] <
        allowed[static_cast<std::size_t>(v)].size()) {
      return true;
    }
    (*odometer)[static_cast<std::size_t>(v)] = 0;
    --v;
  }
  return false;
}

ScanMergeResult ScanCandidates(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root,
    std::uint64_t scan_total, const ScanDriverOptions& options,
    const CandidateEvaluator& evaluator) {
  GM_TRACE_SPAN("scan_driver");
  const bool partial = options.partial;
  const ResourceGovernor* governor = options.governor;

  // Raised when the scan must wind down (abort-mode failure or a global
  // governor stop); the Executor observes it before claiming further chunks.
  std::atomic<bool> stop_scan{false};

  // Scans candidates [begin, end); used by the serial path (one range) and
  // by each parallel chunk. The governor ticket is created per range, so its
  // stride phase — and with check_stride == 1 the exact set of checked
  // indices — is a deterministic property of the range, not of scheduling.
  auto scan_range = [&](std::uint64_t begin, std::uint64_t end, int worker,
                        ScanOutcome* out) {
    out->ran = true;
    GovernorTicket ticket(governor, GovernorScope::kMine);
    const std::size_t n = allowed.size();
    // The range's own scratch (odometer + φ) is governed memory too. A
    // refusal forfeits the whole range as not_evaluated — range boundaries
    // depend on the worker count, so this charge point is a *global*-style
    // stop (invariant-checked, never part of a byte-identity sweep; the
    // deterministic alloc-injection points live in the matcher and the
    // exact search, whose indices are per-work-unit).
    GovernorAllocator arena(governor, GovernorScope::kMine);
    if (StopCause cause = arena.Charge(
            begin, n * (sizeof(EventTypeId) + sizeof(std::size_t)));
        cause != StopCause::kNone) {
      if (out->first_stop == StopCause::kNone) out->first_stop = cause;
      if (partial) out->not_evaluated += end - begin;
      stop_scan.store(true, std::memory_order_relaxed);
      return;
    }
    std::vector<std::size_t> odometer = OdometerAt(allowed, root, begin);
    std::vector<EventTypeId> phi(n);
    auto note_unknown = [&](StopCause reason) {
      ++out->unknown;
      if (out->first_stop == StopCause::kNone) out->first_stop = reason;
      if (out->unknown_sample.size() < kUnknownSampleCap) {
        out->unknown_sample.push_back(UnknownCandidate{phi, reason});
      }
    };
    for (std::uint64_t index = begin; index < end; ++index) {
      for (std::size_t v = 0; v < n; ++v) phi[v] = allowed[v][odometer[v]];
      // One governor step per candidate, indexed by the global candidate
      // position so injection targets a candidate, not a thread.
      if (StopCause cause = ticket.Charge(index); cause != StopCause::kNone) {
        // An injected fault with cancel_globally off is *local*: it fails
        // this candidate only, leaving the shared flag untouched — that is
        // what keeps the sweep deterministic across thread counts.
        const bool global = cause != StopCause::kFaultInjected ||
                            (governor != nullptr && governor->stopped());
        if (!partial || global) {
          if (out->first_stop == StopCause::kNone) out->first_stop = cause;
          if (partial) out->not_evaluated += end - index;
          stop_scan.store(true, std::memory_order_relaxed);
          return;
        }
        note_unknown(cause);
        AdvanceOdometer(allowed, root, &odometer);
        continue;
      }
      StopCause reason = StopCause::kNone;
      if (evaluator(phi, index, worker, out, &reason) ==
          CandidateFate::kUnknown) {
        if (!partial) {
          if (out->first_stop == StopCause::kNone) out->first_stop = reason;
          stop_scan.store(true, std::memory_order_relaxed);
          return;
        }
        note_unknown(reason);
        if (governor != nullptr && governor->stopped()) {
          // Global stop mid-candidate: the rest of the range is forfeit.
          out->not_evaluated += end - index - 1;
          stop_scan.store(true, std::memory_order_relaxed);
          return;
        }
      }
      AdvanceOdometer(allowed, root, &odometer);
    }
  };

  std::vector<ScanOutcome> outcomes;
  std::uint64_t merge_chunk_size = scan_total;
  const bool serial = options.executor == nullptr && options.num_threads == 1;
  if (serial) {
    outcomes.resize(1);
    scan_range(0, scan_total, 0, &outcomes[0]);
  } else {
    // Borrow the caller's pool (Engine-owned, reused across requests) or
    // spin up a transient one for this scan.
    std::unique_ptr<Executor> owned;
    Executor* executor = options.executor;
    if (executor == nullptr) {
      owned = std::make_unique<Executor>(options.num_threads);
      executor = owned.get();
    }
    // Chunks keep per-item dispatch cheap while staying numerous enough to
    // balance load; chunk size never affects the merged report.
    const std::uint64_t per_worker =
        scan_total /
            (8 * static_cast<std::uint64_t>(executor->num_threads())) +
        1;
    const std::uint64_t chunk_size =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(1024, per_worker));
    merge_chunk_size = chunk_size;
    const std::size_t chunk_count =
        static_cast<std::size_t>((scan_total + chunk_size - 1) / chunk_size);
    outcomes = executor->ParallelMap<ScanOutcome>(
        chunk_count,
        [&](std::size_t chunk, int worker) {
          // Pool threads outlive any one request: re-install the admitting
          // request's id so the chunk span (and any governor log line fired
          // from inside the scan) attributes to it, not to whatever request
          // this worker served last.
          obs::RequestScope gm_obs_request(options.request_id);
          GM_TRACE_SPAN("scan_chunk");
          ScanOutcome out;
          if (stop_scan.load(std::memory_order_relaxed)) return out;
          const std::uint64_t begin = chunk * chunk_size;
          const std::uint64_t end = std::min(scan_total, begin + chunk_size);
          scan_range(begin, end, worker, &out);
          return out;
        },
        &stop_scan);
  }

  // Merge in chunk (= candidate) order: solutions and unknown samples keep
  // their global order, and the first stop cause in candidate order wins.
  ScanMergeResult merged;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ScanOutcome& out = outcomes[i];
    if (!out.ran) {
      const std::uint64_t begin = i * merge_chunk_size;
      const std::uint64_t end =
          std::min(scan_total, begin + merge_chunk_size);
      merged.not_evaluated += end - begin;
      continue;
    }
    merged.tag_runs += out.tag_runs;
    merged.configurations += out.configurations;
    merged.transitions += out.transitions;
    merged.kernel_groups += out.kernel_groups;
    merged.confirmed += out.confirmed;
    merged.refuted += out.refuted;
    merged.unknown += out.unknown;
    merged.not_evaluated += out.not_evaluated;
    if (merged.first_stop == StopCause::kNone) {
      merged.first_stop = out.first_stop;
    }
    if (!partial && merged.status.ok() &&
        out.first_stop != StopCause::kNone) {
      merged.status =
          out.budget_exhausted
              ? Status::ResourceExhausted(
                    "TAG matcher exceeded its configuration budget")
              : StopCauseToStatus(out.first_stop, "the mining run");
    }
    for (DiscoveredType& solution : out.solutions) {
      merged.solutions.push_back(std::move(solution));
    }
    for (UnknownCandidate& unknown : out.unknown_sample) {
      if (merged.unknown_sample.size() < kUnknownSampleCap) {
        merged.unknown_sample.push_back(std::move(unknown));
      }
    }
  }
  // One flush per scan, from the deterministically merged totals — byte-
  // identical across thread counts and worth a handful of atomic adds even
  // on the hottest workloads (no per-candidate metric traffic).
  GM_COUNTER_ADD("granmine_mine_scans_total", "", 1);
  GM_COUNTER_ADD("granmine_mine_candidates_total", "verdict=\"confirmed\"",
                 merged.confirmed);
  GM_COUNTER_ADD("granmine_mine_candidates_total", "verdict=\"refuted\"",
                 merged.refuted);
  GM_COUNTER_ADD("granmine_mine_candidates_total", "verdict=\"unknown\"",
                 merged.unknown);
  GM_COUNTER_ADD("granmine_mine_candidates_total", "verdict=\"not-evaluated\"",
                 merged.not_evaluated);
  GM_COUNTER_ADD("granmine_mine_tag_runs_total", "", merged.tag_runs);
  GM_COUNTER_ADD("granmine_tag_configurations_total", "",
                 merged.configurations);
  GM_COUNTER_ADD("granmine_tag_transitions_total", "", merged.transitions);
  GM_COUNTER_ADD("granmine_tag_groups_total", "", merged.kernel_groups);
  return merged;
}

}  // namespace granmine
