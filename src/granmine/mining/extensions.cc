#include "granmine/mining/extensions.h"

#include <algorithm>

#include "granmine/common/check.h"

namespace granmine {

std::size_t InjectBoundaryEvents(const Granularity& g, EventTypeId type,
                                 EventSequence* sequence) {
  GM_CHECK(sequence != nullptr);
  if (sequence->empty()) return 0;
  const TimePoint first = sequence->events().front().time;
  const TimePoint last = sequence->events().back().time;
  std::size_t added = 0;
  Tick z = FirstTickEndingAtOrAfter(g, first);
  while (true) {
    std::optional<TimeSpan> hull = g.TickHull(z);
    GM_CHECK(hull.has_value());
    if (hull->first > last) break;
    // Anchor at the tick start, clamped into the observed range so the
    // pseudo-event stays inside the sequence's horizon.
    sequence->Add(type, std::max(hull->first, first));
    ++added;
    ++z;
  }
  return added;
}

EventTypeId CombineReferenceTypes(std::span<const EventTypeId> reference_set,
                                  const std::string& name,
                                  EventTypeRegistry* registry,
                                  EventSequence* sequence) {
  GM_CHECK(registry != nullptr && sequence != nullptr);
  GM_CHECK(!reference_set.empty());
  EventTypeId combined = registry->Intern(name);
  std::vector<Event> copies;
  for (const Event& event : sequence->events()) {
    if (std::find(reference_set.begin(), reference_set.end(), event.type) !=
        reference_set.end()) {
      copies.push_back(Event{combined, event.time});
    }
  }
  for (const Event& copy : copies) sequence->Add(copy);
  return combined;
}

}  // namespace granmine
