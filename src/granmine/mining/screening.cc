#include "granmine/mining/screening.h"

#include <algorithm>
#include <set>

#include "granmine/common/check.h"

namespace granmine {

std::size_t FirstEventAtOrAfter(const EventSequence& sequence, TimePoint t) {
  const std::vector<Event>& events = sequence.events();
  auto it = std::lower_bound(
      events.begin(), events.end(), t,
      [](const Event& event, TimePoint value) { return event.time < value; });
  return static_cast<std::size_t>(it - events.begin());
}

void ScreenByWindows(const PropagationResult& propagation,
                     const EventSequence& sequence,
                     const std::vector<RootWindows>& windows,
                     VariableId root, std::size_t total_roots,
                     double min_confidence,
                     std::vector<std::vector<EventTypeId>>* allowed) {
  GM_CHECK(allowed != nullptr);
  if (total_roots == 0) return;
  const int n = static_cast<int>(allowed->size());
  const std::vector<Event>& events = sequence.events();

  for (VariableId v = 0; v < n; ++v) {
    if (v == root) continue;
    std::vector<EventTypeId>& types = (*allowed)[static_cast<std::size_t>(v)];
    if (types.empty()) continue;
    // hits[type] = number of reference occurrences whose window for v
    // contains a usable event of that type.
    std::set<EventTypeId> candidate_set(types.begin(), types.end());
    std::vector<std::size_t> hits;
    std::vector<EventTypeId> hit_types(candidate_set.begin(),
                                       candidate_set.end());
    hits.assign(hit_types.size(), 0);
    auto index_of = [&](EventTypeId type) -> int {
      auto it = std::lower_bound(hit_types.begin(), hit_types.end(), type);
      if (it == hit_types.end() || *it != type) return -1;
      return static_cast<int>(it - hit_types.begin());
    };
    std::vector<bool> seen(hit_types.size());
    for (const RootWindows& rw : windows) {
      const TimeSpan& window = rw.windows[static_cast<std::size_t>(v)];
      if (window.empty()) continue;
      std::fill(seen.begin(), seen.end(), false);
      for (std::size_t i = FirstEventAtOrAfter(sequence, window.first);
           i < events.size() && events[i].time <= window.last; ++i) {
        int idx = index_of(events[i].type);
        if (idx < 0 || seen[static_cast<std::size_t>(idx)]) continue;
        if (!UsableForVariable(propagation, v, window, events[i].time)) {
          continue;
        }
        seen[static_cast<std::size_t>(idx)] = true;
      }
      for (std::size_t k = 0; k < hits.size(); ++k) {
        if (seen[k]) ++hits[k];
      }
    }
    std::vector<EventTypeId> surviving;
    for (std::size_t k = 0; k < hit_types.size(); ++k) {
      double frequency =
          static_cast<double>(hits[k]) / static_cast<double>(total_roots);
      if (frequency > min_confidence) surviving.push_back(hit_types[k]);
    }
    types = std::move(surviving);
  }
}

}  // namespace granmine
