#ifndef GRANMINE_MINING_EXPLAIN_H_
#define GRANMINE_MINING_EXPLAIN_H_

#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/mining/discovery.h"
#include "granmine/sequence/sequence.h"

namespace granmine {

/// A concrete occurrence of a discovered complex event type: which event
/// (index + timestamp) each variable was bound to, for one reference
/// occurrence.
struct Explanation {
  /// Index of the reference occurrence within `sequence.events()`.
  std::size_t root_event = 0;
  /// Per variable: the bound event's index into `sequence.events()`.
  std::vector<std::size_t> witness;
};

/// Finds, for each reference occurrence of `solution`'s type assignment, the
/// first anchored occurrence and returns its witness — the θ of the §3
/// definition. Returns the first `max_explanations` explanations (scan order
/// by reference occurrence). Useful for presenting mined patterns to users.
Result<std::vector<Explanation>> ExplainSolution(
    const EventStructure& structure, const DiscoveredType& solution,
    EventTypeId reference_type, const EventSequence& sequence,
    std::size_t max_explanations = 1);

/// Human-readable one-occurrence rendering:
///   X0 = IBM-rise @ 1970-01-05 Mon 10:00:00
/// `units_per_day` selects the timestamp format (86400 = seconds calendar).
std::string FormatExplanation(const EventStructure& structure,
                              const Explanation& explanation,
                              const EventSequence& sequence,
                              const EventTypeRegistry& registry,
                              std::int64_t units_per_day = 86400);

}  // namespace granmine

#endif  // GRANMINE_MINING_EXPLAIN_H_
