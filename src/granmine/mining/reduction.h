#ifndef GRANMINE_MINING_REDUCTION_H_
#define GRANMINE_MINING_REDUCTION_H_

#include <vector>

#include "granmine/constraint/propagation.h"
#include "granmine/mining/discovery.h"
#include "granmine/sequence/sequence.h"

namespace granmine {

/// The per-variable candidate type sets of a discovery problem with σ's
/// "free" entries expanded to the sequence's distinct types and the root
/// pinned to the reference type.
std::vector<std::vector<EventTypeId>> ResolveAllowedTypes(
    const DiscoveryProblem& problem, const EventSequence& sequence,
    VariableId root);

/// The §5 step-2 per-event predicate, built once from (propagation, allowed)
/// and then applied event by event: an event survives iff some variable may
/// take its type AND its timestamp satisfies every definedness requirement
/// that variable carries. Exposed separately from `ReduceSequence` so the
/// streaming miner can reduce each committed group incrementally with the
/// same decision the batch reduction makes.
///
/// Holds a pointer to `propagation`, which must outlive the reducer.
class EventReducer {
 public:
  EventReducer(const PropagationResult* propagation,
               const std::vector<std::vector<EventTypeId>>& allowed);

  bool Keep(const Event& event) const;

 private:
  const PropagationResult* propagation_;
  /// candidate_vars_[type]: variables that may take this type.
  std::vector<std::vector<VariableId>> candidate_vars_;
};

/// §5 step 2: drops every event that cannot be bound to any variable — its
/// type is allowed nowhere, or its timestamp violates a definedness
/// requirement (e.g., a weekend event when every variable carries b-day
/// constraints). Sound: the matcher's ANY self-loops skip unrelated events
/// without touching clocks, so removing them never changes anchored-match
/// outcomes. Equivalent to filtering with `EventReducer::Keep`.
EventSequence ReduceSequence(
    const EventSequence& sequence, const PropagationResult& propagation,
    const std::vector<std::vector<EventTypeId>>& allowed);

}  // namespace granmine

#endif  // GRANMINE_MINING_REDUCTION_H_
