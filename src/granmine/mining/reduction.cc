#include "granmine/mining/reduction.h"

#include <algorithm>

#include "granmine/common/check.h"

namespace granmine {

std::vector<std::vector<EventTypeId>> ResolveAllowedTypes(
    const DiscoveryProblem& problem, const EventSequence& sequence,
    VariableId root) {
  GM_CHECK(problem.structure != nullptr);
  const int n = problem.structure->variable_count();
  std::vector<EventTypeId> all_types = sequence.DistinctTypes();
  std::vector<std::vector<EventTypeId>> allowed(
      static_cast<std::size_t>(n));
  for (VariableId v = 0; v < n; ++v) {
    if (v == root) {
      allowed[static_cast<std::size_t>(v)] = {problem.reference_type};
      continue;
    }
    if (static_cast<std::size_t>(v) < problem.allowed.size() &&
        !problem.allowed[static_cast<std::size_t>(v)].empty()) {
      allowed[static_cast<std::size_t>(v)] =
          problem.allowed[static_cast<std::size_t>(v)];
    } else {
      allowed[static_cast<std::size_t>(v)] = all_types;
    }
  }
  return allowed;
}

EventReducer::EventReducer(
    const PropagationResult* propagation,
    const std::vector<std::vector<EventTypeId>>& allowed)
    : propagation_(propagation) {
  const int n = static_cast<int>(allowed.size());
  EventTypeId max_type = -1;
  for (const std::vector<EventTypeId>& types : allowed) {
    for (EventTypeId type : types) max_type = std::max(max_type, type);
  }
  candidate_vars_.resize(static_cast<std::size_t>(max_type) + 1);
  for (VariableId v = 0; v < n; ++v) {
    for (EventTypeId type : allowed[static_cast<std::size_t>(v)]) {
      candidate_vars_[static_cast<std::size_t>(type)].push_back(v);
    }
  }
}

bool EventReducer::Keep(const Event& event) const {
  if (event.type < 0 ||
      static_cast<std::size_t>(event.type) >= candidate_vars_.size()) {
    return false;
  }
  for (VariableId v : candidate_vars_[static_cast<std::size_t>(event.type)]) {
    bool usable = true;
    for (const Granularity* g : propagation_->granularities) {
      if (propagation_->IsDefinedIn(g, v) && !g->InSupport(event.time)) {
        usable = false;
        break;
      }
    }
    if (usable) return true;
  }
  return false;
}

EventSequence ReduceSequence(
    const EventSequence& sequence, const PropagationResult& propagation,
    const std::vector<std::vector<EventTypeId>>& allowed) {
  EventReducer reducer(&propagation, allowed);
  return sequence.Filter(
      [&](const Event& event) { return reducer.Keep(event); });
}

}  // namespace granmine
