#ifndef GRANMINE_MINING_SCAN_DRIVER_H_
#define GRANMINE_MINING_SCAN_DRIVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/result.h"
#include "granmine/mining/discovery.h"

namespace granmine {

class Executor;

/// Mixed-radix enumeration of candidate assignments over `allowed` with the
/// root variable pinned and the last variable least significant. `OdometerAt`
/// seeks straight to the state after `index` advances so chunked workers can
/// jump to their slice of the candidate space; `AdvanceOdometer` is one
/// enumeration step (false when wrapped).
std::vector<std::size_t> OdometerAt(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root,
    std::uint64_t index);
bool AdvanceOdometer(const std::vector<std::vector<EventTypeId>>& allowed,
                     VariableId root, std::vector<std::size_t>* odometer);

/// Number of candidate assignments (product of non-root domain sizes),
/// saturating at 2^62; 0 when any non-root domain is empty.
std::uint64_t CandidateCount(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root);

/// Per-range scan accounting. Every candidate of the scanned prefix ends in
/// exactly one bucket — confirmed, refuted, unknown, or not_evaluated — so
/// the merged buckets always sum to the candidate total (the
/// MiningCompleteness invariant).
struct ScanOutcome {
  std::vector<DiscoveredType> solutions;
  std::vector<UnknownCandidate> unknown_sample;  // chunk-local prefix
  std::uint64_t confirmed = 0;
  std::uint64_t refuted = 0;
  std::uint64_t unknown = 0;
  std::uint64_t not_evaluated = 0;
  std::uint64_t tag_runs = 0;
  std::uint64_t configurations = 0;
  /// Kernel transition / group totals behind this range's runs (accumulated
  /// from MatchStats by the evaluator; flushed to the obs layer on merge).
  std::uint64_t transitions = 0;
  std::uint64_t kernel_groups = 0;
  /// First cause (candidate order) that interrupted work in this range.
  StopCause first_stop = StopCause::kNone;
  /// The stopping candidate hit the matcher's local configuration budget
  /// (drives the legacy kAbort error message).
  bool budget_exhausted = false;
  /// False = the chunk was abandoned before scanning anything.
  bool ran = false;
};

enum class CandidateFate { kDecided, kUnknown };

/// Evaluates one candidate assignment φ. `index` is the global candidate
/// position in [0, scan_total) — the streaming miner uses it to address
/// resident per-candidate state. `worker` indexes per-worker scratch state
/// (in [0, Executor::Resolve(num_threads))). The evaluator records its
/// verdict in `out` (confirmed/refuted counts, solutions, tag_runs,
/// configurations) and returns kDecided, or returns kUnknown with `*reason`
/// set to what interrupted it. It must not touch `out->unknown`,
/// `out->not_evaluated`, `out->first_stop`, or `out->unknown_sample` — the
/// driver owns those.
using CandidateEvaluator = std::function<CandidateFate(
    const std::vector<EventTypeId>& phi, std::uint64_t index, int worker,
    ScanOutcome* out, StopCause* reason)>;

struct ScanDriverOptions {
  /// 1 = serial path (bit-identical to the single-threaded implementation);
  /// <= 0 = hardware concurrency.
  int num_threads = 1;
  /// Borrowed thread pool for the parallel path (e.g. the Engine's). When
  /// null the driver constructs a transient Executor(num_threads) per scan;
  /// when set, the pool's thread count wins over `num_threads` (size
  /// per-worker scratch with `Executor::Resolve` on the same pool). The
  /// merged report is identical either way — chunking depends only on the
  /// worker count.
  Executor* executor = nullptr;
  /// ExhaustionPolicy::kPartial: interruptions degrade candidates to unknown
  /// instead of aborting the scan.
  bool partial = false;
  /// Shared governor; charged once per candidate under GovernorScope::kMine
  /// with the global candidate index, so injection targets a candidate, not
  /// a thread.
  const ResourceGovernor* governor = nullptr;
  /// Request id carried into worker chunks (each chunk installs an
  /// obs::RequestScope before its scan_chunk span). 0 = unattributed.
  std::uint64_t request_id = 0;
};

/// The deterministically merged result of a candidate scan.
struct ScanMergeResult {
  std::vector<DiscoveredType> solutions;        ///< candidate order
  std::vector<UnknownCandidate> unknown_sample;  ///< first kUnknownSampleCap
  std::uint64_t confirmed = 0;
  std::uint64_t refuted = 0;
  std::uint64_t unknown = 0;
  std::uint64_t not_evaluated = 0;
  std::uint64_t tag_runs = 0;
  std::uint64_t configurations = 0;
  std::uint64_t transitions = 0;
  std::uint64_t kernel_groups = 0;
  /// First stop cause in candidate order, kNone when nothing was interrupted.
  StopCause first_stop = StopCause::kNone;
  /// Abort mode only: the first interruption as a Status (OK under kPartial
  /// or when the scan completed).
  Status status = Status::OK();
};

/// The step-5 candidate scan driver shared by the batch `Miner` and the
/// streaming `OnlineMiner`: enumerates candidates [0, scan_total) through the
/// odometer, fans them across an `Executor` in fixed-size chunks, charges the
/// governor per candidate (deterministic global index), and merges chunk
/// outcomes back in candidate order — solutions and unknown samples keep
/// their global order, the first stop cause in candidate order wins, and
/// chunks abandoned after a stop are accounted as not_evaluated. For a fixed
/// (allowed, root, scan_total, evaluator) the merged result is byte-identical
/// across thread counts and injected faults.
ScanMergeResult ScanCandidates(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root,
    std::uint64_t scan_total, const ScanDriverOptions& options,
    const CandidateEvaluator& evaluator);

}  // namespace granmine

#endif  // GRANMINE_MINING_SCAN_DRIVER_H_
