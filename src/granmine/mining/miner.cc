#include "granmine/mining/miner.h"

#include <algorithm>
#include <atomic>

#include "granmine/common/check.h"
#include "granmine/common/executor.h"
#include "granmine/common/math.h"
#include "granmine/constraint/propagation.h"
#include "granmine/constraint/substructure.h"
#include "granmine/mining/reduction.h"
#include "granmine/mining/scan_driver.h"
#include "granmine/mining/screening.h"
#include "granmine/mining/windows.h"
#include "granmine/obs/context.h"
#include "granmine/obs/obs.h"
#include "granmine/tag/builder.h"

namespace granmine {

namespace {

// Smallest type universe covering the sequence, σ and E0.
int TypeUniverseSize(const DiscoveryProblem& problem,
                     const EventSequence& sequence,
                     const std::vector<std::vector<EventTypeId>>& allowed) {
  EventTypeId max_type = problem.reference_type;
  for (const Event& event : sequence.events()) {
    max_type = std::max(max_type, event.type);
  }
  for (const std::vector<EventTypeId>& types : allowed) {
    for (EventTypeId type : types) max_type = std::max(max_type, type);
  }
  return max_type + 1;
}

// Does some event usable for v with an allowed type fall in the window?
bool WindowSatisfiable(const EventSequence& sequence,
                       const PropagationResult& propagation, VariableId v,
                       const TimeSpan& window,
                       const std::vector<EventTypeId>& types) {
  if (window.empty()) return false;
  const std::vector<Event>& events = sequence.events();
  for (std::size_t i = FirstEventAtOrAfter(sequence, window.first);
       i < events.size() && events[i].time <= window.last; ++i) {
    if (std::find(types.begin(), types.end(), events[i].type) ==
        types.end()) {
      continue;
    }
    if (UsableForVariable(propagation, v, window, events[i].time)) {
      return true;
    }
  }
  return false;
}

// All size-k subsets of non-root variables that form a chain under
// reachability (every pair comparable) — the §5.1 sub-chain condition.
std::vector<std::vector<VariableId>> ChainSubsets(
    const EventStructure& structure, VariableId root, int k, int cap) {
  std::vector<std::vector<bool>> reach = structure.ReachabilityMatrix();
  const int n = structure.variable_count();
  std::vector<VariableId> candidates;
  for (VariableId v = 0; v < n; ++v) {
    if (v != root && reach[root][v]) candidates.push_back(v);
  }
  std::vector<std::vector<VariableId>> result;
  std::vector<VariableId> current;
  // DFS over candidates in id order; chain condition checked incrementally.
  std::function<void(std::size_t)> recurse = [&](std::size_t from) {
    if (static_cast<int>(result.size()) >= cap) return;
    if (static_cast<int>(current.size()) == k) {
      result.push_back(current);
      return;
    }
    for (std::size_t i = from; i < candidates.size(); ++i) {
      VariableId v = candidates[i];
      bool comparable = true;
      for (VariableId u : current) {
        if (!reach[u][v] && !reach[v][u]) {
          comparable = false;
          break;
        }
      }
      if (!comparable) continue;
      current.push_back(v);
      recurse(i + 1);
      current.pop_back();
    }
  };
  recurse(0);
  return result;
}

}  // namespace

Miner::Miner(GranularitySystem* system, MinerOptions options)
    : system_(system), options_(options) {
  GM_CHECK(system_ != nullptr);
}

Result<MiningReport> Miner::Mine(const DiscoveryProblem& problem,
                                 const EventSequence& sequence,
                                 const ResourceGovernor* governor) const {
  if (problem.structure == nullptr) {
    return Status::Invalid("discovery problem has no structure");
  }
  GM_ASSIGN_OR_RETURN(VariableId root, problem.structure->FindRoot());
  const EventStructure& structure = *problem.structure;
  for (const TypeConstraint& constraint : problem.type_constraints) {
    if (constraint.a < 0 || constraint.a >= structure.variable_count() ||
        constraint.b < 0 || constraint.b >= structure.variable_count()) {
      return Status::Invalid("type constraint references unknown variables");
    }
  }

  // Re-install the admitting request's id: Mine may run on the caller's
  // thread (Engine) or be re-entered from tests without an Engine, and the
  // "mine" span plus every downstream log line keys off the thread-local.
  obs::RequestScope gm_obs_request(options_.request_id);
  GM_TRACE_SPAN("mine");
  GM_COUNTER_ADD("granmine_mine_runs_total", "", 1);
  MiningReport report;
  report.total_roots = sequence.CountOf(problem.reference_type);
  report.events_before = sequence.size();
  if (report.total_roots == 0) {
    return report;  // the problem is defined only when E0 occurs
  }

  const bool needs_windows = options_.reduce_roots ||
                             options_.screening_depth > 0 ||
                             options_.use_window_deadlines;
  const bool needs_propagation = options_.check_consistency ||
                                 options_.reduce_sequence || needs_windows;

  PropagationResult propagation;
  if (needs_propagation) {
    GM_TRACE_SPAN("mine_propagate");
    PropagationOptions propagation_options;
    propagation_options.governor = governor;
    ConstraintPropagator propagator(&system_->tables(), &system_->coverage(),
                                    propagation_options);
    GM_ASSIGN_OR_RETURN(propagation, propagator.Propagate(structure));
    if (!propagation.consistent) {
      // No complex event can match an inconsistent structure.
      report.refuted_by_propagation = true;
      report.events_after_reduction = sequence.size();
      return report;
    }
  }

  std::vector<std::vector<EventTypeId>> allowed =
      ResolveAllowedTypes(problem, sequence, root);
  const int type_count = TypeUniverseSize(problem, sequence, allowed);
  report.candidates_before = CandidateCount(allowed, root);

  // Step 2: sequence reduction.
  EventSequence working = options_.reduce_sequence
                              ? ReduceSequence(sequence, propagation, allowed)
                              : sequence;
  report.events_after_reduction = working.size();

  // Reference occurrences and their windows; step 3 discards hopeless ones.
  std::vector<std::size_t> surviving;
  std::vector<RootWindows> windows;
  {
    GM_TRACE_SPAN("mine_root_windows");
    std::vector<std::size_t> root_indices =
        working.OccurrencesOf(problem.reference_type);
    for (std::size_t idx : root_indices) {
      TimePoint t0 = working.events()[idx].time;
      RootWindows rw;
      if (needs_windows) {
        rw = ComputeRootWindows(structure, root, propagation, t0);
        if (options_.reduce_roots) {
          bool viable = rw.root_viable;
          for (VariableId v = 0; viable && v < structure.variable_count();
               ++v) {
            if (v == root) continue;
            viable = WindowSatisfiable(working, propagation, v,
                                       rw.windows[static_cast<std::size_t>(v)],
                                       allowed[static_cast<std::size_t>(v)]);
          }
          if (!viable) continue;  // counts as unmatched for every candidate
        }
      }
      surviving.push_back(idx);
      windows.push_back(std::move(rw));
    }
  }
  report.roots_after_reduction = surviving.size();

  // Step 4: candidate screening.
  if (options_.screening_depth >= 1 && needs_windows) {
    ScreenByWindows(propagation, working, windows, root, report.total_roots,
                    problem.min_confidence, &allowed);
  }
  if (options_.screening_depth >= 2) {
    GM_TRACE_SPAN("mine_screen");
    int budget = options_.max_induced_problems;
    for (int k = 2; k <= options_.screening_depth && budget > 0; ++k) {
      for (const std::vector<VariableId>& combo :
           ChainSubsets(structure, root, k, budget)) {
        --budget;
        std::vector<VariableId> subset;
        subset.push_back(root);
        subset.insert(subset.end(), combo.begin(), combo.end());
        Result<EventStructure> induced =
            InduceSubstructure(structure, propagation, subset);
        if (!induced.ok() || !induced->FindRoot().ok()) continue;
        DiscoveryProblem induced_problem;
        induced_problem.structure = &*induced;
        induced_problem.min_confidence = problem.min_confidence;
        induced_problem.reference_type = problem.reference_type;
        induced_problem.allowed.resize(subset.size());
        for (std::size_t i = 1; i < subset.size(); ++i) {
          induced_problem.allowed[i] =
              allowed[static_cast<std::size_t>(subset[i])];
        }
        MinerOptions nested = options_;
        nested.check_consistency = false;
        nested.reduce_sequence = false;
        nested.screening_depth = 1;  // no further recursion
        Miner nested_miner(system_, nested);
        Result<MiningReport> nested_report =
            nested_miner.Mine(induced_problem, working, governor);
        // Give up pruning (still sound) on failure — and also on a *partial*
        // nested report: its solution set is only a lower bound, so pruning
        // the missing types would wrongly refute undecided candidates.
        if (!nested_report.ok() || !nested_report->completeness.complete) {
          continue;
        }
        report.tag_runs += nested_report->tag_runs;
        for (std::size_t i = 1; i < subset.size(); ++i) {
          std::vector<EventTypeId> survivors;
          for (const DiscoveredType& solution : nested_report->solutions) {
            EventTypeId type = solution.assignment[i];
            if (std::find(survivors.begin(), survivors.end(), type) ==
                survivors.end()) {
              survivors.push_back(type);
            }
          }
          std::vector<EventTypeId>& target =
              allowed[static_cast<std::size_t>(subset[i])];
          std::vector<EventTypeId> intersection;
          for (EventTypeId type : target) {
            if (std::find(survivors.begin(), survivors.end(), type) !=
                survivors.end()) {
              intersection.push_back(type);
            }
          }
          target = std::move(intersection);
        }
      }
    }
  }
  report.candidates_after_screening = CandidateCount(allowed, root);
  if (report.candidates_after_screening == 0) return report;
  const bool partial =
      options_.on_exhaustion == MinerOptions::ExhaustionPolicy::kPartial;
  std::uint64_t scan_total = report.candidates_after_screening;
  bool clamped = false;
  if (scan_total > options_.max_candidates) {
    if (!partial) {
      return Status::ResourceExhausted(
          "candidate space exceeds the configured limit after screening");
    }
    scan_total = options_.max_candidates;
    clamped = true;
  }

  if (options_.degrade_to_screening) {
    // Degraded serving: steps 1-4 already refuted everything screening could
    // refute exactly; the survivors were never exactly checked, so each one
    // is honestly *unknown* — never guessed. The sample enumerates the first
    // candidates in the same lexicographic order the scan would have used,
    // so a degraded report is byte-identical across thread counts for free.
    GM_COUNTER_ADD("granmine_mine_degraded_total", "", 1);
    report.completeness.unknown = scan_total;
    const std::size_t n = allowed.size();
    std::vector<std::size_t> odometer = OdometerAt(allowed, root, 0);
    std::vector<EventTypeId> phi(n);
    for (std::uint64_t i = 0; i < scan_total && i < kUnknownSampleCap; ++i) {
      for (std::size_t v = 0; v < n; ++v) phi[v] = allowed[v][odometer[v]];
      report.unknown_sample.push_back(
          UnknownCandidate{phi, StopCause::kDegraded});
      AdvanceOdometer(allowed, root, &odometer);
    }
    if (clamped) {
      report.completeness.not_evaluated +=
          report.candidates_after_screening - scan_total;
    }
    report.completeness.stop = StopCause::kDegraded;
    report.completeness.complete = false;
    return report;
  }

  // Step 5: one skeleton TAG for all candidates; anchored scans per root.
  // The skeleton, the reduced sequence, the windows and the system caches
  // are all read-only from here on, so the candidate space can fan out
  // across threads; per-candidate outcomes are merged back in candidate
  // (= lexicographic assignment) order, keeping the report deterministic.
  GM_ASSIGN_OR_RETURN(TagBuildResult skeleton,
                      BuildTagForStructure(structure));
  TagMatcher matcher(&skeleton.tag);

  // Per-worker match scratches, sized for the pool the scan driver will run
  // (worker 0 is the calling thread on the serial path). A borrowed pool
  // dictates the worker count directly.
  std::vector<MatchScratch> scratches(static_cast<std::size_t>(
      options_.executor != nullptr ? options_.executor->num_threads()
                                   : Executor::Resolve(options_.num_threads)));

  // Evaluates one candidate φ; kUnknown sets *reason.
  auto scan_candidate = [&](const std::vector<EventTypeId>& phi,
                            std::uint64_t /*index*/, int worker,
                            ScanOutcome* out, StopCause* reason) {
    MatchScratch* scratch = &scratches[static_cast<std::size_t>(worker)];
    for (const TypeConstraint& constraint : problem.type_constraints) {
      if (!constraint.SatisfiedBy(phi)) {
        ++out->refuted;  // statically excluded: decided without a scan
        return CandidateFate::kDecided;
      }
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, type_count);
    std::size_t matched = 0;
    for (std::size_t i = 0; i < surviving.size(); ++i) {
      MatchOptions match_options;
      match_options.anchored = true;
      match_options.max_configurations = options_.max_configurations_per_run;
      match_options.governor = governor;
      if (options_.use_window_deadlines && needs_windows) {
        match_options.deadline = windows[i].deadline;
      }
      MatchStats stats;
      MatchOutcome outcome =
          matcher.Run(working.SuffixFrom(surviving[i]), symbols, match_options,
                      &stats, scratch);
      ++out->tag_runs;
      out->configurations += stats.configurations;
      out->transitions += stats.transitions;
      out->kernel_groups += stats.groups_advanced;
      if (outcome == MatchOutcome::kUnknown) {
        *reason = stats.stopped != StopCause::kNone ? stats.stopped
                                                    : StopCause::kStepBudget;
        if (stats.budget_exhausted) out->budget_exhausted = true;
        return CandidateFate::kUnknown;
      }
      if (outcome == MatchOutcome::kAccepted) ++matched;
    }
    double frequency = static_cast<double>(matched) /
                       static_cast<double>(report.total_roots);
    if (frequency > problem.min_confidence) {
      out->solutions.push_back(DiscoveredType{phi, frequency, matched});
      ++out->confirmed;
    } else {
      ++out->refuted;
    }
    return CandidateFate::kDecided;
  };

  ScanDriverOptions scan_options;
  scan_options.num_threads = options_.num_threads;
  scan_options.executor = options_.executor;
  scan_options.partial = partial;
  scan_options.governor = governor;
  scan_options.request_id = options_.request_id;
  ScanMergeResult merged =
      ScanCandidates(allowed, root, scan_total, scan_options, scan_candidate);
  GM_RETURN_NOT_OK(merged.status);
  report.tag_runs += merged.tag_runs;
  report.matcher_configurations += merged.configurations;
  report.completeness.confirmed = merged.confirmed;
  report.completeness.refuted = merged.refuted;
  report.completeness.unknown = merged.unknown;
  report.completeness.not_evaluated = merged.not_evaluated;
  report.solutions = std::move(merged.solutions);
  report.unknown_sample = std::move(merged.unknown_sample);
  StopCause first_stop = merged.first_stop;
  if (clamped) {
    report.completeness.not_evaluated +=
        report.candidates_after_screening - scan_total;
    if (first_stop == StopCause::kNone) first_stop = StopCause::kStepBudget;
  }
  report.completeness.stop = first_stop;
  report.completeness.complete = report.completeness.unknown == 0 &&
                                 report.completeness.not_evaluated == 0;
  return report;
}

}  // namespace granmine
