#include "granmine/mining/miner.h"

#include <algorithm>
#include <atomic>

#include "granmine/common/check.h"
#include "granmine/common/executor.h"
#include "granmine/common/math.h"
#include "granmine/constraint/propagation.h"
#include "granmine/constraint/substructure.h"
#include "granmine/mining/reduction.h"
#include "granmine/mining/screening.h"
#include "granmine/mining/windows.h"
#include "granmine/tag/builder.h"

namespace granmine {

namespace {

// Smallest type universe covering the sequence, σ and E0.
int TypeUniverseSize(const DiscoveryProblem& problem,
                     const EventSequence& sequence,
                     const std::vector<std::vector<EventTypeId>>& allowed) {
  EventTypeId max_type = problem.reference_type;
  for (const Event& event : sequence.events()) {
    max_type = std::max(max_type, event.type);
  }
  for (const std::vector<EventTypeId>& types : allowed) {
    for (EventTypeId type : types) max_type = std::max(max_type, type);
  }
  return max_type + 1;
}

std::uint64_t CandidateCount(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root) {
  std::uint64_t product = 1;
  for (std::size_t v = 0; v < allowed.size(); ++v) {
    if (static_cast<VariableId>(v) == root) continue;
    std::uint64_t size = allowed[v].size();
    if (size == 0) return 0;
    if (product > (std::uint64_t{1} << 62) / size) {
      return std::uint64_t{1} << 62;  // saturate
    }
    product *= size;
  }
  return product;
}

// Does some event usable for v with an allowed type fall in the window?
bool WindowSatisfiable(const EventSequence& sequence,
                       const PropagationResult& propagation, VariableId v,
                       const TimeSpan& window,
                       const std::vector<EventTypeId>& types) {
  if (window.empty()) return false;
  const std::vector<Event>& events = sequence.events();
  for (std::size_t i = FirstEventAtOrAfter(sequence, window.first);
       i < events.size() && events[i].time <= window.last; ++i) {
    if (std::find(types.begin(), types.end(), events[i].type) ==
        types.end()) {
      continue;
    }
    if (UsableForVariable(propagation, v, window, events[i].time)) {
      return true;
    }
  }
  return false;
}

// The odometer state candidate enumeration holds after `index` advances:
// enumeration is mixed-radix over the non-root variables with the last
// variable least significant, so chunked workers can seek straight to their
// slice of the candidate space.
std::vector<std::size_t> OdometerAt(
    const std::vector<std::vector<EventTypeId>>& allowed, VariableId root,
    std::uint64_t index) {
  const int n = static_cast<int>(allowed.size());
  std::vector<std::size_t> odometer(static_cast<std::size_t>(n), 0);
  for (int v = n - 1; v >= 0 && index > 0; --v) {
    if (static_cast<VariableId>(v) == root) continue;
    std::uint64_t size = allowed[static_cast<std::size_t>(v)].size();
    odometer[static_cast<std::size_t>(v)] =
        static_cast<std::size_t>(index % size);
    index /= size;
  }
  return odometer;
}

// One enumeration advance step (root pinned); false when wrapped.
bool AdvanceOdometer(const std::vector<std::vector<EventTypeId>>& allowed,
                     VariableId root, std::vector<std::size_t>* odometer) {
  int v = static_cast<int>(allowed.size()) - 1;
  while (v >= 0) {
    if (static_cast<VariableId>(v) == root) {
      --v;
      continue;
    }
    if (++(*odometer)[static_cast<std::size_t>(v)] <
        allowed[static_cast<std::size_t>(v)].size()) {
      return true;
    }
    (*odometer)[static_cast<std::size_t>(v)] = 0;
    --v;
  }
  return false;
}

// All size-k subsets of non-root variables that form a chain under
// reachability (every pair comparable) — the §5.1 sub-chain condition.
std::vector<std::vector<VariableId>> ChainSubsets(
    const EventStructure& structure, VariableId root, int k, int cap) {
  std::vector<std::vector<bool>> reach = structure.ReachabilityMatrix();
  const int n = structure.variable_count();
  std::vector<VariableId> candidates;
  for (VariableId v = 0; v < n; ++v) {
    if (v != root && reach[root][v]) candidates.push_back(v);
  }
  std::vector<std::vector<VariableId>> result;
  std::vector<VariableId> current;
  // DFS over candidates in id order; chain condition checked incrementally.
  std::function<void(std::size_t)> recurse = [&](std::size_t from) {
    if (static_cast<int>(result.size()) >= cap) return;
    if (static_cast<int>(current.size()) == k) {
      result.push_back(current);
      return;
    }
    for (std::size_t i = from; i < candidates.size(); ++i) {
      VariableId v = candidates[i];
      bool comparable = true;
      for (VariableId u : current) {
        if (!reach[u][v] && !reach[v][u]) {
          comparable = false;
          break;
        }
      }
      if (!comparable) continue;
      current.push_back(v);
      recurse(i + 1);
      current.pop_back();
    }
  };
  recurse(0);
  return result;
}

}  // namespace

Miner::Miner(GranularitySystem* system, MinerOptions options)
    : system_(system), options_(options) {
  GM_CHECK(system_ != nullptr);
}

Result<MiningReport> Miner::Mine(const DiscoveryProblem& problem,
                                 const EventSequence& sequence,
                                 const ResourceGovernor* governor) const {
  if (problem.structure == nullptr) {
    return Status::Invalid("discovery problem has no structure");
  }
  GM_ASSIGN_OR_RETURN(VariableId root, problem.structure->FindRoot());
  const EventStructure& structure = *problem.structure;
  for (const TypeConstraint& constraint : problem.type_constraints) {
    if (constraint.a < 0 || constraint.a >= structure.variable_count() ||
        constraint.b < 0 || constraint.b >= structure.variable_count()) {
      return Status::Invalid("type constraint references unknown variables");
    }
  }

  MiningReport report;
  report.total_roots = sequence.CountOf(problem.reference_type);
  report.events_before = sequence.size();
  if (report.total_roots == 0) {
    return report;  // the problem is defined only when E0 occurs
  }

  const bool needs_windows = options_.reduce_roots ||
                             options_.screening_depth > 0 ||
                             options_.use_window_deadlines;
  const bool needs_propagation = options_.check_consistency ||
                                 options_.reduce_sequence || needs_windows;

  PropagationResult propagation;
  if (needs_propagation) {
    PropagationOptions propagation_options;
    propagation_options.governor = governor;
    ConstraintPropagator propagator(&system_->tables(), &system_->coverage(),
                                    propagation_options);
    GM_ASSIGN_OR_RETURN(propagation, propagator.Propagate(structure));
    if (!propagation.consistent) {
      // No complex event can match an inconsistent structure.
      report.refuted_by_propagation = true;
      report.events_after_reduction = sequence.size();
      return report;
    }
  }

  std::vector<std::vector<EventTypeId>> allowed =
      ResolveAllowedTypes(problem, sequence, root);
  const int type_count = TypeUniverseSize(problem, sequence, allowed);
  report.candidates_before = CandidateCount(allowed, root);

  // Step 2: sequence reduction.
  EventSequence working = options_.reduce_sequence
                              ? ReduceSequence(sequence, propagation, allowed)
                              : sequence;
  report.events_after_reduction = working.size();

  // Reference occurrences and their windows; step 3 discards hopeless ones.
  std::vector<std::size_t> root_indices =
      working.OccurrencesOf(problem.reference_type);
  std::vector<std::size_t> surviving;
  std::vector<RootWindows> windows;
  for (std::size_t idx : root_indices) {
    TimePoint t0 = working.events()[idx].time;
    RootWindows rw;
    if (needs_windows) {
      rw = ComputeRootWindows(structure, root, propagation, t0);
      if (options_.reduce_roots) {
        bool viable = rw.root_viable;
        for (VariableId v = 0; viable && v < structure.variable_count();
             ++v) {
          if (v == root) continue;
          viable = WindowSatisfiable(working, propagation, v,
                                     rw.windows[static_cast<std::size_t>(v)],
                                     allowed[static_cast<std::size_t>(v)]);
        }
        if (!viable) continue;  // counts as unmatched for every candidate
      }
    }
    surviving.push_back(idx);
    windows.push_back(std::move(rw));
  }
  report.roots_after_reduction = surviving.size();

  // Step 4: candidate screening.
  if (options_.screening_depth >= 1 && needs_windows) {
    ScreenByWindows(propagation, working, windows, root, report.total_roots,
                    problem.min_confidence, &allowed);
  }
  if (options_.screening_depth >= 2) {
    int budget = options_.max_induced_problems;
    for (int k = 2; k <= options_.screening_depth && budget > 0; ++k) {
      for (const std::vector<VariableId>& combo :
           ChainSubsets(structure, root, k, budget)) {
        --budget;
        std::vector<VariableId> subset;
        subset.push_back(root);
        subset.insert(subset.end(), combo.begin(), combo.end());
        Result<EventStructure> induced =
            InduceSubstructure(structure, propagation, subset);
        if (!induced.ok() || !induced->FindRoot().ok()) continue;
        DiscoveryProblem induced_problem;
        induced_problem.structure = &*induced;
        induced_problem.min_confidence = problem.min_confidence;
        induced_problem.reference_type = problem.reference_type;
        induced_problem.allowed.resize(subset.size());
        for (std::size_t i = 1; i < subset.size(); ++i) {
          induced_problem.allowed[i] =
              allowed[static_cast<std::size_t>(subset[i])];
        }
        MinerOptions nested = options_;
        nested.check_consistency = false;
        nested.reduce_sequence = false;
        nested.screening_depth = 1;  // no further recursion
        Miner nested_miner(system_, nested);
        Result<MiningReport> nested_report =
            nested_miner.Mine(induced_problem, working, governor);
        // Give up pruning (still sound) on failure — and also on a *partial*
        // nested report: its solution set is only a lower bound, so pruning
        // the missing types would wrongly refute undecided candidates.
        if (!nested_report.ok() || !nested_report->completeness.complete) {
          continue;
        }
        report.tag_runs += nested_report->tag_runs;
        for (std::size_t i = 1; i < subset.size(); ++i) {
          std::vector<EventTypeId> survivors;
          for (const DiscoveredType& solution : nested_report->solutions) {
            EventTypeId type = solution.assignment[i];
            if (std::find(survivors.begin(), survivors.end(), type) ==
                survivors.end()) {
              survivors.push_back(type);
            }
          }
          std::vector<EventTypeId>& target =
              allowed[static_cast<std::size_t>(subset[i])];
          std::vector<EventTypeId> intersection;
          for (EventTypeId type : target) {
            if (std::find(survivors.begin(), survivors.end(), type) !=
                survivors.end()) {
              intersection.push_back(type);
            }
          }
          target = std::move(intersection);
        }
      }
    }
  }
  report.candidates_after_screening = CandidateCount(allowed, root);
  if (report.candidates_after_screening == 0) return report;
  const bool partial =
      options_.on_exhaustion == MinerOptions::ExhaustionPolicy::kPartial;
  std::uint64_t scan_total = report.candidates_after_screening;
  bool clamped = false;
  if (scan_total > options_.max_candidates) {
    if (!partial) {
      return Status::ResourceExhausted(
          "candidate space exceeds the configured limit after screening");
    }
    scan_total = options_.max_candidates;
    clamped = true;
  }

  // Step 5: one skeleton TAG for all candidates; anchored scans per root.
  // The skeleton, the reduced sequence, the windows and the system caches
  // are all read-only from here on, so the candidate space can fan out
  // across threads; per-candidate outcomes are merged back in candidate
  // (= lexicographic assignment) order, keeping the report deterministic.
  GM_ASSIGN_OR_RETURN(TagBuildResult skeleton,
                      BuildTagForStructure(structure));
  TagMatcher matcher(&skeleton.tag);

  // Every candidate of the scanned prefix ends in exactly one bucket —
  // confirmed, refuted, unknown, or not_evaluated — so the merged buckets
  // always sum to the candidate total (the MiningCompleteness invariant).
  struct ScanOutcome {
    std::vector<DiscoveredType> solutions;
    std::vector<UnknownCandidate> unknown_sample;  // chunk-local prefix
    std::uint64_t confirmed = 0;
    std::uint64_t refuted = 0;
    std::uint64_t unknown = 0;
    std::uint64_t not_evaluated = 0;
    std::uint64_t tag_runs = 0;
    std::uint64_t configurations = 0;
    /// First cause (candidate order) that interrupted work in this range.
    StopCause first_stop = StopCause::kNone;
    /// The stopping candidate hit the matcher's local configuration budget
    /// (drives the legacy kAbort error message).
    bool budget_exhausted = false;
    /// False = the chunk was abandoned before scanning anything.
    bool ran = false;
  };

  enum class CandidateFate { kDecided, kUnknown };

  // Raised when the scan must wind down (abort-mode failure or a global
  // governor stop); the Executor observes it before claiming further chunks.
  std::atomic<bool> stop_scan{false};

  // Scans one candidate φ; kUnknown sets *reason.
  auto scan_candidate = [&](const std::vector<EventTypeId>& phi,
                            MatchScratch* scratch, ScanOutcome* out,
                            StopCause* reason) {
    for (const TypeConstraint& constraint : problem.type_constraints) {
      if (!constraint.SatisfiedBy(phi)) {
        ++out->refuted;  // statically excluded: decided without a scan
        return CandidateFate::kDecided;
      }
    }
    SymbolMap symbols = SymbolMap::FromAssignment(phi, type_count);
    std::size_t matched = 0;
    for (std::size_t i = 0; i < surviving.size(); ++i) {
      MatchOptions match_options;
      match_options.anchored = true;
      match_options.max_configurations = options_.max_configurations_per_run;
      match_options.governor = governor;
      if (options_.use_window_deadlines && needs_windows) {
        match_options.deadline = windows[i].deadline;
      }
      MatchStats stats;
      MatchOutcome outcome =
          matcher.Run(working.SuffixFrom(surviving[i]), symbols, match_options,
                      &stats, scratch);
      ++out->tag_runs;
      out->configurations += stats.configurations;
      if (outcome == MatchOutcome::kUnknown) {
        *reason = stats.stopped != StopCause::kNone ? stats.stopped
                                                    : StopCause::kStepBudget;
        if (stats.budget_exhausted) out->budget_exhausted = true;
        return CandidateFate::kUnknown;
      }
      if (outcome == MatchOutcome::kAccepted) ++matched;
    }
    double frequency = static_cast<double>(matched) /
                       static_cast<double>(report.total_roots);
    if (frequency > problem.min_confidence) {
      out->solutions.push_back(DiscoveredType{phi, frequency, matched});
      ++out->confirmed;
    } else {
      ++out->refuted;
    }
    return CandidateFate::kDecided;
  };

  // Scans candidates [begin, end); used by the serial path (one range) and
  // by each parallel chunk. The governor ticket is created per range, so its
  // stride phase — and with check_stride == 1 the exact set of checked
  // indices — is a deterministic property of the range, not of scheduling.
  auto scan_range = [&](std::uint64_t begin, std::uint64_t end,
                        MatchScratch* scratch, ScanOutcome* out) {
    out->ran = true;
    GovernorTicket ticket(governor, GovernorScope::kMine);
    std::vector<std::size_t> odometer = OdometerAt(allowed, root, begin);
    const std::size_t n = allowed.size();
    std::vector<EventTypeId> phi(n);
    auto note_unknown = [&](StopCause reason) {
      ++out->unknown;
      if (out->first_stop == StopCause::kNone) out->first_stop = reason;
      if (out->unknown_sample.size() < kUnknownSampleCap) {
        out->unknown_sample.push_back(UnknownCandidate{phi, reason});
      }
    };
    for (std::uint64_t index = begin; index < end; ++index) {
      for (std::size_t v = 0; v < n; ++v) phi[v] = allowed[v][odometer[v]];
      // One governor step per candidate, indexed by the global candidate
      // position so injection targets a candidate, not a thread.
      if (StopCause cause = ticket.Charge(index); cause != StopCause::kNone) {
        // An injected fault with cancel_globally off is *local*: it fails
        // this candidate only, leaving the shared flag untouched — that is
        // what keeps the sweep deterministic across thread counts.
        const bool global = cause != StopCause::kFaultInjected ||
                            (governor != nullptr && governor->stopped());
        if (!partial || global) {
          if (out->first_stop == StopCause::kNone) out->first_stop = cause;
          if (partial) out->not_evaluated += end - index;
          stop_scan.store(true, std::memory_order_relaxed);
          return;
        }
        note_unknown(cause);
        AdvanceOdometer(allowed, root, &odometer);
        continue;
      }
      StopCause reason = StopCause::kNone;
      if (scan_candidate(phi, scratch, out, &reason) ==
          CandidateFate::kUnknown) {
        if (!partial) {
          if (out->first_stop == StopCause::kNone) out->first_stop = reason;
          stop_scan.store(true, std::memory_order_relaxed);
          return;
        }
        note_unknown(reason);
        if (governor != nullptr && governor->stopped()) {
          // Global stop mid-candidate: the rest of the range is forfeit.
          out->not_evaluated += end - index - 1;
          stop_scan.store(true, std::memory_order_relaxed);
          return;
        }
      }
      AdvanceOdometer(allowed, root, &odometer);
    }
  };

  std::vector<ScanOutcome> outcomes;
  std::uint64_t merge_chunk_size = scan_total;
  if (options_.num_threads == 1) {
    outcomes.resize(1);
    MatchScratch scratch;
    scan_range(0, scan_total, &scratch, &outcomes[0]);
  } else {
    Executor executor(options_.num_threads);
    // Chunks keep per-item dispatch cheap while staying numerous enough to
    // balance load; chunk size never affects the merged report.
    const std::uint64_t per_worker =
        scan_total / (8 * static_cast<std::uint64_t>(executor.num_threads())) +
        1;
    const std::uint64_t chunk_size =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(1024, per_worker));
    merge_chunk_size = chunk_size;
    const std::size_t chunk_count =
        static_cast<std::size_t>((scan_total + chunk_size - 1) / chunk_size);
    std::vector<MatchScratch> scratches(
        static_cast<std::size_t>(executor.num_threads()));
    outcomes = executor.ParallelMap<ScanOutcome>(
        chunk_count,
        [&](std::size_t chunk, int worker) {
          ScanOutcome out;
          if (stop_scan.load(std::memory_order_relaxed)) return out;
          const std::uint64_t begin = chunk * chunk_size;
          const std::uint64_t end = std::min(scan_total, begin + chunk_size);
          scan_range(begin, end, &scratches[static_cast<std::size_t>(worker)],
                     &out);
          return out;
        },
        &stop_scan);
  }

  // Merge in chunk (= candidate) order: solutions and unknown samples keep
  // their global order, and the first stop cause in candidate order wins.
  Status scan_status = Status::OK();
  StopCause first_stop = StopCause::kNone;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ScanOutcome& out = outcomes[i];
    if (!out.ran) {
      const std::uint64_t begin = i * merge_chunk_size;
      const std::uint64_t end =
          std::min(scan_total, begin + merge_chunk_size);
      report.completeness.not_evaluated += end - begin;
      continue;
    }
    report.tag_runs += out.tag_runs;
    report.matcher_configurations += out.configurations;
    report.completeness.confirmed += out.confirmed;
    report.completeness.refuted += out.refuted;
    report.completeness.unknown += out.unknown;
    report.completeness.not_evaluated += out.not_evaluated;
    if (first_stop == StopCause::kNone) first_stop = out.first_stop;
    if (!partial && scan_status.ok() && out.first_stop != StopCause::kNone) {
      scan_status =
          out.budget_exhausted
              ? Status::ResourceExhausted(
                    "TAG matcher exceeded its configuration budget")
              : StopCauseToStatus(out.first_stop, "the mining run");
    }
    for (DiscoveredType& solution : out.solutions) {
      report.solutions.push_back(std::move(solution));
    }
    for (UnknownCandidate& unknown : out.unknown_sample) {
      if (report.unknown_sample.size() < kUnknownSampleCap) {
        report.unknown_sample.push_back(std::move(unknown));
      }
    }
  }
  GM_RETURN_NOT_OK(scan_status);
  if (clamped) {
    report.completeness.not_evaluated +=
        report.candidates_after_screening - scan_total;
    if (first_stop == StopCause::kNone) first_stop = StopCause::kStepBudget;
  }
  report.completeness.stop = first_stop;
  report.completeness.complete = report.completeness.unknown == 0 &&
                                 report.completeness.not_evaluated == 0;
  return report;
}

}  // namespace granmine
