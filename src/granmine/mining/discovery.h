#ifndef GRANMINE_MINING_DISCOVERY_H_
#define GRANMINE_MINING_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/sequence/event.h"

namespace granmine {

/// An *event-discovery problem* (S, θ, E0, σ) per §5: find every complex
/// event type derived from `structure` that assigns `reference_type` to the
/// root, respects σ on the other variables, and occurs with frequency
/// strictly greater than `min_confidence` — where frequency is the number
/// of reference occurrences extended by at least one occurrence of the
/// candidate type, divided by the total number of reference occurrences in
/// the input sequence.
/// §6 extension: "two or more variables could be constrained to be assigned
/// the same (or different) event types".
struct TypeConstraint {
  enum class Kind { kSameType, kDifferentType };
  Kind kind = Kind::kSameType;
  VariableId a = 0;
  VariableId b = 0;

  bool SatisfiedBy(const std::vector<EventTypeId>& phi) const {
    bool equal = phi[static_cast<std::size_t>(a)] ==
                 phi[static_cast<std::size_t>(b)];
    return kind == Kind::kSameType ? equal : !equal;
  }
};

struct DiscoveryProblem {
  const EventStructure* structure = nullptr;
  double min_confidence = 0.0;
  EventTypeId reference_type = 0;
  /// σ: allowed event types per variable; an empty inner vector means "every
  /// type occurring in the sequence" (the paper's free variable). The root's
  /// entry is ignored (the root is pinned to `reference_type`). May be empty
  /// overall, meaning all variables are free.
  std::vector<std::vector<EventTypeId>> allowed;
  /// §6: same-type / different-type constraints over the assignment φ.
  std::vector<TypeConstraint> type_constraints;
};

/// One solution: a complex event type (the structure with this assignment)
/// and its measured frequency.
struct DiscoveredType {
  std::vector<EventTypeId> assignment;  ///< φ, indexed by variable id
  double frequency = 0.0;
  std::size_t matched_roots = 0;
};

/// A candidate whose frequency could not be decided before the run stopped
/// (matcher budget, governor deadline/step budget, cancellation, injected
/// fault). It is neither confirmed nor refuted — resuming with a larger
/// budget may flip it either way.
struct UnknownCandidate {
  std::vector<EventTypeId> assignment;  ///< φ, indexed by variable id
  StopCause reason = StopCause::kNone;
};

/// How much of the candidate space a mining run actually decided. With
/// `ExhaustionPolicy::kPartial` an interrupted run still returns OK plus
/// this record; callers must treat `solutions` as a *lower bound* whenever
/// `complete` is false.
///
/// Invariant: confirmed + refuted + unknown + not_evaluated ==
/// candidates_after_screening (or the clamped candidate count when
/// max_candidates truncated the space).
struct MiningCompleteness {
  bool complete = true;
  /// First cause that stopped the scan, kNone when complete.
  StopCause stop = StopCause::kNone;
  std::uint64_t confirmed = 0;      ///< frequency decided, above threshold
  std::uint64_t refuted = 0;        ///< frequency decided, at/below threshold
  std::uint64_t unknown = 0;        ///< scan started but interrupted
  std::uint64_t not_evaluated = 0;  ///< never scanned at all
};

/// Cap on `MiningReport::unknown_sample` (the first unknowns in candidate
/// order); the full count lives in `completeness.unknown`.
inline constexpr std::size_t kUnknownSampleCap = 32;

/// Solutions plus per-step instrumentation (the E5/E6 benchmark series).
struct MiningReport {
  std::vector<DiscoveredType> solutions;

  /// Partial-result accounting; `completeness.complete` is true for a fully
  /// decided run (the only possibility under ExhaustionPolicy::kAbort).
  MiningCompleteness completeness;
  /// The first (candidate order) undecided candidates, at most
  /// kUnknownSampleCap, with the cause that interrupted each.
  std::vector<UnknownCandidate> unknown_sample;

  /// Occurrences of E0 in the *input* sequence (the frequency denominator).
  std::size_t total_roots = 0;
  /// Input / post-step-2 sequence sizes.
  std::size_t events_before = 0;
  std::size_t events_after_reduction = 0;
  /// Roots surviving step 3.
  std::size_t roots_after_reduction = 0;
  /// Candidate complex types before / after step-4 screening.
  std::uint64_t candidates_before = 0;
  std::uint64_t candidates_after_screening = 0;
  /// Anchored TAG runs executed in step 5.
  std::uint64_t tag_runs = 0;
  /// Total matcher configurations across all runs.
  std::uint64_t matcher_configurations = 0;
  /// True when step 1 refuted the structure outright.
  bool refuted_by_propagation = false;
};

}  // namespace granmine

#endif  // GRANMINE_MINING_DISCOVERY_H_
