#include "granmine/engine/engine.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "granmine/common/check.h"

namespace granmine {

Engine::Engine(std::unique_ptr<GranularitySystem> system,
               EngineOptions options)
    : system_(std::move(system)),
      options_(options),
      num_threads_(Executor::Resolve(options.num_threads)),
      metrics_(&obs::MetricsRegistry::Global()),
      trace_(&obs::TraceCollector::Global()) {
  if (num_threads_ > 1) {
    executor_ = std::make_unique<Executor>(num_threads_);
  }
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<GranularitySystem> system, EngineOptions options) {
  if (system == nullptr) {
    return Status::Invalid("Engine::Create requires a granularity system");
  }
  if (options.enable_metrics) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  if (options.enable_tracing) {
    obs::TraceCollector::Global().set_enabled(true);
  }
  return std::unique_ptr<Engine>(new Engine(std::move(system), options));
}

Result<std::unique_ptr<Engine>> Engine::CreateGregorian(
    EngineOptions options) {
  return Create(GranularitySystem::Gregorian(), options);
}

std::unique_ptr<ResourceGovernor> Engine::MakeGovernor(
    std::optional<GovernorLimits> limits) const {
  const GovernorLimits resolved = limits.value_or(options_.limits);
  if (resolved.deadline_ms <= 0 && resolved.max_steps == 0) return nullptr;
  return std::make_unique<ResourceGovernor>(resolved);
}

Result<MineResponse> Engine::Mine(const MineRequest& request) {
  if (request.problem == nullptr || request.sequence == nullptr) {
    return Status::Invalid("MineRequest needs a problem and a sequence");
  }
  GM_RETURN_NOT_OK(Freeze());
  MinerOptions options = request.options;
  options.num_threads = num_threads_;
  options.executor = executor_.get();
  std::unique_ptr<ResourceGovernor> owned_governor;
  const ResourceGovernor* governor = request.governor;
  if (governor == nullptr) {
    owned_governor = MakeGovernor(request.limits);
    governor = owned_governor.get();
  }
  Miner miner(system_.get(), options);
  const auto wall_start = std::chrono::steady_clock::now();
  GM_ASSIGN_OR_RETURN(MiningReport report,
                      miner.Mine(*request.problem, *request.sequence,
                                 governor));
  MineResponse response;
  response.report = std::move(report);
  response.governor_steps = governor != nullptr ? governor->steps() : 0;
  response.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return response;
}

Result<MatchResponse> Engine::Match(const MatchRequest& request) {
  if (request.tag == nullptr || request.symbols == nullptr) {
    return Status::Invalid("MatchRequest needs a tag and a symbol map");
  }
  GM_RETURN_NOT_OK(Freeze());
  MatchOptions options = request.options;
  std::unique_ptr<ResourceGovernor> owned_governor;
  if (options.governor == nullptr && request.governor != nullptr) {
    options.governor = request.governor;
  }
  if (options.governor == nullptr) {
    owned_governor = MakeGovernor(request.limits);
    options.governor = owned_governor.get();
  }
  TagMatcher matcher(request.tag);
  MatchResponse response;
  response.outcome = matcher.Run(request.events, *request.symbols, options,
                                 &response.stats);
  response.governor_steps =
      options.governor != nullptr ? options.governor->steps() : 0;
  return response;
}

Result<OnlineMiner> Engine::OpenStream(const StreamRequest& request) {
  if (request.problem == nullptr) {
    return Status::Invalid("StreamRequest needs a problem");
  }
  GM_RETURN_NOT_OK(Freeze());
  OnlineMinerOptions options = request.options;
  options.num_threads = request.num_threads_override.value_or(num_threads_);
  return OnlineMiner::Create(system_.get(), *request.problem, options);
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& contents,
                     const char* what) {
  std::ofstream out(path);
  if (out) out << contents;
  if (!out) {
    return Status::Internal("cannot write " + std::string(what) + " to '" +
                            path + "'");
  }
  return Status::OK();
}

}  // namespace

Status Engine::WriteMetrics(const std::string& path) const {
  return WriteTextFile(path, metrics_->Snapshot().ToPrometheusText(),
                       "metrics");
}

Status Engine::WriteTrace(const std::string& path) const {
  return WriteTextFile(path, trace_->ExportJson(), "trace");
}

}  // namespace granmine
