#include "granmine/engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "granmine/common/check.h"
#include "granmine/obs/context.h"
#include "granmine/obs/obs.h"
#include "granmine/persist/bytes.h"
#include "granmine/persist/codecs.h"
#include "granmine/persist/snapshot.h"
#include "granmine/persist/stream_codec.h"

namespace granmine {

namespace {

/// Reorder-buffer cap forced onto a stream session opened in degraded mode
/// when the caller left the buffer unbounded.
constexpr std::size_t kDegradedStreamBufferCap = 4096;

}  // namespace

Engine::Engine(std::unique_ptr<GranularitySystem> system,
               EngineOptions options)
    : system_(std::move(system)),
      options_(options),
      num_threads_(Executor::Resolve(options.num_threads)),
      metrics_(&obs::MetricsRegistry::Global()),
      trace_(&obs::TraceCollector::Global()) {
  if (num_threads_ > 1) {
    executor_ = std::make_unique<Executor>(num_threads_);
  }
  if (options.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(options.admission);
  }
  // The flight recorder is attached unconditionally: it taps the structured
  // record stream before the level filter, so the cost of keeping it live is
  // one string render per (rare) logged event, and a post-mortem dump is
  // available even when the logger itself was never enabled for output.
  recorder_ = std::make_unique<obs::FlightRecorder>();
  obs::EventLog::Global().AttachRecorder(recorder_.get());
}

Engine::~Engine() {
  obs::EventLog::Global().DetachRecorder(recorder_.get());
}

Status Engine::Freeze() {
  std::call_once(freeze_once_, [this] {
    GM_TRACE_SPAN("engine_freeze");
    freeze_status_ = system_->Freeze();
  });
  return freeze_status_;
}

void Engine::BeginRequest(std::uint64_t id, RequestClass cls) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.push_back(
      InflightRecord{id, cls, std::chrono::steady_clock::now(), nullptr});
}

void Engine::SetRequestGovernor(std::uint64_t id,
                                const ResourceGovernor* governor) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (InflightRecord& record : inflight_) {
    if (record.id == id) {
      record.governor = governor;
      return;
    }
  }
}

void Engine::EndRequest(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(std::remove_if(inflight_.begin(), inflight_.end(),
                                 [id](const InflightRecord& record) {
                                   return record.id == id;
                                 }),
                  inflight_.end());
}

void Engine::DumpFlightRecorder(std::string_view reason,
                                std::string_view stop_cause,
                                std::uint64_t request_id) const {
  if (recorder_ == nullptr) return;
  obs::EventLog& log = obs::EventLog::Global();
  // Dumping is an *output* concern, so it follows the logger's master
  // switch; the recorder itself keeps accumulating regardless, ready for
  // the next enabled run or a test's direct RenderDump call.
  if (!log.enabled()) return;
  if (log.sink_open()) {
    log.WriteRawLine(recorder_->RenderDumpJson(reason, stop_cause, request_id));
  } else {
    std::fputs(
        recorder_->RenderDumpText(reason, stop_cause, request_id).c_str(),
        stderr);
  }
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<GranularitySystem> system, EngineOptions options) {
  if (system == nullptr) {
    return Status::Invalid("Engine::Create requires a granularity system");
  }
  if (options.enable_metrics) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  if (options.enable_tracing) {
    obs::TraceCollector::Global().set_enabled(true);
  }
  if (options.enable_logging || !options.log_path.empty()) {
    obs::EventLog::Global().set_min_level(options.log_level);
    obs::EventLog::Global().set_enabled(true);
  }
  if (!options.log_path.empty()) {
    GM_RETURN_NOT_OK(obs::EventLog::Global().OpenJsonFile(options.log_path));
  }
  return std::unique_ptr<Engine>(new Engine(std::move(system), options));
}

Result<std::unique_ptr<Engine>> Engine::CreateGregorian(
    EngineOptions options) {
  return Create(GranularitySystem::Gregorian(), options);
}

std::unique_ptr<ResourceGovernor> Engine::MakeGovernor(
    std::optional<GovernorLimits> limits) const {
  const GovernorLimits resolved = limits.value_or(options_.limits);
  if (resolved.deadline_ms <= 0 && resolved.max_steps == 0 &&
      resolved.memory_budget_bytes == 0) {
    return nullptr;
  }
  return std::make_unique<ResourceGovernor>(resolved);
}

Result<MineResponse> Engine::Mine(const MineRequest& request) {
  if (request.problem == nullptr || request.sequence == nullptr) {
    return Status::Invalid("MineRequest needs a problem and a sequence");
  }
  // The request id is minted at admission time and installed as this
  // thread's RequestScope, so the freeze/admission/mine spans and every log
  // line fired below (including from pool workers, which re-install the
  // scope from MinerOptions::request_id) attribute to this request.
  const std::uint64_t request_id = MintRequestId();
  obs::RequestScope request_scope(request_id);
  GM_TRACE_SPAN("engine_mine");
  GM_RETURN_NOT_OK(Freeze());
  MinerOptions options = request.options;
  options.num_threads = num_threads_;
  options.executor = executor_.get();
  options.request_id = request_id;
  // Admission runs BEFORE the per-request governor is created, so time spent
  // queued never eats into the request's own deadline (the governor's clock
  // starts at construction). The caller-owned governor — if any — is still
  // consulted while queued, so an external cancellation dequeues promptly.
  const GovernorLimits resolved_limits = request.limits.value_or(
      request.governor != nullptr ? GovernorLimits{} : options_.limits);
  std::unique_ptr<ResourceGovernor> owned_governor;
  InflightGuard inflight(this, request_id, RequestClass::kMine);
  AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    Result<AdmissionController::Ticket> admitted = [&] {
      GM_TRACE_SPAN("admission_wait");
      return admission_->Admit(RequestClass::kMine, request.governor,
                               resolved_limits.deadline_ms);
    }();
    if (!admitted.ok()) {
      if (options_.admission.degrade_when_saturated &&
          admitted.status().code() != StatusCode::kCancelled) {
        // The degradation ladder: demote to screening-only service instead
        // of shedding. No slot is held — the screening pass is cheap and
        // never enters the governed step-5 scan.
        options.degrade_to_screening = true;
        admission_->NoteDegraded();
        GM_LOG(::granmine::obs::LogLevel::kWarn, "engine",
               "mine request degraded to screening-only service");
        DumpFlightRecorder("degraded", "degraded", request_id);
      } else {
        DumpFlightRecorder("admission-shed",
                           StopCauseToString(admission_->first_shed_cause()),
                           request_id);
        return admitted.status();
      }
    } else {
      ticket = std::move(admitted).value();
    }
  }
  const ResourceGovernor* governor = request.governor;
  if (governor == nullptr) {
    owned_governor = MakeGovernor(request.limits);
    governor = owned_governor.get();
  }
  SetRequestGovernor(request_id, governor);
  Miner miner(system_.get(), options);
  const auto wall_start = std::chrono::steady_clock::now();
  Result<MiningReport> mined =
      miner.Mine(*request.problem, *request.sequence, governor);
  if (governor != nullptr && governor->cause() != StopCause::kNone) {
    // The governor tripped (deadline/step/memory/cancel): dump the flight
    // recorder so the post-mortem carries the run-up to the stop with this
    // request's context — whether the report below is PARTIAL or an error.
    DumpFlightRecorder("governor-trip", StopCauseToString(governor->cause()),
                       request_id);
  }
  if (!mined.ok()) return mined.status();
  MineResponse response;
  response.report = std::move(mined).value();
  response.governor_steps = governor != nullptr ? governor->steps() : 0;
  response.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return response;
}

Result<MatchResponse> Engine::Match(const MatchRequest& request) {
  if (request.tag == nullptr || request.symbols == nullptr) {
    return Status::Invalid("MatchRequest needs a tag and a symbol map");
  }
  const std::uint64_t request_id = MintRequestId();
  obs::RequestScope request_scope(request_id);
  GM_TRACE_SPAN("engine_match");
  GM_RETURN_NOT_OK(Freeze());
  MatchOptions options = request.options;
  std::unique_ptr<ResourceGovernor> owned_governor;
  InflightGuard inflight(this, request_id, RequestClass::kMatch);
  if (options.governor == nullptr && request.governor != nullptr) {
    options.governor = request.governor;
  }
  // As in Mine: admit before creating the owned governor so queueing does
  // not consume the request's deadline.
  const GovernorLimits resolved_limits = request.limits.value_or(
      options.governor != nullptr ? GovernorLimits{} : options_.limits);
  AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    Result<AdmissionController::Ticket> admitted = [&] {
      GM_TRACE_SPAN("admission_wait");
      return admission_->Admit(RequestClass::kMatch, options.governor,
                               resolved_limits.deadline_ms);
    }();
    if (!admitted.ok()) {
      if (options_.admission.degrade_when_saturated &&
          admitted.status().code() != StatusCode::kCancelled) {
        // Degraded Match is the three-valued escape hatch: we refuse to
        // guess, so the verdict is kUnknown — never a wrong yes/no.
        admission_->NoteDegraded();
        GM_LOG(::granmine::obs::LogLevel::kWarn, "engine",
               "match request degraded to an unknown verdict");
        DumpFlightRecorder("degraded", "degraded", request_id);
        MatchResponse degraded;
        degraded.outcome = MatchOutcome::kUnknown;
        degraded.stats.stopped = StopCause::kDegraded;
        return degraded;
      }
      DumpFlightRecorder("admission-shed",
                         StopCauseToString(admission_->first_shed_cause()),
                         request_id);
      return admitted.status();
    }
    ticket = std::move(admitted).value();
  }
  if (options.governor == nullptr) {
    owned_governor = MakeGovernor(request.limits);
    options.governor = owned_governor.get();
  }
  SetRequestGovernor(request_id, options.governor);
  TagMatcher matcher(request.tag);
  MatchResponse response;
  response.outcome = matcher.Run(request.events, *request.symbols, options,
                                 &response.stats);
  response.governor_steps =
      options.governor != nullptr ? options.governor->steps() : 0;
  if (response.stats.stopped != StopCause::kNone) {
    DumpFlightRecorder("governor-trip",
                       StopCauseToString(response.stats.stopped), request_id);
  }
  return response;
}

Result<OnlineMinerOptions> Engine::AdmitStream(const StreamRequest& request,
                                               std::uint64_t request_id) {
  if (request.problem == nullptr) {
    return Status::Invalid("StreamRequest needs a problem");
  }
  GM_RETURN_NOT_OK(Freeze());
  OnlineMinerOptions options = request.options;
  options.num_threads = request.num_threads_override.value_or(num_threads_);
  options.request_id = request_id;
  if (admission_ != nullptr) {
    // Probe admission: the stream-class slot gates session *opens* only (a
    // session is long-lived, so holding a slot for its lifetime would wedge
    // the class). The ticket is dropped at return; steady-state overload is
    // handled inside the session by the bounded reorder buffer.
    Result<AdmissionController::Ticket> admitted = [&] {
      GM_TRACE_SPAN("admission_wait");
      return admission_->Admit(RequestClass::kStream, nullptr, 0);
    }();
    if (!admitted.ok()) {
      if (options_.admission.degrade_when_saturated &&
          admitted.status().code() != StatusCode::kCancelled) {
        // Degraded stream session: force a bounded reorder buffer so the
        // session sheds (counted, deterministic) instead of growing without
        // bound under pressure.
        admission_->NoteDegraded();
        GM_LOG(::granmine::obs::LogLevel::kWarn, "engine",
               "stream session degraded to a bounded reorder buffer");
        DumpFlightRecorder("degraded", "degraded", request_id);
        if (options.max_buffered_events == 0) {
          options.max_buffered_events = kDegradedStreamBufferCap;
        }
      } else {
        DumpFlightRecorder("admission-shed",
                           StopCauseToString(admission_->first_shed_cause()),
                           request_id);
        return admitted.status();
      }
    }
  }
  return options;
}

Result<OnlineMiner> Engine::OpenStream(const StreamRequest& request) {
  const std::uint64_t request_id = MintRequestId();
  obs::RequestScope request_scope(request_id);
  GM_TRACE_SPAN("engine_open_stream");
  InflightGuard inflight(this, request_id, RequestClass::kStream);
  GM_ASSIGN_OR_RETURN(OnlineMinerOptions options,
                      AdmitStream(request, request_id));
  return OnlineMiner::Create(system_.get(), *request.problem, options);
}

Result<OnlineMiner> Engine::RestoreStream(const StreamRequest& request,
                                          const std::string& path) {
  const std::uint64_t request_id = MintRequestId();
  obs::RequestScope request_scope(request_id);
  GM_TRACE_SPAN("engine_restore_stream");
  InflightGuard inflight(this, request_id, RequestClass::kStream);
  GM_ASSIGN_OR_RETURN(OnlineMinerOptions options,
                      AdmitStream(request, request_id));
  Result<OnlineMiner> restored = persist::RestoreStreamCheckpoint(
      system_.get(), *request.problem, options, path);
  if (!restored.ok()) {
    // A refused restore (fingerprint mismatch, truncated file, wrong family)
    // is exactly the situation the flight recorder exists for: dump the
    // run-up with this request's context before surfacing the error.
    GM_LOG(::granmine::obs::LogLevel::kError, "engine",
           "stream checkpoint restore refused",
           {"path", path}, {"error", restored.status().message()});
    DumpFlightRecorder("restore-refused", "none", request_id);
  }
  return restored;
}

Status Engine::SaveSnapshot(const std::string& path,
                            SnapshotSaveOptions options) {
  GM_TRACE_SPAN("persist_save_snapshot");
  GM_RETURN_NOT_OK(Freeze());
  GM_ASSIGN_OR_RETURN(FrozenSystemImage image, system_->ExportFrozenImage());
  GM_ASSIGN_OR_RETURN(std::unique_ptr<persist::AtomicFileSink> sink,
                      persist::AtomicFileSink::Open(path));
  persist::SnapshotWriter writer(sink.get(),
                                 persist::SnapshotIoOptions{options.governor});
  GM_RETURN_NOT_OK(writer.WriteHeader());
  GM_RETURN_NOT_OK(writer.WriteSection(persist::SectionType::kFrozenSystemImage,
                                       persist::EncodeFrozenSystemImage(image)));
  if (options.sequence != nullptr) {
    GM_RETURN_NOT_OK(
        writer.WriteSection(persist::SectionType::kEventSequence,
                            persist::EncodeEventSequence(*options.sequence)));
  }
  GM_RETURN_NOT_OK(writer.Finish());
  GM_RETURN_NOT_OK(sink->Commit());
  GM_COUNTER_ADD("granmine_persist_snapshots_saved_total", "", 1);
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::FromSnapshot(
    std::unique_ptr<GranularitySystem> system, const std::string& path,
    EngineOptions options, EventSequence* sequence_out) {
  GM_TRACE_SPAN("persist_warm_start");
  if (system == nullptr) {
    return Status::Invalid("Engine::FromSnapshot requires a granularity "
                           "system");
  }
  GM_ASSIGN_OR_RETURN(std::unique_ptr<persist::FileSource> source,
                      persist::FileSource::Open(path));
  GM_ASSIGN_OR_RETURN(std::vector<persist::Section> sections,
                      persist::ReadAllSections(source.get()));
  const persist::Section* image_section = nullptr;
  const persist::Section* sequence_section = nullptr;
  for (const persist::Section& section : sections) {
    if (section.type == persist::SectionType::kFrozenSystemImage &&
        image_section == nullptr) {
      image_section = &section;
    }
    if (section.type == persist::SectionType::kEventSequence &&
        sequence_section == nullptr) {
      sequence_section = &section;
    }
  }
  if (image_section == nullptr) {
    return Status::Invalid("snapshot '" + path +
                           "' carries no frozen-system image");
  }
  GM_ASSIGN_OR_RETURN(FrozenSystemImage image,
                      persist::DecodeFrozenSystemImage(*image_section));
  GM_RETURN_NOT_OK(system->FreezeFromImage(image));
  if (sequence_out != nullptr && sequence_section != nullptr) {
    GM_ASSIGN_OR_RETURN(*sequence_out,
                        persist::DecodeEventSequence(*sequence_section));
  }
  GM_COUNTER_ADD("granmine_persist_warm_starts_total", "", 1);
  // The system arrives pre-frozen, so the engine's lazy Freeze (a call_once
  // into GranularitySystem::Freeze, which is idempotent) is a no-op.
  return Create(std::move(system), options);
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& contents,
                     const char* what) {
  std::ofstream out(path);
  if (out) out << contents;
  if (!out) {
    return Status::Internal("cannot write " + std::string(what) + " to '" +
                            path + "'");
  }
  return Status::OK();
}

}  // namespace

Status Engine::WriteMetrics(const std::string& path) const {
  return WriteTextFile(path, metrics_->Snapshot().ToPrometheusText(),
                       "metrics");
}

Status Engine::WriteTrace(const std::string& path) const {
  return WriteTextFile(path, trace_->ExportJson(), "trace");
}

EngineStatusz Engine::Statusz() const {
  EngineStatusz statusz;
  statusz.requests_total = next_request_id_.load(std::memory_order_relaxed);
  statusz.frozen = system_->frozen();
  statusz.granularities = system_->family().size();
  statusz.num_threads = num_threads_;
  if (admission_ != nullptr) {
    const AdmissionOptions& admission_options = admission_->options();
    statusz.admission.enabled = true;
    statusz.admission.queue_depth = admission_->queue_depth();
    statusz.admission.max_queue = admission_options.max_queue;
    statusz.admission.admitted = admission_->admitted_total();
    statusz.admission.shed = admission_->shed_total();
    statusz.admission.degraded = admission_->degraded_total();
    statusz.admission.first_shed_cause =
        std::string(StopCauseToString(admission_->first_shed_cause()));
    const struct {
      RequestClass cls;
      int slots;
    } classes[] = {
        {RequestClass::kMine, admission_options.mine_slots},
        {RequestClass::kMatch, admission_options.match_slots},
        {RequestClass::kStream, admission_options.stream_slots},
    };
    for (const auto& entry : classes) {
      StatuszAdmissionClass cls;
      cls.cls = std::string(RequestClassToString(entry.cls));
      cls.active = admission_->active_count(entry.cls);
      cls.slots = entry.slots;
      cls.p95_ms = admission_->ServiceP95Ms(entry.cls);
      statusz.admission.classes.push_back(std::move(cls));
    }
  }
  {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    statusz.in_flight.reserve(inflight_.size());
    for (const InflightRecord& record : inflight_) {
      StatuszRequest entry;
      entry.id = record.id;
      entry.cls = std::string(RequestClassToString(record.cls));
      entry.elapsed_ms =
          std::chrono::duration<double, std::milli>(now - record.start)
              .count();
      if (record.governor != nullptr) {
        entry.governed = true;
        entry.deadline_remaining_ms = record.governor->deadline_remaining_ms();
        entry.steps_charged = record.governor->steps();
        entry.steps_budget = record.governor->limits().max_steps;
        entry.memory_bytes = record.governor->memory_bytes();
        entry.memory_budget_bytes =
            record.governor->limits().memory_budget_bytes;
      }
      statusz.in_flight.push_back(std::move(entry));
    }
  }
  statusz.metric_series = metrics_->Snapshot().metrics.size();
  statusz.trace_spans = trace_->size();
  statusz.trace_dropped = trace_->dropped();
  statusz.log_emitted = obs::EventLog::Global().emitted();
  statusz.log_suppressed = obs::EventLog::Global().suppressed();
  if (recorder_ != nullptr) {
    statusz.recorder_events = recorder_->size();
    statusz.recorder_total = recorder_->total_appended();
  }
  return statusz;
}

}  // namespace granmine
