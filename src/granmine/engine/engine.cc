#include "granmine/engine/engine.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "granmine/common/check.h"
#include "granmine/obs/obs.h"
#include "granmine/persist/bytes.h"
#include "granmine/persist/codecs.h"
#include "granmine/persist/snapshot.h"
#include "granmine/persist/stream_codec.h"

namespace granmine {

namespace {

/// Reorder-buffer cap forced onto a stream session opened in degraded mode
/// when the caller left the buffer unbounded.
constexpr std::size_t kDegradedStreamBufferCap = 4096;

}  // namespace

Engine::Engine(std::unique_ptr<GranularitySystem> system,
               EngineOptions options)
    : system_(std::move(system)),
      options_(options),
      num_threads_(Executor::Resolve(options.num_threads)),
      metrics_(&obs::MetricsRegistry::Global()),
      trace_(&obs::TraceCollector::Global()) {
  if (num_threads_ > 1) {
    executor_ = std::make_unique<Executor>(num_threads_);
  }
  if (options.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(options.admission);
  }
}

Result<std::unique_ptr<Engine>> Engine::Create(
    std::unique_ptr<GranularitySystem> system, EngineOptions options) {
  if (system == nullptr) {
    return Status::Invalid("Engine::Create requires a granularity system");
  }
  if (options.enable_metrics) {
    obs::MetricsRegistry::Global().set_enabled(true);
  }
  if (options.enable_tracing) {
    obs::TraceCollector::Global().set_enabled(true);
  }
  return std::unique_ptr<Engine>(new Engine(std::move(system), options));
}

Result<std::unique_ptr<Engine>> Engine::CreateGregorian(
    EngineOptions options) {
  return Create(GranularitySystem::Gregorian(), options);
}

std::unique_ptr<ResourceGovernor> Engine::MakeGovernor(
    std::optional<GovernorLimits> limits) const {
  const GovernorLimits resolved = limits.value_or(options_.limits);
  if (resolved.deadline_ms <= 0 && resolved.max_steps == 0 &&
      resolved.memory_budget_bytes == 0) {
    return nullptr;
  }
  return std::make_unique<ResourceGovernor>(resolved);
}

Result<MineResponse> Engine::Mine(const MineRequest& request) {
  if (request.problem == nullptr || request.sequence == nullptr) {
    return Status::Invalid("MineRequest needs a problem and a sequence");
  }
  GM_RETURN_NOT_OK(Freeze());
  MinerOptions options = request.options;
  options.num_threads = num_threads_;
  options.executor = executor_.get();
  // Admission runs BEFORE the per-request governor is created, so time spent
  // queued never eats into the request's own deadline (the governor's clock
  // starts at construction). The caller-owned governor — if any — is still
  // consulted while queued, so an external cancellation dequeues promptly.
  const GovernorLimits resolved_limits = request.limits.value_or(
      request.governor != nullptr ? GovernorLimits{} : options_.limits);
  AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    Result<AdmissionController::Ticket> admitted = admission_->Admit(
        RequestClass::kMine, request.governor, resolved_limits.deadline_ms);
    if (!admitted.ok()) {
      if (options_.admission.degrade_when_saturated &&
          admitted.status().code() != StatusCode::kCancelled) {
        // The degradation ladder: demote to screening-only service instead
        // of shedding. No slot is held — the screening pass is cheap and
        // never enters the governed step-5 scan.
        options.degrade_to_screening = true;
        admission_->NoteDegraded();
      } else {
        return admitted.status();
      }
    } else {
      ticket = std::move(admitted).value();
    }
  }
  std::unique_ptr<ResourceGovernor> owned_governor;
  const ResourceGovernor* governor = request.governor;
  if (governor == nullptr) {
    owned_governor = MakeGovernor(request.limits);
    governor = owned_governor.get();
  }
  Miner miner(system_.get(), options);
  const auto wall_start = std::chrono::steady_clock::now();
  GM_ASSIGN_OR_RETURN(MiningReport report,
                      miner.Mine(*request.problem, *request.sequence,
                                 governor));
  MineResponse response;
  response.report = std::move(report);
  response.governor_steps = governor != nullptr ? governor->steps() : 0;
  response.elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  return response;
}

Result<MatchResponse> Engine::Match(const MatchRequest& request) {
  if (request.tag == nullptr || request.symbols == nullptr) {
    return Status::Invalid("MatchRequest needs a tag and a symbol map");
  }
  GM_RETURN_NOT_OK(Freeze());
  MatchOptions options = request.options;
  std::unique_ptr<ResourceGovernor> owned_governor;
  if (options.governor == nullptr && request.governor != nullptr) {
    options.governor = request.governor;
  }
  // As in Mine: admit before creating the owned governor so queueing does
  // not consume the request's deadline.
  const GovernorLimits resolved_limits = request.limits.value_or(
      options.governor != nullptr ? GovernorLimits{} : options_.limits);
  AdmissionController::Ticket ticket;
  if (admission_ != nullptr) {
    Result<AdmissionController::Ticket> admitted = admission_->Admit(
        RequestClass::kMatch, options.governor, resolved_limits.deadline_ms);
    if (!admitted.ok()) {
      if (options_.admission.degrade_when_saturated &&
          admitted.status().code() != StatusCode::kCancelled) {
        // Degraded Match is the three-valued escape hatch: we refuse to
        // guess, so the verdict is kUnknown — never a wrong yes/no.
        admission_->NoteDegraded();
        MatchResponse degraded;
        degraded.outcome = MatchOutcome::kUnknown;
        degraded.stats.stopped = StopCause::kDegraded;
        return degraded;
      }
      return admitted.status();
    }
    ticket = std::move(admitted).value();
  }
  if (options.governor == nullptr) {
    owned_governor = MakeGovernor(request.limits);
    options.governor = owned_governor.get();
  }
  TagMatcher matcher(request.tag);
  MatchResponse response;
  response.outcome = matcher.Run(request.events, *request.symbols, options,
                                 &response.stats);
  response.governor_steps =
      options.governor != nullptr ? options.governor->steps() : 0;
  return response;
}

Result<OnlineMinerOptions> Engine::AdmitStream(const StreamRequest& request) {
  if (request.problem == nullptr) {
    return Status::Invalid("StreamRequest needs a problem");
  }
  GM_RETURN_NOT_OK(Freeze());
  OnlineMinerOptions options = request.options;
  options.num_threads = request.num_threads_override.value_or(num_threads_);
  if (admission_ != nullptr) {
    // Probe admission: the stream-class slot gates session *opens* only (a
    // session is long-lived, so holding a slot for its lifetime would wedge
    // the class). The ticket is dropped at return; steady-state overload is
    // handled inside the session by the bounded reorder buffer.
    Result<AdmissionController::Ticket> admitted =
        admission_->Admit(RequestClass::kStream, nullptr, 0);
    if (!admitted.ok()) {
      if (options_.admission.degrade_when_saturated &&
          admitted.status().code() != StatusCode::kCancelled) {
        // Degraded stream session: force a bounded reorder buffer so the
        // session sheds (counted, deterministic) instead of growing without
        // bound under pressure.
        admission_->NoteDegraded();
        if (options.max_buffered_events == 0) {
          options.max_buffered_events = kDegradedStreamBufferCap;
        }
      } else {
        return admitted.status();
      }
    }
  }
  return options;
}

Result<OnlineMiner> Engine::OpenStream(const StreamRequest& request) {
  GM_ASSIGN_OR_RETURN(OnlineMinerOptions options, AdmitStream(request));
  return OnlineMiner::Create(system_.get(), *request.problem, options);
}

Result<OnlineMiner> Engine::RestoreStream(const StreamRequest& request,
                                          const std::string& path) {
  GM_ASSIGN_OR_RETURN(OnlineMinerOptions options, AdmitStream(request));
  return persist::RestoreStreamCheckpoint(system_.get(), *request.problem,
                                          options, path);
}

Status Engine::SaveSnapshot(const std::string& path,
                            SnapshotSaveOptions options) {
  GM_TRACE_SPAN("persist_save_snapshot");
  GM_RETURN_NOT_OK(Freeze());
  GM_ASSIGN_OR_RETURN(FrozenSystemImage image, system_->ExportFrozenImage());
  GM_ASSIGN_OR_RETURN(std::unique_ptr<persist::AtomicFileSink> sink,
                      persist::AtomicFileSink::Open(path));
  persist::SnapshotWriter writer(sink.get(),
                                 persist::SnapshotIoOptions{options.governor});
  GM_RETURN_NOT_OK(writer.WriteHeader());
  GM_RETURN_NOT_OK(writer.WriteSection(persist::SectionType::kFrozenSystemImage,
                                       persist::EncodeFrozenSystemImage(image)));
  if (options.sequence != nullptr) {
    GM_RETURN_NOT_OK(
        writer.WriteSection(persist::SectionType::kEventSequence,
                            persist::EncodeEventSequence(*options.sequence)));
  }
  GM_RETURN_NOT_OK(writer.Finish());
  GM_RETURN_NOT_OK(sink->Commit());
  GM_COUNTER_ADD("granmine_persist_snapshots_saved_total", "", 1);
  return Status::OK();
}

Result<std::unique_ptr<Engine>> Engine::FromSnapshot(
    std::unique_ptr<GranularitySystem> system, const std::string& path,
    EngineOptions options, EventSequence* sequence_out) {
  GM_TRACE_SPAN("persist_warm_start");
  if (system == nullptr) {
    return Status::Invalid("Engine::FromSnapshot requires a granularity "
                           "system");
  }
  GM_ASSIGN_OR_RETURN(std::unique_ptr<persist::FileSource> source,
                      persist::FileSource::Open(path));
  GM_ASSIGN_OR_RETURN(std::vector<persist::Section> sections,
                      persist::ReadAllSections(source.get()));
  const persist::Section* image_section = nullptr;
  const persist::Section* sequence_section = nullptr;
  for (const persist::Section& section : sections) {
    if (section.type == persist::SectionType::kFrozenSystemImage &&
        image_section == nullptr) {
      image_section = &section;
    }
    if (section.type == persist::SectionType::kEventSequence &&
        sequence_section == nullptr) {
      sequence_section = &section;
    }
  }
  if (image_section == nullptr) {
    return Status::Invalid("snapshot '" + path +
                           "' carries no frozen-system image");
  }
  GM_ASSIGN_OR_RETURN(FrozenSystemImage image,
                      persist::DecodeFrozenSystemImage(*image_section));
  GM_RETURN_NOT_OK(system->FreezeFromImage(image));
  if (sequence_out != nullptr && sequence_section != nullptr) {
    GM_ASSIGN_OR_RETURN(*sequence_out,
                        persist::DecodeEventSequence(*sequence_section));
  }
  GM_COUNTER_ADD("granmine_persist_warm_starts_total", "", 1);
  // The system arrives pre-frozen, so the engine's lazy Freeze (a call_once
  // into GranularitySystem::Freeze, which is idempotent) is a no-op.
  return Create(std::move(system), options);
}

namespace {

Status WriteTextFile(const std::string& path, const std::string& contents,
                     const char* what) {
  std::ofstream out(path);
  if (out) out << contents;
  if (!out) {
    return Status::Internal("cannot write " + std::string(what) + " to '" +
                            path + "'");
  }
  return Status::OK();
}

}  // namespace

Status Engine::WriteMetrics(const std::string& path) const {
  return WriteTextFile(path, metrics_->Snapshot().ToPrometheusText(),
                       "metrics");
}

Status Engine::WriteTrace(const std::string& path) const {
  return WriteTextFile(path, trace_->ExportJson(), "trace");
}

}  // namespace granmine
