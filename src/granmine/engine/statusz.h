#ifndef GRANMINE_ENGINE_STATUSZ_H_
#define GRANMINE_ENGINE_STATUSZ_H_

// Live engine status: a point-in-time structured snapshot of the serving
// state — admission slots and queue, every in-flight request with its id,
// elapsed time and remaining governor budgets, the frozen-family summary,
// and the obs-layer totals — rendered as one JSON object with a stable key
// order (docs/observability.md, "statusz").
//
// The structs here are plain data so tests can golden-check the renderer
// against hand-built values; `Engine::Statusz()` fills them from the live
// controller/governors, and stream callers (CLI `stream --statusz-every`)
// append a StatuszStream block built from their OnlineMiner's telemetry.

#include <cstdint>
#include <string>
#include <vector>

namespace granmine {

/// One in-flight request (admitted, not yet released).
struct StatuszRequest {
  std::uint64_t id = 0;
  std::string cls;  // "mine" / "match" / "stream"
  double elapsed_ms = 0;
  bool governed = false;
  /// Remaining wall budget in ms; -1 = no deadline.
  std::int64_t deadline_remaining_ms = -1;
  std::uint64_t steps_charged = 0;
  std::uint64_t steps_budget = 0;  // 0 = unbounded
  std::uint64_t memory_bytes = 0;
  std::uint64_t memory_budget_bytes = 0;  // 0 = unbounded
};

/// One admission class (mine/match/stream): slot occupancy + service p95.
struct StatuszAdmissionClass {
  std::string cls;
  int active = 0;
  int slots = 0;  // <= 0 = unlimited
  double p95_ms = 0;
};

struct StatuszAdmission {
  bool enabled = false;
  std::size_t queue_depth = 0;
  std::size_t max_queue = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded = 0;
  std::string first_shed_cause = "none";
  std::vector<StatuszAdmissionClass> classes;
};

/// Stream-session telemetry (filled by the session owner, not the engine:
/// an OnlineMiner is externally single-threaded, so only its driving thread
/// can read it safely).
struct StatuszStream {
  std::int64_t watermark = 0;
  std::int64_t horizon = 0;
  std::int64_t retention = 0;
  std::int64_t tolerance = 0;
  std::size_t buffered_events = 0;
  std::uint64_t late_events = 0;
  std::uint64_t shed_events = 0;
  std::size_t resident_roots = 0;
  std::size_t resident_configurations = 0;
  std::uint64_t checkpoints_written = 0;
  /// Arrivals admitted since the last checkpoint write (the checkpoint lag);
  /// -1 = checkpointing off.
  std::int64_t events_since_checkpoint = -1;
};

struct EngineStatusz {
  /// Request ids minted so far (the next request gets requests_total + 1).
  std::uint64_t requests_total = 0;
  bool frozen = false;
  std::size_t granularities = 0;
  int num_threads = 1;
  StatuszAdmission admission;
  std::vector<StatuszRequest> in_flight;
  /// Obs-layer totals: registered metric series, buffered/dropped trace
  /// spans, log lines written/suppressed, flight-recorder occupancy.
  std::size_t metric_series = 0;
  std::size_t trace_spans = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t log_emitted = 0;
  std::uint64_t log_suppressed = 0;
  std::size_t recorder_events = 0;
  std::uint64_t recorder_total = 0;
};

/// Renders the snapshot as one JSON object (no trailing newline) with keys
/// in a fixed order. `stream`, when non-null, adds a "stream" block.
std::string RenderStatuszJson(const EngineStatusz& statusz,
                              const StatuszStream* stream = nullptr);

}  // namespace granmine

#endif  // GRANMINE_ENGINE_STATUSZ_H_
