#include "granmine/engine/admission.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>

#include "granmine/obs/obs.h"

namespace granmine {

bool IsRetryableShed(const Status& status, double* backoff_ms) {
  if (status.code() != StatusCode::kResourceExhausted) return false;
  const std::string& message = status.message();
  if (message.rfind("admission: ", 0) != 0) return false;
  static constexpr std::string_view kHint = "suggested backoff ~";
  const std::size_t hint = message.find(kHint);
  if (hint == std::string::npos) return false;
  if (backoff_ms != nullptr) {
    const char* start = message.c_str() + hint + kHint.size();
    char* end = nullptr;
    const double parsed = std::strtod(start, &end);
    *backoff_ms = (end == start || parsed <= 0) ? 1.0 : parsed;
  }
  return true;
}

std::string_view RequestClassToString(RequestClass cls) {
  switch (cls) {
    case RequestClass::kMine:
      return "mine";
    case RequestClass::kMatch:
      return "match";
    case RequestClass::kStream:
      return "stream";
  }
  return "unknown";
}

namespace {

int SlotsFor(const AdmissionOptions& options, RequestClass cls) {
  switch (cls) {
    case RequestClass::kMine:
      return options.mine_slots;
    case RequestClass::kMatch:
      return options.match_slots;
    case RequestClass::kStream:
      return options.stream_slots;
  }
  return 0;
}

// Metric label bodies must be string literals (obs.h), hence the switches.
void NoteShed(StopCause cause) {
  switch (cause) {
    case StopCause::kDeadline:
      GM_COUNTER_ADD("granmine_admission_shed_total", "cause=\"deadline\"", 1);
      break;
    case StopCause::kStepBudget:
      GM_COUNTER_ADD("granmine_admission_shed_total", "cause=\"queue-full\"",
                     1);
      break;
    case StopCause::kCancelled:
      GM_COUNTER_ADD("granmine_admission_shed_total", "cause=\"cancelled\"",
                     1);
      break;
    case StopCause::kFaultInjected:
      GM_COUNTER_ADD("granmine_admission_shed_total",
                     "cause=\"fault-injected\"", 1);
      break;
    default:
      GM_COUNTER_ADD("granmine_admission_shed_total", "cause=\"other\"", 1);
      break;
  }
}

void NoteAdmitted(RequestClass cls) {
  switch (cls) {
    case RequestClass::kMine:
      GM_COUNTER_ADD("granmine_admission_admitted_total", "class=\"mine\"", 1);
      break;
    case RequestClass::kMatch:
      GM_COUNTER_ADD("granmine_admission_admitted_total", "class=\"match\"",
                     1);
      break;
    case RequestClass::kStream:
      GM_COUNTER_ADD("granmine_admission_admitted_total", "class=\"stream\"",
                     1);
      break;
  }
}

std::string FormatMs(double ms) {
  // One decimal is plenty for a backoff hint.
  const double rounded = ms < 0 ? 0 : ms;
  std::string text = std::to_string(rounded);
  std::size_t dot = text.find('.');
  if (dot != std::string::npos && dot + 2 < text.size()) {
    text.erase(dot + 2);
  }
  return text;
}

}  // namespace

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  const double service_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  controller_->Release(class_, seq_, service_ms);
  controller_ = nullptr;
}

void AdmissionController::RecordCause(StopCause cause) {
  int expected = static_cast<int>(StopCause::kNone);
  first_cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                       std::memory_order_release,
                                       std::memory_order_relaxed);
}

Status AdmissionController::Shed(StopCause cause, const std::string& reason,
                                 double backoff_ms) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  RecordCause(cause);
  NoteShed(cause);
  GM_LOG(::granmine::obs::LogLevel::kWarn, "admission", "request shed",
         {"cause", std::string(StopCauseToString(cause))}, {"reason", reason});
  if (cause == StopCause::kCancelled) {
    return Status::Cancelled("admission: " + reason);
  }
  // A positive backoff makes the shed *retryable by contract*
  // (docs/robustness.md, "retry contract"): the caller may re-submit after
  // the suggested delay without any risk of a duplicated side effect —
  // nothing was started.
  const double suggested = backoff_ms > 0 ? backoff_ms : 1.0;
  return Status::ResourceExhausted("admission: " + reason +
                                   "; retryable — suggested backoff ~" +
                                   FormatMs(suggested) + " ms");
}

double AdmissionController::P95Locked(RequestClass cls) const {
  const auto idx = static_cast<std::size_t>(cls);
  const std::size_t count = sample_count_[idx];
  if (count == 0) return 0;
  std::array<double, kServiceWindow> sorted{};
  std::copy_n(samples_[idx].begin(), count, sorted.begin());
  const std::size_t rank =
      count == 1 ? 0 : std::min(count - 1, (count * 95 + 99) / 100 - 1);
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.begin() + static_cast<std::ptrdiff_t>(count));
  return sorted[rank];
}

double AdmissionController::ServiceP95Ms(RequestClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return P95Locked(cls);
}

std::size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_;
}

int AdmissionController::active_count(RequestClass cls) const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_[static_cast<std::size_t>(cls)];
}

void AdmissionController::NoteDegraded() {
  degraded_.fetch_add(1, std::memory_order_relaxed);
  RecordCause(StopCause::kDegraded);
  GM_COUNTER_ADD("granmine_admission_degraded_total", "", 1);
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    RequestClass cls, const ResourceGovernor* governor,
    std::int64_t deadline_ms) {
  if (!options_.enabled) return Ticket{};
  const std::uint64_t seq = arrivals_.fetch_add(1, std::memory_order_relaxed);

  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultKind::kQueueFull, GovernorScope::kGeneral,
                            seq)) {
    return Shed(StopCause::kFaultInjected, "injected queue-full fault",
                ServiceP95Ms(cls));
  }

  // Deadline-aware shedding: starting a request that observably cannot
  // finish inside its own deadline wastes a slot another request could use;
  // shedding it now is strictly kinder than a guaranteed kDeadline later.
  // The p95 estimate (a lock plus an nth_element over the sample ring) is
  // only computed for requests that actually carry a deadline, keeping the
  // deadline-less uncontended path to two mutex hops.
  if (deadline_ms > 0) {
    const double p95 = ServiceP95Ms(cls);
    if (p95 > static_cast<double>(deadline_ms)) {
      return Shed(StopCause::kDeadline,
                  "remaining deadline " + std::to_string(deadline_ms) +
                      " ms cannot cover the observed p95 " +
                      std::string(RequestClassToString(cls)) +
                      " service time " + FormatMs(p95) + " ms",
                  p95);
    }
  }

  const int slots = SlotsFor(options_, cls);
  const auto idx = static_cast<std::size_t>(cls);
  std::unique_lock<std::mutex> lock(mu_);
  auto slot_free = [&] { return slots <= 0 || active_[idx] < slots; };
  if (!slot_free()) {
    if (waiters_ >= options_.max_queue) {
      const double backoff = P95Locked(cls);
      lock.unlock();
      return Shed(StopCause::kStepBudget,
                  "queue full (" + std::to_string(options_.max_queue) +
                      " requests waiting)",
                  backoff);
    }
    ++waiters_;
    GM_GAUGE_SET("granmine_admission_queue_depth", "", waiters_);
    const auto wait_start = std::chrono::steady_clock::now();
    while (!slot_free()) {
      cv_.wait_for(lock,
                   std::chrono::milliseconds(
                       options_.queue_poll_ms > 0 ? options_.queue_poll_ms
                                                  : 1));
      if (governor != nullptr && governor->stopped()) {
        --waiters_;
        GM_GAUGE_SET("granmine_admission_queue_depth", "", waiters_);
        lock.unlock();
        return Shed(StopCause::kCancelled, "request cancelled while queued",
                    0);
      }
      if (deadline_ms > 0) {
        const double waited =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wait_start)
                .count();
        const double service = P95Locked(cls);
        if (waited + service > static_cast<double>(deadline_ms)) {
          --waiters_;
          GM_GAUGE_SET("granmine_admission_queue_depth", "", waiters_);
          lock.unlock();
          return Shed(StopCause::kDeadline,
                      "deadline became infeasible while queued (waited " +
                          FormatMs(waited) + " ms of " +
                          std::to_string(deadline_ms) + " ms)",
                      service);
        }
      }
    }
    --waiters_;
    GM_GAUGE_SET("granmine_admission_queue_depth", "", waiters_);
  }
  ++active_[idx];
  lock.unlock();
  admitted_.fetch_add(1, std::memory_order_relaxed);
  NoteAdmitted(cls);
  return Ticket(this, cls, seq, std::chrono::steady_clock::now());
}

void AdmissionController::Release(RequestClass cls, std::uint64_t seq,
                                  double service_ms) {
  if (injector_ != nullptr &&
      injector_->ShouldFail(FaultKind::kSlowWorker, GovernorScope::kGeneral,
                            seq)) {
    service_ms = options_.injected_slow_ms;
  }
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto idx = static_cast<std::size_t>(cls);
    --active_[idx];
    samples_[idx][sample_next_[idx]] = service_ms;
    sample_next_[idx] = (sample_next_[idx] + 1) % kServiceWindow;
    sample_count_[idx] = std::min(sample_count_[idx] + 1, kServiceWindow);
    wake = waiters_ > 0;
  }
  if (wake) cv_.notify_all();
}

}  // namespace granmine
