#ifndef GRANMINE_ENGINE_ADMISSION_H_
#define GRANMINE_ENGINE_ADMISSION_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "granmine/common/governor.h"
#include "granmine/common/result.h"

namespace granmine {

/// The three serving classes the Engine routes; each has its own concurrency
/// limit so a pile of NP-hard Mine requests cannot starve cheap Match calls.
enum class RequestClass : int { kMine = 0, kMatch, kStream };
inline constexpr int kRequestClassCount = 3;

/// Canonical lowercase name ("mine", "match", "stream").
std::string_view RequestClassToString(RequestClass cls);

/// Whether `status` is a retryable admission shed — a ResourceExhausted
/// whose message carries the "admission:" prefix and the suggested-backoff
/// hint Shed() stamps (docs/robustness.md, "retry contract"). Lives next to
/// Shed so the message format has exactly one producer and one consumer;
/// the serving layer uses it to mark error frames retryable. When
/// `backoff_ms` is non-null it receives the suggested delay (1.0 if the
/// hint cannot be parsed).
bool IsRetryableShed(const Status& status, double* backoff_ms = nullptr);

struct AdmissionOptions {
  /// Master switch. Off (the default) keeps the pre-overload-PR behavior:
  /// every request is served unconditionally, zero admission state exists on
  /// the request path.
  bool enabled = false;
  /// Per-class concurrency limits; <= 0 = unlimited for that class. Mine
  /// defaults to 1 because every Mine request shares one step-5 pool anyway.
  int mine_slots = 1;
  int match_slots = 4;
  int stream_slots = 4;
  /// Bound on requests *waiting* for a slot, across all classes. A request
  /// arriving with the queue full is shed immediately.
  std::size_t max_queue = 16;
  /// Degraded-serving ladder: when a request cannot be admitted (queue full
  /// or deadline-infeasible), the Engine serves it screening-only instead of
  /// shedding it (docs/robustness.md, "admission and degradation").
  bool degrade_when_saturated = false;
  /// How often a queued waiter re-checks its governor's cancellation token
  /// and its remaining deadline.
  std::int64_t queue_poll_ms = 5;
  /// The synthetic service time an injected slow-worker fault records in
  /// place of the measured one — it drags the p95 estimate up
  /// deterministically, without wall-clock sleeps (tests/overload_test.cc).
  double injected_slow_ms = 1'000'000.0;
};

/// Bounded admission in front of the Engine's serving entry points: per-class
/// concurrency slots, a bounded wait queue, deadline-aware shedding against
/// an observed p95 service time, cooperative cancellation of queued
/// requests, and sticky first-cause accounting.
///
/// Shedding is always *loud*: a retryable ResourceExhausted Status naming
/// the reason and a suggested backoff, never a silent drop and never a wrong
/// answer. The first cause to shed anything is recorded sticky (first-wins
/// CAS), mirroring ResourceGovernor's StopCause semantics with the same
/// vocabulary:
///   - kStepBudget  — the wait-queue capacity budget ran out
///   - kDeadline    — the remaining deadline cannot cover the observed p95
///                    service time for the class
///   - kCancelled   — the request's governor was cancelled while queued
///   - kFaultInjected — an injected queue-full fault (FaultKind::kQueueFull)
///   - kDegraded    — recorded via NoteDegraded when the Engine demotes a
///                    request to screening-only instead of shedding it
///
/// Thread safety: every public member is safe to call from any thread.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot: releasing it (destruction) frees the class slot,
  /// records the request's service time into the p95 estimator, and wakes a
  /// queued waiter. A default-constructed ticket is empty (admission
  /// disabled — nothing to release).
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        class_ = other.class_;
        seq_ = other.seq_;
        start_ = other.start_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    /// Whether this ticket holds a slot (false for the empty ticket the
    /// disabled controller hands out).
    bool admitted() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, RequestClass cls,
           std::uint64_t seq,
           std::chrono::steady_clock::time_point start)
        : controller_(controller), class_(cls), seq_(seq), start_(start) {}

    void Release();

    AdmissionController* controller_ = nullptr;
    RequestClass class_ = RequestClass::kMine;
    std::uint64_t seq_ = 0;
    std::chrono::steady_clock::time_point start_{};
  };

  /// Admits one request of `cls`, blocking in the bounded queue while the
  /// class is saturated. Sheds immediately — retryable ResourceExhausted
  /// with a suggested backoff — when the queue is full, when `deadline_ms`
  /// (> 0 = the request's remaining wall budget) cannot cover the class's
  /// observed p95 service time, or when a queue-full fault is injected.
  /// A queued request whose `governor` trips leaves the queue with
  /// kCancelled. With admission disabled, returns an empty ticket without
  /// touching any shared state.
  Result<Ticket> Admit(RequestClass cls, const ResourceGovernor* governor,
                       std::int64_t deadline_ms);

  /// Installs a test-only fault injector consulted for kQueueFull faults at
  /// Admit (index = arrival sequence number) and kSlowWorker faults at
  /// release (index = the admitted request's arrival sequence number). Not
  /// thread-safe against in-flight requests — install before serving.
  void InstallFaultInjector(const FaultInjector* injector) {
    injector_ = injector;
  }

  /// Records one request demoted to degraded serving (called by the Engine
  /// when `degrade_when_saturated` converts a would-be shed).
  void NoteDegraded();

  /// The p95 of the last services of `cls`, in milliseconds; 0 with no
  /// samples yet.
  double ServiceP95Ms(RequestClass cls) const;

  /// Sticky first cause that shed (or demoted) a request; kNone when
  /// everything so far was admitted and served in full.
  StopCause first_shed_cause() const {
    return static_cast<StopCause>(
        first_cause_.load(std::memory_order_acquire));
  }

  std::uint64_t admitted_total() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_total() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t degraded_total() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  /// Requests currently waiting for a slot.
  std::size_t queue_depth() const;
  /// Requests of `cls` currently holding a slot (statusz).
  int active_count(RequestClass cls) const;

  const AdmissionOptions& options() const { return options_; }

 private:
  static constexpr std::size_t kServiceWindow = 64;

  void Release(RequestClass cls, std::uint64_t seq, double service_ms);
  /// Accounts one shed (sticky first cause + counters) and builds the
  /// retryable Status.
  Status Shed(StopCause cause, const std::string& reason, double backoff_ms);
  void RecordCause(StopCause cause);
  double P95Locked(RequestClass cls) const;

  const AdmissionOptions options_;
  const FaultInjector* injector_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<int, kRequestClassCount> active_{};
  std::size_t waiters_ = 0;
  /// Per-class ring of recent service times (ms); [class][slot].
  std::array<std::array<double, kServiceWindow>, kRequestClassCount>
      samples_{};
  std::array<std::size_t, kRequestClassCount> sample_count_{};
  std::array<std::size_t, kRequestClassCount> sample_next_{};

  std::atomic<std::uint64_t> arrivals_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<int> first_cause_{static_cast<int>(StopCause::kNone)};
};

}  // namespace granmine

#endif  // GRANMINE_ENGINE_ADMISSION_H_
