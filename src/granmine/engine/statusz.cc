#include "granmine/engine/statusz.h"

#include <cstdio>

#include "granmine/obs/log.h"

namespace granmine {

namespace {

/// Fixed single-decimal rendering so exports are deterministic for a fixed
/// snapshot (std::to_string(double) would print 6 decimals of noise).
std::string FormatMs(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", ms < 0 ? 0.0 : ms);
  return buffer;
}

void AppendString(std::string& out, const char* key, std::string_view value) {
  out += '"';
  out += key;
  out += "\":\"";
  obs::AppendJsonEscaped(out, value);
  out += '"';
}

template <typename Int>
void AppendInt(std::string& out, const char* key, Int value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void AppendBool(std::string& out, const char* key, bool value) {
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

void AppendMs(std::string& out, const char* key, double ms) {
  out += '"';
  out += key;
  out += "\":";
  out += FormatMs(ms);
}

}  // namespace

std::string RenderStatuszJson(const EngineStatusz& statusz,
                              const StatuszStream* stream) {
  std::string out = "{";
  AppendInt(out, "requests_total", statusz.requests_total);
  out += ',';
  AppendBool(out, "frozen", statusz.frozen);
  out += ',';
  AppendInt(out, "granularities", statusz.granularities);
  out += ',';
  AppendInt(out, "threads", statusz.num_threads);

  out += ",\"admission\":{";
  AppendBool(out, "enabled", statusz.admission.enabled);
  out += ',';
  AppendInt(out, "queue_depth", statusz.admission.queue_depth);
  out += ',';
  AppendInt(out, "max_queue", statusz.admission.max_queue);
  out += ',';
  AppendInt(out, "admitted", statusz.admission.admitted);
  out += ',';
  AppendInt(out, "shed", statusz.admission.shed);
  out += ',';
  AppendInt(out, "degraded", statusz.admission.degraded);
  out += ',';
  AppendString(out, "first_shed_cause", statusz.admission.first_shed_cause);
  out += ",\"classes\":[";
  for (std::size_t i = 0; i < statusz.admission.classes.size(); ++i) {
    const StatuszAdmissionClass& cls = statusz.admission.classes[i];
    if (i > 0) out += ',';
    out += '{';
    AppendString(out, "class", cls.cls);
    out += ',';
    AppendInt(out, "active", cls.active);
    out += ',';
    AppendInt(out, "slots", cls.slots);
    out += ',';
    AppendMs(out, "p95_ms", cls.p95_ms);
    out += '}';
  }
  out += "]}";

  out += ",\"in_flight\":[";
  for (std::size_t i = 0; i < statusz.in_flight.size(); ++i) {
    const StatuszRequest& request = statusz.in_flight[i];
    if (i > 0) out += ',';
    out += '{';
    AppendInt(out, "id", request.id);
    out += ',';
    AppendString(out, "class", request.cls);
    out += ',';
    AppendMs(out, "elapsed_ms", request.elapsed_ms);
    out += ',';
    AppendBool(out, "governed", request.governed);
    if (request.governed) {
      out += ',';
      AppendInt(out, "deadline_remaining_ms", request.deadline_remaining_ms);
      out += ',';
      AppendInt(out, "steps_charged", request.steps_charged);
      out += ',';
      AppendInt(out, "steps_budget", request.steps_budget);
      out += ',';
      AppendInt(out, "memory_bytes", request.memory_bytes);
      out += ',';
      AppendInt(out, "memory_budget_bytes", request.memory_budget_bytes);
    }
    out += '}';
  }
  out += ']';

  out += ",\"obs\":{";
  AppendInt(out, "metric_series", statusz.metric_series);
  out += ',';
  AppendInt(out, "trace_spans", statusz.trace_spans);
  out += ',';
  AppendInt(out, "trace_dropped", statusz.trace_dropped);
  out += ',';
  AppendInt(out, "log_emitted", statusz.log_emitted);
  out += ',';
  AppendInt(out, "log_suppressed", statusz.log_suppressed);
  out += ',';
  AppendInt(out, "recorder_events", statusz.recorder_events);
  out += ',';
  AppendInt(out, "recorder_total", statusz.recorder_total);
  out += '}';

  if (stream != nullptr) {
    out += ",\"stream\":{";
    AppendInt(out, "watermark", stream->watermark);
    out += ',';
    AppendInt(out, "horizon", stream->horizon);
    out += ',';
    AppendInt(out, "retention", stream->retention);
    out += ',';
    AppendInt(out, "tolerance", stream->tolerance);
    out += ',';
    AppendInt(out, "buffered_events", stream->buffered_events);
    out += ',';
    AppendInt(out, "late_events", stream->late_events);
    out += ',';
    AppendInt(out, "shed_events", stream->shed_events);
    out += ',';
    AppendInt(out, "resident_roots", stream->resident_roots);
    out += ',';
    AppendInt(out, "resident_configurations", stream->resident_configurations);
    out += ',';
    AppendInt(out, "checkpoints_written", stream->checkpoints_written);
    out += ',';
    AppendInt(out, "events_since_checkpoint",
              stream->events_since_checkpoint);
    out += '}';
  }

  out += '}';
  return out;
}

}  // namespace granmine
