#ifndef GRANMINE_ENGINE_ENGINE_H_
#define GRANMINE_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "granmine/common/executor.h"
#include "granmine/common/governor.h"
#include "granmine/common/result.h"
#include "granmine/engine/admission.h"
#include "granmine/engine/statusz.h"
#include "granmine/granularity/system.h"
#include "granmine/mining/discovery.h"
#include "granmine/mining/miner.h"
#include "granmine/obs/flight_recorder.h"
#include "granmine/obs/log.h"
#include "granmine/obs/metrics.h"
#include "granmine/obs/trace.h"
#include "granmine/sequence/sequence.h"
#include "granmine/stream/online_miner.h"
#include "granmine/tag/matcher.h"

namespace granmine {

/// Engine-wide defaults. Every request knob left unset resolves against
/// these, so callers configure (threads, limits, observability) once instead
/// of threading the same quadruple through every call chain.
struct EngineOptions {
  /// Worker threads shared by every Mine request and the default for stream
  /// sessions. 1 = serial (bit-identical to the single-threaded paths);
  /// <= 0 = hardware concurrency.
  int num_threads = 1;
  /// Default per-request governor limits; all-zero = ungoverned. A request
  /// overrides them with `limits`, or bypasses the factory entirely with a
  /// caller-owned `governor`.
  GovernorLimits limits;
  /// Flip the process-wide runtime switches of the obs layer on at Create
  /// (they stay off otherwise; see docs/observability.md).
  bool enable_metrics = false;
  bool enable_tracing = false;
  /// Structured event log (obs/log.h): turn the logger on at Create with
  /// `log_level` as the minimum severity. Independently of this switch the
  /// engine always attaches a flight recorder, which taps the record stream
  /// before the level filter — a disabled logger just writes nothing.
  bool enable_logging = false;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  /// JSON-lines sink path (CLI `--log-out`); empty = no sink. A non-empty
  /// path implies `enable_logging`.
  std::string log_path;
  /// Overload admission in front of the serving entry points
  /// (docs/robustness.md, "admission and degradation"). Disabled by default:
  /// every request is served unconditionally, exactly as before.
  AdmissionOptions admission;
};

/// One batch discovery request. `problem` and `sequence` must stay alive for
/// the duration of the call.
struct MineRequest {
  const DiscoveryProblem* problem = nullptr;
  const EventSequence* sequence = nullptr;
  /// Per-request mining knobs. `num_threads` and `executor` are resolved by
  /// the engine (its shared pool) and need not be set.
  MinerOptions options;
  /// Governor limits for this request; unset = the engine's default limits.
  std::optional<GovernorLimits> limits;
  /// Caller-owned governor (e.g. carrying an external cancellation token).
  /// When set it wins over `limits` and the engine creates none.
  const ResourceGovernor* governor = nullptr;
};

struct MineResponse {
  MiningReport report;
  /// Steps the per-request governor charged (0 when ungoverned).
  std::uint64_t governor_steps = 0;
  double elapsed_ms = 0;
};

/// One TAG evaluation request over an in-memory event span. `tag`, `events`
/// and `symbols` must stay alive for the duration of the call.
struct MatchRequest {
  const Tag* tag = nullptr;
  std::span<const Event> events;
  const SymbolMap* symbols = nullptr;
  /// Per-request matcher knobs; `governor` is resolved by the engine.
  MatchOptions options;
  std::optional<GovernorLimits> limits;
  const ResourceGovernor* governor = nullptr;
};

struct MatchResponse {
  MatchOutcome outcome = MatchOutcome::kRejected;
  MatchStats stats;
  std::uint64_t governor_steps = 0;
};

/// What `Engine::SaveSnapshot` writes beyond the frozen system image.
struct SnapshotSaveOptions {
  /// When set, the sequence is stored as a kEventSequence section so a
  /// restored engine can resume batch work without re-parsing input.
  const EventSequence* sequence = nullptr;
  /// Charges the checkpoint I/O (steps per payload block + buffer memory)
  /// and makes the write cancellable; may be null (ungoverned).
  const ResourceGovernor* governor = nullptr;
};

/// One streaming session request. `problem` (and its structure) must outlive
/// the returned OnlineMiner.
struct StreamRequest {
  const DiscoveryProblem* problem = nullptr;
  /// Per-session knobs. `num_threads` is resolved by the engine unless
  /// `num_threads_override` is set.
  OnlineMinerOptions options;
  /// Session thread count; unset = the engine's default.
  std::optional<int> num_threads_override;
};

/// The serving facade over one frozen granularity family: owns the
/// `GranularitySystem`, the shared step-5 thread pool, the governor factory,
/// and the handles to the process obs registries, and exposes the three
/// entry points (`Mine`, `Match`, `OpenStream`) the CLI, batch and stream
/// callers previously wired by hand.
///
/// Lifecycle (docs/architecture.md): *build* — create the engine, define
/// further granularities through `system()` (e.g. structure files with
/// `granularity NAME = ...` lines); *freeze* — the first serve call (or an
/// explicit `Freeze()`) seals the family into the dense id-indexed caches;
/// *serve* — any number of requests against the immutable core. After the
/// freeze, table/coverage lookups are lock-free array reads, so one engine
/// supports many concurrent sessions.
///
/// Thread safety: `Mine` serializes internally on the shared pool (one
/// parallel loop at a time per Executor); `Match` is safe from any thread
/// once frozen; each `OpenStream` session is single-threaded externally,
/// like `OnlineMiner` itself.
class Engine {
 public:
  /// Takes ownership of `system` (must be non-null). Flips the obs runtime
  /// switches on when asked, and builds the shared pool for
  /// `options.num_threads`. The system stays unfrozen so callers can keep
  /// defining granularities until the first serve call.
  static Result<std::unique_ptr<Engine>> Create(
      std::unique_ptr<GranularitySystem> system,
      EngineOptions options = EngineOptions{});

  /// Convenience: an engine over the standard Gregorian family.
  static Result<std::unique_ptr<Engine>> CreateGregorian(
      EngineOptions options = EngineOptions{});

  ~Engine();

  /// Ends the build phase (idempotent; implied by the first serve call).
  /// Safe to reach from concurrent first serve calls: GranularitySystem's
  /// own Freeze is a build-phase API with no internal locking, so the
  /// engine funnels every freeze through one call_once. The winning call
  /// records an `engine_freeze` span under its request's context.
  Status Freeze();

  bool frozen() const { return system_->frozen(); }

  /// The owned granularity family — mutable before the freeze (to define
  /// types), shared read-only after.
  GranularitySystem* system() { return system_.get(); }
  const GranularitySystem& system() const { return *system_; }

  /// Batch §5 discovery on the engine's pool. Freezes on first use.
  Result<MineResponse> Mine(const MineRequest& request);

  /// One TAG evaluation. Freezes on first use.
  Result<MatchResponse> Match(const MatchRequest& request);

  /// Opens a streaming session resolved against engine defaults. Freezes on
  /// first use. The session borrows the engine's system (not its pool: a
  /// stream session owns per-session executor state).
  Result<OnlineMiner> OpenStream(const StreamRequest& request);

  /// Writes a versioned binary snapshot (docs/persistence.md) of the frozen
  /// family — and optionally an event sequence — to `path` through an
  /// atomic temp-file-plus-rename, so a crash or cancellation mid-write
  /// never leaves a partial file. Freezes on first use.
  Status SaveSnapshot(const std::string& path,
                      SnapshotSaveOptions options = {});

  /// Warm start: builds an engine over `system` (same family definitions,
  /// not yet frozen) whose freeze installs the sealed caches from the
  /// snapshot at `path` instead of recomputing them. Refuses (Invalid) when
  /// the snapshot does not match the family. `sequence_out`, when non-null,
  /// receives the snapshot's event sequence if one was stored.
  static Result<std::unique_ptr<Engine>> FromSnapshot(
      std::unique_ptr<GranularitySystem> system, const std::string& path,
      EngineOptions options = EngineOptions{},
      EventSequence* sequence_out = nullptr);

  /// Resumes a stream session from the checkpoint at `path`: admission and
  /// option resolution as in OpenStream, then the session's dynamic state
  /// is installed from the checkpoint (persist::RestoreStreamCheckpoint).
  /// The restored session's snapshots are byte-identical to an
  /// uninterrupted run over the same arrivals. Freezes on first use.
  Result<OnlineMiner> RestoreStream(const StreamRequest& request,
                                    const std::string& path);

  /// The governor factory: a fresh per-request governor for `limits`
  /// (default: the engine's), or nullptr when the resolved limits are
  /// all-zero — an ungoverned request needs no shared context at all.
  std::unique_ptr<ResourceGovernor> MakeGovernor(
      std::optional<GovernorLimits> limits = std::nullopt) const;

  /// The admission controller gating the serving entry points; null when
  /// `EngineOptions::admission.enabled` is false (no admission state exists).
  /// Exposed for telemetry (shed/degraded counters, sticky first cause) and
  /// for installing a test fault injector.
  AdmissionController* admission() { return admission_.get(); }
  const AdmissionController* admission() const { return admission_.get(); }

  /// Resolved engine-wide worker count (>= 1).
  int num_threads() const { return num_threads_; }

  /// The shared step-5 pool; null when the engine is serial.
  Executor* executor() { return executor_.get(); }

  /// The process obs registries the engine switched on (always valid; when
  /// the corresponding EngineOptions switch was off they simply stay
  /// disabled and export empty).
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::TraceCollector& trace() const { return *trace_; }

  /// Prometheus text exposition of `metrics()` to `path`.
  Status WriteMetrics(const std::string& path) const;
  /// Chrome trace_event JSON of `trace()` to `path`.
  Status WriteTrace(const std::string& path) const;

  /// Point-in-time serving snapshot (engine/statusz.h): admission occupancy,
  /// every in-flight request with its id / elapsed time / remaining governor
  /// budgets, the frozen-family summary, and the obs-layer totals. Safe from
  /// any thread; render with RenderStatuszJson.
  EngineStatusz Statusz() const;

  /// Request ids minted so far (the next request gets this + 1).
  std::uint64_t requests_minted() const {
    return next_request_id_.load(std::memory_order_relaxed);
  }

  /// The engine's flight recorder — the last N structured-log events at all
  /// severities (obs/flight_recorder.h). Always attached; exposed for tests
  /// and post-mortem tooling.
  obs::FlightRecorder* flight_recorder() const { return recorder_.get(); }

  /// Mints the next id from the engine-scoped request-id sequence. The
  /// serving entry points call this internally; the network layer
  /// (src/granmine/server) calls it at frame decode so connection-level
  /// spans and log lines share the id space of engine-internal requests.
  std::uint64_t MintRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  Engine(std::unique_ptr<GranularitySystem> system, EngineOptions options);

  /// One admitted request currently inside a serving entry point.
  struct InflightRecord {
    std::uint64_t id = 0;
    RequestClass cls = RequestClass::kMine;
    std::chrono::steady_clock::time_point start{};
    const ResourceGovernor* governor = nullptr;
  };

  void BeginRequest(std::uint64_t id, RequestClass cls);
  void SetRequestGovernor(std::uint64_t id, const ResourceGovernor* governor);
  void EndRequest(std::uint64_t id);

  /// RAII in-flight registration. Declare AFTER any owned governor so the
  /// registry entry (which Statusz dereferences) is removed before the
  /// governor dies.
  struct InflightGuard {
    InflightGuard(Engine* engine, std::uint64_t id, RequestClass cls)
        : engine_(engine), id_(id) {
      engine_->BeginRequest(id, cls);
    }
    ~InflightGuard() { engine_->EndRequest(id_); }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;
    Engine* engine_;
    std::uint64_t id_;
  };

  /// Dumps the flight recorder when a request ends badly: one raw JSON line
  /// into the log sink when one is open, a human text block to stderr
  /// otherwise. No-op while the logger is disabled.
  void DumpFlightRecorder(std::string_view reason, std::string_view stop_cause,
                          std::uint64_t request_id) const;

  /// Shared by OpenStream/RestoreStream: resolves session options against
  /// engine defaults (stamping `request_id` into them) and runs the
  /// stream-class admission probe.
  Result<OnlineMinerOptions> AdmitStream(const StreamRequest& request,
                                         std::uint64_t request_id);

  std::unique_ptr<GranularitySystem> system_;
  std::once_flag freeze_once_;
  Status freeze_status_ = Status::OK();
  EngineOptions options_;
  int num_threads_ = 1;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<AdmissionController> admission_;
  obs::MetricsRegistry* metrics_;
  obs::TraceCollector* trace_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::atomic<std::uint64_t> next_request_id_{0};
  mutable std::mutex inflight_mu_;
  std::vector<InflightRecord> inflight_;  // guarded by inflight_mu_
};

}  // namespace granmine

#endif  // GRANMINE_ENGINE_ENGINE_H_
