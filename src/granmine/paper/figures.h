#ifndef GRANMINE_PAPER_FIGURES_H_
#define GRANMINE_PAPER_FIGURES_H_

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/granularity/system.h"

namespace granmine {

/// The paper's Figure 1(a) event structure (Example 1's skeleton):
///   X0 --[1,1]b-day-->  X1 --[0,1]week--> X3
///   X0 --[0,5]b-day-->  X2 --[0,8]hour--> X3
/// Variables are created in order X0, X1, X2, X3 (ids 0..3).
/// `system` must provide "b-day", "week" and "hour" (the standard
/// second-based Gregorian system does).
Result<EventStructure> BuildFigure1a(const GranularitySystem& system);

/// The paper's Figure 1(b) event structure, whose granularity interaction
/// expresses the disjunction "X2 is 0 or 12 months after X0":
///   X0 --[11,11]month ∧ [0,0]year--> X1   (forces X0 into a January)
///   X0 --[0,12]month--> X2
///   X2 --[11,11]month ∧ [0,0]year--> X3   (forces X2 into a January)
/// Variables are created in order X0, X1, X2, X3 (ids 0..3).
/// `system` must provide "month" and "year".
Result<EventStructure> BuildFigure1b(const GranularitySystem& system);

}  // namespace granmine

#endif  // GRANMINE_PAPER_FIGURES_H_
