#include "granmine/paper/figures.h"

namespace granmine {

namespace {

Result<const Granularity*> Require(const GranularitySystem& system,
                                   const char* name) {
  const Granularity* g = system.Find(name);
  if (g == nullptr) {
    return Status::NotFound(std::string("granularity '") + name +
                            "' is not registered in the system");
  }
  return g;
}

}  // namespace

Result<EventStructure> BuildFigure1a(const GranularitySystem& system) {
  GM_ASSIGN_OR_RETURN(const Granularity* b_day, Require(system, "b-day"));
  GM_ASSIGN_OR_RETURN(const Granularity* week, Require(system, "week"));
  GM_ASSIGN_OR_RETURN(const Granularity* hour, Require(system, "hour"));
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  VariableId x3 = s.AddVariable("X3");
  GM_RETURN_NOT_OK(s.AddConstraint(x0, x1, Tcg::Of(1, 1, b_day)));
  GM_RETURN_NOT_OK(s.AddConstraint(x1, x3, Tcg::Of(0, 1, week)));
  GM_RETURN_NOT_OK(s.AddConstraint(x0, x2, Tcg::Of(0, 5, b_day)));
  GM_RETURN_NOT_OK(s.AddConstraint(x2, x3, Tcg::Of(0, 8, hour)));
  return s;
}

Result<EventStructure> BuildFigure1b(const GranularitySystem& system) {
  GM_ASSIGN_OR_RETURN(const Granularity* month, Require(system, "month"));
  GM_ASSIGN_OR_RETURN(const Granularity* year, Require(system, "year"));
  EventStructure s;
  VariableId x0 = s.AddVariable("X0");
  VariableId x1 = s.AddVariable("X1");
  VariableId x2 = s.AddVariable("X2");
  VariableId x3 = s.AddVariable("X3");
  GM_RETURN_NOT_OK(s.AddConstraint(x0, x1, Tcg::Of(11, 11, month)));
  GM_RETURN_NOT_OK(s.AddConstraint(x0, x1, Tcg::Same(year)));
  GM_RETURN_NOT_OK(s.AddConstraint(x0, x2, Tcg::Of(0, 12, month)));
  GM_RETURN_NOT_OK(s.AddConstraint(x2, x3, Tcg::Of(11, 11, month)));
  GM_RETURN_NOT_OK(s.AddConstraint(x2, x3, Tcg::Same(year)));
  return s;
}

}  // namespace granmine
