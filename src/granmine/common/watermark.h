#ifndef GRANMINE_COMMON_WATERMARK_H_
#define GRANMINE_COMMON_WATERMARK_H_

#include <cstdint>

#include "granmine/common/math.h"
#include "granmine/sequence/event.h"

namespace granmine {

namespace persist {
class StreamSessionCodec;
}

/// Tracks the out-of-order frontier of a live event stream.
///
/// With bounded disorder `tolerance`, every event is promised to arrive
/// within `tolerance` time units of the maximum timestamp seen so far. The
/// watermark is therefore `max_seen - tolerance`: timestamps strictly below
/// it can no longer legally arrive, so equal-timestamp groups strictly below
/// the watermark are complete and safe to commit in canonical order. An
/// arrival below the watermark is *late* (the promise was broken) and must
/// be rejected — committing it would retroactively change already-committed
/// prefixes.
///
/// The retention `horizon` trails the watermark by `retention` time units;
/// state anchored strictly below the horizon may be evicted.
class WatermarkTracker {
 public:
  /// `tolerance` >= 0; `retention` >= 0, kInfinity = retain everything.
  WatermarkTracker(std::int64_t tolerance, std::int64_t retention)
      : tolerance_(tolerance), retention_(retention) {}

  bool IsLate(TimePoint time) const { return time < watermark(); }

  /// Advances max_seen. Call only for on-time events (`!IsLate(time)`).
  void Observe(TimePoint time) {
    if (!any_ || time > max_seen_) max_seen_ = time;
    any_ = true;
  }

  /// Forces the watermark to +infinity: every buffered group becomes
  /// committable and every further arrival is late. Terminal (end of
  /// stream).
  void Seal() {
    any_ = true;
    sealed_ = true;
  }

  /// -kInfinity before the first event (nothing is late, nothing commits);
  /// +kInfinity once sealed.
  TimePoint watermark() const {
    if (sealed_) return kInfinity;
    if (!any_) return -kInfinity;
    return SaturatingAdd(max_seen_, -tolerance_);
  }

  /// The eviction frontier; -kInfinity while unbounded retention or no
  /// events. Sealing does NOT advance the horizon: a terminal flush must
  /// not evict the state it is about to report.
  TimePoint horizon() const {
    if (!any_ || IsInfinite(retention_)) return -kInfinity;
    TimePoint mark = sealed_ ? SaturatingAdd(max_seen_, -tolerance_)
                             : watermark();
    return SaturatingAdd(mark, -retention_);
  }

  bool sealed() const { return sealed_; }

 private:
  /// Checkpoint/restore (persist/stream_codec.cc): serializes max_seen_,
  /// any_, sealed_; tolerance_/retention_ are reconstructed from options.
  friend class persist::StreamSessionCodec;

  const std::int64_t tolerance_;
  const std::int64_t retention_;
  TimePoint max_seen_ = -kInfinity;
  bool any_ = false;
  bool sealed_ = false;
};

}  // namespace granmine

#endif  // GRANMINE_COMMON_WATERMARK_H_
