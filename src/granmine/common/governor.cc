#include "granmine/common/governor.h"

#include <string>

#include "granmine/obs/obs.h"

namespace granmine {

void NoteGovernorStop(StopCause cause) {
  if (cause != StopCause::kNone) {
    // Once per trip (the sticky-CAS winner calls here), so the structured
    // log gets exactly one line per stopped request — tagged with the
    // request id the tripping thread carries (obs/context.h).
    GM_LOG(::granmine::obs::LogLevel::kWarn, "governor", "governor stop",
           {"cause", std::string(StopCauseToString(cause))});
  }
  switch (cause) {
    case StopCause::kNone:
      break;
    case StopCause::kDeadline:
      GM_COUNTER_ADD("granmine_governor_stops_total", "cause=\"deadline\"", 1);
      break;
    case StopCause::kStepBudget:
      GM_COUNTER_ADD("granmine_governor_stops_total", "cause=\"step-budget\"",
                     1);
      break;
    case StopCause::kCancelled:
      GM_COUNTER_ADD("granmine_governor_stops_total", "cause=\"cancelled\"", 1);
      break;
    case StopCause::kFaultInjected:
      GM_COUNTER_ADD("granmine_governor_stops_total",
                     "cause=\"fault-injected\"", 1);
      break;
    case StopCause::kMemBudget:
      GM_COUNTER_ADD("granmine_governor_stops_total", "cause=\"mem-budget\"",
                     1);
      break;
    case StopCause::kDegraded:
      GM_COUNTER_ADD("granmine_governor_stops_total", "cause=\"degraded\"", 1);
      break;
  }
}

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGovernorCheck:
      return "governor-check";
    case FaultKind::kAllocFailure:
      return "alloc-failure";
    case FaultKind::kQueueFull:
      return "queue-full";
    case FaultKind::kSlowWorker:
      return "slow-worker";
  }
  return "unknown";
}

std::string_view StopCauseToString(StopCause cause) {
  switch (cause) {
    case StopCause::kNone:
      return "none";
    case StopCause::kDeadline:
      return "deadline";
    case StopCause::kStepBudget:
      return "step-budget";
    case StopCause::kCancelled:
      return "cancelled";
    case StopCause::kFaultInjected:
      return "fault-injected";
    case StopCause::kMemBudget:
      return "mem-budget";
    case StopCause::kDegraded:
      return "degraded";
  }
  return "unknown";
}

Status StopCauseToStatus(StopCause cause, std::string_view what) {
  std::string subject(what);
  switch (cause) {
    case StopCause::kNone:
      return Status::OK();
    case StopCause::kDeadline:
      return Status::ResourceExhausted(subject + " exceeded its deadline");
    case StopCause::kStepBudget:
      return Status::ResourceExhausted(subject + " exceeded its step budget");
    case StopCause::kCancelled:
      return Status::Cancelled(subject + " was cancelled");
    case StopCause::kFaultInjected:
      return Status::ResourceExhausted(subject +
                                       " stopped by an injected fault");
    case StopCause::kMemBudget:
      return Status::ResourceExhausted(subject +
                                       " exceeded its memory budget");
    case StopCause::kDegraded:
      return Status::ResourceExhausted(
          subject + " was demoted to degraded (screening-only) service");
  }
  return Status::Internal(subject + " stopped for an unknown cause");
}

}  // namespace granmine
