#include "granmine/common/random.h"

#include <algorithm>
#include <cmath>

#include "granmine/common/check.h"

namespace granmine {

std::int64_t Rng::Uniform(std::int64_t lo, std::int64_t hi) {
  GM_CHECK(lo <= hi) << "Uniform(" << lo << ", " << hi << ")";
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::int64_t Rng::ArrivalGap(double mean) {
  GM_CHECK(mean >= 1.0);
  std::geometric_distribution<std::int64_t> dist(1.0 / mean);
  return 1 + dist(engine_);
}

std::size_t Rng::Index(std::size_t size) {
  GM_CHECK(size > 0);
  return static_cast<std::size_t>(
      Uniform(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace granmine
