#ifndef GRANMINE_COMMON_MATH_H_
#define GRANMINE_COMMON_MATH_H_

#include <cstdint>
#include <limits>

namespace granmine {

/// Sentinel used as "+infinity" in shortest-path matrices and open-ended
/// constraint bounds. Chosen far below INT64_MAX so that sums of a few
/// sentinels never overflow.
inline constexpr std::int64_t kInfinity =
    std::numeric_limits<std::int64_t>::max() / 4;

inline constexpr bool IsInfinite(std::int64_t v) {
  return v >= kInfinity || v <= -kInfinity;
}

/// a + b with saturation at +/-kInfinity; never overflows for inputs that are
/// themselves bounded by the sentinels.
inline constexpr std::int64_t SaturatingAdd(std::int64_t a, std::int64_t b) {
  if (a >= kInfinity || b >= kInfinity) {
    if (a <= -kInfinity || b <= -kInfinity) return 0;  // inf + -inf: unused
    return kInfinity;
  }
  if (a <= -kInfinity || b <= -kInfinity) return -kInfinity;
  std::int64_t sum = a + b;
  if (sum >= kInfinity) return kInfinity;
  if (sum <= -kInfinity) return -kInfinity;
  return sum;
}

/// Floor division toward negative infinity (C++ `/` truncates toward zero).
inline constexpr std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// a mod b with a result in [0, |b|).
inline constexpr std::int64_t FloorMod(std::int64_t a, std::int64_t b) {
  std::int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

}  // namespace granmine

#endif  // GRANMINE_COMMON_MATH_H_
