#ifndef GRANMINE_COMMON_EXECUTOR_H_
#define GRANMINE_COMMON_EXECUTOR_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace granmine {

/// A small fixed thread pool for data-parallel loops. An executor with
/// `num_threads == 1` runs everything inline on the calling thread and never
/// spawns a worker, so serial callers pay nothing; with more threads the
/// calling thread participates as worker 0 alongside `num_threads - 1` pool
/// threads.
///
/// Work items are claimed from a shared atomic counter (dynamic load
/// balancing), but results are always collected by item index, so
/// `ParallelMap` output order — and anything a caller merges in index order —
/// is deterministic regardless of scheduling.
///
/// One parallel loop runs at a time per executor; the entry points block
/// until every item has finished or been abandoned.
///
/// Failure guarantee: a body that throws does NOT take the process down.
/// The first exception (first to be *caught*, not lowest index) is captured,
/// every not-yet-claimed item is abandoned, in-flight items on other workers
/// run to completion, and the exception is rethrown on the calling thread
/// after all workers have detached. Items abandoned after a failure are
/// simply never run — `ParallelMap` slots for them keep their
/// default-constructed value, so callers that can fail mid-loop should carry
/// an explicit "ran" marker in their result type.
///
/// Cancellation guarantee: when `cancel` is given (e.g.
/// `ResourceGovernor::stop_flag()`), workers observe it before claiming each
/// item and stop claiming once it reads true. In-flight bodies are never
/// interrupted — cancellation is cooperative and the body is responsible for
/// observing the same token internally if it runs long.
class Executor {
 public:
  /// `num_threads <= 0` means "use the hardware concurrency".
  explicit Executor(int num_threads);
  ~Executor();

  /// The worker count `Executor(num_threads)` will actually run with —
  /// exposed so callers can size per-worker scratch pools before (or
  /// without) constructing the pool itself.
  static int Resolve(int num_threads) {
    return num_threads > 0
               ? num_threads
               : static_cast<int>(
                     std::max(1u, std::thread::hardware_concurrency()));
  }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `body(index, worker)` for every index in [0, count); `worker` is in
  /// [0, num_threads) and is stable within one body invocation — use it to
  /// index per-worker scratch state. Blocks until all items complete (or are
  /// abandoned after a failure/cancellation; see the class comment).
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t, int)>& body,
                   const std::atomic<bool>* cancel = nullptr);

  /// ParallelFor that collects one result per index, in index order.
  /// Abandoned indices (failure or cancellation) keep value-initialized
  /// results.
  template <typename T>
  std::vector<T> ParallelMap(std::size_t count,
                             const std::function<T(std::size_t, int)>& body,
                             const std::atomic<bool>* cancel = nullptr) {
    std::vector<T> results(count);
    ParallelFor(
        count,
        [&](std::size_t index, int worker) {
          results[index] = body(index, worker);
        },
        cancel);
    return results;
  }

 private:
  struct Job {
    std::size_t count = 0;
    const std::function<void(std::size_t, int)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    /// External cooperative-cancellation token; may be null.
    const std::atomic<bool>* cancel = nullptr;
    /// Set on the first body exception: remaining items are abandoned.
    std::atomic<bool> failed{false};
    /// First exception caught, rethrown by ParallelFor on the caller.
    std::exception_ptr first_exception;  // guarded by failure_mutex
    std::mutex failure_mutex;
    /// Pool workers that have fully detached from this job; guarded by
    /// mutex_. ParallelFor's Job lives on the caller's stack, so it may only
    /// return once every worker is past its last access — "all items done"
    /// alone would let a late-waking worker touch a destroyed job.
    int workers_finished = 0;
  };

  void WorkerLoop(int worker);
  /// Claims items from `job` until none remain, the job failed, or the
  /// cancel token reads true.
  static void DrainJob(Job* job, int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  Job* job_ = nullptr;          // guarded by mutex_
  std::uint64_t job_epoch_ = 0; // bumped per ParallelFor; guarded by mutex_
  bool shutdown_ = false;       // guarded by mutex_
};

}  // namespace granmine

#endif  // GRANMINE_COMMON_EXECUTOR_H_
