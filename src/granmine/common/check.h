#ifndef GRANMINE_COMMON_CHECK_H_
#define GRANMINE_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace granmine {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only by GM_CHECK; invariant failures are bugs, not recoverable errors.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " GM_CHECK(" << condition
            << ") failed. ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Lets the macro turn the temporary into an lvalue for `&`/`<<` chaining.
  CheckFailure& self() { return *this; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so `GM_CHECK(x) << msg` parses as expected.
  void operator&(CheckFailure&) {}
};

}  // namespace internal
}  // namespace granmine

/// Aborts with a message when `condition` is false. Enabled in all build
/// types: the algorithms here are cheap relative to the checks, and silent
/// invariant corruption in a constraint solver is far worse than an abort.
#define GM_CHECK(condition)                                                \
  (condition) ? (void)0                                                    \
              : ::granmine::internal::Voidify() &                          \
                    ::granmine::internal::CheckFailure(__FILE__, __LINE__, \
                                                       #condition)         \
                        .self()

/// Debug-only variant for hot paths.
#ifdef NDEBUG
#define GM_DCHECK(condition) GM_CHECK(true)
#else
#define GM_DCHECK(condition) GM_CHECK(condition)
#endif

#endif  // GRANMINE_COMMON_CHECK_H_
