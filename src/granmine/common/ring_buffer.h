#ifndef GRANMINE_COMMON_RING_BUFFER_H_
#define GRANMINE_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "granmine/common/check.h"

namespace granmine {

/// A FIFO over a circular array: O(1) push_back / pop_front, O(1) indexed
/// access in logical (insertion) order. The streaming layer uses it for
/// sliding-window state — committed group records and resident root runs —
/// where the retention horizon retires elements strictly from the front
/// while new commits append at the back.
///
/// Copyable whenever T is; a copy preserves logical order (it need not
/// preserve the physical layout, which no caller can observe).
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& operator[](std::size_t i) {
    GM_CHECK(i < count_);
    return data_[Physical(i)];
  }
  const T& operator[](std::size_t i) const {
    GM_CHECK(i < count_);
    return data_[Physical(i)];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[count_ - 1]; }
  const T& back() const { return (*this)[count_ - 1]; }

  void push_back(T value) {
    if (count_ == data_.size()) Grow();
    data_[Physical(count_)] = std::move(value);
    ++count_;
  }

  void pop_front() {
    GM_CHECK(count_ > 0);
    data_[head_] = T{};  // release owned resources eagerly
    head_ = data_.empty() ? 0 : (head_ + 1) % data_.size();
    --count_;
  }

  void clear() {
    data_.clear();
    head_ = 0;
    count_ = 0;
  }

 private:
  std::size_t Physical(std::size_t i) const {
    return (head_ + i) % data_.size();
  }

  void Grow() {
    std::vector<T> grown;
    grown.reserve(count_ < 4 ? 8 : count_ * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      grown.push_back(std::move(data_[Physical(i)]));
    }
    grown.resize(grown.capacity());
    data_ = std::move(grown);
    head_ = 0;
  }

  /// Slots [head_, head_ + count_) mod size hold the live elements.
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace granmine

#endif  // GRANMINE_COMMON_RING_BUFFER_H_
