#include "granmine/common/status.h"

namespace granmine {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ ? state_->message : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace granmine
