#ifndef GRANMINE_COMMON_RESULT_H_
#define GRANMINE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "granmine/common/check.h"
#include "granmine/common/status.h"

namespace granmine {

/// A value-or-error holder in the style of arrow::Result. A `Result<T>` is
/// either a `T` or a non-OK `Status`; constructing one from an OK status is a
/// programming error.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in Result-returning code.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a failure status: allows `return Status::Invalid(...)`.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    GM_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from an OK Status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value. Precondition: ok().
  const T& value() const& {
    GM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    GM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    GM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

#define GM_CONCAT_IMPL(a, b) a##b
#define GM_CONCAT(a, b) GM_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression; on error returns the Status from
/// the enclosing function, otherwise move-assigns the value into `lhs`.
/// `lhs` may include a declaration: GM_ASSIGN_OR_RETURN(auto x, F());
#define GM_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  GM_ASSIGN_OR_RETURN_IMPL(GM_CONCAT(_gm_result_, __LINE__), lhs, rexpr)

#define GM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace granmine

#endif  // GRANMINE_COMMON_RESULT_H_
