#include "granmine/common/executor.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/obs/obs.h"

namespace granmine {

Executor::Executor(int num_threads) : num_threads_(Resolve(num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Executor::DrainJob(Job* job, int worker) {
  while (true) {
    if (job->failed.load(std::memory_order_relaxed)) break;
    if (job->cancel != nullptr &&
        job->cancel->load(std::memory_order_relaxed)) {
      break;
    }
    std::size_t index = job->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job->count) break;
    try {
#if GRANMINE_OBS_ENABLED
      // Per-item latency is only timed when metrics are on; items are
      // chunk-sized (ms scale), so the two clock reads are in the noise.
      const bool timed = obs::MetricsRegistry::Global().enabled();
      const std::uint64_t started_us = timed ? obs::NowMicros() : 0;
#endif
      (*job->body)(index, worker);
#if GRANMINE_OBS_ENABLED
      if (timed) {
        GM_COUNTER_ADD("granmine_executor_items_total", "", 1);
        GM_HISTOGRAM_OBSERVE("granmine_executor_task_us", "",
                             obs::NowMicros() - started_us);
      }
#endif
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job->failure_mutex);
        if (job->first_exception == nullptr) {
          job->first_exception = std::current_exception();
        }
      }
      job->failed.store(true, std::memory_order_relaxed);
      break;
    }
  }
}

void Executor::WorkerLoop(int worker) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    DrainJob(job, worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++job->workers_finished;  // last access to the job; see Job comment
    }
    job_done_.notify_all();
  }
}

void Executor::ParallelFor(std::size_t count,
                           const std::function<void(std::size_t, int)>& body,
                           const std::atomic<bool>* cancel) {
  if (count == 0) return;
  if (num_threads_ == 1) {
    // Inline path: exceptions propagate naturally; the cancel token is
    // observed between items, mirroring the pool's claim-time check.
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) break;
      body(i, 0);
    }
    return;
  }
  GM_COUNTER_ADD("granmine_executor_jobs_total", "", 1);
  GM_GAUGE_SET("granmine_executor_queue_depth", "",
               static_cast<std::int64_t>(count));
  Job job;
  job.count = count;
  job.body = &body;
  job.cancel = cancel;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GM_CHECK(job_ == nullptr) << "Executor::ParallelFor is not reentrant";
    job_ = &job;
    ++job_epoch_;
  }
  job_ready_.notify_all();
  // The calling thread is worker 0.
  DrainJob(&job, 0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Every pool worker visits each job exactly once (the epoch check), so
    // draining is complete — and the stack-allocated job safe to destroy —
    // exactly when all of them have checked back in.
    job_done_.wait(lock,
                   [&] { return job.workers_finished == num_threads_ - 1; });
    job_ = nullptr;
  }
  GM_GAUGE_SET("granmine_executor_queue_depth", "", 0);
  // All workers have detached, so first_exception is stable without the
  // failure mutex. Rethrow on the caller per the executor.h guarantee.
  if (job.first_exception != nullptr) {
    std::rethrow_exception(job.first_exception);
  }
}

}  // namespace granmine
