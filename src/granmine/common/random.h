#ifndef GRANMINE_COMMON_RANDOM_H_
#define GRANMINE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace granmine {

/// A deterministic PRNG wrapper used by workload generators and property
/// tests. All randomized code in granmine takes an explicit Rng so that every
/// test and benchmark is reproducible from a seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Geometric-like inter-arrival gap with the given mean (>= 1).
  std::int64_t ArrivalGap(double mean);

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t Index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(0, static_cast<std::int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace granmine

#endif  // GRANMINE_COMMON_RANDOM_H_
