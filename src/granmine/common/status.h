#ifndef GRANMINE_COMMON_STATUS_H_
#define GRANMINE_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace granmine {

/// Machine-readable category of a failure. Mirrors the Arrow/RocksDB idiom:
/// the library reports recoverable failures through `Status` / `Result<T>`
/// instead of exceptions.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed (bad bounds, unknown name, ...).
  kInvalidArgument,
  /// An entity referenced by the call does not exist.
  kNotFound,
  /// The operation is valid but unsupported by this implementation
  /// (e.g., an infeasible granularity conversion).
  kUnsupported,
  /// An internal invariant failed; indicates a bug in granmine itself.
  kInternal,
  /// A configured resource limit (horizon, iteration cap, ...) was exceeded.
  kResourceExhausted,
  /// The operation was cooperatively cancelled before completion.
  kCancelled,
};

/// Returns the canonical lowercase name of `code` ("ok", "invalid-argument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (a single
/// pointer test); carries a code and a human-readable message on failure.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The failure message; empty for success statuses.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps sizeof(Status) == sizeof(void*).
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a failing Status out of the enclosing function.
#define GM_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::granmine::Status _gm_st = (expr);       \
    if (!_gm_st.ok()) return _gm_st;          \
  } while (false)

}  // namespace granmine

#endif  // GRANMINE_COMMON_STATUS_H_
