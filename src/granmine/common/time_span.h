#ifndef GRANMINE_COMMON_TIME_SPAN_H_
#define GRANMINE_COMMON_TIME_SPAN_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

namespace granmine {

/// An instant on the discrete absolute-time line, counted in primitive ticks
/// (seconds in the real calendar, arbitrary units in toy calendars).
using TimePoint = std::int64_t;

/// A 1-based tick index of a granularity, as in the paper's "tick i of mu".
using Tick = std::int64_t;

/// An inclusive interval [first, last] of instants. Empty iff first > last.
struct TimeSpan {
  TimePoint first = 0;
  TimePoint last = -1;

  static TimeSpan Empty() { return TimeSpan{0, -1}; }
  static TimeSpan Of(TimePoint first, TimePoint last) {
    return TimeSpan{first, last};
  }
  /// The single-instant span {t}.
  static TimeSpan Point(TimePoint t) { return TimeSpan{t, t}; }

  bool empty() const { return first > last; }
  /// Number of instants in the span (0 when empty).
  std::int64_t length() const { return empty() ? 0 : last - first + 1; }
  bool Contains(TimePoint t) const { return first <= t && t <= last; }
  bool Contains(const TimeSpan& other) const {
    return other.empty() || (first <= other.first && other.last <= last);
  }
  bool Intersects(const TimeSpan& other) const {
    return !Intersect(other).empty();
  }
  TimeSpan Intersect(const TimeSpan& other) const {
    return TimeSpan{first > other.first ? first : other.first,
                    last < other.last ? last : other.last};
  }

  bool operator==(const TimeSpan& other) const = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const TimeSpan& span);

/// An inclusive integer interval [lo, hi] used for constraint bounds
/// (tick-difference ranges). Empty iff lo > hi.
struct Bounds {
  std::int64_t lo = 0;
  std::int64_t hi = -1;

  static Bounds Of(std::int64_t lo, std::int64_t hi) { return Bounds{lo, hi}; }

  bool empty() const { return lo > hi; }
  bool Contains(std::int64_t v) const { return lo <= v && v <= hi; }
  Bounds Intersect(const Bounds& other) const {
    return Bounds{lo > other.lo ? lo : other.lo,
                  hi < other.hi ? hi : other.hi};
  }
  bool operator==(const Bounds& other) const = default;

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Bounds& bounds);

}  // namespace granmine

#endif  // GRANMINE_COMMON_TIME_SPAN_H_
