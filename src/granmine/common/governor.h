#ifndef GRANMINE_COMMON_GOVERNOR_H_
#define GRANMINE_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "granmine/common/status.h"

namespace granmine {

/// Why a governed computation stopped early. `kNone` means it ran to
/// completion; everything else marks a result as *partial*: whatever was
/// decided before the stop is valid, whatever was not is unknown — never
/// silently "rejected" (see docs/robustness.md).
enum class StopCause : int {
  kNone = 0,
  kDeadline,       ///< the wall-clock deadline passed
  kStepBudget,     ///< a step/configuration budget ran out
  kCancelled,      ///< an external caller requested cancellation
  kFaultInjected,  ///< a test-only FaultInjector forced the stop
  kMemBudget,      ///< the memory budget ran out (GovernorAllocator refusal)
  kDegraded,       ///< admission pressure demoted the request to screening-only
};

/// Canonical lowercase name ("none", "deadline", ...).
std::string_view StopCauseToString(StopCause cause);

/// Observability hook: bumps the per-cause stop counter
/// (`granmine_governor_stops_total`). Called once per governor trip — the
/// first cause to win the sticky CAS — never per check. No-op when the obs
/// layer is compiled out or metrics are disabled at runtime.
void NoteGovernorStop(StopCause cause);

/// Maps a stop cause to the Status an abort-mode caller should surface:
/// deadline/budget/injection become kResourceExhausted, cancellation becomes
/// kCancelled. `what` names the interrupted computation.
Status StopCauseToStatus(StopCause cause, std::string_view what);

/// Which governed search loop a check comes from. Checkpoints declare their
/// scope so a FaultInjector can target one loop (exact solve, TAG matching,
/// candidate mining) without tripping the others.
enum class GovernorScope : int {
  kGeneral = 0,  ///< propagation fixpoint and other auxiliary loops
  kExactSearch,  ///< ExactConsistencyChecker::Check backtracking nodes
  kMatch,        ///< TagMatcher::Run configuration growth
  kMine,         ///< Miner step-5 candidate enumeration
};

/// What kind of failure a FaultInjector injects. Each kind targets one
/// checkpoint family; a checkpoint only consults injectors of its own kind,
/// so an alloc-failure injector never trips an ordinary governor check and
/// vice versa.
enum class FaultKind : int {
  kGovernorCheck = 0,  ///< fail GovernorTicket::Charge slow-path checks
  kAllocFailure,       ///< fail GovernorAllocator::Charge (memory growth)
  kQueueFull,          ///< make the admission queue report itself full
  kSlowWorker,         ///< stall a worker at the checkpoint (admission p95)
};

/// Canonical lowercase name ("governor-check", "alloc-failure", ...).
std::string_view FaultKindToString(FaultKind kind);

/// Test-only hook that forces a governed loop to stop at a chosen point.
///
/// Every governor checkpoint carries a *deterministic progress index* owned
/// by its call site (exact: nodes explored; matcher: configurations created
/// this run; miner: global candidate index). The injector trips every check
/// in its scope whose index is >= `trip_index` — a property of the *work*,
/// not of thread arrival order, so an injected partial result is
/// byte-identical across runs and across `num_threads` settings.
///
/// The `kind` selects which checkpoint family fails: ordinary governor
/// checks (the default), GovernorAllocator memory charges, admission-queue
/// capacity probes, or a deterministic slow-worker stall. Progress indices
/// for the admission kinds are the controller's arrival sequence numbers.
///
/// With `cancel_globally` the trip additionally raises the governor's shared
/// stop flag, exercising the real cancellation fan-out (workers stop
/// claiming chunks); that path is inherently racy in what it leaves
/// unevaluated, so tests assert invariants rather than byte-identity there.
class FaultInjector {
 public:
  FaultInjector(GovernorScope scope, std::uint64_t trip_index,
                bool cancel_globally = false,
                FaultKind kind = FaultKind::kGovernorCheck)
      : scope_(scope),
        trip_index_(trip_index),
        cancel_globally_(cancel_globally),
        kind_(kind) {}

  /// Whether a governor check in `scope` at `index` must fail. Thread-safe.
  bool ShouldTrip(GovernorScope scope, std::uint64_t index) const {
    return ShouldFail(FaultKind::kGovernorCheck, scope, index);
  }

  /// Whether a checkpoint of `kind` in `scope` at `index` must fail.
  /// Thread-safe. Non-matching kinds count as observed checks but never
  /// trip, so one injector can be installed while every family probes it.
  bool ShouldFail(FaultKind kind, GovernorScope scope,
                  std::uint64_t index) const {
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (kind != kind_ || scope != scope_ || index < trip_index_) return false;
    trips_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  FaultKind kind() const { return kind_; }
  bool cancel_globally() const { return cancel_globally_; }
  std::uint64_t checks_observed() const {
    return checks_.load(std::memory_order_relaxed);
  }
  std::uint64_t trips_fired() const {
    return trips_.load(std::memory_order_relaxed);
  }

 private:
  const GovernorScope scope_;
  const std::uint64_t trip_index_;
  const bool cancel_globally_;
  const FaultKind kind_;
  mutable std::atomic<std::uint64_t> checks_{0};
  mutable std::atomic<std::uint64_t> trips_{0};
};

/// Resource limits for one governed request. Zero always means "no limit".
struct GovernorLimits {
  /// Wall-clock budget measured from ResourceGovernor construction.
  std::int64_t deadline_ms = 0;
  /// Total steps (search nodes, matcher configurations, candidates) across
  /// every thread sharing the governor.
  std::uint64_t max_steps = 0;
  /// Total bytes of governed scratch memory (exact-search candidate pools,
  /// TAG frontiers, subset-sum structures, scan buffers) live at once across
  /// every thread sharing the governor. Charged through GovernorAllocator;
  /// exceeding it trips StopCause::kMemBudget.
  std::uint64_t memory_budget_bytes = 0;
  /// How many GovernorTicket::Charge calls ride the cheap inline path
  /// between slow checks (clock read + step accounting). A stop raised on
  /// another thread is observed at the next slow check, i.e. within one
  /// stride of charges. Tests that sweep fault-injection points set 1 for
  /// exact placement.
  std::uint32_t check_stride = 64;
};

/// A shared per-request context carrying a deadline, a step budget, and a
/// cooperative cancellation token. One governor is created per top-level
/// request (e.g. one `Miner::Mine` call) and threaded by const pointer
/// through every search loop it covers; any number of worker threads may
/// share it.
///
/// The stop flag is sticky: the first cause to trip wins and every later
/// check reports it. Checks are cooperative — a loop that never charges its
/// ticket is never interrupted — and cheap: the fast path of
/// `GovernorTicket::Charge` is a purely local countdown with no shared
/// memory traffic at all; the governor (including a stop raised by another
/// thread) is consulted once per `check_stride` charges (see
/// bench/bench_governor_overhead.cc, E10).
class ResourceGovernor {
 public:
  /// An unlimited governor: never trips on its own, but can still be
  /// cancelled via RequestCancel.
  ResourceGovernor() : ResourceGovernor(GovernorLimits{}) {}

  explicit ResourceGovernor(GovernorLimits limits)
      : limits_(limits),
        deadline_(limits.deadline_ms > 0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(limits.deadline_ms)
                      : std::chrono::steady_clock::time_point::max()) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Requests cooperative cancellation from outside the computation.
  void RequestCancel() const { Trip(StopCause::kCancelled); }

  /// Whether some cause has tripped the governor. Relaxed — callers that
  /// must act on the cause should go through GovernorTicket::Charge.
  bool stopped() const { return stop_flag_.load(std::memory_order_relaxed); }

  /// The first cause that tripped, or kNone.
  StopCause cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_acquire));
  }

  /// The sticky stop flag, exposed for Executor cooperative cancellation.
  const std::atomic<bool>& stop_flag() const { return stop_flag_; }

  /// Steps accounted so far (flushed in check_stride batches).
  std::uint64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

  std::uint32_t check_stride() const {
    return limits_.check_stride > 0 ? limits_.check_stride : 1;
  }

  /// Installs a test-only fault injector (not owned; must outlive every
  /// governed computation). Pass nullptr to remove. Not thread-safe against
  /// concurrent checks — install before the computation starts.
  void InstallFaultInjector(const FaultInjector* injector) {
    injector_ = injector;
  }

  /// The slow-path check: consults the injector, the sticky flag, the step
  /// budget (charging `steps` units) and the deadline, in that order.
  /// Returns kNone to continue. Called by GovernorTicket::Charge.
  StopCause CheckNow(GovernorScope scope, std::uint64_t index,
                     std::uint32_t steps) const {
    if (injector_ != nullptr && injector_->ShouldTrip(scope, index)) {
      if (injector_->cancel_globally()) Trip(StopCause::kFaultInjected);
      return StopCause::kFaultInjected;
    }
    if (stop_flag_.load(std::memory_order_acquire)) return cause();
    std::uint64_t total = steps_.fetch_add(steps, std::memory_order_relaxed)
                          + steps;
    if (limits_.max_steps > 0 && total > limits_.max_steps) {
      Trip(StopCause::kStepBudget);
      return StopCause::kStepBudget;
    }
    if (limits_.deadline_ms > 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      Trip(StopCause::kDeadline);
      return StopCause::kDeadline;
    }
    return StopCause::kNone;
  }

  /// The memory slow path, called by GovernorAllocator::Charge: consults an
  /// alloc-failure injector, the sticky flag, then the memory budget. On
  /// refusal the bytes are NOT charged — the caller must unwind without the
  /// allocation it asked for. A local (non-global) injected failure refuses
  /// without tripping the shared flag, exactly like CheckNow, so one
  /// candidate fails deterministically while the rest proceed.
  StopCause ChargeMemory(GovernorScope scope, std::uint64_t index,
                         std::uint64_t bytes) const {
    if (injector_ != nullptr &&
        injector_->ShouldFail(FaultKind::kAllocFailure, scope, index)) {
      if (injector_->cancel_globally()) Trip(StopCause::kFaultInjected);
      return StopCause::kFaultInjected;
    }
    if (stop_flag_.load(std::memory_order_acquire)) return cause();
    std::uint64_t total =
        mem_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limits_.memory_budget_bytes > 0 &&
        total > limits_.memory_budget_bytes) {
      mem_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      Trip(StopCause::kMemBudget);
      return StopCause::kMemBudget;
    }
    std::uint64_t peak = mem_peak_.load(std::memory_order_relaxed);
    while (total > peak &&
           !mem_peak_.compare_exchange_weak(peak, total,
                                            std::memory_order_relaxed)) {
    }
    return StopCause::kNone;
  }

  /// Returns bytes previously charged via ChargeMemory. Called by
  /// GovernorAllocator's destructor (scoped-arena release).
  void ReleaseMemory(std::uint64_t bytes) const {
    mem_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Governed scratch bytes currently charged / the high-water mark.
  std::uint64_t memory_bytes() const {
    return mem_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t memory_peak_bytes() const {
    return mem_peak_.load(std::memory_order_relaxed);
  }

  /// The limits this governor was constructed with (statusz reports the
  /// remaining budgets against them).
  const GovernorLimits& limits() const { return limits_; }

  /// Milliseconds of wall budget left; -1 when no deadline was set, 0 once
  /// the deadline passed.
  std::int64_t deadline_remaining_ms() const {
    if (limits_.deadline_ms <= 0) return -1;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline_) return 0;
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline_ -
                                                                 now)
        .count();
  }

 private:
  void Trip(StopCause cause) const {
    int expected = static_cast<int>(StopCause::kNone);
    if (cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
      NoteGovernorStop(cause);
    }
    stop_flag_.store(true, std::memory_order_release);
  }

  const GovernorLimits limits_;
  const std::chrono::steady_clock::time_point deadline_;
  const FaultInjector* injector_ = nullptr;
  mutable std::atomic<bool> stop_flag_{false};
  mutable std::atomic<int> cause_{static_cast<int>(StopCause::kNone)};
  mutable std::atomic<std::uint64_t> steps_{0};
  mutable std::atomic<std::uint64_t> mem_bytes_{0};
  mutable std::atomic<std::uint64_t> mem_peak_{0};
};

/// The per-call-site handle a governed loop charges once per unit of work.
/// A ticket belongs to one thread; create one per deterministic work unit
/// (per matcher run, per exact solve, per mining chunk) so the stride phase
/// — and therefore the exact check placement — is a deterministic property
/// of the work, independent of what ran before on the same thread.
class GovernorTicket {
 public:
  /// Detached ticket: Charge always returns kNone. Lets call sites keep one
  /// unconditional Charge in the loop body.
  GovernorTicket() = default;

  /// `governor` may be nullptr (detached).
  GovernorTicket(const ResourceGovernor* governor, GovernorScope scope)
      : governor_(governor),
        scope_(scope),
        stride_(governor != nullptr ? governor->check_stride() : 1) {}

  /// Charges one unit of work. `index` is the call site's deterministic
  /// progress counter (see FaultInjector). Returns kNone to continue, or
  /// the cause the loop must unwind with. The governor is only consulted
  /// every `check_stride` charges, so a concurrent stop is observed within
  /// one stride — the fast path touches no shared state.
  StopCause Charge(std::uint64_t index) {
    if (governor_ == nullptr) return StopCause::kNone;
    if (++pending_ < stride_) return StopCause::kNone;
    std::uint32_t batch = pending_;
    pending_ = 0;
    return governor_->CheckNow(scope_, index, batch);
  }

  const ResourceGovernor* governor() const { return governor_; }

 private:
  const ResourceGovernor* governor_ = nullptr;
  GovernorScope scope_ = GovernorScope::kGeneral;
  std::uint32_t stride_ = 1;
  std::uint32_t pending_ = 0;
};

}  // namespace granmine

#endif  // GRANMINE_COMMON_GOVERNOR_H_
