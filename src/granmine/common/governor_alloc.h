#ifndef GRANMINE_COMMON_GOVERNOR_ALLOC_H_
#define GRANMINE_COMMON_GOVERNOR_ALLOC_H_

#include <cstdint>
#include <utility>

#include "granmine/common/governor.h"

namespace granmine {

/// The memory-budget counterpart of GovernorTicket: a scoped arena handle a
/// governed loop charges before it grows a scratch structure (exact-search
/// candidate pools, TAG frontiers, subset-sum tables, scan buffers).
///
/// An allocator belongs to one thread and one lexical scope — typically a
/// member of a per-worker scratch object — and accumulates its charges
/// locally; its destructor releases everything it charged back to the shared
/// governor, so the budget tracks *live* governed bytes, not a lifetime
/// total. Charge points carry the same deterministic progress index as the
/// neighbouring GovernorTicket checkpoint, which lets an alloc-failure
/// FaultInjector (FaultKind::kAllocFailure) refuse exactly one deterministic
/// allocation: the work unit that owns it reports kUnknown while every other
/// unit proceeds — the byte-identity lever used by tests/overload_test.cc.
///
/// Contract at every call site: a non-kNone return means the bytes were NOT
/// charged and the allocation must not happen; the caller unwinds exactly as
/// it would on a governor stop ("a stopped computation may say less, but it
/// must never say something wrong").
class GovernorAllocator {
 public:
  /// Detached allocator: Charge always returns kNone and nothing is tracked.
  GovernorAllocator() = default;

  /// `governor` may be nullptr (detached).
  GovernorAllocator(const ResourceGovernor* governor, GovernorScope scope)
      : governor_(governor), scope_(scope) {}

  GovernorAllocator(const GovernorAllocator&) = delete;
  GovernorAllocator& operator=(const GovernorAllocator&) = delete;

  GovernorAllocator(GovernorAllocator&& other) noexcept
      : governor_(other.governor_),
        scope_(other.scope_),
        charged_(other.charged_) {
    other.governor_ = nullptr;
    other.charged_ = 0;
  }
  GovernorAllocator& operator=(GovernorAllocator&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      governor_ = other.governor_;
      scope_ = other.scope_;
      charged_ = other.charged_;
      other.governor_ = nullptr;
      other.charged_ = 0;
    }
    return *this;
  }

  ~GovernorAllocator() { ReleaseAll(); }

  /// Asks the governor for `bytes` of scratch at deterministic progress
  /// `index`. Returns kNone on success (bytes now count against the budget
  /// until this allocator dies or Rebind/ReleaseAll runs), or the refusal
  /// cause — kMemBudget, kFaultInjected, or whatever already tripped.
  StopCause Charge(std::uint64_t index, std::uint64_t bytes) {
    if (governor_ == nullptr || bytes == 0) return StopCause::kNone;
    StopCause cause = governor_->ChargeMemory(scope_, index, bytes);
    if (cause == StopCause::kNone) charged_ += bytes;
    return cause;
  }

  /// Charges only the delta when a tracked structure grows from
  /// `old_bytes` to `new_bytes`; no-op (and kNone) when it shrank.
  StopCause ChargeGrowth(std::uint64_t index, std::uint64_t old_bytes,
                         std::uint64_t new_bytes) {
    if (new_bytes <= old_bytes) return StopCause::kNone;
    return Charge(index, new_bytes - old_bytes);
  }

  /// Returns every charged byte to the governor now (scope exit without
  /// destruction — e.g. a per-run scratch reset between candidates).
  void ReleaseAll() {
    if (governor_ != nullptr && charged_ > 0) {
      governor_->ReleaseMemory(charged_);
    }
    charged_ = 0;
  }

  /// Releases current charges and points the allocator at a (possibly
  /// different) governor for the next run. Per-worker scratch objects are
  /// reused across requests; Rebind keeps their arenas honest.
  void Rebind(const ResourceGovernor* governor, GovernorScope scope) {
    ReleaseAll();
    governor_ = governor;
    scope_ = scope;
  }

  const ResourceGovernor* governor() const { return governor_; }
  std::uint64_t charged() const { return charged_; }

 private:
  const ResourceGovernor* governor_ = nullptr;
  GovernorScope scope_ = GovernorScope::kGeneral;
  std::uint64_t charged_ = 0;
};

}  // namespace granmine

#endif  // GRANMINE_COMMON_GOVERNOR_ALLOC_H_
