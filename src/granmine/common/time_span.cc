#include "granmine/common/time_span.h"

#include <sstream>

namespace granmine {

std::string TimeSpan::ToString() const {
  std::ostringstream os;
  if (empty()) {
    os << "[empty]";
  } else {
    os << "[" << first << ", " << last << "]";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TimeSpan& span) {
  return os << span.ToString();
}

std::string Bounds::ToString() const {
  std::ostringstream os;
  if (empty()) {
    os << "[empty]";
  } else {
    os << "[" << lo << ", " << hi << "]";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Bounds& bounds) {
  return os << bounds.ToString();
}

}  // namespace granmine
