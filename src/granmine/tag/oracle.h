#ifndef GRANMINE_TAG_ORACLE_H_
#define GRANMINE_TAG_ORACLE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "granmine/constraint/event_structure.h"
#include "granmine/sequence/event.h"

namespace granmine {

struct OracleOptions {
  /// When set, the root variable must be matched to exactly this event
  /// index within the span (the §5 anchored-reference semantics).
  std::optional<std::size_t> anchored_root_index;
  std::uint64_t max_nodes = 100'000'000;
};

/// The §3 occurrence definition executed literally: does a one-to-one map θ
/// from variables to events of `events` exist such that θ respects the type
/// assignment φ and every edge's TCGs are satisfied? Exponential; used as
/// the differential-testing oracle for Theorem 3 (TAG ⇔ occurrence).
bool OccursBruteForce(const EventStructure& structure,
                      const std::vector<EventTypeId>& phi,
                      std::span<const Event> events,
                      const OracleOptions& options = OracleOptions{});

/// Like OccursBruteForce, but returns the witness θ itself — the event index
/// (into `events`) assigned to each variable — or nullopt when the complex
/// event type does not occur. Useful for explaining discovered patterns.
std::optional<std::vector<std::size_t>> FindOccurrenceBruteForce(
    const EventStructure& structure, const std::vector<EventTypeId>& phi,
    std::span<const Event> events,
    const OracleOptions& options = OracleOptions{});

}  // namespace granmine

#endif  // GRANMINE_TAG_ORACLE_H_
