#ifndef GRANMINE_TAG_MAX_FLOW_H_
#define GRANMINE_TAG_MAX_FLOW_H_

#include <cstdint>
#include <vector>

namespace granmine {

/// A small Dinic max-flow solver used by the minimal chain decomposition
/// (min flow with lower bounds) of the Theorem-3 TAG construction. Graphs
/// here have at most a few hundred nodes, so simplicity beats raw speed.
class MaxFlow {
 public:
  explicit MaxFlow(int node_count);

  /// Adds a directed edge and returns its id (for FlowOn).
  int AddEdge(int from, int to, std::int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`.
  std::int64_t Compute(int source, int sink);

  /// Flow currently routed through edge `id` (after Compute).
  std::int64_t FlowOn(int id) const;

  /// Remaining capacity of edge `id`.
  std::int64_t ResidualOn(int id) const;

  /// Reduces the capacity of edge `id` (used between Compute calls by the
  /// min-flow transformation). The new capacity must be >= current flow.
  void SetCapacity(int id, std::int64_t capacity);

  int node_count() const { return static_cast<int>(adjacency_.size()); }

 private:
  struct Edge {
    int to;
    std::int64_t capacity;  // residual capacity
    int reverse;            // index of the paired reverse edge
    std::int64_t original;  // original capacity (for FlowOn)
  };

  bool Bfs(int source, int sink);
  std::int64_t Dfs(int node, int sink, std::int64_t limit);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::pair<int, int>> edge_refs_;  // id -> (node, index)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace granmine

#endif  // GRANMINE_TAG_MAX_FLOW_H_
