#ifndef GRANMINE_TAG_MATCHER_H_
#define GRANMINE_TAG_MATCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/math.h"
#include "granmine/sequence/event.h"
#include "granmine/sequence/sequence.h"
#include "granmine/tag/matcher_types.h"
#include "granmine/tag/step_kernel.h"
#include "granmine/tag/tag.h"

namespace granmine {

/// Reusable search buffers (frontier, visited set, BFS queue, clock
/// valuations) for `TagMatcher::Accepts`. One scratch belongs to one worker
/// thread at a time; reusing it across runs keeps hash-table capacity warm
/// instead of reallocating per anchored scan. Default-constructed lazily —
/// passing nullptr to Accepts simply allocates fresh buffers for that run.
class MatchScratch {
 public:
  MatchScratch();
  ~MatchScratch();
  MatchScratch(MatchScratch&&) noexcept;
  MatchScratch& operator=(MatchScratch&&) noexcept;

 private:
  friend class TagMatcher;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// NFA-style simulation of a TAG over an event sequence (the Theorem-4
/// procedure): the frontier holds (state, clock-reset-tick vector)
/// configurations, deduplicated per step; clock values are reconstructed as
/// `tick(now) − tick(reset)`, so skipped events never perturb clocks and
/// undefined ticks only disable the guards that mention them.
///
/// A matcher is an *immutable compiled view* of its TAG (the clock →
/// granularity indexing is resolved once at construction, inside the shared
/// `TagKernel` that also drives the streaming `IncrementalMatcher`): after
/// that, every member is read-only and `Accepts` keeps all run state on the
/// stack or in the caller's `MatchScratch`. One matcher over one skeleton TAG
/// may therefore be shared by any number of threads, each passing its own
/// scratch.
class TagMatcher {
 public:
  /// `tag` must outlive the matcher.
  explicit TagMatcher(const Tag* tag);

  /// Simulates the TAG over `events` and reports the three-valued outcome.
  /// `scratch`, when given, must not be used concurrently by another thread.
  MatchOutcome Run(std::span<const Event> events, const SymbolMap& symbols,
                   const MatchOptions& options = MatchOptions{},
                   MatchStats* stats = nullptr,
                   MatchScratch* scratch = nullptr) const;

  /// Legacy boolean view of Run: true iff kAccepted. Callers that set a
  /// configuration budget or a governor must use Run — this wrapper folds
  /// kUnknown into false, which is only safe when the run cannot be
  /// interrupted. Check stats->stopped when in doubt.
  bool Accepts(std::span<const Event> events, const SymbolMap& symbols,
               const MatchOptions& options = MatchOptions{},
               MatchStats* stats = nullptr,
               MatchScratch* scratch = nullptr) const {
    return Run(events, symbols, options, stats, scratch) ==
           MatchOutcome::kAccepted;
  }

  /// The shared transition kernel (also used by stream::IncrementalMatcher).
  const TagKernel& kernel() const { return kernel_; }

 private:
  TagKernel kernel_;
};

}  // namespace granmine

#endif  // GRANMINE_TAG_MATCHER_H_
