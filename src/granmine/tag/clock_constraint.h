#ifndef GRANMINE_TAG_CLOCK_CONSTRAINT_H_
#define GRANMINE_TAG_CLOCK_CONSTRAINT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace granmine {

/// A clock-constraint formula δ ∈ Φ(C) per §4: atoms `x ≤ k` / `k ≤ x` over
/// clock values, closed under boolean combination. Clock values may be
/// *undefined* (the current timestamp has no tick in the clock's
/// granularity); evaluation uses Kleene three-valued logic and a transition
/// is enabled only when the guard is definitely true — matching the TCG
/// requirement that both ticks be defined.
class ClockConstraint {
 public:
  /// The trivially true guard.
  static ClockConstraint True();
  /// value(clock) <= k.
  static ClockConstraint AtMost(int clock, std::int64_t k);
  /// k <= value(clock).
  static ClockConstraint AtLeast(int clock, std::int64_t k);
  /// lo <= value(clock) <= hi (conjunction of the two atoms).
  static ClockConstraint Range(int clock, std::int64_t lo, std::int64_t hi);
  static ClockConstraint And(ClockConstraint a, ClockConstraint b);
  static ClockConstraint Or(ClockConstraint a, ClockConstraint b);
  static ClockConstraint Not(ClockConstraint a);

  /// Default-constructs the trivially true guard.
  ClockConstraint() = default;

  /// Three-valued evaluation: nullopt when the truth value depends on an
  /// undefined clock. `values[c]` is the value of clock c, nullopt when
  /// undefined.
  std::optional<bool> Evaluate(
      std::span<const std::optional<std::int64_t>> values) const;

  /// True iff Evaluate(...) == true.
  bool IsSatisfied(
      std::span<const std::optional<std::int64_t>> values) const {
    return Evaluate(values) == std::optional<bool>(true);
  }

  /// Indices of the clocks this formula mentions (sorted, distinct).
  std::vector<int> MentionedClocks() const;

  /// True when the formula can never again become true for this
  /// configuration: clock values only grow between resets, so an `x <= k`
  /// atom with a defined value already above k is dead forever, an `And`
  /// dies with any child and an `Or` with all children. Conservative
  /// (returns false for `Not` and undefined values).
  bool ExpiredForever(
      std::span<const std::optional<std::int64_t>> values) const;

  /// Rendering like "(x0 <= 5 && 1 <= x2)" using clock index names.
  std::string ToString() const;

  bool IsTriviallyTrue() const;

 private:
  enum class Kind { kTrue, kAtMost, kAtLeast, kAnd, kOr, kNot };

  Kind kind_ = Kind::kTrue;
  int clock_ = -1;
  std::int64_t bound_ = 0;
  std::vector<ClockConstraint> children_;
};

}  // namespace granmine

#endif  // GRANMINE_TAG_CLOCK_CONSTRAINT_H_
