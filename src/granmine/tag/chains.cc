#include "granmine/tag/chains.h"

#include <optional>

#include "granmine/common/check.h"
#include "granmine/common/math.h"
#include "granmine/tag/max_flow.h"

namespace granmine {

namespace {

struct Arc {
  VariableId from;
  VariableId to;
};

// Attempts to find a flow of value exactly `k` from the super-source through
// the root to the sinks with every structure arc carrying >= 1. On success
// returns the per-arc flow.
std::optional<std::vector<std::int64_t>> FeasibleFlow(
    int n, VariableId root, const std::vector<Arc>& arcs,
    const std::vector<bool>& is_sink, std::int64_t k) {
  // Node layout: 0..n-1 structure, n = S*, n+1 = T*, n+2 = SS, n+3 = TT.
  const int s_star = n, t_star = n + 1, ss = n + 2, tt = n + 3;
  MaxFlow flow(n + 4);
  std::vector<std::int64_t> excess(static_cast<std::size_t>(n) + 2, 0);

  // Structure arcs: [1, INF] -> capacity INF-1 plus excess bookkeeping.
  std::vector<int> arc_edge_ids;
  arc_edge_ids.reserve(arcs.size());
  for (const Arc& arc : arcs) {
    arc_edge_ids.push_back(flow.AddEdge(arc.from, arc.to, kInfinity));
    excess[arc.to] += 1;
    excess[arc.from] -= 1;
  }
  // S* -> root with bounds [k, k]: the zero-capacity edge is omitted; only
  // the excess bookkeeping remains (excess[root] += k, excess[S*] -= k).
  excess[root] += k;
  // Sinks -> T*: [0, INF].
  for (VariableId v = 0; v < n; ++v) {
    if (is_sink[static_cast<std::size_t>(v)]) {
      flow.AddEdge(v, t_star, kInfinity);
    }
  }
  // T* -> S* with bounds [k, k] closes the circulation:
  // excess[S*] += k, excess[T*] -= k. Net: excess(S*) = 0, excess(T*) = -k.
  const std::int64_t s_star_excess = 0;
  const std::int64_t t_star_excess = -k;

  std::int64_t total_positive = 0;
  for (VariableId v = 0; v < n; ++v) {
    std::int64_t e = excess[static_cast<std::size_t>(v)];
    if (e > 0) {
      flow.AddEdge(ss, v, e);
      total_positive += e;
    } else if (e < 0) {
      flow.AddEdge(v, tt, -e);
    }
  }
  if (s_star_excess > 0) {
    flow.AddEdge(ss, s_star, s_star_excess);
    total_positive += s_star_excess;
  } else if (s_star_excess < 0) {
    flow.AddEdge(s_star, tt, -s_star_excess);
  }
  if (t_star_excess > 0) {
    flow.AddEdge(ss, t_star, t_star_excess);
    total_positive += t_star_excess;
  } else if (t_star_excess < 0) {
    flow.AddEdge(t_star, tt, -t_star_excess);
  }

  if (flow.Compute(ss, tt) != total_positive) return std::nullopt;
  std::vector<std::int64_t> per_arc(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    per_arc[i] = 1 + flow.FlowOn(arc_edge_ids[i]);
  }
  return per_arc;
}

}  // namespace

Result<std::vector<std::vector<VariableId>>> DecomposeChains(
    const EventStructure& structure) {
  GM_ASSIGN_OR_RETURN(VariableId root, structure.FindRoot());
  const int n = structure.variable_count();

  std::vector<Arc> arcs;
  for (const EventStructure::Edge& edge : structure.edges()) {
    arcs.push_back(Arc{edge.from, edge.to});
  }
  std::vector<bool> has_outgoing(static_cast<std::size_t>(n), false);
  for (const Arc& arc : arcs) {
    has_outgoing[static_cast<std::size_t>(arc.from)] = true;
  }
  std::vector<bool> is_sink(static_cast<std::size_t>(n));
  for (VariableId v = 0; v < n; ++v) {
    is_sink[static_cast<std::size_t>(v)] =
        !has_outgoing[static_cast<std::size_t>(v)];
  }

  if (arcs.empty()) {
    // A single rooted variable: one chain of just the root.
    return std::vector<std::vector<VariableId>>{{root}};
  }

  // Probe k = 1, 2, ... for the minimum feasible chain count. k = |arcs| is
  // always feasible (each arc lies on a root-to-sink path), so this ends.
  std::optional<std::vector<std::int64_t>> per_arc;
  std::int64_t k = 0;
  for (k = 1; k <= static_cast<std::int64_t>(arcs.size()); ++k) {
    per_arc = FeasibleFlow(n, root, arcs, is_sink, k);
    if (per_arc.has_value()) break;
  }
  if (!per_arc.has_value()) {
    return Status::Internal("chain decomposition found no feasible flow");
  }

  // Decompose the flow into k root-to-sink chains.
  std::vector<std::vector<std::size_t>> outgoing_arcs(
      static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    outgoing_arcs[static_cast<std::size_t>(arcs[i].from)].push_back(i);
  }
  std::vector<std::vector<VariableId>> chains;
  std::vector<std::int64_t> remaining = *per_arc;
  for (std::int64_t c = 0; c < k; ++c) {
    std::vector<VariableId> chain{root};
    VariableId at = root;
    while (!is_sink[static_cast<std::size_t>(at)]) {
      bool advanced = false;
      for (std::size_t arc_index : outgoing_arcs[static_cast<std::size_t>(at)]) {
        if (remaining[arc_index] > 0) {
          --remaining[arc_index];
          at = arcs[arc_index].to;
          chain.push_back(at);
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        return Status::Internal(
            "flow decomposition stalled (conservation violated)");
      }
    }
    chains.push_back(std::move(chain));
  }
  for (std::int64_t r : remaining) {
    if (r != 0) {
      return Status::Internal("flow decomposition left residual flow");
    }
  }
  return chains;
}

}  // namespace granmine
