#ifndef GRANMINE_TAG_STEP_KERNEL_H_
#define GRANMINE_TAG_STEP_KERNEL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/governor_alloc.h"
#include "granmine/sequence/event.h"
#include "granmine/tag/matcher_types.h"
#include "granmine/tag/tag.h"

namespace granmine {

/// Sentinel reset value: the clock was reset at an instant with no tick in
/// its granularity; its value stays undefined until the next reset.
inline constexpr std::int64_t kUndefinedTick =
    std::numeric_limits<std::int64_t>::min();

/// One live configuration of a TAG run: a state plus, per clock, the tick at
/// which the clock was last reset (or kUndefinedTick). Clock values are
/// reconstructed as `tick(now) − tick(reset)`, so skipped events never
/// perturb clocks.
struct TagConfig {
  int state = 0;
  std::vector<std::int64_t> resets;  // per clock: tick at reset or sentinel

  bool operator==(const TagConfig&) const = default;
};

struct TagConfigHash {
  std::size_t operator()(const TagConfig& config) const {
    std::size_t h = std::hash<int>()(config.state);
    for (std::int64_t r : config.resets) {
      h ^= std::hash<std::int64_t>()(r) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// The resident state of one (possibly incremental) TAG run between
/// equal-timestamp groups: the deduplicated configuration frontier plus
/// whether the run has consumed its first group (clocks read 0 there, per
/// §4 initiation). Copyable — a streaming snapshot clones pending runs to
/// flush the reorder buffer without committing it.
struct TagRunState {
  std::unordered_set<TagConfig, TagConfigHash> frontier;
  bool seeded = false;

  void Reset() {
    frontier.clear();
    seeded = false;
  }
};

/// Reusable per-worker search buffers for TagKernel::AdvanceGroup (the BFS
/// closure within one group). One scratch belongs to one thread at a time;
/// reusing it keeps hash-table capacity warm across runs.
struct TagKernelScratch {
  struct GroupNode;  // defined in step_kernel.cc

  // Opaque storage; AdvanceGroup manages the contents. The vectors are kept
  // here (not per-call) purely to avoid reallocation.
  std::vector<std::int64_t> now;
  std::vector<std::optional<std::int64_t>> values;
  std::vector<EventTypeId> group_types;
  std::vector<int> available;

  // visited/queue live behind an Impl because GroupNode is internal.
  TagKernelScratch();
  ~TagKernelScratch();
  TagKernelScratch(TagKernelScratch&&) noexcept;
  TagKernelScratch& operator=(TagKernelScratch&&) noexcept;

  struct Impl;
  std::unique_ptr<Impl> impl;
};

/// The TAG transition kernel shared by the batch matcher (`TagMatcher::Run`)
/// and the streaming `IncrementalMatcher`: an immutable compiled view of one
/// TAG (clock → granularity indexing resolved once) exposing the per-group
/// frontier advance of the Theorem-4 procedure. Events with equal timestamps
/// form one *group*; the kernel explores every consumption order within a
/// group (per-type counts), seeds the frontier on the run's first group, and
/// retires configurations whose every labeled guard is expired forever.
///
/// All members are read-only after construction, so one kernel may be shared
/// by any number of threads, each passing its own scratch and run state.
class TagKernel {
 public:
  /// `tag` must outlive the kernel.
  explicit TagKernel(const Tag* tag);

  const Tag& tag() const { return *tag_; }
  std::size_t clock_count() const { return tag_->clocks().size(); }

  /// What one group advance decided about the run.
  enum class GroupOutcome {
    kAdvanced,  ///< run continues; frontier updated
    kAccepted,  ///< an accepting state was entered (run decided; frontier stale)
    kDead,      ///< frontier empty after the group — no run can ever recover
    kStopped,   ///< budget/governor stop; stats->stopped has the cause
  };

  /// Advances `run` over one equal-timestamp group `group` (non-empty, all
  /// events share one timestamp). If the run is not yet seeded, the frontier
  /// is initiated at this group (clocks read 0); with `anchored` the group's
  /// first event is the reference occurrence the run must consume first.
  /// `stats->configurations` accumulates across calls (it is the per-run
  /// budget counter compared against `max_configurations`); `ticket`, when
  /// non-null, is charged once per created configuration with the run's
  /// configuration count as the deterministic index (GovernorScope::kMatch).
  /// `arena`, when non-null, is charged the bytes of each created
  /// configuration against the governor's memory budget at the same index;
  /// a refusal stops the run with the refusal cause (kMemBudget or an
  /// injected alloc failure), never a wrong verdict.
  GroupOutcome AdvanceGroup(std::span<const Event> group,
                            const SymbolMap& symbols, bool anchored,
                            TagRunState* run, TagKernelScratch* scratch,
                            MatchStats* stats,
                            std::uint64_t max_configurations,
                            GovernorTicket* ticket,
                            GovernorAllocator* arena = nullptr) const;

  /// Retires every configuration of `run` whose labeled outgoing guards are
  /// all expired forever at the ticks containing `time` — the watermark GC
  /// of the streaming subsystem (docs/streaming.md): clock values only grow
  /// until a reset, so a configuration dead at the watermark is dead for
  /// every future event. AdvanceGroup already performs this prune at each
  /// group's own timestamp; this entry point lets an idle stream reclaim
  /// memory between events. Updates stats->peak_frontier.
  void RetireDeadConfigs(TimePoint time, TagRunState* run,
                         TagKernelScratch* scratch, MatchStats* stats) const;

 private:
  void ComputeNow(TimePoint time, std::vector<std::int64_t>* now) const;
  void PruneFrontier(TagRunState* run, TagKernelScratch* scratch) const;

  const Tag* tag_;
  /// Distinct clock granularities and each clock's index into them.
  std::vector<const Granularity*> granularities_;
  std::vector<int> clock_granularity_;
};

}  // namespace granmine

#endif  // GRANMINE_TAG_STEP_KERNEL_H_
