#include "granmine/tag/max_flow.h"

#include <algorithm>
#include <queue>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

MaxFlow::MaxFlow(int node_count) : adjacency_(node_count) {
  GM_CHECK(node_count >= 0);
}

int MaxFlow::AddEdge(int from, int to, std::int64_t capacity) {
  GM_CHECK(from >= 0 && from < node_count());
  GM_CHECK(to >= 0 && to < node_count());
  GM_CHECK(capacity >= 0);
  int forward_index = static_cast<int>(adjacency_[from].size());
  int backward_index = static_cast<int>(adjacency_[to].size());
  adjacency_[from].push_back(Edge{to, capacity, backward_index, capacity});
  adjacency_[to].push_back(Edge{from, 0, forward_index, 0});
  edge_refs_.emplace_back(from, forward_index);
  return static_cast<int>(edge_refs_.size()) - 1;
}

bool MaxFlow::Bfs(int source, int sink) {
  level_.assign(adjacency_.size(), -1);
  std::queue<int> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop();
    for (const Edge& edge : adjacency_[node]) {
      if (edge.capacity > 0 && level_[edge.to] < 0) {
        level_[edge.to] = level_[node] + 1;
        queue.push(edge.to);
      }
    }
  }
  return level_[sink] >= 0;
}

std::int64_t MaxFlow::Dfs(int node, int sink, std::int64_t limit) {
  if (node == sink) return limit;
  for (std::size_t& i = iter_[node]; i < adjacency_[node].size(); ++i) {
    Edge& edge = adjacency_[node][i];
    if (edge.capacity <= 0 || level_[edge.to] != level_[node] + 1) continue;
    std::int64_t pushed =
        Dfs(edge.to, sink, std::min(limit, edge.capacity));
    if (pushed > 0) {
      edge.capacity -= pushed;
      adjacency_[edge.to][edge.reverse].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlow::Compute(int source, int sink) {
  GM_CHECK(source != sink);
  std::int64_t total = 0;
  while (Bfs(source, sink)) {
    iter_.assign(adjacency_.size(), 0);
    while (std::int64_t pushed = Dfs(source, sink, kInfinity)) {
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlow::FlowOn(int id) const {
  const auto& [node, index] = edge_refs_[static_cast<std::size_t>(id)];
  const Edge& edge = adjacency_[node][index];
  return edge.original - edge.capacity;
}

std::int64_t MaxFlow::ResidualOn(int id) const {
  const auto& [node, index] = edge_refs_[static_cast<std::size_t>(id)];
  return adjacency_[node][index].capacity;
}

void MaxFlow::SetCapacity(int id, std::int64_t capacity) {
  auto& [node, index] = edge_refs_[static_cast<std::size_t>(id)];
  Edge& edge = adjacency_[node][index];
  std::int64_t flow = edge.original - edge.capacity;
  GM_CHECK(capacity >= flow);
  edge.capacity = capacity - flow;
  edge.original = capacity;
}

}  // namespace granmine
