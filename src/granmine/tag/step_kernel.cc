#include "granmine/tag/step_kernel.h"

#include <algorithm>

#include "granmine/common/check.h"

namespace granmine {

// A search node inside one equal-timestamp group: a configuration plus how
// many events of each group type it has consumed via labeled transitions
// (`used`), and whether it still must consume the anchor (anchored matching,
// first group only).
struct TagKernelScratch::GroupNode {
  TagConfig config;
  std::vector<int> used;
  bool pre_anchor = false;

  bool operator==(const GroupNode&) const = default;
};

namespace {

using GroupNode = TagKernelScratch::GroupNode;

struct GroupNodeHash {
  std::size_t operator()(const GroupNode& node) const {
    std::size_t h = TagConfigHash()(node.config);
    for (int u : node.used) {
      h ^= std::hash<int>()(u) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h * 2 + (node.pre_anchor ? 1 : 0);
  }
};

}  // namespace

struct TagKernelScratch::Impl {
  std::unordered_set<GroupNode, GroupNodeHash> visited;
  std::vector<GroupNode> queue;
};

TagKernelScratch::TagKernelScratch() : impl(std::make_unique<Impl>()) {}
TagKernelScratch::~TagKernelScratch() = default;
TagKernelScratch::TagKernelScratch(TagKernelScratch&&) noexcept = default;
TagKernelScratch& TagKernelScratch::operator=(TagKernelScratch&&) noexcept =
    default;

TagKernel::TagKernel(const Tag* tag) : tag_(tag) {
  GM_CHECK(tag_ != nullptr);
  for (const Tag::Clock& clock : tag_->clocks()) {
    auto it = std::find(granularities_.begin(), granularities_.end(),
                        clock.granularity);
    if (it == granularities_.end()) {
      granularities_.push_back(clock.granularity);
      clock_granularity_.push_back(
          static_cast<int>(granularities_.size()) - 1);
    } else {
      clock_granularity_.push_back(
          static_cast<int>(it - granularities_.begin()));
    }
  }
}

void TagKernel::ComputeNow(TimePoint time,
                           std::vector<std::int64_t>* now) const {
  now->resize(granularities_.size());
  for (std::size_t g = 0; g < granularities_.size(); ++g) {
    std::optional<Tick> tick = granularities_[g]->TickContaining(time);
    (*now)[g] = tick.has_value() ? *tick : kUndefinedTick;
  }
}

// Prune configurations that can never progress again: clock values only
// grow until a config takes a labeled transition, so once every labeled
// outgoing guard is expired the config is dead. This is what keeps the
// live frontier within the Theorem-4 (|V|K)^p bound instead of growing
// with the sequence. `scratch->now` must already hold the prune instant's
// ticks.
void TagKernel::PruneFrontier(TagRunState* run,
                              TagKernelScratch* scratch) const {
  const std::size_t clock_count = tag_->clocks().size();
  std::vector<std::int64_t>& now = scratch->now;
  scratch->values.assign(clock_count, std::nullopt);
  std::vector<std::optional<std::int64_t>>& values = scratch->values;
  auto& frontier = run->frontier;
  for (auto it = frontier.begin(); it != frontier.end();) {
    const TagConfig& config = *it;
    for (std::size_t c = 0; c < clock_count; ++c) {
      std::int64_t reset = config.resets[c];
      std::int64_t tick = now[clock_granularity_[c]];
      values[c] = (reset == kUndefinedTick || tick == kUndefinedTick)
                      ? std::nullopt
                      : std::optional<std::int64_t>(tick - reset);
    }
    bool alive = false;
    for (int t_index : tag_->OutgoingOf(config.state)) {
      const Tag::Transition& tr = tag_->transitions()[t_index];
      if (tr.symbol == kAnySymbol) continue;  // self-loops do not progress
      if (!tr.guard.ExpiredForever(values)) {
        alive = true;
        break;
      }
    }
    it = alive ? std::next(it) : frontier.erase(it);
  }
}

void TagKernel::RetireDeadConfigs(TimePoint time, TagRunState* run,
                                  TagKernelScratch* scratch,
                                  MatchStats* stats) const {
  if (!run->seeded || run->frontier.empty()) return;
  ComputeNow(time, &scratch->now);
  PruneFrontier(run, scratch);
  if (stats != nullptr) {
    stats->peak_frontier =
        std::max(stats->peak_frontier, run->frontier.size());
  }
}

TagKernel::GroupOutcome TagKernel::AdvanceGroup(
    std::span<const Event> group, const SymbolMap& symbols, bool anchored,
    TagRunState* run, TagKernelScratch* scratch, MatchStats* stats,
    std::uint64_t max_configurations, GovernorTicket* ticket,
    GovernorAllocator* arena) const {
  GM_CHECK(!group.empty());
  MatchStats& st = *stats;
  const std::size_t clock_count = tag_->clocks().size();
  // The governed footprint of one configuration: the node itself plus its
  // per-clock reset vector (the `used` counts are transient BFS state).
  const std::uint64_t config_bytes =
      sizeof(TagConfig) + clock_count * sizeof(std::int64_t);
  st.events_scanned += group.size();
  ++st.groups_advanced;

  ComputeNow(group.front().time, &scratch->now);
  std::vector<std::int64_t>& now = scratch->now;
  scratch->values.assign(clock_count, std::nullopt);
  std::vector<std::optional<std::int64_t>>& values = scratch->values;

  // Per-type availability within the group.
  std::vector<EventTypeId>& group_types = scratch->group_types;
  std::vector<int>& available = scratch->available;
  group_types.clear();
  available.clear();
  for (const Event& event : group) {
    auto it = std::find(group_types.begin(), group_types.end(), event.type);
    if (it == group_types.end()) {
      group_types.push_back(event.type);
      available.push_back(1);
    } else {
      ++available[it - group_types.begin()];
    }
  }
  const EventTypeId anchor_type = group.front().type;

  const bool seeding = !run->seeded;
  if (seeding) {
    // Clocks read 0 at the first event (§4 initiation).
    TagConfig seed;
    seed.resets.resize(clock_count);
    for (std::size_t c = 0; c < clock_count; ++c) {
      seed.resets[c] = now[clock_granularity_[c]];
    }
    for (int state : tag_->start_states()) {
      seed.state = state;
      run->frontier.insert(seed);
    }
    st.configurations += run->frontier.size();
    if (arena != nullptr) {
      if (StopCause cause = arena->Charge(
              st.configurations, run->frontier.size() * config_bytes);
          cause != StopCause::kNone) {
        st.stopped = cause;
        return GroupOutcome::kStopped;
      }
    }
    run->seeded = true;
  }

  // BFS closure over labeled consumptions within the group. Every reached
  // configuration (except pre-anchor ones) is a valid post-group state:
  // unconsumed events are absorbed by ANY self-loops.
  auto& visited = scratch->impl->visited;
  std::vector<GroupNode>& queue = scratch->impl->queue;
  visited.clear();
  queue.clear();
  const bool anchoring = anchored && seeding;
  auto& frontier = run->frontier;
  // Seed the closure in canonical (state, resets) order, not hash-set
  // iteration order: the accept early-exit below makes the reported stats a
  // function of exploration order, so the order must be derivable from the
  // frontier's *contents* alone — a checkpoint-restored run (same configs,
  // different hash-table insertion history) has to explore identically to
  // the uninterrupted one.
  std::vector<const TagConfig*> seeds;
  seeds.reserve(frontier.size());
  for (const TagConfig& config : frontier) seeds.push_back(&config);
  std::sort(seeds.begin(), seeds.end(),
            [](const TagConfig* a, const TagConfig* b) {
              if (a->state != b->state) return a->state < b->state;
              return a->resets < b->resets;
            });
  for (const TagConfig* config : seeds) {
    GroupNode node{*config, std::vector<int>(group_types.size(), 0),
                   anchoring};
    if (visited.insert(node).second) queue.push_back(std::move(node));
  }
  frontier.clear();

  auto note_result = [&](const GroupNode& node) {
    if (!node.pre_anchor) frontier.insert(node.config);
  };
  for (const GroupNode& node : queue) note_result(node);

  while (!queue.empty()) {
    GroupNode node = std::move(queue.back());
    queue.pop_back();
    // Clock values are constant across the group for a fixed config.
    for (std::size_t c = 0; c < clock_count; ++c) {
      std::int64_t reset = node.config.resets[c];
      std::int64_t tick = now[clock_granularity_[c]];
      values[c] = (reset == kUndefinedTick || tick == kUndefinedTick)
                      ? std::nullopt
                      : std::optional<std::int64_t>(tick - reset);
    }
    for (std::size_t type_index = 0; type_index < group_types.size();
         ++type_index) {
      if (node.used[type_index] >= available[type_index]) continue;
      EventTypeId type = group_types[type_index];
      if (node.pre_anchor && type != anchor_type) continue;
      std::span<const Symbol> event_symbols = symbols.SymbolsFor(type);
      if (event_symbols.empty()) continue;
      for (int t_index : tag_->OutgoingOf(node.config.state)) {
        const Tag::Transition& tr = tag_->transitions()[t_index];
        if (tr.symbol == kAnySymbol) continue;  // skips handled implicitly
        if (std::find(event_symbols.begin(), event_symbols.end(),
                      tr.symbol) == event_symbols.end()) {
          continue;
        }
        if (!tr.guard.IsSatisfied(values)) continue;
        ++st.transitions;
        GroupNode successor = node;
        successor.config.state = tr.to;
        for (int c : tr.resets) {
          successor.config.resets[static_cast<std::size_t>(c)] =
              now[clock_granularity_[static_cast<std::size_t>(c)]];
        }
        ++successor.used[type_index];
        successor.pre_anchor = false;
        if (tag_->IsAccepting(tr.to)) return GroupOutcome::kAccepted;
        if (visited.insert(successor).second) {
          ++st.configurations;
          note_result(successor);
          queue.push_back(std::move(successor));
          if (st.configurations > max_configurations) {
            st.budget_exhausted = true;
            st.stopped = StopCause::kStepBudget;
            return GroupOutcome::kStopped;
          }
          if (ticket != nullptr) {
            if (StopCause cause = ticket->Charge(st.configurations);
                cause != StopCause::kNone) {
              st.stopped = cause;
              return GroupOutcome::kStopped;
            }
          }
          if (arena != nullptr) {
            if (StopCause cause =
                    arena->Charge(st.configurations, config_bytes);
                cause != StopCause::kNone) {
              st.stopped = cause;
              return GroupOutcome::kStopped;
            }
          }
        }
      }
    }
  }

  PruneFrontier(run, scratch);
  st.peak_frontier = std::max(st.peak_frontier, frontier.size());
  if (frontier.empty()) return GroupOutcome::kDead;  // no run recovers
  return GroupOutcome::kAdvanced;
}

}  // namespace granmine
