#ifndef GRANMINE_TAG_TAG_H_
#define GRANMINE_TAG_TAG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "granmine/common/status.h"
#include "granmine/granularity/granularity.h"
#include "granmine/tag/clock_constraint.h"

namespace granmine {

/// A transition symbol. Skeleton TAGs built from an event structure use
/// variable ids as symbols (the Theorem-3 footnote: the construction needs
/// the distinct variable labels); `SubstituteSymbols` rewrites them to event
/// types (Step 4). `kAnySymbol` matches every input event (skip loops).
using Symbol = int;
inline constexpr Symbol kAnySymbol = -1;

/// A timed finite automaton with granularities (§4): a 6-tuple
/// (Σ, S, S0, C, T, F) whose clocks tick in their own granularities. The
/// class is a plain container validated by `Validate()`; semantics live in
/// `TagMatcher` (runs/acceptance) and `BuildTagForComplexType` (Theorem 3).
class Tag {
 public:
  struct Clock {
    const Granularity* granularity;
    std::string name;
  };

  struct Transition {
    int from = 0;
    int to = 0;
    Symbol symbol = kAnySymbol;
    std::vector<int> resets;  ///< clock indices reset to 0 (λ)
    ClockConstraint guard;    ///< enabling condition (δ)
  };

  /// Returns the new state's index.
  int AddState(std::string name);
  /// Returns the new clock's index.
  int AddClock(const Granularity* granularity, std::string name);
  void AddTransition(Transition transition);
  void MarkStart(int state);
  void MarkAccepting(int state);

  int state_count() const { return static_cast<int>(state_names_.size()); }
  const std::string& state_name(int state) const;
  const std::vector<Clock>& clocks() const { return clocks_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<int>& start_states() const { return start_states_; }
  bool IsAccepting(int state) const;
  const std::vector<int>& accepting_states() const { return accepting_; }

  /// Transitions leaving `state` (indices into transitions()).
  const std::vector<int>& OutgoingOf(int state) const;

  /// Structural checks: indices in range, at least one start state.
  Status Validate() const;

  /// Step 4 of the Theorem-3 construction: rewrites every non-ANY symbol
  /// through `mapping` (symbol -> new symbol). Symbols absent from the map
  /// are rejected.
  Status SubstituteSymbols(const std::unordered_map<Symbol, Symbol>& mapping);

  /// Multi-line rendering (states, clocks, transitions) for diagnostics.
  std::string ToString() const;

 private:
  std::vector<std::string> state_names_;
  std::vector<Clock> clocks_;
  std::vector<Transition> transitions_;
  std::vector<std::vector<int>> outgoing_;
  std::vector<int> start_states_;
  std::vector<int> accepting_;
};

}  // namespace granmine

#endif  // GRANMINE_TAG_TAG_H_
