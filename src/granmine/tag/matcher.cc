#include "granmine/tag/matcher.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "granmine/common/check.h"

namespace granmine {

namespace {

/// Sentinel reset value: the clock was reset at an instant with no tick in
/// its granularity; its value stays undefined until the next reset.
constexpr std::int64_t kUndefinedTick = std::numeric_limits<std::int64_t>::min();

struct Config {
  int state;
  std::vector<std::int64_t> resets;  // per clock: tick at reset or sentinel

  bool operator==(const Config&) const = default;
};

struct ConfigHash {
  std::size_t operator()(const Config& config) const {
    std::size_t h = std::hash<int>()(config.state);
    for (std::int64_t r : config.resets) {
      h ^= std::hash<std::int64_t>()(r) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

// A search node inside one equal-timestamp group: a configuration plus how
// many events of each group type it has consumed via labeled transitions
// (`used`), and whether it still must consume the anchor (anchored matching,
// first group only).
struct GroupNode {
  Config config;
  std::vector<int> used;
  bool pre_anchor = false;

  bool operator==(const GroupNode&) const = default;
};

struct GroupNodeHash {
  std::size_t operator()(const GroupNode& node) const {
    std::size_t h = ConfigHash()(node.config);
    for (int u : node.used) {
      h ^= std::hash<int>()(u) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h * 2 + (node.pre_anchor ? 1 : 0);
  }
};

}  // namespace

/// The per-run buffers; reused across runs when the caller keeps a scratch.
struct MatchScratch::Impl {
  std::unordered_set<Config, ConfigHash> frontier;
  std::unordered_set<GroupNode, GroupNodeHash> visited;
  std::vector<GroupNode> queue;
  std::vector<std::int64_t> now;
  std::vector<std::optional<std::int64_t>> values;
  std::vector<EventTypeId> group_types;
  std::vector<int> available;
};

MatchScratch::MatchScratch() = default;
MatchScratch::~MatchScratch() = default;
MatchScratch::MatchScratch(MatchScratch&&) noexcept = default;
MatchScratch& MatchScratch::operator=(MatchScratch&&) noexcept = default;

SymbolMap SymbolMap::Identity(int type_count) {
  SymbolMap map;
  map.symbols_by_type.resize(static_cast<std::size_t>(type_count));
  for (int i = 0; i < type_count; ++i) {
    map.symbols_by_type[static_cast<std::size_t>(i)] = {i};
  }
  return map;
}

SymbolMap SymbolMap::FromAssignment(const std::vector<EventTypeId>& phi,
                                    int type_count) {
  SymbolMap map;
  map.symbols_by_type.resize(static_cast<std::size_t>(type_count));
  for (std::size_t v = 0; v < phi.size(); ++v) {
    EventTypeId type = phi[v];
    GM_CHECK(type >= 0 && type < type_count);
    map.symbols_by_type[static_cast<std::size_t>(type)].push_back(
        static_cast<Symbol>(v));
  }
  return map;
}

std::span<const Symbol> SymbolMap::SymbolsFor(EventTypeId type) const {
  if (type < 0 || type >= static_cast<int>(symbols_by_type.size())) {
    return {};
  }
  return symbols_by_type[static_cast<std::size_t>(type)];
}

TagMatcher::TagMatcher(const Tag* tag) : tag_(tag) {
  GM_CHECK(tag_ != nullptr);
  for (const Tag::Clock& clock : tag_->clocks()) {
    auto it = std::find(granularities_.begin(), granularities_.end(),
                        clock.granularity);
    if (it == granularities_.end()) {
      granularities_.push_back(clock.granularity);
      clock_granularity_.push_back(
          static_cast<int>(granularities_.size()) - 1);
    } else {
      clock_granularity_.push_back(
          static_cast<int>(it - granularities_.begin()));
    }
  }
}

MatchOutcome TagMatcher::Run(std::span<const Event> events,
                             const SymbolMap& symbols,
                             const MatchOptions& options, MatchStats* stats,
                             MatchScratch* scratch) const {
  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  // One ticket per run: the stride countdown starts fresh, so for a fixed
  // input the governor is consulted at the same configuration counts every
  // time — the determinism the fault-injection sweeps rely on.
  GovernorTicket ticket(options.governor, GovernorScope::kMatch);

  MatchScratch local_scratch;
  MatchScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  if (sc.impl_ == nullptr) sc.impl_ = std::make_unique<MatchScratch::Impl>();
  MatchScratch::Impl& s = *sc.impl_;

  const std::size_t clock_count = tag_->clocks().size();

  // Empty input: accepted iff a start state is accepting (and the run is
  // not required to anchor on a first event).
  if (!options.anchored) {
    for (int state : tag_->start_states()) {
      if (tag_->IsAccepting(state)) return MatchOutcome::kAccepted;
    }
  }

  std::unordered_set<Config, ConfigHash>& frontier = s.frontier;
  frontier.clear();
  s.now.assign(granularities_.size(), 0);
  std::vector<std::int64_t>& now = s.now;
  s.values.assign(clock_count, std::nullopt);
  std::vector<std::optional<std::int64_t>>& values = s.values;

  // Events with equal timestamps form one *group*: the §3 occurrence
  // definition is insensitive to their listing order, so within a group the
  // matcher may consume them in any order (the closure below explores all
  // orders; clock ticks are constant across a group, so only the per-type
  // consumption counts matter).
  std::size_t group_start = 0;
  bool first_group = true;
  while (group_start < events.size()) {
    if (StopCause cause = ticket.Charge(st.configurations);
        cause != StopCause::kNone) {
      st.stopped = cause;
      return MatchOutcome::kUnknown;
    }
    const TimePoint group_time = events[group_start].time;
    if (group_time > options.deadline) break;
    std::size_t group_end = group_start;
    while (group_end < events.size() && events[group_end].time == group_time) {
      ++group_end;
    }
    st.events_scanned += group_end - group_start;

    for (std::size_t g = 0; g < granularities_.size(); ++g) {
      std::optional<Tick> tick = granularities_[g]->TickContaining(group_time);
      now[g] = tick.has_value() ? *tick : kUndefinedTick;
    }

    // Per-type availability within the group.
    std::vector<EventTypeId>& group_types = s.group_types;
    std::vector<int>& available = s.available;
    group_types.clear();
    available.clear();
    for (std::size_t i = group_start; i < group_end; ++i) {
      EventTypeId type = events[i].type;
      auto it = std::find(group_types.begin(), group_types.end(), type);
      if (it == group_types.end()) {
        group_types.push_back(type);
        available.push_back(1);
      } else {
        ++available[it - group_types.begin()];
      }
    }
    const EventTypeId anchor_type = events[group_start].type;

    if (first_group) {
      // Clocks read 0 at the first event (§4 initiation).
      Config seed;
      seed.resets.resize(clock_count);
      for (std::size_t c = 0; c < clock_count; ++c) {
        seed.resets[c] = now[clock_granularity_[c]];
      }
      for (int state : tag_->start_states()) {
        seed.state = state;
        frontier.insert(seed);
      }
      st.configurations += frontier.size();
    }

    // BFS closure over labeled consumptions within the group. Every reached
    // configuration (except pre-anchor ones) is a valid post-group state:
    // unconsumed events are absorbed by ANY self-loops.
    std::unordered_set<GroupNode, GroupNodeHash>& visited = s.visited;
    std::vector<GroupNode>& queue = s.queue;
    visited.clear();
    queue.clear();
    const bool anchoring = options.anchored && first_group;
    for (const Config& config : frontier) {
      GroupNode node{config, std::vector<int>(group_types.size(), 0),
                     anchoring};
      if (visited.insert(node).second) queue.push_back(std::move(node));
    }
    frontier.clear();

    auto note_result = [&](const GroupNode& node) {
      if (!node.pre_anchor) frontier.insert(node.config);
    };
    for (const GroupNode& node : queue) note_result(node);

    while (!queue.empty()) {
      GroupNode node = std::move(queue.back());
      queue.pop_back();
      // Clock values are constant across the group for a fixed config.
      for (std::size_t c = 0; c < clock_count; ++c) {
        std::int64_t reset = node.config.resets[c];
        std::int64_t tick = now[clock_granularity_[c]];
        values[c] = (reset == kUndefinedTick || tick == kUndefinedTick)
                        ? std::nullopt
                        : std::optional<std::int64_t>(tick - reset);
      }
      for (std::size_t type_index = 0; type_index < group_types.size();
           ++type_index) {
        if (node.used[type_index] >= available[type_index]) continue;
        EventTypeId type = group_types[type_index];
        if (node.pre_anchor && type != anchor_type) continue;
        std::span<const Symbol> event_symbols = symbols.SymbolsFor(type);
        if (event_symbols.empty()) continue;
        for (int t_index : tag_->OutgoingOf(node.config.state)) {
          const Tag::Transition& tr = tag_->transitions()[t_index];
          if (tr.symbol == kAnySymbol) continue;  // skips handled implicitly
          if (std::find(event_symbols.begin(), event_symbols.end(),
                        tr.symbol) == event_symbols.end()) {
            continue;
          }
          if (!tr.guard.IsSatisfied(values)) continue;
          GroupNode successor = node;
          successor.config.state = tr.to;
          for (int c : tr.resets) {
            successor.config.resets[static_cast<std::size_t>(c)] =
                now[clock_granularity_[static_cast<std::size_t>(c)]];
          }
          ++successor.used[type_index];
          successor.pre_anchor = false;
          if (tag_->IsAccepting(tr.to)) return MatchOutcome::kAccepted;
          if (visited.insert(successor).second) {
            ++st.configurations;
            note_result(successor);
            queue.push_back(std::move(successor));
            if (st.configurations > options.max_configurations) {
              st.budget_exhausted = true;
              st.stopped = StopCause::kStepBudget;
              return MatchOutcome::kUnknown;
            }
            if (StopCause cause = ticket.Charge(st.configurations);
                cause != StopCause::kNone) {
              st.stopped = cause;
              return MatchOutcome::kUnknown;
            }
          }
        }
      }
    }

    // Prune configurations that can never progress again: clock values only
    // grow until a config takes a labeled transition, so once every labeled
    // outgoing guard is expired the config is dead. This is what keeps the
    // live frontier within the Theorem-4 (|V|K)^p bound instead of growing
    // with the sequence.
    for (auto it = frontier.begin(); it != frontier.end();) {
      const Config& config = *it;
      for (std::size_t c = 0; c < clock_count; ++c) {
        std::int64_t reset = config.resets[c];
        std::int64_t tick = now[clock_granularity_[c]];
        values[c] = (reset == kUndefinedTick || tick == kUndefinedTick)
                        ? std::nullopt
                        : std::optional<std::int64_t>(tick - reset);
      }
      bool alive = false;
      for (int t_index : tag_->OutgoingOf(config.state)) {
        const Tag::Transition& tr = tag_->transitions()[t_index];
        if (tr.symbol == kAnySymbol) continue;  // self-loops do not progress
        if (!tr.guard.ExpiredForever(values)) {
          alive = true;
          break;
        }
      }
      it = alive ? std::next(it) : frontier.erase(it);
    }

    st.peak_frontier = std::max(st.peak_frontier, frontier.size());
    if (frontier.empty()) return MatchOutcome::kRejected;  // no run recovers
    first_group = false;
    group_start = group_end;
  }
  return MatchOutcome::kRejected;
}

}  // namespace granmine
