#include "granmine/tag/matcher.h"

#include "granmine/common/check.h"
#include "granmine/tag/step_kernel.h"

namespace granmine {

/// The per-run buffers; reused across runs when the caller keeps a scratch.
struct MatchScratch::Impl {
  TagRunState run;
  TagKernelScratch kernel;
};

MatchScratch::MatchScratch() = default;
MatchScratch::~MatchScratch() = default;
MatchScratch::MatchScratch(MatchScratch&&) noexcept = default;
MatchScratch& MatchScratch::operator=(MatchScratch&&) noexcept = default;

SymbolMap SymbolMap::Identity(int type_count) {
  SymbolMap map;
  map.symbols_by_type.resize(static_cast<std::size_t>(type_count));
  for (int i = 0; i < type_count; ++i) {
    map.symbols_by_type[static_cast<std::size_t>(i)] = {i};
  }
  return map;
}

SymbolMap SymbolMap::FromAssignment(const std::vector<EventTypeId>& phi,
                                    int type_count) {
  SymbolMap map;
  map.symbols_by_type.resize(static_cast<std::size_t>(type_count));
  for (std::size_t v = 0; v < phi.size(); ++v) {
    EventTypeId type = phi[v];
    GM_CHECK(type >= 0 && type < type_count);
    map.symbols_by_type[static_cast<std::size_t>(type)].push_back(
        static_cast<Symbol>(v));
  }
  return map;
}

std::span<const Symbol> SymbolMap::SymbolsFor(EventTypeId type) const {
  if (type < 0 || type >= static_cast<int>(symbols_by_type.size())) {
    return {};
  }
  return symbols_by_type[static_cast<std::size_t>(type)];
}

TagMatcher::TagMatcher(const Tag* tag) : kernel_(tag) {}

MatchOutcome TagMatcher::Run(std::span<const Event> events,
                             const SymbolMap& symbols,
                             const MatchOptions& options, MatchStats* stats,
                             MatchScratch* scratch) const {
  MatchStats local_stats;
  MatchStats& st = stats != nullptr ? *stats : local_stats;
  st = MatchStats{};

  // One ticket per run: the stride countdown starts fresh, so for a fixed
  // input the governor is consulted at the same configuration counts every
  // time — the determinism the fault-injection sweeps rely on. The arena
  // follows the same per-run lifetime: every configuration byte charged
  // during this run is released when Run returns, so the memory budget
  // tracks the live frontier, not a lifetime total.
  GovernorTicket ticket(options.governor, GovernorScope::kMatch);
  GovernorAllocator arena(options.governor, GovernorScope::kMatch);

  MatchScratch local_scratch;
  MatchScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  if (sc.impl_ == nullptr) sc.impl_ = std::make_unique<MatchScratch::Impl>();
  MatchScratch::Impl& s = *sc.impl_;

  const Tag& tag = kernel_.tag();

  // Empty input: accepted iff a start state is accepting (and the run is
  // not required to anchor on a first event).
  if (!options.anchored) {
    for (int state : tag.start_states()) {
      if (tag.IsAccepting(state)) return MatchOutcome::kAccepted;
    }
  }

  s.run.Reset();

  // Events with equal timestamps form one *group*: the §3 occurrence
  // definition is insensitive to their listing order, so within a group the
  // matcher may consume them in any order (the kernel's closure explores all
  // orders; clock ticks are constant across a group, so only the per-type
  // consumption counts matter).
  std::size_t group_start = 0;
  while (group_start < events.size()) {
    if (StopCause cause = ticket.Charge(st.configurations);
        cause != StopCause::kNone) {
      st.stopped = cause;
      return MatchOutcome::kUnknown;
    }
    const TimePoint group_time = events[group_start].time;
    if (group_time > options.deadline) break;
    std::size_t group_end = group_start;
    while (group_end < events.size() && events[group_end].time == group_time) {
      ++group_end;
    }

    switch (kernel_.AdvanceGroup(
        events.subspan(group_start, group_end - group_start), symbols,
        options.anchored, &s.run, &s.kernel, &st, options.max_configurations,
        &ticket, &arena)) {
      case TagKernel::GroupOutcome::kAccepted:
        return MatchOutcome::kAccepted;
      case TagKernel::GroupOutcome::kStopped:
        return MatchOutcome::kUnknown;
      case TagKernel::GroupOutcome::kDead:
        return MatchOutcome::kRejected;  // no run recovers
      case TagKernel::GroupOutcome::kAdvanced:
        break;
    }
    group_start = group_end;
  }
  return MatchOutcome::kRejected;
}

}  // namespace granmine
