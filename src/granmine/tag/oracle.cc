#include "granmine/tag/oracle.h"

#include <algorithm>

#include "granmine/common/check.h"

namespace granmine {

namespace {

struct OracleContext {
  const EventStructure* structure;
  const std::vector<EventTypeId>* phi;
  std::span<const Event> events;
  const OracleOptions* options;
  std::vector<std::optional<std::size_t>> chosen;  // variable -> event index
  std::vector<bool> used;                          // event index taken
  std::uint64_t nodes = 0;
  std::vector<std::vector<const EventStructure::Edge*>> incident;
};

bool CompatibleWithAssigned(OracleContext& ctx, VariableId v,
                            std::size_t event_index) {
  TimePoint t = ctx.events[event_index].time;
  for (const EventStructure::Edge* edge : ctx.incident[v]) {
    VariableId other = edge->from == v ? edge->to : edge->from;
    if (!ctx.chosen[other].has_value()) continue;
    TimePoint t_other = ctx.events[*ctx.chosen[other]].time;
    TimePoint t_from = edge->from == v ? t : t_other;
    TimePoint t_to = edge->to == v ? t : t_other;
    for (const Tcg& tcg : edge->tcgs) {
      if (!Satisfies(tcg, t_from, t_to)) return false;
    }
  }
  return true;
}

bool Assign(OracleContext& ctx, const std::vector<VariableId>& order,
            std::size_t index) {
  if (++ctx.nodes > ctx.options->max_nodes) return false;
  if (index == order.size()) return true;
  VariableId v = order[index];
  if (ctx.chosen[v].has_value()) return Assign(ctx, order, index + 1);
  EventTypeId type = (*ctx.phi)[static_cast<std::size_t>(v)];
  for (std::size_t e = 0; e < ctx.events.size(); ++e) {
    if (ctx.used[e] || ctx.events[e].type != type) continue;
    if (!CompatibleWithAssigned(ctx, v, e)) continue;
    ctx.chosen[v] = e;
    ctx.used[e] = true;
    if (Assign(ctx, order, index + 1)) return true;
    ctx.chosen[v] = std::nullopt;
    ctx.used[e] = false;
  }
  return false;
}

}  // namespace

bool OccursBruteForce(const EventStructure& structure,
                      const std::vector<EventTypeId>& phi,
                      std::span<const Event> events,
                      const OracleOptions& options) {
  return FindOccurrenceBruteForce(structure, phi, events, options)
      .has_value();
}

std::optional<std::vector<std::size_t>> FindOccurrenceBruteForce(
    const EventStructure& structure, const std::vector<EventTypeId>& phi,
    std::span<const Event> events, const OracleOptions& options) {
  GM_CHECK(static_cast<int>(phi.size()) == structure.variable_count());
  const int n = structure.variable_count();
  if (n == 0) return std::vector<std::size_t>{};

  OracleContext ctx;
  ctx.structure = &structure;
  ctx.phi = &phi;
  ctx.events = events;
  ctx.options = &options;
  ctx.chosen.assign(static_cast<std::size_t>(n), std::nullopt);
  ctx.used.assign(events.size(), false);
  ctx.incident.assign(static_cast<std::size_t>(n), {});
  for (const EventStructure::Edge& edge : structure.edges()) {
    ctx.incident[edge.from].push_back(&edge);
    ctx.incident[edge.to].push_back(&edge);
  }

  Result<std::vector<VariableId>> topo = structure.TopologicalOrder();
  GM_CHECK(topo.ok()) << topo.status();

  if (options.anchored_root_index.has_value()) {
    Result<VariableId> root = structure.FindRoot();
    GM_CHECK(root.ok()) << "anchored matching requires a rooted structure";
    std::size_t e = *options.anchored_root_index;
    GM_CHECK(e < events.size());
    if (events[e].type != phi[static_cast<std::size_t>(*root)]) {
      return std::nullopt;
    }
    if (!CompatibleWithAssigned(ctx, *root, e)) return std::nullopt;
    ctx.chosen[*root] = e;
    ctx.used[e] = true;
  }
  if (!Assign(ctx, *topo, 0)) return std::nullopt;
  std::vector<std::size_t> witness(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    GM_CHECK(ctx.chosen[v].has_value());
    witness[static_cast<std::size_t>(v)] = *ctx.chosen[v];
  }
  return witness;
}

}  // namespace granmine
