#ifndef GRANMINE_TAG_CHAINS_H_
#define GRANMINE_TAG_CHAINS_H_

#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"

namespace granmine {

/// Step 1 of the Theorem-3 TAG construction: decomposes a *rooted* event
/// structure into the minimal number of chains such that (1) each chain
/// starts at the root and ends at a variable with no outgoing arcs, and
/// (2) every arc is contained in at least one chain.
///
/// Solved exactly as minimum flow with per-arc lower bound 1 (feasibility
/// via the standard excess transformation + max-flow, minimality by probing
/// the flow value k = 1, 2, ...). The single-variable structure decomposes
/// into one chain containing just the root.
Result<std::vector<std::vector<VariableId>>> DecomposeChains(
    const EventStructure& structure);

}  // namespace granmine

#endif  // GRANMINE_TAG_CHAINS_H_
