#include "granmine/tag/builder.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <string>

#include "granmine/common/check.h"
#include "granmine/tag/chains.h"

namespace granmine {

namespace {

// Per-chain construction data (Step 2, kept implicit: the product is built
// directly from it).
struct ChainInfo {
  std::vector<VariableId> variables;       // X_1 .. X_nl (X_1 = root)
  // clock index (into the product TAG) per granularity of this chain.
  std::map<const Granularity*, int> clock_of;
  std::vector<int> clocks;                 // all clock indices of this chain
  // position_of[v] = j when variables[j-1] == v (1-based position), else 0.
  std::unordered_map<VariableId, int> position_of;
};

std::string TupleName(const std::vector<int>& tuple) {
  std::ostringstream os;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    os << "S" << tuple[i];
  }
  return os.str();
}

}  // namespace

Result<TagBuildResult> BuildTagForStructure(const EventStructure& structure) {
  GM_RETURN_NOT_OK(structure.ValidateDag());
  GM_ASSIGN_OR_RETURN(std::vector<std::vector<VariableId>> chains,
                      DecomposeChains(structure));

  TagBuildResult result;
  result.chains = chains;
  Tag& tag = result.tag;

  // Clocks: one per granularity per chain (Step 2's C_l, kept disjoint
  // across chains as the paper requires).
  std::vector<ChainInfo> infos(chains.size());
  for (std::size_t l = 0; l < chains.size(); ++l) {
    ChainInfo& info = infos[l];
    info.variables = chains[l];
    for (std::size_t j = 0; j < info.variables.size(); ++j) {
      info.position_of[info.variables[j]] = static_cast<int>(j) + 1;
    }
    for (std::size_t j = 1; j < info.variables.size(); ++j) {
      const std::vector<Tcg>* tcgs =
          structure.FindEdge(info.variables[j - 1], info.variables[j]);
      GM_CHECK(tcgs != nullptr) << "chain traverses a missing edge";
      for (const Tcg& tcg : *tcgs) {
        if (info.clock_of.find(tcg.granularity) == info.clock_of.end()) {
          int clock = tag.AddClock(
              tcg.granularity, "x_" + std::string(tcg.granularity->name()) +
                                   "_c" + std::to_string(l));
          info.clock_of[tcg.granularity] = clock;
          info.clocks.push_back(clock);
          result.clock_chain.push_back(static_cast<int>(l));
        }
      }
    }
  }

  // Guard of chain l's j-th transition (consuming variables[j], 1-based).
  auto chain_guard = [&](std::size_t l, int j) {
    const ChainInfo& info = infos[l];
    ClockConstraint guard = ClockConstraint::True();
    if (j >= 2) {
      const std::vector<Tcg>* tcgs = structure.FindEdge(
          info.variables[static_cast<std::size_t>(j) - 2],
          info.variables[static_cast<std::size_t>(j) - 1]);
      GM_CHECK(tcgs != nullptr);
      for (const Tcg& tcg : *tcgs) {
        int clock = info.clock_of.at(tcg.granularity);
        guard = ClockConstraint::And(
            std::move(guard),
            ClockConstraint::Range(clock, tcg.min, tcg.max));
      }
    }
    return guard;
  };

  // Which chains contain each variable (for the Step-3 product rule).
  std::unordered_map<VariableId, std::vector<std::size_t>> chains_of;
  for (std::size_t l = 0; l < chains.size(); ++l) {
    for (VariableId v : chains[l]) chains_of[v].push_back(l);
  }

  // Lazy product construction over position tuples.
  std::map<std::vector<int>, int> state_of_tuple;
  std::vector<std::vector<int>> worklist;
  auto intern_state = [&](const std::vector<int>& tuple) {
    auto it = state_of_tuple.find(tuple);
    if (it != state_of_tuple.end()) return it->second;
    int state = tag.AddState(TupleName(tuple));
    state_of_tuple.emplace(tuple, state);
    worklist.push_back(tuple);
    // ANY self-loop: skip events that are not part of the pattern.
    tag.AddTransition(Tag::Transition{state, state, kAnySymbol, {}, {}});
    return state;
  };

  std::vector<int> start_tuple(chains.size(), 0);
  int start_state = intern_state(start_tuple);
  tag.MarkStart(start_state);

  while (!worklist.empty()) {
    std::vector<int> tuple = std::move(worklist.back());
    worklist.pop_back();
    int from_state = state_of_tuple.at(tuple);
    bool all_final = true;
    for (std::size_t l = 0; l < chains.size(); ++l) {
      if (tuple[l] != static_cast<int>(chains[l].size())) all_final = false;
    }
    if (all_final) {
      tag.MarkAccepting(from_state);
      continue;
    }
    // For each variable X: a product transition exists iff every chain
    // containing X sits exactly at its pre-X position.
    for (const auto& [variable, owner_chains] : chains_of) {
      bool enabled = true;
      for (std::size_t l : owner_chains) {
        if (tuple[l] + 1 != infos[l].position_of.at(variable)) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      std::vector<int> next_tuple = tuple;
      ClockConstraint guard = ClockConstraint::True();
      std::vector<int> resets;
      for (std::size_t l : owner_chains) {
        next_tuple[l] += 1;
        guard = ClockConstraint::And(std::move(guard),
                                     chain_guard(l, next_tuple[l]));
        // Step 2 resets all of the chain's clocks on every transition.
        resets.insert(resets.end(), infos[l].clocks.begin(),
                      infos[l].clocks.end());
      }
      std::sort(resets.begin(), resets.end());
      int to_state = intern_state(next_tuple);
      tag.AddTransition(Tag::Transition{from_state, to_state, variable,
                                        std::move(resets), std::move(guard)});
    }
  }

  GM_RETURN_NOT_OK(tag.Validate());
  return result;
}

Result<TagBuildResult> BuildTagForComplexType(
    const EventStructure& structure, const std::vector<EventTypeId>& phi) {
  if (static_cast<int>(phi.size()) != structure.variable_count()) {
    return Status::Invalid("type assignment size mismatch");
  }
  GM_ASSIGN_OR_RETURN(TagBuildResult result, BuildTagForStructure(structure));
  std::unordered_map<Symbol, Symbol> mapping;
  for (VariableId v = 0; v < structure.variable_count(); ++v) {
    mapping[v] = phi[static_cast<std::size_t>(v)];
  }
  GM_RETURN_NOT_OK(result.tag.SubstituteSymbols(mapping));
  return result;
}

}  // namespace granmine
