#include "granmine/tag/tag.h"

#include <algorithm>
#include <sstream>

#include "granmine/common/check.h"

namespace granmine {

int Tag::AddState(std::string name) {
  state_names_.push_back(std::move(name));
  outgoing_.emplace_back();
  return static_cast<int>(state_names_.size()) - 1;
}

int Tag::AddClock(const Granularity* granularity, std::string name) {
  GM_CHECK(granularity != nullptr);
  clocks_.push_back(Clock{granularity, std::move(name)});
  return static_cast<int>(clocks_.size()) - 1;
}

void Tag::AddTransition(Transition transition) {
  GM_CHECK(transition.from >= 0 && transition.from < state_count());
  GM_CHECK(transition.to >= 0 && transition.to < state_count());
  outgoing_[transition.from].push_back(
      static_cast<int>(transitions_.size()));
  transitions_.push_back(std::move(transition));
}

void Tag::MarkStart(int state) {
  GM_CHECK(state >= 0 && state < state_count());
  if (std::find(start_states_.begin(), start_states_.end(), state) ==
      start_states_.end()) {
    start_states_.push_back(state);
  }
}

void Tag::MarkAccepting(int state) {
  GM_CHECK(state >= 0 && state < state_count());
  if (std::find(accepting_.begin(), accepting_.end(), state) ==
      accepting_.end()) {
    accepting_.push_back(state);
  }
}

const std::string& Tag::state_name(int state) const {
  GM_CHECK(state >= 0 && state < state_count());
  return state_names_[static_cast<std::size_t>(state)];
}

bool Tag::IsAccepting(int state) const {
  return std::find(accepting_.begin(), accepting_.end(), state) !=
         accepting_.end();
}

const std::vector<int>& Tag::OutgoingOf(int state) const {
  GM_CHECK(state >= 0 && state < state_count());
  return outgoing_[static_cast<std::size_t>(state)];
}

Status Tag::Validate() const {
  if (start_states_.empty()) {
    return Status::Invalid("TAG has no start state");
  }
  for (const Transition& t : transitions_) {
    for (int clock : t.resets) {
      if (clock < 0 || clock >= static_cast<int>(clocks_.size())) {
        return Status::Invalid("transition resets an unknown clock");
      }
    }
    for (int clock : t.guard.MentionedClocks()) {
      if (clock < 0 || clock >= static_cast<int>(clocks_.size())) {
        return Status::Invalid("guard mentions an unknown clock");
      }
    }
    if (t.symbol < kAnySymbol) {
      return Status::Invalid("invalid transition symbol");
    }
  }
  return Status::OK();
}

Status Tag::SubstituteSymbols(
    const std::unordered_map<Symbol, Symbol>& mapping) {
  for (Transition& t : transitions_) {
    if (t.symbol == kAnySymbol) continue;
    auto it = mapping.find(t.symbol);
    if (it == mapping.end()) {
      return Status::Invalid("no mapping for symbol " +
                             std::to_string(t.symbol));
    }
    t.symbol = it->second;
  }
  return Status::OK();
}

std::string Tag::ToString() const {
  std::ostringstream os;
  os << "TAG(" << state_count() << " states, " << clocks_.size()
     << " clocks, " << transitions_.size() << " transitions)";
  os << "\n  start:";
  for (int s : start_states_) os << " " << state_name(s);
  os << "\n  accepting:";
  for (int s : accepting_) os << " " << state_name(s);
  for (std::size_t i = 0; i < clocks_.size(); ++i) {
    os << "\n  clock x" << i << " = " << clocks_[i].name << " ("
       << clocks_[i].granularity->name() << ")";
  }
  for (const Transition& t : transitions_) {
    os << "\n  " << state_name(t.from) << " --";
    if (t.symbol == kAnySymbol) {
      os << "ANY";
    } else {
      os << t.symbol;
    }
    if (!t.guard.IsTriviallyTrue()) os << " [" << t.guard.ToString() << "]";
    if (!t.resets.empty()) {
      os << " {reset";
      for (int c : t.resets) os << " x" << c;
      os << "}";
    }
    os << "--> " << state_name(t.to);
  }
  return os.str();
}

}  // namespace granmine
