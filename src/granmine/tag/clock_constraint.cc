#include "granmine/tag/clock_constraint.h"

#include <algorithm>
#include <sstream>

#include "granmine/common/check.h"

namespace granmine {

ClockConstraint ClockConstraint::True() {
  ClockConstraint c;
  c.kind_ = Kind::kTrue;
  return c;
}

ClockConstraint ClockConstraint::AtMost(int clock, std::int64_t k) {
  GM_CHECK(clock >= 0);
  ClockConstraint c;
  c.kind_ = Kind::kAtMost;
  c.clock_ = clock;
  c.bound_ = k;
  return c;
}

ClockConstraint ClockConstraint::AtLeast(int clock, std::int64_t k) {
  GM_CHECK(clock >= 0);
  ClockConstraint c;
  c.kind_ = Kind::kAtLeast;
  c.clock_ = clock;
  c.bound_ = k;
  return c;
}

ClockConstraint ClockConstraint::Range(int clock, std::int64_t lo,
                                       std::int64_t hi) {
  return And(AtLeast(clock, lo), AtMost(clock, hi));
}

ClockConstraint ClockConstraint::And(ClockConstraint a, ClockConstraint b) {
  if (a.IsTriviallyTrue()) return b;
  if (b.IsTriviallyTrue()) return a;
  ClockConstraint c;
  c.kind_ = Kind::kAnd;
  c.children_.push_back(std::move(a));
  c.children_.push_back(std::move(b));
  return c;
}

ClockConstraint ClockConstraint::Or(ClockConstraint a, ClockConstraint b) {
  ClockConstraint c;
  c.kind_ = Kind::kOr;
  c.children_.push_back(std::move(a));
  c.children_.push_back(std::move(b));
  return c;
}

ClockConstraint ClockConstraint::Not(ClockConstraint a) {
  ClockConstraint c;
  c.kind_ = Kind::kNot;
  c.children_.push_back(std::move(a));
  return c;
}

bool ClockConstraint::IsTriviallyTrue() const { return kind_ == Kind::kTrue; }

std::optional<bool> ClockConstraint::Evaluate(
    std::span<const std::optional<std::int64_t>> values) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kAtMost: {
      GM_CHECK(clock_ >= 0 && clock_ < static_cast<int>(values.size()));
      const std::optional<std::int64_t>& v = values[clock_];
      if (!v.has_value()) return std::nullopt;
      return *v <= bound_;
    }
    case Kind::kAtLeast: {
      GM_CHECK(clock_ >= 0 && clock_ < static_cast<int>(values.size()));
      const std::optional<std::int64_t>& v = values[clock_];
      if (!v.has_value()) return std::nullopt;
      return bound_ <= *v;
    }
    case Kind::kAnd: {
      bool unknown = false;
      for (const ClockConstraint& child : children_) {
        std::optional<bool> r = child.Evaluate(values);
        if (r == std::optional<bool>(false)) return false;
        if (!r.has_value()) unknown = true;
      }
      if (unknown) return std::nullopt;
      return true;
    }
    case Kind::kOr: {
      bool unknown = false;
      for (const ClockConstraint& child : children_) {
        std::optional<bool> r = child.Evaluate(values);
        if (r == std::optional<bool>(true)) return true;
        if (!r.has_value()) unknown = true;
      }
      if (unknown) return std::nullopt;
      return false;
    }
    case Kind::kNot: {
      std::optional<bool> r = children_[0].Evaluate(values);
      if (!r.has_value()) return std::nullopt;
      return !*r;
    }
  }
  return std::nullopt;
}

bool ClockConstraint::ExpiredForever(
    std::span<const std::optional<std::int64_t>> values) const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kAtLeast:  // values only grow: satisfiable eventually
    case Kind::kNot:      // conservatively unknown
      return false;
    case Kind::kAtMost: {
      const std::optional<std::int64_t>& v = values[clock_];
      return v.has_value() && *v > bound_;
    }
    case Kind::kAnd:
      for (const ClockConstraint& child : children_) {
        if (child.ExpiredForever(values)) return true;
      }
      return false;
    case Kind::kOr:
      for (const ClockConstraint& child : children_) {
        if (!child.ExpiredForever(values)) return false;
      }
      return true;
  }
  return false;
}

std::vector<int> ClockConstraint::MentionedClocks() const {
  std::vector<int> out;
  if (kind_ == Kind::kAtMost || kind_ == Kind::kAtLeast) {
    out.push_back(clock_);
  }
  for (const ClockConstraint& child : children_) {
    std::vector<int> sub = child.MentionedClocks();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ClockConstraint::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      os << "true";
      break;
    case Kind::kAtMost:
      os << "x" << clock_ << " <= " << bound_;
      break;
    case Kind::kAtLeast:
      os << bound_ << " <= x" << clock_;
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind_ == Kind::kAnd ? " && " : " || ";
      os << "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << sep;
        os << children_[i].ToString();
      }
      os << ")";
      break;
    }
    case Kind::kNot:
      os << "!(" << children_[0].ToString() << ")";
      break;
  }
  return os.str();
}

}  // namespace granmine
