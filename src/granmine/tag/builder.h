#ifndef GRANMINE_TAG_BUILDER_H_
#define GRANMINE_TAG_BUILDER_H_

#include <unordered_map>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/sequence/event.h"
#include "granmine/tag/tag.h"

namespace granmine {

/// Output of the Theorem-3 construction.
struct TagBuildResult {
  /// The product TAG. Symbols are *variable ids* of the structure (a
  /// "skeleton": one skeleton serves every candidate type assignment); use
  /// `Tag::SubstituteSymbols` or a matcher-side symbol map for Step 4.
  Tag tag;
  /// The chain decomposition used (Step 1); `chains.size()` is the paper's
  /// parameter p in the Theorem-4 complexity bound.
  std::vector<std::vector<VariableId>> chains;
  /// Per-clock: which chain the clock belongs to.
  std::vector<int> clock_chain;
};

/// Builds the TAG of Theorem 3 for a rooted event structure:
///   Step 1: minimal chain decomposition (chains.h);
///   Step 2: one linear TAG per chain, a clock per granularity per chain,
///           all chain clocks reset on every chain transition, guards from
///           the TCGs of the traversed edge;
///   Step 3: lazy cross-product of the chain TAGs — a transition on symbol
///           X exists only in states where *every* chain containing X is at
///           its pre-X position (this makes shared variables consume the
///           same event), plus ANY self-loops to skip unrelated events;
///   Step 4 (separate): symbol substitution through a type assignment φ.
Result<TagBuildResult> BuildTagForStructure(const EventStructure& structure);

/// Convenience for Theorem 3 verbatim: builds the skeleton and substitutes
/// φ (`phi[v]` = event type of variable v) into the symbols, producing the
/// TAG of the complex event type (structure, φ).
Result<TagBuildResult> BuildTagForComplexType(
    const EventStructure& structure, const std::vector<EventTypeId>& phi);

}  // namespace granmine

#endif  // GRANMINE_TAG_BUILDER_H_
