#ifndef GRANMINE_TAG_MATCHER_TYPES_H_
#define GRANMINE_TAG_MATCHER_TYPES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/math.h"
#include "granmine/sequence/event.h"
#include "granmine/tag/tag.h"

namespace granmine {

/// Maps each event type to the TAG symbols an event of that type may drive.
/// For a symbol-substituted TAG this is the identity; for a *skeleton* TAG
/// (symbols = variable ids) under a candidate assignment φ it lists the
/// variables φ maps to each type — this is how one skeleton serves all
/// O(n^s) candidate complex types in the miner.
struct SymbolMap {
  std::vector<std::vector<Symbol>> symbols_by_type;

  /// type i -> symbol i.
  static SymbolMap Identity(int type_count);
  /// type E -> { v : phi[v] == E }.
  static SymbolMap FromAssignment(const std::vector<EventTypeId>& phi,
                                  int type_count);

  std::span<const Symbol> SymbolsFor(EventTypeId type) const;
};

struct MatchOptions {
  /// When true, the first event of the span must be consumed by a non-ANY
  /// transition out of a start state — it is the reference occurrence the
  /// §5 discovery procedure anchors the automaton on.
  bool anchored = false;
  /// Stop scanning events whose timestamp exceeds this (kInfinity = none).
  /// The §5 optimizations derive such deadlines from propagation windows.
  /// This deadline is *sound* (later events provably cannot matter), so
  /// truncation still yields a definite kRejected — unlike the governor
  /// below, whose trips yield kUnknown.
  TimePoint deadline = kInfinity;
  /// Configuration budget; exceeding it stops the run with
  /// MatchOutcome::kUnknown and stats->budget_exhausted set.
  std::uint64_t max_configurations = 50'000'000;
  /// Shared per-request governor (deadline / step budget / cancellation);
  /// may be null. A governor trip stops the run with kUnknown and records
  /// the cause in stats->stopped. Checked under GovernorScope::kMatch with
  /// the run's configuration count as the deterministic index.
  const ResourceGovernor* governor = nullptr;
};

/// The three-valued result of a TAG run. An interrupted run is *unknown*,
/// never "rejected": treating exhaustion as rejection silently corrupts
/// mined frequencies (see docs/robustness.md).
enum class MatchOutcome {
  kRejected = 0,  ///< no run over the events reaches an accepting state
  kAccepted,      ///< some run reaches an accepting state
  kUnknown,       ///< stopped early (budget / governor) before deciding
};

/// Instrumentation for the Theorem-4 complexity experiments.
struct MatchStats {
  std::uint64_t configurations = 0;  ///< configs created over the run
  std::size_t peak_frontier = 0;     ///< max simultaneous configs
  std::uint64_t events_scanned = 0;
  /// Guard-satisfied labeled transitions taken (successors generated,
  /// including duplicates later deduplicated). Plain field bumps in the
  /// kernel; the obs layer flushes them in batch at scan/snapshot merges.
  std::uint64_t transitions = 0;
  /// AdvanceGroup invocations this run.
  std::uint64_t groups_advanced = 0;
  /// The run hit its local max_configurations budget (outcome kUnknown).
  bool budget_exhausted = false;
  /// Why the run stopped early: kStepBudget for the local configuration
  /// budget, otherwise the governor's cause. kNone for decided runs.
  StopCause stopped = StopCause::kNone;
};

}  // namespace granmine

#endif  // GRANMINE_TAG_MATCHER_TYPES_H_
