#ifndef GRANMINE_IO_TEXT_FORMAT_H_
#define GRANMINE_IO_TEXT_FORMAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/granularity/system.h"
#include "granmine/sequence/event.h"
#include "granmine/sequence/sequence.h"

namespace granmine {

/// Parses an event-structure description. One constraint per line:
///
///     # the Figure-1(a) structure
///     rise -> report : [1,1] b-day
///     report -> fall : [0,1] week
///     rise -> hp     : [0,5] b-day
///     hp -> fall     : [0,8] hour
///
/// Variables are declared implicitly in order of first mention; granularity
/// names are resolved against `system`; `inf` is accepted as an upper
/// bound; `#` starts a comment. On success `variable_names` (if given)
/// receives the names in variable-id order.
///
/// Custom granularities may be declared before use with
/// `granularity NAME = <expr>` lines (see ParseGranularityDefinition):
///
///     granularity shift       = group(hour, 8)
///     granularity fiscal-year = group(month, 12, 3)
///     open -> close : [0,0] shift
Result<EventStructure> ParseEventStructure(
    std::string_view text, const GranularitySystem& system,
    std::vector<std::string>* variable_names = nullptr);

/// Overload registering `granularity NAME = ...` declarations into a
/// mutable system (the const overload rejects them).
Result<EventStructure> ParseEventStructure(
    std::string_view text, GranularitySystem* system,
    std::vector<std::string>* variable_names = nullptr);

/// Parses one granularity definition expression and registers it:
///
///     uniform(WIDTH[, OFFSET])          fixed-width ticks
///     group(BASE, K[, PHASE])           K consecutive BASE ticks
///     groupby(INNER, OUTER)             INNER ticks grouped by OUTER
///     filter(BASE, PERIOD, o1 o2 ...)   periodic offset selection
///     synthetic(PERIOD, a-b c-d ...)    explicit tick intervals per period
///
/// Returns the registered granularity.
Result<const Granularity*> ParseGranularityDefinition(
    std::string_view name, std::string_view expression,
    GranularitySystem* system);

/// Parses an event sequence, one event per line:
///
///     1970-01-05 10:00:00  IBM-rise
///     1970-01-06           IBM-earnings-report   # midnight
///     3600                 tick                  # raw seconds also fine
///
/// Timestamps are either a raw integer (primitive instants) or a civil
/// "YYYY-MM-DD[ HH:MM:SS]" converted with `units_per_day` instants per day.
/// Type names are interned into `registry`.
Result<EventSequence> ParseEventSequence(std::string_view text,
                                         EventTypeRegistry* registry,
                                         std::int64_t units_per_day = 86400);

/// "1970-01-05 Mon 10:00:00" for second-based instants (units_per_day =
/// 86400); "1970-01-05 Mon" for day-grained ones (units_per_day = 1).
std::string FormatTimePoint(TimePoint t, std::int64_t units_per_day = 86400);

/// Parses "YYYY-MM-DD[ HH:MM:SS]" into an instant.
Result<TimePoint> ParseTimePoint(std::string_view text,
                                 std::int64_t units_per_day = 86400);

}  // namespace granmine

#endif  // GRANMINE_IO_TEXT_FORMAT_H_
