#include "granmine/io/dot.h"

#include <functional>
#include <sstream>

namespace granmine {

namespace {

// Escapes double quotes for DOT string literals.
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string EventStructureToDot(const EventStructure& structure) {
  std::ostringstream os;
  os << "digraph event_structure {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (VariableId v = 0; v < structure.variable_count(); ++v) {
    os << "  v" << v << " [label=\""
       << Escape(structure.variable_name(v)) << "\"];\n";
  }
  for (const EventStructure::Edge& edge : structure.edges()) {
    os << "  v" << edge.from << " -> v" << edge.to << " [label=\"";
    for (std::size_t i = 0; i < edge.tcgs.size(); ++i) {
      if (i > 0) os << "\\n";
      os << Escape(edge.tcgs[i].ToString());
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string TagToDot(const Tag& tag,
                     const std::function<std::string(Symbol)>& symbol_name) {
  std::ostringstream os;
  os << "digraph tag {\n  rankdir=LR;\n";
  for (int s = 0; s < tag.state_count(); ++s) {
    os << "  s" << s << " [label=\"" << Escape(tag.state_name(s)) << "\"";
    if (tag.IsAccepting(s)) os << ", shape=doublecircle";
    os << "];\n";
  }
  for (int s : tag.start_states()) {
    os << "  start" << s << " [shape=point];\n";
    os << "  start" << s << " -> s" << s << ";\n";
  }
  for (const Tag::Transition& t : tag.transitions()) {
    os << "  s" << t.from << " -> s" << t.to << " [label=\"";
    if (t.symbol == kAnySymbol) {
      os << "ANY";
    } else if (symbol_name) {
      os << Escape(symbol_name(t.symbol));
    } else {
      os << t.symbol;
    }
    if (!t.guard.IsTriviallyTrue()) {
      os << "\\n" << Escape(t.guard.ToString());
    }
    if (!t.resets.empty()) {
      os << "\\nreset";
      for (int c : t.resets) os << " x" << c;
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace granmine
