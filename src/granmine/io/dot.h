#ifndef GRANMINE_IO_DOT_H_
#define GRANMINE_IO_DOT_H_

#include <functional>
#include <string>

#include "granmine/constraint/event_structure.h"
#include "granmine/tag/tag.h"

namespace granmine {

/// Graphviz rendering of an event structure: one node per variable, one
/// edge per constraint edge labeled with its TCG conjunction.
std::string EventStructureToDot(const EventStructure& structure);

/// Graphviz rendering of a TAG: states (start = diamond, accepting =
/// double circle), transitions labeled with symbol, guard and resets.
/// `symbol_name` (optional) maps symbols to labels; ANY renders as "ANY".
std::string TagToDot(const Tag& tag,
                     const std::function<std::string(Symbol)>& symbol_name =
                         nullptr);

}  // namespace granmine

#endif  // GRANMINE_IO_DOT_H_
