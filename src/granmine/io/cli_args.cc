#include "granmine/io/cli_args.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace granmine {

namespace {

Result<std::int64_t> ParseInt(const std::string& flag,
                              const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::Invalid("--" + flag + " expects an integer, got '" + text +
                           "'");
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace

Result<CliArgs> ParseCliArgs(int argc, const char* const* argv) {
  if (argc < 2) return Status::Invalid("missing command");
  CliArgs args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--naive") {
      args.naive = true;
    } else if (flag == "--exact") {
      args.exact = true;
    } else if (flag == "--tag") {
      args.tag = true;
    } else if (flag == "--explain") {
      args.explain = true;
    } else if (flag == "--degrade") {
      args.degrade = true;
    } else if (flag == "--pin" && i + 1 < argc) {
      args.pins.emplace_back(argv[++i]);
    } else if (flag.rfind("--", 0) == 0 && flag.find('=') != std::string::npos) {
      std::size_t eq = flag.find('=');
      std::string name = flag.substr(2, eq - 2);
      std::string value = flag.substr(eq + 1);
      if (name == "structure") args.structures.push_back(value);
      args.flags[std::move(name)] = std::move(value);
    } else if (flag.rfind("--", 0) == 0 && i + 1 < argc) {
      std::string name = flag.substr(2);
      std::string value = argv[++i];
      if (name == "structure") args.structures.push_back(value);
      args.flags[std::move(name)] = std::move(value);
    } else {
      return Status::Invalid("unknown flag '" + flag + "'");
    }
  }
  return args;
}

Result<int> ParseThreadCount(const std::string& text) {
  GM_ASSIGN_OR_RETURN(std::int64_t threads, ParseInt("threads", text));
  if (threads < 1 || threads > 1024) {
    return Status::Invalid(
        "--threads expects an integer in [1, 1024] (omit the flag for the "
        "default), got '" +
        text + "'");
  }
  return static_cast<int>(threads);
}

Result<std::int64_t> ParsePositiveInt(const std::string& flag,
                                      const std::string& text) {
  GM_ASSIGN_OR_RETURN(std::int64_t value, ParseInt(flag, text));
  if (value <= 0) {
    return Status::Invalid("--" + flag + " expects a positive integer, got '" +
                           text + "'");
  }
  return value;
}

Result<std::int64_t> ParseNonNegativeInt(const std::string& flag,
                                         const std::string& text) {
  GM_ASSIGN_OR_RETURN(std::int64_t value, ParseInt(flag, text));
  if (value < 0) {
    return Status::Invalid("--" + flag +
                           " expects a non-negative integer, got '" + text +
                           "'");
  }
  return value;
}

Result<double> ParseConfidence(const std::string& flag,
                               const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !(value >= 0.0 && value <= 1.0)) {
    return Status::Invalid("--" + flag + " expects a number in [0, 1], got '" +
                           text + "'");
  }
  return value;
}

Result<std::string> ParseOutputPath(const std::string& flag,
                                    const std::string& text) {
  if (text.empty()) {
    return Status::Invalid("--" + flag + " expects a file path");
  }
  bool existed = false;
  if (std::FILE* probe = std::fopen(text.c_str(), "rb"); probe != nullptr) {
    existed = true;
    std::fclose(probe);
  }
  // Append keeps an existing file's contents intact (a resumable checkpoint
  // must survive its own validation).
  std::FILE* probe = std::fopen(text.c_str(), "ab");
  if (probe == nullptr) {
    return Status::Invalid("--" + flag + ": cannot open '" + text +
                           "' for writing");
  }
  std::fclose(probe);
  if (!existed) std::remove(text.c_str());
  return text;
}

Result<StreamCheckpointArgs> ParseStreamCheckpoint(const CliArgs& args) {
  StreamCheckpointArgs checkpoint;
  const auto every = args.flags.find("checkpoint-every");
  const auto path = args.flags.find("checkpoint-path");
  if (every == args.flags.end() && path == args.flags.end()) {
    return checkpoint;
  }
  if (every == args.flags.end() || path == args.flags.end()) {
    return Status::Invalid(
        "--checkpoint-every and --checkpoint-path must be given together");
  }
  GM_ASSIGN_OR_RETURN(checkpoint.every,
                      ParsePositiveInt("checkpoint-every", every->second));
  GM_ASSIGN_OR_RETURN(checkpoint.path,
                      ParseOutputPath("checkpoint-path", path->second));
  return checkpoint;
}

Result<EngineFlags> ParseEngineFlags(const CliArgs& args) {
  return ParseEngineFlags(args, std::thread::hardware_concurrency());
}

Result<EngineFlags> ParseEngineFlags(const CliArgs& args,
                                     unsigned hardware_threads) {
  EngineFlags flags;
  if (auto it = args.flags.find("threads"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(int threads, ParseThreadCount(it->second));
    // Clamp (don't reject) oversubscription: the value is inside the flag's
    // [1, 1024] contract, it just buys nothing past the core count. The
    // clamp lives here — not in ParseThreadCount — so the parser's contract
    // stays machine-independent and unit-testable.
    if (hardware_threads > 0 &&
        threads > static_cast<int>(hardware_threads)) {
      // Recorded, not printed: the binary decides whether the warning goes
      // to stderr or through the structured logger (or both).
      flags.threads_clamp_warning =
          "--threads " + std::to_string(threads) +
          " exceeds the machine's " + std::to_string(hardware_threads) +
          " hardware threads; clamping to " +
          std::to_string(hardware_threads);
      threads = static_cast<int>(hardware_threads);
    }
    flags.threads = threads;
  }
  if (auto it = args.flags.find("deadline-ms"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(std::int64_t deadline_ms,
                        ParsePositiveInt("deadline-ms", it->second));
    flags.deadline_ms = deadline_ms;
  }
  if (auto it = args.flags.find("mem-budget-mb"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(std::int64_t mem_budget_mb,
                        ParsePositiveInt("mem-budget-mb", it->second));
    flags.mem_budget_mb = mem_budget_mb;
  }
  if (auto it = args.flags.find("max-queue"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(std::int64_t max_queue,
                        ParseNonNegativeInt("max-queue", it->second));
    flags.max_queue = max_queue;
  }
  flags.degrade = args.degrade;
  if (auto it = args.flags.find("metrics-out"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(flags.metrics_out,
                        ParseOutputPath("metrics-out", it->second));
  }
  if (auto it = args.flags.find("trace-out"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(flags.trace_out,
                        ParseOutputPath("trace-out", it->second));
  }
  if (auto it = args.flags.find("log-out"); it != args.flags.end()) {
    GM_ASSIGN_OR_RETURN(flags.log_out, ParseOutputPath("log-out", it->second));
  }
  if (auto it = args.flags.find("log-level"); it != args.flags.end()) {
    obs::LogLevel level;
    if (!obs::ParseLogLevel(it->second, &level)) {
      return Status::Invalid(
          "--log-level expects debug, info, warn or error, got '" +
          it->second + "'");
    }
    flags.log_level = level;
  }
  return flags;
}

Result<StreamWindowArgs> ParseStreamWindow(const std::string& window_text,
                                           const std::string& slide_text,
                                           const std::string* theta_text) {
  StreamWindowArgs args;
  GM_ASSIGN_OR_RETURN(args.window, ParsePositiveInt("window", window_text));
  GM_ASSIGN_OR_RETURN(args.slide, ParsePositiveInt("slide", slide_text));
  if (args.window < args.slide) {
    return Status::Invalid(
        "--window (" + window_text + ") must be at least --slide (" +
        slide_text + "): a shorter window would evict events before the "
        "snapshot that should report them");
  }
  if (theta_text != nullptr) {
    GM_ASSIGN_OR_RETURN(args.theta, ParseConfidence("theta", *theta_text));
  }
  return args;
}

}  // namespace granmine
