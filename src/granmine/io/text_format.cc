#include "granmine/io/text_format.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <map>
#include <sstream>

#include "granmine/common/check.h"
#include "granmine/common/math.h"
#include "granmine/granularity/civil_calendar.h"

namespace granmine {

namespace {

std::string_view StripComment(std::string_view line) {
  std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return line;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(
                              text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

Result<std::int64_t> ParseInt(std::string_view token) {
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::Invalid("expected an integer, found '" +
                           std::string(token) + "'");
  }
  return value;
}

// 1-based column of `token` inside `raw`. Valid because every view the
// parsers hand around (Trim/substr results) points into the original line's
// buffer; falls back to column 1 for a token from elsewhere.
std::size_t ColumnOf(std::string_view raw, std::string_view token) {
  if (token.data() != nullptr && raw.data() != nullptr &&
      token.data() >= raw.data() &&
      token.data() <= raw.data() + raw.size()) {
    return static_cast<std::size_t>(token.data() - raw.data()) + 1;
  }
  return 1;
}

}  // namespace

namespace {

Result<EventStructure> ParseEventStructureImpl(
    std::string_view text, const GranularitySystem& system,
    GranularitySystem* mutable_system,
    std::vector<std::string>* variable_names);

}  // namespace

Result<EventStructure> ParseEventStructure(
    std::string_view text, const GranularitySystem& system,
    std::vector<std::string>* variable_names) {
  return ParseEventStructureImpl(text, system, nullptr, variable_names);
}

Result<EventStructure> ParseEventStructure(
    std::string_view text, GranularitySystem* system,
    std::vector<std::string>* variable_names) {
  GM_CHECK(system != nullptr);
  return ParseEventStructureImpl(text, *system, system, variable_names);
}

namespace {

Result<EventStructure> ParseEventStructureImpl(
    std::string_view text, const GranularitySystem& system,
    GranularitySystem* mutable_system,
    std::vector<std::string>* variable_names) {
  EventStructure structure;
  std::map<std::string, VariableId, std::less<>> ids;
  std::vector<std::string> names;
  auto intern = [&](std::string_view name) {
    auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    VariableId id = structure.AddVariable(std::string(name));
    ids.emplace(std::string(name), id);
    names.emplace_back(name);
    return id;
  };

  int line_number = 0;
  for (std::string_view raw : SplitLines(text)) {
    ++line_number;
    std::string_view line = Trim(StripComment(raw));
    if (line.empty()) continue;
    auto fail = [&](const std::string& what) {
      return Status::Invalid("line " + std::to_string(line_number) + ": " +
                             what);
    };
    // Same, with the offending token's column — ParseInt and name-lookup
    // failures used to surface bare ("expected an integer, found 'x'"),
    // which is unfindable in a structure file of any size.
    auto fail_at = [&](std::string_view token, const std::string& what) {
      return Status::Invalid("line " + std::to_string(line_number) +
                             ", column " +
                             std::to_string(ColumnOf(raw, token)) + ": " +
                             what);
    };
    // Custom granularity declarations: "granularity NAME = EXPR".
    constexpr std::string_view kKeyword = "granularity ";
    if (line.rfind(kKeyword, 0) == 0) {
      if (mutable_system == nullptr) {
        return fail("granularity declarations need a mutable system");
      }
      std::string_view rest = Trim(line.substr(kKeyword.size()));
      std::size_t eq = rest.find('=');
      if (eq == std::string_view::npos) return fail("missing '='");
      std::string_view gran_name = Trim(rest.substr(0, eq));
      std::string_view expr = Trim(rest.substr(eq + 1));
      Result<const Granularity*> defined =
          ParseGranularityDefinition(gran_name, expr, mutable_system);
      if (!defined.ok()) return fail(defined.status().message());
      continue;
    }
    std::size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) return fail("missing '->'");
    std::size_t colon = line.find(':', arrow);
    if (colon == std::string_view::npos) return fail("missing ':'");
    std::string_view from_name = Trim(line.substr(0, arrow));
    std::string_view to_name = Trim(line.substr(arrow + 2, colon - arrow - 2));
    if (from_name.empty() || to_name.empty()) {
      return fail("missing variable name");
    }
    VariableId from = intern(from_name);
    VariableId to = intern(to_name);

    std::string_view rest = line.substr(colon + 1);
    // Comma-separated TCGs: "[m,n] gran".
    while (true) {
      rest = Trim(rest);
      if (rest.empty()) break;
      if (rest.front() != '[') return fail_at(rest, "expected '['");
      std::size_t comma = rest.find(',');
      std::size_t close = rest.find(']');
      if (comma == std::string_view::npos || close == std::string_view::npos ||
          comma > close) {
        return fail_at(rest, "malformed interval");
      }
      std::string_view lo_token = Trim(rest.substr(1, comma - 1));
      Result<std::int64_t> lo_parsed = ParseInt(lo_token);
      if (!lo_parsed.ok()) {
        return fail_at(lo_token, lo_parsed.status().message());
      }
      std::int64_t lo = *lo_parsed;
      std::string_view hi_token = Trim(rest.substr(comma + 1, close - comma - 1));
      std::int64_t hi;
      if (hi_token == "inf") {
        hi = kInfinity;
      } else {
        Result<std::int64_t> hi_parsed = ParseInt(hi_token);
        if (!hi_parsed.ok()) {
          return fail_at(hi_token, hi_parsed.status().message());
        }
        hi = *hi_parsed;
      }
      rest = rest.substr(close + 1);
      std::size_t next = rest.find('[');
      std::string_view gran_name;
      if (next == std::string_view::npos) {
        std::size_t sep = rest.find(',');
        gran_name = Trim(sep == std::string_view::npos ? rest
                                                       : rest.substr(0, sep));
        rest = sep == std::string_view::npos ? std::string_view()
                                             : rest.substr(sep + 1);
      } else {
        std::string_view upto = rest.substr(0, next);
        std::size_t sep = upto.rfind(',');
        if (sep == std::string_view::npos) return fail("missing ','");
        gran_name = Trim(upto.substr(0, sep));
        rest = rest.substr(sep + 1);
      }
      if (gran_name.empty()) return fail("missing granularity name");
      const Granularity* granularity = system.Find(gran_name);
      if (granularity == nullptr) {
        return fail_at(gran_name, "unknown granularity '" +
                                      std::string(gran_name) + "'");
      }
      Status added =
          structure.AddConstraint(from, to, Tcg::Of(lo, hi, granularity));
      if (!added.ok()) return fail(added.message());
    }
  }
  if (variable_names != nullptr) *variable_names = std::move(names);
  return structure;
}

}  // namespace

Result<const Granularity*> ParseGranularityDefinition(
    std::string_view name, std::string_view expression,
    GranularitySystem* system) {
  GM_CHECK(system != nullptr);
  name = Trim(name);
  expression = Trim(expression);
  if (name.empty()) return Status::Invalid("empty granularity name");
  if (system->Find(name) != nullptr) {
    return Status::Invalid("granularity '" + std::string(name) +
                           "' already exists");
  }
  std::size_t open = expression.find('(');
  if (open == std::string_view::npos || expression.back() != ')') {
    return Status::Invalid("expected FUNC(...), found '" +
                           std::string(expression) + "'");
  }
  std::string_view func = Trim(expression.substr(0, open));
  std::string_view body =
      expression.substr(open + 1, expression.size() - open - 2);
  // Split on commas (top level only — no nesting in this grammar).
  std::vector<std::string_view> args;
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string_view::npos) comma = body.size();
    std::string_view arg = Trim(body.substr(start, comma - start));
    if (!arg.empty()) args.push_back(arg);
    start = comma + 1;
  }
  auto base_of = [&](std::string_view base_name)
      -> Result<const Granularity*> {
    const Granularity* base = system->Find(Trim(base_name));
    if (base == nullptr) {
      return Status::Invalid("unknown base granularity '" +
                             std::string(base_name) + "'");
    }
    return base;
  };
  // Add* returns nullptr (with the reason in last_add_error) when the
  // system has been frozen; surface that as a parse error.
  auto added = [&](const Granularity* g) -> Result<const Granularity*> {
    if (g == nullptr) return system->last_add_error();
    return g;
  };

  if (func == "uniform") {
    if (args.empty() || args.size() > 2) {
      return Status::Invalid("uniform(WIDTH[, OFFSET])");
    }
    GM_ASSIGN_OR_RETURN(std::int64_t width, ParseInt(args[0]));
    std::int64_t offset = 0;
    if (args.size() == 2) {
      GM_ASSIGN_OR_RETURN(offset, ParseInt(args[1]));
    }
    if (width < 1) return Status::Invalid("width must be >= 1");
    return added(system->AddUniform(std::string(name), width, offset));
  }
  if (func == "group") {
    if (args.size() < 2 || args.size() > 3) {
      return Status::Invalid("group(BASE, K[, PHASE])");
    }
    GM_ASSIGN_OR_RETURN(const Granularity* base, base_of(args[0]));
    GM_ASSIGN_OR_RETURN(std::int64_t k, ParseInt(args[1]));
    std::int64_t phase = 0;
    if (args.size() == 3) {
      GM_ASSIGN_OR_RETURN(phase, ParseInt(args[2]));
    }
    if (k < 1 || phase < 0) return Status::Invalid("need K >= 1, PHASE >= 0");
    return added(system->AddGroup(std::string(name), base, k, phase));
  }
  if (func == "groupby") {
    if (args.size() != 2) return Status::Invalid("groupby(INNER, OUTER)");
    GM_ASSIGN_OR_RETURN(const Granularity* inner, base_of(args[0]));
    GM_ASSIGN_OR_RETURN(const Granularity* outer, base_of(args[1]));
    return added(system->AddGroupBy(std::string(name), inner, outer));
  }
  if (func == "filter") {
    if (args.size() != 3) {
      return Status::Invalid("filter(BASE, PERIOD, o1 o2 ...)");
    }
    GM_ASSIGN_OR_RETURN(const Granularity* base, base_of(args[0]));
    GM_ASSIGN_OR_RETURN(std::int64_t period, ParseInt(args[1]));
    PeriodicPattern pattern;
    pattern.base_period = period;
    std::istringstream offsets{std::string(args[2])};
    std::int64_t offset;
    while (offsets >> offset) pattern.kept.push_back(offset);
    if (pattern.kept.empty()) return Status::Invalid("no kept offsets");
    std::sort(pattern.kept.begin(), pattern.kept.end());
    for (std::int64_t o : pattern.kept) {
      if (o < 0 || o >= period) return Status::Invalid("offset out of range");
    }
    return added(system->AddFilter(std::string(name), base,
                                   std::move(pattern)));
  }
  if (func == "synthetic") {
    if (args.size() != 2) {
      return Status::Invalid("synthetic(PERIOD, a-b c-d ...)");
    }
    GM_ASSIGN_OR_RETURN(std::int64_t period, ParseInt(args[0]));
    std::vector<TimeSpan> ticks;
    std::istringstream pieces{std::string(args[1])};
    std::string piece;
    while (pieces >> piece) {
      std::size_t dash = piece.find('-');
      if (dash == std::string::npos) {
        return Status::Invalid("expected a-b interval, found '" + piece +
                               "'");
      }
      GM_ASSIGN_OR_RETURN(std::int64_t a,
                          ParseInt(std::string_view(piece).substr(0, dash)));
      GM_ASSIGN_OR_RETURN(
          std::int64_t b,
          ParseInt(std::string_view(piece).substr(dash + 1)));
      if (a > b || a < 0 || b >= period) {
        return Status::Invalid("interval out of range: " + piece);
      }
      ticks.push_back(TimeSpan::Of(a, b));
    }
    if (ticks.empty()) return Status::Invalid("no tick intervals");
    return added(
        system->AddSynthetic(std::string(name), period, std::move(ticks)));
  }
  return Status::Invalid("unknown granularity constructor '" +
                         std::string(func) + "'");
}

Result<TimePoint> ParseTimePoint(std::string_view text,
                                 std::int64_t units_per_day) {
  text = Trim(text);
  int year = 0, month = 0, day = 0, hour = 0, minute = 0, second = 0;
  int consumed = 0;
  int fields = std::sscanf(std::string(text).c_str(),
                           "%d-%d-%d %d:%d:%d%n", &year, &month, &day, &hour,
                           &minute, &second, &consumed);
  if (fields < 3) {
    return Status::Invalid("expected 'YYYY-MM-DD[ HH:MM:SS]', found '" +
                           std::string(text) + "'");
  }
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month)) {
    return Status::Invalid("invalid civil date '" + std::string(text) + "'");
  }
  TimePoint days = DaysFromCivil(year, month, day);
  TimePoint instant = days * units_per_day;
  if (fields >= 6) {
    if (units_per_day != kSecondsPerDay) {
      return Status::Invalid(
          "time-of-day given but the calendar is day-grained");
    }
    if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
        second > 59) {
      return Status::Invalid("invalid time of day in '" + std::string(text) +
                             "'");
    }
    instant += hour * 3600 + minute * 60 + second;
  }
  return instant;
}

Result<EventSequence> ParseEventSequence(std::string_view text,
                                         EventTypeRegistry* registry,
                                         std::int64_t units_per_day) {
  GM_CHECK(registry != nullptr);
  EventSequence sequence;
  int line_number = 0;
  for (std::string_view raw : SplitLines(text)) {
    ++line_number;
    std::string_view line = Trim(StripComment(raw));
    if (line.empty()) continue;
    // The type name is the last whitespace-separated token; everything
    // before it is the timestamp.
    std::size_t split = line.find_last_of(" \t");
    if (split == std::string_view::npos) {
      return Status::Invalid("line " + std::to_string(line_number) +
                             ": expected '<timestamp> <type>'");
    }
    std::string_view stamp = Trim(line.substr(0, split));
    std::string_view type_name = Trim(line.substr(split + 1));
    TimePoint t;
    if (!stamp.empty() &&
        (std::isdigit(static_cast<unsigned char>(stamp.front())) ||
         stamp.front() == '-') &&
        stamp.find('-', 1) == std::string_view::npos) {
      Result<std::int64_t> parsed = ParseInt(stamp);
      if (!parsed.ok()) {
        return Status::Invalid("line " + std::to_string(line_number) +
                               ", column " +
                               std::to_string(ColumnOf(raw, stamp)) + ": " +
                               parsed.status().message());
      }
      t = *parsed;
    } else {
      Result<TimePoint> parsed = ParseTimePoint(stamp, units_per_day);
      if (!parsed.ok()) {
        return Status::Invalid("line " + std::to_string(line_number) +
                               ", column " +
                               std::to_string(ColumnOf(raw, stamp)) + ": " +
                               parsed.status().message());
      }
      t = *parsed;
    }
    sequence.Add(registry->Intern(type_name), t);
  }
  return sequence;
}

std::string FormatTimePoint(TimePoint t, std::int64_t units_per_day) {
  static const char* kWeekdays[] = {"Mon", "Tue", "Wed", "Thu",
                                    "Fri", "Sat", "Sun"};
  std::int64_t days = FloorDiv(t, units_per_day);
  std::int64_t within = t - days * units_per_day;
  CivilDate date = CivilFromDays(days);
  char buffer[64];
  if (units_per_day == kSecondsPerDay) {
    std::snprintf(buffer, sizeof(buffer),
                  "%04lld-%02d-%02d %s %02lld:%02lld:%02lld",
                  static_cast<long long>(date.year), date.month, date.day,
                  kWeekdays[WeekdayFromDays(days)],
                  static_cast<long long>(within / 3600),
                  static_cast<long long>((within / 60) % 60),
                  static_cast<long long>(within % 60));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%04lld-%02d-%02d %s",
                  static_cast<long long>(date.year), date.month, date.day,
                  kWeekdays[WeekdayFromDays(days)]);
  }
  return buffer;
}

}  // namespace granmine
