#ifndef GRANMINE_IO_CLI_ARGS_H_
#define GRANMINE_IO_CLI_ARGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/obs/log.h"

namespace granmine {

/// Parsed granmine_cli command line: a command word, `--flag value` /
/// `--flag=value` pairs, repeated `--pin VAR=TYPE` bindings, and the
/// boolean switches. Factored out of the binary so argument validation is
/// unit-testable without spawning processes.
struct CliArgs {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> pins;
  /// Every `--structure FILE` occurrence, in order. `flags["structure"]`
  /// holds only the last one (flags is a last-wins map; the single-file
  /// subcommands read it) — consumers that document a repeatable
  /// `--structure`, like granmine_serve, must read this vector instead.
  std::vector<std::string> structures;
  bool naive = false;
  bool exact = false;
  bool tag = false;
  bool explain = false;
  /// `--degrade`: opt into degraded (screening-only) serving under overload.
  bool degrade = false;
};

Result<CliArgs> ParseCliArgs(int argc, const char* const* argv);

/// `--threads`: an integer in [1, 1024]. Zero is rejected — "pick for me"
/// is spelled by omitting the flag, and a silent hardware-concurrency
/// fallback made `--threads 0` look meaningful when it was not.
Result<int> ParseThreadCount(const std::string& text);

/// A strictly positive integer flag value (`--deadline-ms`, `--window`,
/// `--slide`). `flag` is quoted in the error message.
Result<std::int64_t> ParsePositiveInt(const std::string& flag,
                                      const std::string& text);

/// A non-negative integer flag value (`--tolerance`).
Result<std::int64_t> ParseNonNegativeInt(const std::string& flag,
                                         const std::string& text);

/// A confidence/frequency threshold in [0, 1] (`--confidence`, `--theta`).
/// Unlike std::stod, garbage is a Status, not an exception.
Result<double> ParseConfidence(const std::string& flag,
                               const std::string& text);

/// An output-file flag value (`--metrics-out`, `--trace-out`,
/// `--checkpoint-path`, `save --out`): must be non-empty and writable.
/// Writability is probed by opening the path for append (a probe that had
/// to create the file removes it again), so a bad directory or a permission
/// problem surfaces at argument-parse time naming the flag and the
/// offending path — not as a lost report at the end of a long run.
Result<std::string> ParseOutputPath(const std::string& flag,
                                    const std::string& text);

/// Validated `granmine_cli stream` checkpoint cadence: `--checkpoint-every`
/// (ingested events between checkpoints) and `--checkpoint-path` travel
/// together; giving one without the other is an error.
struct StreamCheckpointArgs {
  std::int64_t every = 0;  ///< 0 = checkpointing disabled
  std::string path;
};

Result<StreamCheckpointArgs> ParseStreamCheckpoint(const CliArgs& args);

/// The engine-wide flags shared by every subcommand — `--threads`,
/// `--deadline-ms`, `--mem-budget-mb`, `--max-queue`, `--degrade`,
/// `--metrics-out`, `--trace-out` — validated once by `ParseEngineFlags`
/// instead of per-subcommand copies, so the usage and error messages are
/// identical everywhere they appear.
struct EngineFlags {
  /// Unset = the engine default (serial). Values above the machine's
  /// hardware concurrency are clamped to it — valid (the flag's [1, 1024]
  /// contract holds) but never useful, since every pool worker beyond a
  /// core just context-switches. The clamp is reported via
  /// `threads_clamp_warning`, not printed here, so the binary can route it
  /// through the structured logger (docs/observability.md).
  std::optional<int> threads;
  /// Set when `--threads` was clamped: a ready-to-print warning sentence.
  std::optional<std::string> threads_clamp_warning;
  /// Unset = no wall-clock limit.
  std::optional<std::int64_t> deadline_ms;
  /// Unset = no memory budget (GovernorLimits::memory_budget_bytes stays 0).
  std::optional<std::int64_t> mem_budget_mb;
  /// Unset = admission disabled; set = AdmissionOptions::max_queue.
  std::optional<std::int64_t> max_queue;
  /// `--degrade`: serve saturated/budget-stopped requests screening-only
  /// instead of shedding them (AdmissionOptions::degrade_when_saturated).
  bool degrade = false;
  /// Output paths; empty = the corresponding obs layer stays disabled.
  std::string metrics_out;
  std::string trace_out;
  /// `--log-out`: JSON-lines sink for the structured event log; empty = the
  /// CLI's once-per-run diagnostics keep their legacy stderr rendering.
  std::string log_out;
  /// `--log-level`: minimum severity (debug/info/warn/error). Set (alone or
  /// with `--log-out`) it enables the logger; unset defaults to info.
  std::optional<obs::LogLevel> log_level;
};

/// Extracts and validates the shared engine flags from a parsed command
/// line. Flags that are absent stay unset; the first invalid value is the
/// returned Status. The one-argument form clamps `--threads` against
/// `std::thread::hardware_concurrency()`; the two-argument form takes the
/// machine's thread count explicitly so the clamp is unit-testable
/// (`hardware_threads` = 0 disables the clamp, mirroring the unknown-machine
/// contract of hardware_concurrency).
Result<EngineFlags> ParseEngineFlags(const CliArgs& args);
Result<EngineFlags> ParseEngineFlags(const CliArgs& args,
                                     unsigned hardware_threads);

/// Validated `granmine_cli stream` window geometry.
struct StreamWindowArgs {
  std::int64_t window = 0;  ///< retention horizon, raw time units
  std::int64_t slide = 0;   ///< snapshot cadence, raw time units
  double theta = 0.5;       ///< minimum frequency threshold
};

/// Parses and cross-validates `--window` / `--slide` / optional `--theta`.
/// Both lengths must be positive and `window >= slide` — a window shorter
/// than the slide would silently drop events between snapshots.
Result<StreamWindowArgs> ParseStreamWindow(const std::string& window_text,
                                           const std::string& slide_text,
                                           const std::string* theta_text);

}  // namespace granmine

#endif  // GRANMINE_IO_CLI_ARGS_H_
