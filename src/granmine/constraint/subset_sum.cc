#include "granmine/constraint/subset_sum.h"

#include <numeric>
#include <string>

#include "granmine/common/check.h"
#include "granmine/common/governor_alloc.h"

namespace granmine {

Result<SubsetSumStructure> BuildSubsetSumStructure(
    GranularitySystem* system, const Granularity* month,
    const SubsetSumInstance& instance) {
  GM_CHECK(system != nullptr && month != nullptr);
  const int k = static_cast<int>(instance.numbers.size());
  if (k == 0) return Status::Invalid("empty SUBSET SUM instance");
  if (instance.target < 0) return Status::Invalid("negative target");
  for (std::int64_t n : instance.numbers) {
    if (n < 1) return Status::Invalid("SUBSET SUM numbers must be >= 1");
  }

  SubsetSumStructure out;
  out.month = month;
  for (int i = 1; i <= k + 1; ++i) {
    out.x.push_back(out.structure.AddVariable("X" + std::to_string(i)));
  }
  for (int i = 1; i <= k; ++i) {
    out.v.push_back(out.structure.AddVariable("V" + std::to_string(i)));
    out.u.push_back(out.structure.AddVariable("U" + std::to_string(i)));
  }

  for (int i = 0; i < k; ++i) {
    const std::int64_t n_i = instance.numbers[static_cast<std::size_t>(i)];
    std::string group_name =
        std::to_string(n_i) + "x" + std::string(month->name());
    const Granularity* n_month = system->Find(group_name);
    if (n_month == nullptr) {
      n_month = system->AddGroup(group_name, month, n_i);
    }
    GM_RETURN_NOT_OK(out.structure.AddConstraint(
        out.x[i], out.x[i + 1], Tcg::Of(0, n_i, month)));
    GM_RETURN_NOT_OK(out.structure.AddConstraint(out.v[i], out.x[i],
                                                 Tcg::Same(n_month)));
    GM_RETURN_NOT_OK(out.structure.AddConstraint(
        out.v[i], out.x[i], Tcg::Of(n_i - 1, n_i - 1, month)));
    GM_RETURN_NOT_OK(out.structure.AddConstraint(out.u[i], out.x[i + 1],
                                                 Tcg::Same(n_month)));
    GM_RETURN_NOT_OK(out.structure.AddConstraint(
        out.u[i], out.x[i + 1], Tcg::Of(n_i - 1, n_i - 1, month)));
  }
  GM_RETURN_NOT_OK(out.structure.AddConstraint(
      out.x.front(), out.x.back(),
      Tcg::Of(instance.target, instance.target, month)));
  return out;
}

std::vector<bool> DecodeSubset(const SubsetSumStructure& reduction,
                               const std::vector<TimePoint>& witness) {
  const std::size_t k = reduction.v.size();
  std::vector<bool> chosen(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    std::optional<std::int64_t> diff = TickDifference(
        *reduction.month, witness[reduction.x[i]], witness[reduction.x[i + 1]]);
    GM_CHECK(diff.has_value());
    chosen[i] = *diff != 0;
  }
  return chosen;
}

Result<std::optional<std::vector<bool>>> SolveSubsetSum(
    GranularitySystem* system, const Granularity* month,
    const SubsetSumInstance& instance, const ExactOptions& options) {
  GM_ASSIGN_OR_RETURN(SubsetSumStructure reduction,
                      BuildSubsetSumStructure(system, month, instance));
  // The reduction structure (3k+1 variables, 5k+1 constraint edges) is
  // governed scratch: charge it against the memory budget before the search
  // starts. Index 0 — the build precedes every explored node.
  GovernorAllocator arena(options.governor, GovernorScope::kExactSearch);
  std::uint64_t reduction_bytes =
      static_cast<std::uint64_t>(reduction.structure.variable_count()) *
      sizeof(TimePoint);
  for (const EventStructure::Edge& edge : reduction.structure.edges()) {
    reduction_bytes +=
        sizeof(EventStructure::Edge) + edge.tcgs.size() * sizeof(Tcg);
  }
  if (StopCause cause = arena.Charge(/*index=*/0, reduction_bytes);
      cause != StopCause::kNone) {
    // An unbudgeted solve is *unknown*, exactly like an interrupted one.
    return StopCauseToStatus(cause, "SUBSET SUM reduction");
  }
  ExactConsistencyChecker checker(&system->tables(), &system->coverage(),
                                  options);
  GM_ASSIGN_OR_RETURN(ExactResult result, checker.Check(reduction.structure));
  if (!result.decided()) {
    // An interrupted search is *unknown*: claiming "no subset" here would be
    // a silent wrong answer.
    return StopCauseToStatus(result.stopped, "SUBSET SUM search");
  }
  if (!result.consistent) {
    return std::optional<std::vector<bool>>(std::nullopt);
  }
  std::vector<bool> chosen = DecodeSubset(reduction, result.witness);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    if (chosen[i]) sum += instance.numbers[i];
  }
  GM_CHECK(sum == instance.target)
      << "reduction witness decodes to sum " << sum << ", expected "
      << instance.target;
  return std::optional<std::vector<bool>>(std::move(chosen));
}

}  // namespace granmine
