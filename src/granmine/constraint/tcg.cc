#include "granmine/constraint/tcg.h"

#include <sstream>

#include "granmine/common/check.h"

namespace granmine {

std::string Tcg::ToString() const {
  std::ostringstream os;
  os << "[" << min << ",";
  if (max >= kInfinity) {
    os << "inf";
  } else {
    os << max;
  }
  os << "]" << (granularity != nullptr ? granularity->name() : "?");
  return os.str();
}

bool Satisfies(const Tcg& tcg, TimePoint t1, TimePoint t2) {
  GM_CHECK(tcg.granularity != nullptr);
  if (t1 > t2) return false;
  std::optional<std::int64_t> diff = TickDifference(*tcg.granularity, t1, t2);
  if (!diff.has_value()) return false;
  return tcg.min <= *diff && *diff <= tcg.max;
}

}  // namespace granmine
