#include "granmine/constraint/event_structure.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "granmine/common/check.h"

namespace granmine {

VariableId EventStructure::AddVariable(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<VariableId>(names_.size()) - 1;
}

Status EventStructure::AddConstraint(VariableId from, VariableId to, Tcg tcg) {
  if (from < 0 || from >= variable_count() || to < 0 ||
      to >= variable_count()) {
    return Status::Invalid("constraint references an unknown variable");
  }
  if (from == to) {
    return Status::Invalid("self-constraints are not allowed");
  }
  if (tcg.granularity == nullptr) {
    return Status::Invalid("TCG has no granularity");
  }
  if (tcg.min > tcg.max || tcg.min < 0) {
    return Status::Invalid("TCG interval " + tcg.ToString() +
                           " is empty or negative");
  }
  for (Edge& edge : edges_) {
    if (edge.from == from && edge.to == to) {
      edge.tcgs.push_back(tcg);
      return Status::OK();
    }
  }
  edges_.push_back(Edge{from, to, {tcg}});
  return Status::OK();
}

const std::string& EventStructure::variable_name(VariableId v) const {
  GM_CHECK(v >= 0 && v < variable_count());
  return names_[static_cast<std::size_t>(v)];
}

const std::vector<Tcg>* EventStructure::FindEdge(VariableId from,
                                                 VariableId to) const {
  for (const Edge& edge : edges_) {
    if (edge.from == from && edge.to == to) return &edge.tcgs;
  }
  return nullptr;
}

std::vector<const Granularity*> EventStructure::Granularities() const {
  std::vector<const Granularity*> out;
  for (const Edge& edge : edges_) {
    for (const Tcg& tcg : edge.tcgs) {
      if (std::find(out.begin(), out.end(), tcg.granularity) == out.end()) {
        out.push_back(tcg.granularity);
      }
    }
  }
  return out;
}

Result<std::vector<VariableId>> EventStructure::TopologicalOrder() const {
  const int n = variable_count();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<VariableId>> next(n);
  for (const Edge& edge : edges_) {
    ++indegree[edge.to];
    next[edge.from].push_back(edge.to);
  }
  std::vector<VariableId> order;
  order.reserve(n);
  std::vector<VariableId> frontier;
  for (VariableId v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    VariableId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (VariableId w : next[v]) {
      if (--indegree[w] == 0) frontier.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::Invalid("event structure graph has a cycle");
  }
  return order;
}

Status EventStructure::ValidateDag() const {
  return TopologicalOrder().status();
}

std::vector<std::vector<bool>> EventStructure::ReachabilityMatrix() const {
  const int n = variable_count();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (VariableId v = 0; v < n; ++v) reach[v][v] = true;
  for (const Edge& edge : edges_) reach[edge.from][edge.to] = true;
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (int j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = true;
      }
    }
  }
  return reach;
}

Result<VariableId> EventStructure::FindRoot() const {
  GM_RETURN_NOT_OK(ValidateDag());
  if (variable_count() == 0) {
    return Status::Invalid("event structure has no variables");
  }
  std::vector<std::vector<bool>> reach = ReachabilityMatrix();
  for (VariableId v = 0; v < variable_count(); ++v) {
    bool reaches_all = true;
    for (VariableId w = 0; w < variable_count(); ++w) {
      if (!reach[v][w]) {
        reaches_all = false;
        break;
      }
    }
    if (reaches_all) return v;
  }
  return Status::Invalid("event structure has no root");
}

std::string EventStructure::ToString() const {
  std::ostringstream os;
  os << "EventStructure(" << variable_count() << " variables)";
  for (const Edge& edge : edges_) {
    os << "\n  " << variable_name(edge.from) << " -> "
       << variable_name(edge.to) << ":";
    for (const Tcg& tcg : edge.tcgs) os << " " << tcg.ToString();
  }
  return os.str();
}

}  // namespace granmine
