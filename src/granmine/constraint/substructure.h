#ifndef GRANMINE_CONSTRAINT_SUBSTRUCTURE_H_
#define GRANMINE_CONSTRAINT_SUBSTRUCTURE_H_

#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/constraint/propagation.h"

namespace granmine {

/// Builds the *induced approximated sub-structure* of §5.1: given an event
/// structure S, the result of approximate propagation over S, and a subset
/// W' of its variables, returns the structure (W', A', Γ') where A' contains
/// every ordered pair (X, Y) ⊆ W'×W' with a path X→Y in S and at least one
/// (original or derived) constraint, and Γ'(X, Y) collects the derived
/// bounds in every granularity of M under which both endpoints are defined.
///
/// Variable i of the result corresponds to subset[i] in `structure` (the
/// result reuses the original variable names).
///
/// Every complex event matching S restricts to a complex event matching the
/// returned sub-structure (the soundness property mining step 4 relies on).
Result<EventStructure> InduceSubstructure(
    const EventStructure& structure, const PropagationResult& propagation,
    const std::vector<VariableId>& subset);

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_SUBSTRUCTURE_H_
