#ifndef GRANMINE_CONSTRAINT_EXACT_H_
#define GRANMINE_CONSTRAINT_EXACT_H_

#include <cstdint>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/constraint/propagation.h"
#include "granmine/granularity/tables.h"

namespace granmine {

/// Options for the exact (exponential-time) consistency checker.
struct ExactOptions {
  /// Earliest timestamp candidates may take.
  TimePoint anchor = 0;
  /// Length of the absolute window searched. 0 = derive automatically (one
  /// joint period of all involved granularities past their deviant windows,
  /// plus the structure's maximum reachable span). A solution within the
  /// window exists iff any solution exists whenever the granularities are
  /// periodic past `anchor` — the automatic default guarantees that.
  std::int64_t horizon_span = 0;
  /// Enumerate one representative instant per tick-boundary cell (exact —
  /// two instants in the same tick of every granularity are interchangeable)
  /// instead of every instant. Disable only for differential testing.
  bool cell_representatives = true;
  /// Run §3.2 propagation first and use its derived bounds for pruning.
  bool prune_with_propagation = true;
  /// Search-node cap; exceeding it yields ResourceExhausted (Theorem 1 says
  /// this is unavoidable in the worst case).
  std::uint64_t max_nodes = 50'000'000;
  /// Shared per-request governor; may be null. Checked once per search node
  /// under GovernorScope::kExactSearch with `nodes_explored` as the
  /// deterministic index. A trip returns OK with ExactResult::stopped set
  /// (an *undecided* result) rather than an error.
  const ResourceGovernor* governor = nullptr;
};

struct ExactResult {
  bool consistent = false;
  /// A witness assignment (timestamp per variable) when consistent.
  std::vector<TimePoint> witness;
  std::uint64_t nodes_explored = 0;
  std::uint64_t candidates_generated = 0;
  /// kNone when the search ran to a decision; otherwise the governor cause
  /// that interrupted it, in which case `consistent` is meaningless.
  StopCause stopped = StopCause::kNone;

  /// Whether `consistent` is an actual decision (three-valued verdict:
  /// !decided() means *unknown*, not inconsistent).
  bool decided() const { return stopped == StopCause::kNone; }
};

/// Whether `timestamps` (one per variable) satisfies every TCG of the
/// structure — the Definition-of-§3 matching test.
bool SatisfiesAllConstraints(const EventStructure& structure,
                             const std::vector<TimePoint>& timestamps);

/// Exact consistency checking by backtracking over tick-boundary cell
/// representatives, pruned with the approximate propagation bounds.
/// Exponential in the worst case (Theorem 1: NP-hard via SUBSET SUM).
class ExactConsistencyChecker {
 public:
  ExactConsistencyChecker(GranularityTables* tables,
                          SupportCoverageCache* coverage,
                          ExactOptions options = ExactOptions{});

  Result<ExactResult> Check(const EventStructure& structure) const;

 private:
  GranularityTables* tables_;
  SupportCoverageCache* coverage_;
  ExactOptions options_;
};

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_EXACT_H_
