#ifndef GRANMINE_CONSTRAINT_CONVERT_CONSTRAINT_H_
#define GRANMINE_CONSTRAINT_CONVERT_CONSTRAINT_H_

#include <cstdint>
#include <optional>

#include "granmine/common/time_span.h"
#include "granmine/constraint/tcg.h"
#include "granmine/granularity/convert.h"
#include "granmine/granularity/granularity.h"
#include "granmine/granularity/tables.h"

namespace granmine {

/// How converted upper bounds are computed.
enum class ConversionRule {
  /// The paper's Figure-3 algorithm verbatim:
  ///   n' = min{ s : minsize(target, s) >= maxsize(source, n+1) − 1 }.
  kPaper,
  /// A provably tight variant (see DESIGN.md): since
  /// mingap(g, d) >= minsize(g, d−1) + 1, the exact reachable tick distance
  /// under an instant-distance cap D is
  ///   n' = min{ s : mingap(target, s) > D } − 1,
  /// which is never looser than the paper's bound. Used as an ablation.
  kTight,
};

/// Converts the upper bound `tickdiff_source(x, y) <= n` (n >= 0) into an
/// implied upper bound on tickdiff_target(x, y). Returns kInfinity when no
/// finite bound can be derived (always sound). Requires
/// SupportCovers(target, source); the caller checks feasibility.
std::int64_t ConvertUpperBound(GranularityTables& tables,
                               const Granularity& source,
                               const Granularity& target, std::int64_t n,
                               ConversionRule rule = ConversionRule::kPaper);

/// Converts the lower bound `tickdiff_source(x, y) >= m` (m >= 0) into an
/// implied lower bound on tickdiff_target(x, y); per Figure 3,
///   m' = min{ r : maxsize(target, r) > mingap(source, m) } − 1,
/// clamped to >= 0. Returns 0 when no bound can be derived (always sound).
std::int64_t ConvertLowerBound(GranularityTables& tables,
                               const Granularity& source,
                               const Granularity& target, std::int64_t m);

/// Figure-3 conversion of the interval constraint
/// `Y − X ∈ [bounds.lo, bounds.hi]` (ticks of source, lo >= 0) into an
/// implied interval in ticks of target.
Bounds ConvertBounds(GranularityTables& tables, const Granularity& source,
                     const Granularity& target, Bounds bounds,
                     ConversionRule rule = ConversionRule::kPaper);

/// TCG-level wrapper: checks the support-coverage feasibility precondition
/// and returns the converted TCG, or nullopt when conversion into `target`
/// is infeasible.
std::optional<Tcg> ConvertTcg(GranularityTables& tables,
                              SupportCoverageCache& coverage, const Tcg& tcg,
                              const Granularity& target,
                              ConversionRule rule = ConversionRule::kPaper);

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_CONVERT_CONSTRAINT_H_
