#ifndef GRANMINE_CONSTRAINT_STP_H_
#define GRANMINE_CONSTRAINT_STP_H_

#include <cstdint>
#include <vector>

#include "granmine/common/math.h"
#include "granmine/common/time_span.h"

namespace granmine {

/// A Simple Temporal Problem network in the sense of Dechter, Meiri & Pearl
/// (the single-granularity substrate that §3.2 runs per granularity group):
/// n variables, binary difference constraints `x_j − x_i ∈ [lo, hi]`,
/// path-consistency via all-pairs shortest paths over the distance graph.
///
/// Internally the network stores the distance matrix d[i][j] = tightest known
/// upper bound on (x_j − x_i); a constraint [lo, hi] on (i, j) contributes
/// d[i][j] <= hi and d[j][i] <= -lo. The network is consistent iff the
/// distance graph has no negative cycle, and after `PropagateToMinimal()`
/// the matrix is the *minimal network* (tightest implied bounds).
class StpNetwork {
 public:
  explicit StpNetwork(int size);

  int size() const { return size_; }

  /// Intersects the constraint `x_to − x_from ∈ bounds` into the network.
  /// Open ends are expressed with ±kInfinity.
  void Constrain(int from, int to, Bounds bounds);

  /// Tightens just the upper bound `x_to − x_from <= hi`.
  void ConstrainUpper(int from, int to, std::int64_t hi);

  /// Current bounds on `x_to − x_from` (minimal after propagation).
  Bounds GetBounds(int from, int to) const;

  /// Raw distance-matrix entry: the upper bound on (x_to − x_from).
  std::int64_t Distance(int from, int to) const;

  /// Runs Floyd–Warshall to the minimal network. Returns false iff the
  /// network is inconsistent (a negative self-distance appears); the matrix
  /// contents are unspecified after an inconsistency.
  bool PropagateToMinimal();

  /// True when any entry was tightened since the last call to this method.
  /// Used by the §3.2 fixpoint loop.
  bool ConsumeChangedFlag();

  /// Sum of all finite interval widths — the monotone measure from the
  /// Theorem-2 termination argument (debug instrumentation).
  std::int64_t FiniteIntervalSum() const;

 private:
  std::int64_t& At(int from, int to) { return matrix_[from * size_ + to]; }
  std::int64_t At(int from, int to) const { return matrix_[from * size_ + to]; }

  int size_;
  std::vector<std::int64_t> matrix_;
  bool changed_ = false;
};

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_STP_H_
