#include "granmine/constraint/stp.h"

#include "granmine/common/check.h"

namespace granmine {

StpNetwork::StpNetwork(int size)
    : size_(size),
      matrix_(static_cast<std::size_t>(size) * static_cast<std::size_t>(size),
              kInfinity) {
  GM_CHECK(size >= 0);
  for (int i = 0; i < size_; ++i) At(i, i) = 0;
}

void StpNetwork::Constrain(int from, int to, Bounds bounds) {
  GM_CHECK(from >= 0 && from < size_ && to >= 0 && to < size_);
  ConstrainUpper(from, to, bounds.hi);
  ConstrainUpper(to, from, bounds.lo <= -kInfinity ? kInfinity : -bounds.lo);
}

void StpNetwork::ConstrainUpper(int from, int to, std::int64_t hi) {
  GM_CHECK(from >= 0 && from < size_ && to >= 0 && to < size_);
  if (hi < At(from, to)) {
    At(from, to) = hi;
    changed_ = true;
  }
}

Bounds StpNetwork::GetBounds(int from, int to) const {
  std::int64_t hi = At(from, to);
  std::int64_t back = At(to, from);
  std::int64_t lo = back >= kInfinity ? -kInfinity : -back;
  return Bounds::Of(lo, hi);
}

std::int64_t StpNetwork::Distance(int from, int to) const {
  GM_CHECK(from >= 0 && from < size_ && to >= 0 && to < size_);
  return At(from, to);
}

bool StpNetwork::PropagateToMinimal() {
  for (int k = 0; k < size_; ++k) {
    for (int i = 0; i < size_; ++i) {
      const std::int64_t d_ik = At(i, k);
      if (d_ik >= kInfinity) continue;
      for (int j = 0; j < size_; ++j) {
        const std::int64_t via = SaturatingAdd(d_ik, At(k, j));
        if (via < At(i, j)) {
          At(i, j) = via;
          changed_ = true;
        }
      }
    }
    // A negative self-distance witnesses a negative cycle.
    for (int i = 0; i < size_; ++i) {
      if (At(i, i) < 0) return false;
    }
  }
  return true;
}

bool StpNetwork::ConsumeChangedFlag() {
  bool was = changed_;
  changed_ = false;
  return was;
}

std::int64_t StpNetwork::FiniteIntervalSum() const {
  std::int64_t sum = 0;
  for (int i = 0; i < size_; ++i) {
    for (int j = 0; j < size_; ++j) {
      if (i == j) continue;
      std::int64_t hi = At(i, j);
      std::int64_t lo = At(j, i);
      if (hi < kInfinity && lo < kInfinity) {
        sum = SaturatingAdd(sum, SaturatingAdd(hi, lo));  // width = hi-(-lo)
      }
    }
  }
  return sum;
}

}  // namespace granmine
