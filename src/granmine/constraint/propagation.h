#ifndef GRANMINE_CONSTRAINT_PROPAGATION_H_
#define GRANMINE_CONSTRAINT_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "granmine/common/governor.h"
#include "granmine/common/result.h"
#include "granmine/constraint/convert_constraint.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/constraint/stp.h"
#include "granmine/granularity/convert.h"
#include "granmine/granularity/tables.h"

namespace granmine {

/// Options for the §3.2 approximate constraint-propagation algorithm.
struct PropagationOptions {
  /// Figure-3 conversion (paper) or the tight ablation variant.
  ConversionRule rule = ConversionRule::kPaper;
  /// Derive `tick(y) >= tick(x)` for DAG-ordered pairs whose ticks are known
  /// to be defined in the group's granularity (a sound strengthening that
  /// the per-group STP view needs to see the timestamp order).
  bool derive_order_constraints = true;
  /// Safety net; Theorem 2 guarantees termination long before this.
  int max_iterations = 100000;
  /// Shared per-request governor; may be null. Checked once per fixpoint
  /// iteration under GovernorScope::kGeneral. A trip stops early with
  /// PropagationResult::stopped set — the partial result is still *sound*
  /// (every derivation only tightens bounds monotonically, so any prefix of
  /// the fixpoint yields valid, merely looser, windows), just not minimal.
  const ResourceGovernor* governor = nullptr;
};

/// Output of propagation: one minimal STP network per granularity in M,
/// definedness sets, and instrumentation.
struct PropagationResult {
  /// False = the structure is certainly inconsistent. True = not refuted
  /// (the algorithm is sound but incomplete; see Theorem 1).
  bool consistent = true;
  /// The granularities of M, parallel to `networks` and `defined`.
  std::vector<const Granularity*> granularities;
  std::vector<StpNetwork> networks;
  /// defined[gi][v]: variable v provably has a defined tick in
  /// granularities[gi] for every matching complex event.
  std::vector<std::vector<bool>> defined;
  int iterations = 0;
  /// kNone when the fixpoint was reached; otherwise the governor cause that
  /// stopped iteration early. The bounds are then sound but not minimal, and
  /// `consistent == false` can no longer be concluded from them alone —
  /// early-stopped runs always report consistent (not refuted).
  StopCause stopped = StopCause::kNone;

  /// Index of `g` within `granularities`, or -1.
  int IndexOf(const Granularity* g) const;
  /// Derived bounds on tick(y) − tick(x) in `g`; [-inf, +inf] when g ∉ M.
  Bounds GetBounds(const Granularity* g, VariableId x, VariableId y) const;
  bool IsDefinedIn(const Granularity* g, VariableId v) const;
};

/// The §3.2 algorithm: partition TCGs into per-granularity STP groups, run
/// path consistency within each group, translate each group's constraints
/// into every feasible other granularity (Appendix A.1), and repeat to a
/// fixpoint. Sound, terminating, polynomial (Theorem 2); incomplete
/// (Theorem 1 shows completeness would imply P = NP).
class ConstraintPropagator {
 public:
  ConstraintPropagator(GranularityTables* tables,
                       SupportCoverageCache* coverage,
                       PropagationOptions options = PropagationOptions{});

  /// Runs propagation. Fails with a Status only on malformed input (cyclic
  /// graph) or iteration-cap exhaustion; inconsistency of a well-formed
  /// structure is reported via PropagationResult::consistent.
  Result<PropagationResult> Propagate(const EventStructure& structure) const;

 private:
  GranularityTables* tables_;
  SupportCoverageCache* coverage_;
  PropagationOptions options_;
};

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_PROPAGATION_H_
