#ifndef GRANMINE_CONSTRAINT_TCG_H_
#define GRANMINE_CONSTRAINT_TCG_H_

#include <cstdint>
#include <string>

#include "granmine/common/math.h"
#include "granmine/common/time_span.h"
#include "granmine/granularity/granularity.h"

namespace granmine {

/// A *temporal constraint with granularity* `[m, n] μ` (§3): a binary
/// relation on timestamps. `(t1, t2)` satisfies it iff
///   (1) t1 <= t2,
///   (2) ⌈t1⌉^μ and ⌈t2⌉^μ are both defined, and
///   (3) m <= ⌈t2⌉^μ − ⌈t1⌉^μ <= n.
/// `max` may be `kInfinity` for an open upper bound (used only for derived
/// constraints; the paper's explicit constraints are finite).
struct Tcg {
  std::int64_t min = 0;
  std::int64_t max = 0;
  const Granularity* granularity = nullptr;

  static Tcg Of(std::int64_t min, std::int64_t max, const Granularity* g) {
    return Tcg{min, max, g};
  }
  /// "[0,0] day": the same-`g`-tick constraint.
  static Tcg Same(const Granularity* g) { return Tcg{0, 0, g}; }

  Bounds bounds() const { return Bounds::Of(min, max); }

  /// "[m,n]name" rendering used in diagnostics.
  std::string ToString() const;
};

/// Whether the ordered timestamp pair (t1, t2) satisfies the TCG.
bool Satisfies(const Tcg& tcg, TimePoint t1, TimePoint t2);

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_TCG_H_
