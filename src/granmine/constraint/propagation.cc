#include "granmine/constraint/propagation.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

int PropagationResult::IndexOf(const Granularity* g) const {
  for (std::size_t i = 0; i < granularities.size(); ++i) {
    if (granularities[i] == g) return static_cast<int>(i);
  }
  return -1;
}

Bounds PropagationResult::GetBounds(const Granularity* g, VariableId x,
                                    VariableId y) const {
  int index = IndexOf(g);
  if (index < 0) return Bounds::Of(-kInfinity, kInfinity);
  return networks[static_cast<std::size_t>(index)].GetBounds(x, y);
}

bool PropagationResult::IsDefinedIn(const Granularity* g, VariableId v) const {
  int index = IndexOf(g);
  if (index < 0) return false;
  return defined[static_cast<std::size_t>(index)][static_cast<std::size_t>(v)];
}

ConstraintPropagator::ConstraintPropagator(GranularityTables* tables,
                                           SupportCoverageCache* coverage,
                                           PropagationOptions options)
    : tables_(tables), coverage_(coverage), options_(options) {
  GM_CHECK(tables_ != nullptr && coverage_ != nullptr);
}

Result<PropagationResult> ConstraintPropagator::Propagate(
    const EventStructure& structure) const {
  GM_RETURN_NOT_OK(structure.ValidateDag());
  const int n = structure.variable_count();

  PropagationResult result;
  result.granularities = structure.Granularities();
  const int m = static_cast<int>(result.granularities.size());
  if (m == 0) return result;  // no constraints: trivially consistent

  // Conversion feasibility matrix: feasible[s][t] = constraints in
  // granularity s may be translated into granularity t.
  std::vector<std::vector<bool>> feasible(m, std::vector<bool>(m, false));
  for (int s = 0; s < m; ++s) {
    for (int t = 0; t < m; ++t) {
      if (s == t) continue;
      feasible[s][t] = coverage_->Covers(*result.granularities[t],
                                         *result.granularities[s]);
    }
  }

  // Definedness: a variable incident to a TCG in g has a defined g-tick in
  // every matching complex event; support inclusion propagates the fact.
  result.defined.assign(m, std::vector<bool>(n, false));
  for (const EventStructure::Edge& edge : structure.edges()) {
    for (const Tcg& tcg : edge.tcgs) {
      int gi = result.IndexOf(tcg.granularity);
      GM_CHECK(gi >= 0);
      result.defined[gi][edge.from] = true;
      result.defined[gi][edge.to] = true;
    }
  }
  for (bool grew = true; grew;) {
    grew = false;
    for (int s = 0; s < m; ++s) {
      for (int t = 0; t < m; ++t) {
        if (s == t || !feasible[s][t]) continue;
        for (int v = 0; v < n; ++v) {
          if (result.defined[s][v] && !result.defined[t][v]) {
            result.defined[t][v] = true;
            grew = true;
          }
        }
      }
    }
  }

  // Seed the per-granularity STP groups.
  result.networks.assign(static_cast<std::size_t>(m), StpNetwork(n));
  for (const EventStructure::Edge& edge : structure.edges()) {
    for (const Tcg& tcg : edge.tcgs) {
      int gi = result.IndexOf(tcg.granularity);
      result.networks[gi].Constrain(edge.from, edge.to, tcg.bounds());
    }
  }
  if (options_.derive_order_constraints) {
    std::vector<std::vector<bool>> reach = structure.ReachabilityMatrix();
    for (int gi = 0; gi < m; ++gi) {
      for (int x = 0; x < n; ++x) {
        for (int y = 0; y < n; ++y) {
          if (x == y || !reach[x][y]) continue;
          if (!result.defined[gi][x] || !result.defined[gi][y]) continue;
          // Timestamp order t_x <= t_y forces tick(y) >= tick(x) wherever
          // both ticks are defined: tick(x) - tick(y) <= 0.
          result.networks[gi].ConstrainUpper(y, x, 0);
        }
      }
    }
  }
  for (StpNetwork& network : result.networks) network.ConsumeChangedFlag();

  // Fixpoint loop: path consistency per group, then cross-granularity
  // translation of every derived distance. Stopping at any iteration is
  // sound: derivations only ever tighten bounds, so a truncated run yields
  // valid (looser) windows and never a wrong refutation.
  GovernorTicket ticket(options_.governor, GovernorScope::kGeneral);
  for (result.iterations = 1; result.iterations <= options_.max_iterations;
       ++result.iterations) {
    if (StopCause cause =
            ticket.Charge(static_cast<std::uint64_t>(result.iterations));
        cause != StopCause::kNone) {
      result.stopped = cause;
      return result;
    }
    for (StpNetwork& network : result.networks) {
      if (!network.PropagateToMinimal()) {
        result.consistent = false;
        return result;
      }
    }
    for (int s = 0; s < m; ++s) {
      for (int t = 0; t < m; ++t) {
        if (s == t || !feasible[s][t]) continue;
        const Granularity& g_s = *result.granularities[s];
        const Granularity& g_t = *result.granularities[t];
        for (int x = 0; x < n; ++x) {
          for (int y = 0; y < n; ++y) {
            if (x == y) continue;
            if (!result.defined[s][x] || !result.defined[s][y]) continue;
            std::int64_t d = result.networks[s].Distance(x, y);
            if (d >= kInfinity) continue;
            std::int64_t hi =
                d >= 0 ? ConvertUpperBound(*tables_, g_s, g_t, d,
                                           options_.rule)
                       : -ConvertLowerBound(*tables_, g_s, g_t, -d);
            result.networks[t].ConstrainUpper(x, y, hi);
          }
        }
      }
    }
    bool changed = false;
    for (StpNetwork& network : result.networks) {
      changed = network.ConsumeChangedFlag() || changed;
    }
    if (!changed) return result;
  }
  return Status::ResourceExhausted(
      "constraint propagation did not reach a fixpoint within the iteration "
      "cap");
}

}  // namespace granmine
