#include "granmine/constraint/exact.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "granmine/common/check.h"
#include "granmine/common/governor_alloc.h"
#include "granmine/common/math.h"

namespace granmine {

bool SatisfiesAllConstraints(const EventStructure& structure,
                             const std::vector<TimePoint>& timestamps) {
  GM_CHECK(static_cast<int>(timestamps.size()) == structure.variable_count());
  for (const EventStructure::Edge& edge : structure.edges()) {
    for (const Tcg& tcg : edge.tcgs) {
      if (!Satisfies(tcg, timestamps[edge.from], timestamps[edge.to])) {
        return false;
      }
    }
  }
  return true;
}

namespace {

// Search state shared across the recursion.
struct SearchContext {
  const EventStructure* structure;
  const PropagationResult* propagation;  // may be null
  GranularityTables* tables;
  const ExactOptions* options;
  std::vector<const Granularity*> granularities;
  TimeSpan window;  // absolute window for every variable
  std::vector<std::optional<TimePoint>> assigned;
  ExactResult* result;
  bool node_budget_exhausted = false;
  GovernorTicket ticket;
  StopCause stopped = StopCause::kNone;

  // Edges incident to each variable, precomputed.
  std::vector<std::vector<const EventStructure::Edge*>> incident;
};

// Narrows `window` with the instant interval implied by "tick(v) within
// [tick_lo, tick_hi] of g"; returns an empty span when unsatisfiable.
TimeSpan TickRangeToInstants(const Granularity& g, Tick tick_lo, Tick tick_hi,
                             TimeSpan window) {
  if (tick_hi < 1) return TimeSpan::Empty();
  tick_lo = std::max<Tick>(tick_lo, 1);
  // Clamp the upper tick to the window to avoid materializing huge hulls.
  std::optional<Tick> last_in_window =
      LastTickStartingAtOrBefore(g, window.last);
  if (!last_in_window.has_value()) return TimeSpan::Empty();
  tick_hi = std::min(tick_hi, *last_in_window);
  if (tick_lo > tick_hi) return TimeSpan::Empty();
  std::optional<TimeSpan> lo_hull = g.TickHull(tick_lo);
  std::optional<TimeSpan> hi_hull = g.TickHull(tick_hi);
  GM_CHECK(lo_hull.has_value() && hi_hull.has_value());
  return window.Intersect(TimeSpan::Of(lo_hull->first, hi_hull->last));
}

// The instant window for `v` implied by the constraints and propagation
// bounds against already-assigned variables. Empty = dead branch.
TimeSpan WindowFor(SearchContext& ctx, VariableId v) {
  TimeSpan window = ctx.window;
  for (const EventStructure::Edge* edge : ctx.incident[v]) {
    VariableId other = edge->from == v ? edge->to : edge->from;
    if (!ctx.assigned[other].has_value()) continue;
    TimePoint t_other = *ctx.assigned[other];
    const bool v_is_target = edge->to == v;
    if (v_is_target) {
      window = window.Intersect(TimeSpan::Of(t_other, window.last));
    } else {
      window = window.Intersect(TimeSpan::Of(window.first, t_other));
    }
    for (const Tcg& tcg : edge->tcgs) {
      std::optional<Tick> z = tcg.granularity->TickContaining(t_other);
      if (!z.has_value()) return TimeSpan::Empty();  // tcg needs definedness
      std::int64_t hi =
          tcg.max >= kInfinity ? kInfinity : tcg.max;  // open uppers allowed
      if (v_is_target) {
        window = TickRangeToInstants(
            *tcg.granularity, *z + tcg.min,
            hi >= kInfinity ? kInfinity : *z + hi, window);
      } else {
        window = TickRangeToInstants(
            *tcg.granularity, hi >= kInfinity ? -kInfinity : *z - hi,
            *z - tcg.min, window);
      }
      if (window.empty()) return window;
    }
  }
  if (ctx.propagation != nullptr) {
    for (VariableId u = 0; u < ctx.structure->variable_count(); ++u) {
      if (u == v || !ctx.assigned[u].has_value()) continue;
      TimePoint t_u = *ctx.assigned[u];
      for (const Granularity* g : ctx.propagation->granularities) {
        if (!ctx.propagation->IsDefinedIn(g, v) ||
            !ctx.propagation->IsDefinedIn(g, u)) {
          continue;
        }
        std::optional<Tick> z = g->TickContaining(t_u);
        if (!z.has_value()) return TimeSpan::Empty();  // u must be defined
        Bounds bounds = ctx.propagation->GetBounds(g, u, v);
        if (bounds.lo <= -kInfinity && bounds.hi >= kInfinity) continue;
        Tick lo = bounds.lo <= -kInfinity ? -kInfinity : *z + bounds.lo;
        Tick hi = bounds.hi >= kInfinity ? kInfinity : *z + bounds.hi;
        window = TickRangeToInstants(*g, lo, hi, window);
        if (window.empty()) return window;
      }
    }
  }
  return window;
}

// Candidate instants for `v` within `window`: either every instant, or one
// representative per cell of the partition induced by all granularity
// extent boundaries (plus the window start).
bool CollectCandidates(SearchContext& ctx, TimeSpan window,
                       std::vector<TimePoint>* out) {
  const std::int64_t kCandidateCap = 1 << 20;
  out->clear();
  if (window.empty()) return true;
  if (!ctx.options->cell_representatives) {
    if (window.length() > kCandidateCap) return false;
    for (TimePoint t = window.first; t <= window.last; ++t) out->push_back(t);
    ctx.result->candidates_generated += static_cast<std::uint64_t>(out->size());
    return true;
  }
  out->push_back(window.first);
  std::vector<TimeSpan> extent;
  for (const Granularity* g : ctx.granularities) {
    Tick z = FirstTickEndingAtOrAfter(*g, window.first);
    while (true) {
      std::optional<TimeSpan> hull = g->TickHull(z);
      GM_CHECK(hull.has_value());
      if (hull->first > window.last) break;
      extent.clear();
      g->TickExtent(z, &extent);
      for (const TimeSpan& piece : extent) {
        if (piece.first > window.first && piece.first <= window.last) {
          out->push_back(piece.first);
        }
        if (piece.last + 1 > window.first && piece.last + 1 <= window.last) {
          out->push_back(piece.last + 1);
        }
      }
      if (static_cast<std::int64_t>(out->size()) > kCandidateCap) return false;
      ++z;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  ctx.result->candidates_generated += static_cast<std::uint64_t>(out->size());
  return true;
}

// Checks every TCG between v (tentatively at t) and its assigned neighbours.
bool ConsistentWithAssigned(SearchContext& ctx, VariableId v, TimePoint t) {
  for (const EventStructure::Edge* edge : ctx.incident[v]) {
    VariableId other = edge->from == v ? edge->to : edge->from;
    if (!ctx.assigned[other].has_value()) continue;
    TimePoint t_from = edge->from == v ? t : *ctx.assigned[other];
    TimePoint t_to = edge->to == v ? t : *ctx.assigned[other];
    for (const Tcg& tcg : edge->tcgs) {
      if (!Satisfies(tcg, t_from, t_to)) return false;
    }
  }
  return true;
}

bool Search(SearchContext& ctx, const std::vector<VariableId>& order,
            std::size_t index) {
  if (++ctx.result->nodes_explored > ctx.options->max_nodes) {
    ctx.node_budget_exhausted = true;
    return false;
  }
  if (StopCause cause = ctx.ticket.Charge(ctx.result->nodes_explored);
      cause != StopCause::kNone) {
    ctx.stopped = cause;
    return false;
  }
  if (index == order.size()) return true;
  VariableId v = order[index];
  TimeSpan window = WindowFor(ctx, v);
  std::vector<TimePoint> candidates;
  if (!CollectCandidates(ctx, window, &candidates)) {
    ctx.node_budget_exhausted = true;  // candidate cap: give up honestly
    return false;
  }
  // The candidate pool lives for the whole subtree below this node; a
  // per-node scoped arena releases it on unwind, so the governed bytes track
  // the live recursion stack. The charge index is the node counter — the
  // same deterministic index the ticket uses.
  GovernorAllocator arena(ctx.ticket.governor(), GovernorScope::kExactSearch);
  if (StopCause cause =
          arena.Charge(ctx.result->nodes_explored,
                       candidates.size() * sizeof(TimePoint));
      cause != StopCause::kNone) {
    ctx.stopped = cause;
    return false;
  }
  for (TimePoint t : candidates) {
    if (!ConsistentWithAssigned(ctx, v, t)) continue;
    ctx.assigned[v] = t;
    if (Search(ctx, order, index + 1)) return true;
    ctx.assigned[v] = std::nullopt;
    if (ctx.node_budget_exhausted || ctx.stopped != StopCause::kNone) {
      return false;
    }
  }
  return false;
}

// Orders variables so that (except at connected-component starts) every
// variable is adjacent to an earlier one — its window is then derived from
// an assigned neighbour instead of spanning the whole horizon.
std::vector<VariableId> BuildConnectedOrder(
    const EventStructure& structure, const std::vector<VariableId>& topo) {
  const int n = structure.variable_count();
  std::vector<std::vector<VariableId>> adjacent(n);
  for (const EventStructure::Edge& edge : structure.edges()) {
    adjacent[edge.from].push_back(edge.to);
    adjacent[edge.to].push_back(edge.from);
  }
  std::vector<bool> chosen(n, false);
  std::vector<VariableId> order;
  order.reserve(n);
  std::vector<VariableId> frontier;
  for (VariableId seed : topo) {
    if (chosen[seed]) continue;
    frontier.push_back(seed);
    chosen[seed] = true;
    while (!frontier.empty()) {
      VariableId v = frontier.front();
      frontier.erase(frontier.begin());
      order.push_back(v);
      for (VariableId w : adjacent[v]) {
        if (!chosen[w]) {
          chosen[w] = true;
          frontier.push_back(w);
        }
      }
    }
  }
  return order;
}

}  // namespace

ExactConsistencyChecker::ExactConsistencyChecker(GranularityTables* tables,
                                                 SupportCoverageCache* coverage,
                                                 ExactOptions options)
    : tables_(tables), coverage_(coverage), options_(options) {
  GM_CHECK(tables_ != nullptr && coverage_ != nullptr);
}

Result<ExactResult> ExactConsistencyChecker::Check(
    const EventStructure& structure) const {
  GM_ASSIGN_OR_RETURN(std::vector<VariableId> topo,
                      structure.TopologicalOrder());
  std::vector<VariableId> order = BuildConnectedOrder(structure, topo);
  ExactResult result;
  const int n = structure.variable_count();
  if (n == 0) {
    result.consistent = true;
    return result;
  }

  PropagationResult propagation;
  if (options_.prune_with_propagation) {
    PropagationOptions propagation_options;
    propagation_options.governor = options_.governor;
    ConstraintPropagator propagator(tables_, coverage_, propagation_options);
    GM_ASSIGN_OR_RETURN(propagation, propagator.Propagate(structure));
    if (!propagation.consistent) {
      result.consistent = false;
      return result;
    }
  }

  SearchContext ctx;
  ctx.ticket = GovernorTicket(options_.governor, GovernorScope::kExactSearch);
  ctx.structure = &structure;
  ctx.propagation = options_.prune_with_propagation ? &propagation : nullptr;
  ctx.tables = tables_;
  ctx.options = &options_;
  ctx.granularities = structure.Granularities();
  ctx.result = &result;
  ctx.assigned.assign(static_cast<std::size_t>(n), std::nullopt);
  ctx.incident.assign(static_cast<std::size_t>(n), {});
  for (const EventStructure::Edge& edge : structure.edges()) {
    ctx.incident[edge.from].push_back(&edge);
    ctx.incident[edge.to].push_back(&edge);
  }

  // The search window: anchored past every deviant region, one joint period
  // wide plus the largest reachable span, so that a solution exists inside
  // it iff any solution exists (shift invariance of periodic granularities).
  TimePoint anchor = std::max<TimePoint>(options_.anchor, 0);
  std::int64_t span = options_.horizon_span;
  if (span == 0) {
    std::int64_t joint_period = 1;
    for (const Granularity* g : ctx.granularities) {
      std::int64_t period = g->periodicity().period;
      std::int64_t gcd = std::gcd(joint_period, period);
      if (joint_period / gcd > kInfinity / period) {
        joint_period = kInfinity;
        break;
      }
      joint_period = joint_period / gcd * period;
      if (!g->IsStrictlyPeriodic()) {
        std::optional<TimeSpan> hull = g->TickHull(g->LastDeviantTick() + 1);
        GM_CHECK(hull.has_value());
        anchor = std::max(anchor, hull->first);
      }
    }
    std::int64_t reach = 0;
    for (const EventStructure::Edge& edge : structure.edges()) {
      std::int64_t best_edge = kInfinity;
      for (const Tcg& tcg : edge.tcgs) {
        if (tcg.max >= kInfinity) continue;
        std::optional<std::int64_t> size =
            tables_->MaxSize(*tcg.granularity, tcg.max + 1);
        if (size.has_value()) best_edge = std::min(best_edge, *size);
      }
      reach = SaturatingAdd(reach,
                            best_edge >= kInfinity ? joint_period : best_edge);
    }
    span = SaturatingAdd(SaturatingAdd(joint_period, joint_period), reach);
    const std::int64_t kSpanCap = std::int64_t{1} << 40;
    span = std::min(span, kSpanCap);
  }
  ctx.window = TimeSpan::Of(anchor, SaturatingAdd(anchor, span));

  bool found = Search(ctx, order, 0);
  if (ctx.node_budget_exhausted) {
    return Status::ResourceExhausted(
        "exact consistency search exceeded its node/candidate budget");
  }
  if (ctx.stopped != StopCause::kNone) {
    result.stopped = ctx.stopped;  // three-valued: undecided, not refuted
    return result;
  }
  result.consistent = found;
  if (found) {
    result.witness.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      GM_CHECK(ctx.assigned[v].has_value());
      result.witness[static_cast<std::size_t>(v)] = *ctx.assigned[v];
    }
    GM_CHECK(SatisfiesAllConstraints(structure, result.witness));
  }
  return result;
}

}  // namespace granmine
