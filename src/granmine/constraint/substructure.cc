#include "granmine/constraint/substructure.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

Result<EventStructure> InduceSubstructure(
    const EventStructure& structure, const PropagationResult& propagation,
    const std::vector<VariableId>& subset) {
  for (VariableId v : subset) {
    if (v < 0 || v >= structure.variable_count()) {
      return Status::Invalid("subset references an unknown variable");
    }
  }
  if (!propagation.consistent) {
    return Status::Invalid(
        "cannot induce a sub-structure from an inconsistent propagation");
  }
  std::vector<std::vector<bool>> reach = structure.ReachabilityMatrix();

  EventStructure out;
  for (VariableId v : subset) out.AddVariable(structure.variable_name(v));

  const int k = static_cast<int>(subset.size());
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      VariableId x = subset[static_cast<std::size_t>(i)];
      VariableId y = subset[static_cast<std::size_t>(j)];
      if (!reach[x][y]) continue;
      for (std::size_t gi = 0; gi < propagation.granularities.size(); ++gi) {
        const Granularity* g = propagation.granularities[gi];
        if (!propagation.IsDefinedIn(g, x) || !propagation.IsDefinedIn(g, y)) {
          continue;
        }
        Bounds bounds = propagation.GetBounds(g, x, y);
        // With x ≤ y in timestamp order the tick distance is >= 0.
        std::int64_t lo = std::max<std::int64_t>(bounds.lo, 0);
        std::int64_t hi = bounds.hi;
        if (hi < lo) {
          return Status::Internal("propagation produced an empty interval");
        }
        // Skip entirely uninformative [0, +inf] entries.
        if (lo == 0 && hi >= kInfinity) continue;
        GM_RETURN_NOT_OK(out.AddConstraint(i, j, Tcg::Of(lo, hi, g)));
      }
    }
  }
  return out;
}

}  // namespace granmine
