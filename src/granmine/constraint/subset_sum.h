#ifndef GRANMINE_CONSTRAINT_SUBSET_SUM_H_
#define GRANMINE_CONSTRAINT_SUBSET_SUM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/constraint/event_structure.h"
#include "granmine/constraint/exact.h"
#include "granmine/granularity/system.h"

namespace granmine {

/// A SUBSET SUM instance: is there a subset of `numbers` summing to `target`?
struct SubsetSumInstance {
  std::vector<std::int64_t> numbers;  ///< all >= 1
  std::int64_t target = 0;
};

/// The event structure produced by the Theorem-1 reduction, with the
/// variable roles needed to read a witness back.
struct SubsetSumStructure {
  EventStructure structure;
  std::vector<VariableId> x;  ///< X_1 .. X_{k+1}
  std::vector<VariableId> v;  ///< V_1 .. V_k
  std::vector<VariableId> u;  ///< U_1 .. U_k
  const Granularity* month = nullptr;
};

/// Builds the Theorem-1 reduction from SUBSET SUM to event-structure
/// consistency over the given month-like granularity `month` owned by
/// `system`: variables X_1..X_{k+1}, V_1..V_k, U_1..U_k with
///   (X_i, X_{i+1}) ∈ [0, n_i] month,
///   (X_1, X_{k+1}) ∈ [s, s] month,
///   (V_i, X_i), (U_i, X_{i+1}) ∈ [0,0] n_i-month ∧ [n_i−1, n_i−1] month,
/// which forces each X_{i+1} − X_i distance to be 0 or n_i months.
/// The n_i-month grouping granularities are registered in `system` on demand
/// (names "<n>x<month-name>").
///
/// Note (documented in DESIGN.md): with calendar-aligned n-month groupings
/// the published reduction is faithful for instances whose numbers are
/// pairwise coprime (the alignment congruences are then always satisfiable
/// by CRT); the generators used in tests and benchmarks produce such
/// instances.
Result<SubsetSumStructure> BuildSubsetSumStructure(
    GranularitySystem* system, const Granularity* month,
    const SubsetSumInstance& instance);

/// Decodes a witness assignment of the reduction structure into the chosen
/// subset (chosen[i] ⇔ n_i contributes to the sum).
std::vector<bool> DecodeSubset(const SubsetSumStructure& reduction,
                               const std::vector<TimePoint>& witness);

/// End-to-end: builds the reduction and solves it with the exact checker.
/// Returns the chosen subset, or nullopt when no subset sums to the target.
Result<std::optional<std::vector<bool>>> SolveSubsetSum(
    GranularitySystem* system, const Granularity* month,
    const SubsetSumInstance& instance, const ExactOptions& options);

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_SUBSET_SUM_H_
