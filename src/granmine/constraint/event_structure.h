#ifndef GRANMINE_CONSTRAINT_EVENT_STRUCTURE_H_
#define GRANMINE_CONSTRAINT_EVENT_STRUCTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/common/status.h"
#include "granmine/constraint/tcg.h"

namespace granmine {

/// Index of an event variable within an EventStructure (0-based, dense).
using VariableId = int;

/// An *event structure with granularities* (§3): a directed acyclic graph
/// over event variables whose edges carry conjunctions of TCGs. For data
/// mining the graph must additionally be rooted (some variable reaches every
/// other); consistency checking accepts general DAGs (the Theorem-1
/// reduction produces multi-source graphs).
class EventStructure {
 public:
  struct Edge {
    VariableId from;
    VariableId to;
    std::vector<Tcg> tcgs;  ///< conjunction; non-empty
  };

  /// Adds a variable and returns its id. Names are for diagnostics only and
  /// need not be unique (the paper's X0, X1, ...).
  VariableId AddVariable(std::string name);

  /// Adds `tcg` to the edge (from, to), creating the edge if needed.
  /// Fails on self-loops, unknown ids, or an empty constraint interval.
  Status AddConstraint(VariableId from, VariableId to, Tcg tcg);

  int variable_count() const { return static_cast<int>(names_.size()); }
  const std::string& variable_name(VariableId v) const;
  const std::vector<Edge>& edges() const { return edges_; }

  /// The set of TCGs on edge (from, to); empty when absent.
  const std::vector<Tcg>* FindEdge(VariableId from, VariableId to) const;

  /// All distinct granularities appearing in the constraints (the paper's M).
  std::vector<const Granularity*> Granularities() const;

  /// Verifies the graph is a DAG (the §3 acyclicity requirement).
  Status ValidateDag() const;

  /// Verifies the graph is a rooted DAG and returns the root: a variable
  /// with a path to every other variable. When several qualify the smallest
  /// id wins.
  Result<VariableId> FindRoot() const;

  /// Topological order of the variables; fails when the graph has a cycle.
  Result<std::vector<VariableId>> TopologicalOrder() const;

  /// reachable[x][y]: there is a (possibly empty) path x -> y.
  std::vector<std::vector<bool>> ReachabilityMatrix() const;

  /// Human-readable multi-line rendering.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
};

}  // namespace granmine

#endif  // GRANMINE_CONSTRAINT_EVENT_STRUCTURE_H_
