#include "granmine/constraint/convert_constraint.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

std::int64_t ConvertUpperBound(GranularityTables& tables,
                               const Granularity& source,
                               const Granularity& target, std::int64_t n,
                               ConversionRule rule) {
  GM_CHECK(n >= 0);
  if (n >= kInfinity) return kInfinity;
  // D: the largest instant distance compatible with tickdiff <= n — both
  // instants lie within n+1 consecutive source ticks.
  std::optional<std::int64_t> span = tables.MaxSize(source, n + 1);
  if (!span.has_value() || *span >= kInfinity) return kInfinity;
  const std::int64_t d = *span - 1;
  if (d <= 0) return 0;  // same instant => same target tick
  std::optional<std::int64_t> s;
  switch (rule) {
    case ConversionRule::kPaper:
      s = tables.LeastTicksCovering(target, d);
      break;
    case ConversionRule::kTight: {
      std::optional<std::int64_t> first_unreachable =
          tables.LeastTicksWithGapExceeding(target, d);
      if (first_unreachable.has_value()) s = *first_unreachable - 1;
      break;
    }
  }
  return s.has_value() ? *s : kInfinity;
}

std::int64_t ConvertLowerBound(GranularityTables& tables,
                               const Granularity& source,
                               const Granularity& target, std::int64_t m) {
  GM_CHECK(m >= 0);
  if (m >= kInfinity) m = kInfinity - 1;
  // G: the least instant distance enforced by tickdiff >= m.
  std::optional<std::int64_t> gap = tables.MinGap(source, m);
  if (!gap.has_value()) return 0;
  std::optional<std::int64_t> r = tables.LeastTicksExceeding(target, *gap);
  if (!r.has_value()) return 0;
  return std::max<std::int64_t>(*r - 1, 0);
}

Bounds ConvertBounds(GranularityTables& tables, const Granularity& source,
                     const Granularity& target, Bounds bounds,
                     ConversionRule rule) {
  GM_CHECK(!bounds.empty());
  GM_CHECK(bounds.lo >= 0);
  return Bounds::Of(ConvertLowerBound(tables, source, target, bounds.lo),
                    ConvertUpperBound(tables, source, target, bounds.hi, rule));
}

std::optional<Tcg> ConvertTcg(GranularityTables& tables,
                              SupportCoverageCache& coverage, const Tcg& tcg,
                              const Granularity& target, ConversionRule rule) {
  GM_CHECK(tcg.granularity != nullptr);
  if (tcg.granularity == &target) return tcg;
  if (!coverage.Covers(target, *tcg.granularity)) return std::nullopt;
  Bounds converted =
      ConvertBounds(tables, *tcg.granularity, target, tcg.bounds(), rule);
  return Tcg::Of(converted.lo, converted.hi, &target);
}

}  // namespace granmine
