#include "granmine/granularity/synthetic.h"

#include <algorithm>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

SyntheticGranularity::SyntheticGranularity(std::string name,
                                           std::int64_t period,
                                           std::vector<TimeSpan> ticks,
                                           TimePoint origin)
    : Granularity(std::move(name)),
      period_(period),
      ticks_(std::move(ticks)),
      origin_(origin) {
  GM_CHECK(period_ >= 1);
  GM_CHECK(!ticks_.empty());
  TimePoint prev_end = -1;
  for (const TimeSpan& span : ticks_) {
    GM_CHECK(!span.empty());
    GM_CHECK(span.first > prev_end) << "tick intervals must be sorted/disjoint";
    GM_CHECK(span.first >= 0 && span.last < period_);
    prev_end = span.last;
  }
  full_support_ = ticks_.size() == 1
                      ? (ticks_[0].first == 0 && ticks_[0].last == period_ - 1)
                      : false;
  if (ticks_.size() > 1) {
    bool contiguous = ticks_.front().first == 0 &&
                      ticks_.back().last == period_ - 1;
    for (std::size_t i = 1; contiguous && i < ticks_.size(); ++i) {
      contiguous = ticks_[i].first == ticks_[i - 1].last + 1;
    }
    full_support_ = contiguous;
  }
}

std::optional<Tick> SyntheticGranularity::TickContaining(TimePoint t) const {
  std::int64_t cycle = FloorDiv(t - origin_, period_);
  if (cycle < 0) return std::nullopt;
  std::int64_t r = t - origin_ - cycle * period_;
  // Last tick interval whose start is <= r.
  auto it = std::upper_bound(
      ticks_.begin(), ticks_.end(), r,
      [](std::int64_t v, const TimeSpan& span) { return v < span.first; });
  if (it == ticks_.begin()) return std::nullopt;
  --it;
  if (!it->Contains(r)) return std::nullopt;
  return cycle * static_cast<std::int64_t>(ticks_.size()) +
         (it - ticks_.begin()) + 1;
}

std::optional<TimeSpan> SyntheticGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  std::int64_t n = static_cast<std::int64_t>(ticks_.size());
  std::int64_t cycle = (z - 1) / n;
  std::int64_t idx = (z - 1) % n;
  TimePoint shift = origin_ + cycle * period_;
  return TimeSpan::Of(ticks_[idx].first + shift, ticks_[idx].last + shift);
}

}  // namespace granmine
