#include "granmine/granularity/calendar_types.h"

#include "granmine/common/check.h"
#include "granmine/common/math.h"
#include "granmine/granularity/civil_calendar.h"

namespace granmine {

MonthGranularity::MonthGranularity(std::string name,
                                   std::int64_t units_per_day)
    : Granularity(std::move(name)), units_per_day_(units_per_day) {
  GM_CHECK(units_per_day > 0);
}

std::optional<Tick> MonthGranularity::TickContaining(TimePoint t) const {
  if (t < 0) return std::nullopt;
  CivilDate date = CivilFromDays(FloorDiv(t, units_per_day_));
  Tick z = MonthsSinceEpoch(date.year, date.month) + 1;
  GM_DCHECK(z >= 1);
  return z;
}

std::optional<TimeSpan> MonthGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  std::int64_t months = z - 1;  // months since Jan 1970
  std::int64_t year = 1970 + FloorDiv(months, 12);
  int month = static_cast<int>(FloorMod(months, 12)) + 1;
  std::int64_t first_day = DaysFromCivil(year, month, 1);
  std::int64_t last_day = first_day + DaysInMonth(year, month) - 1;
  return TimeSpan::Of(first_day * units_per_day_,
                      (last_day + 1) * units_per_day_ - 1);
}

Granularity::Periodicity MonthGranularity::periodicity() const {
  return {kDaysPerEra * units_per_day_, kMonthsPerEra};
}

YearGranularity::YearGranularity(std::string name, std::int64_t units_per_day)
    : Granularity(std::move(name)), units_per_day_(units_per_day) {
  GM_CHECK(units_per_day > 0);
}

std::optional<Tick> YearGranularity::TickContaining(TimePoint t) const {
  if (t < 0) return std::nullopt;
  CivilDate date = CivilFromDays(FloorDiv(t, units_per_day_));
  return date.year - 1970 + 1;
}

std::optional<TimeSpan> YearGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  std::int64_t year = 1970 + (z - 1);
  std::int64_t first_day = DaysFromCivil(year, 1, 1);
  std::int64_t last_day = DaysFromCivil(year + 1, 1, 1) - 1;
  return TimeSpan::Of(first_day * units_per_day_,
                      (last_day + 1) * units_per_day_ - 1);
}

Granularity::Periodicity YearGranularity::periodicity() const {
  return {kDaysPerEra * units_per_day_, kYearsPerEra};
}

}  // namespace granmine
