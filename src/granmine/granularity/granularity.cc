#include "granmine/granularity/granularity.h"

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

void Granularity::TickExtent(Tick z, std::vector<TimeSpan>* out) const {
  std::optional<TimeSpan> hull = TickHull(z);
  if (hull.has_value()) out->push_back(*hull);
}

TimePoint Granularity::SupportStart() const {
  std::optional<TimeSpan> hull = TickHull(1);
  GM_CHECK(hull.has_value()) << "granularity " << name() << " has no tick 1";
  return hull->first;
}

std::optional<std::int64_t> Granularity::AnalyticMinSize(std::int64_t) const {
  return std::nullopt;
}
std::optional<std::int64_t> Granularity::AnalyticMaxSize(std::int64_t) const {
  return std::nullopt;
}
std::optional<std::int64_t> Granularity::AnalyticMinGap(std::int64_t) const {
  return std::nullopt;
}

std::optional<std::int64_t> TickDifference(const Granularity& g, TimePoint t1,
                                           TimePoint t2) {
  std::optional<Tick> z1 = g.TickContaining(t1);
  std::optional<Tick> z2 = g.TickContaining(t2);
  if (!z1.has_value() || !z2.has_value()) return std::nullopt;
  return *z2 - *z1;
}

namespace {

// A safe upper bound on the tick index whose hull could reach instant t.
Tick UpperTickBoundFor(const Granularity& g, TimePoint t) {
  const Granularity::Periodicity p = g.periodicity();
  const TimePoint start = g.SupportStart();
  if (t <= start) return g.LastDeviantTick() + p.ticks_per_period + 1;
  // Hull starts advance by `period` every `ticks_per_period` ticks (outside
  // the deviant window removing ticks only pushes starts later).
  std::int64_t periods = FloorDiv(t - start, p.period) + 2;
  return g.LastDeviantTick() + periods * p.ticks_per_period + 1;
}

}  // namespace

Tick FirstTickEndingAtOrAfter(const Granularity& g, TimePoint t) {
  // Binary search on the monotone predicate hull(z).last >= t.
  Tick lo = 1;
  Tick hi = UpperTickBoundFor(g, t);
  std::optional<TimeSpan> hull_hi = g.TickHull(hi);
  GM_CHECK(hull_hi.has_value());
  // Grow hi defensively (covers pathological periodicity reports).
  while (hull_hi->last < t) {
    hi *= 2;
    hull_hi = g.TickHull(hi);
    GM_CHECK(hull_hi.has_value());
  }
  while (lo < hi) {
    Tick mid = lo + (hi - lo) / 2;
    std::optional<TimeSpan> hull = g.TickHull(mid);
    GM_CHECK(hull.has_value());
    if (hull->last >= t) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::optional<Tick> LastTickStartingAtOrBefore(const Granularity& g,
                                               TimePoint t) {
  if (t < g.SupportStart()) return std::nullopt;
  // Binary search on the monotone predicate hull(z).first <= t.
  Tick lo = 1;  // qualifies by the check above
  Tick hi = UpperTickBoundFor(g, t) + 1;
  while (lo < hi) {
    Tick mid = lo + (hi - lo + 1) / 2;
    std::optional<TimeSpan> hull = g.TickHull(mid);
    GM_CHECK(hull.has_value());
    if (hull->first <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace granmine
