#ifndef GRANMINE_GRANULARITY_CIVIL_CALENDAR_H_
#define GRANMINE_GRANULARITY_CIVIL_CALENDAR_H_

#include <cstdint>

namespace granmine {

/// Proleptic Gregorian civil-calendar arithmetic, built from first principles
/// (Howard Hinnant's constant-time day algorithms). Day number 0 is
/// 1970-01-01; negative day numbers extend the calendar backwards.
///
/// The Gregorian calendar is exactly periodic with a 400-year cycle of
/// kDaysPerEra days, and kDaysPerEra is divisible by 7, so weekdays repeat
/// with the same cycle — the fact that makes month/year/b-day granularities
/// strictly periodic.

inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kDaysPerEra = 146097;  ///< days per 400 years
inline constexpr std::int64_t kMonthsPerEra = 4800;
inline constexpr std::int64_t kYearsPerEra = 400;

struct CivilDate {
  std::int64_t year;
  int month;  ///< 1..12
  int day;    ///< 1..31
  bool operator==(const CivilDate&) const = default;
};

/// Days since 1970-01-01 for the given civil date (which must be valid).
std::int64_t DaysFromCivil(std::int64_t year, int month, int day);

/// Civil date of the given day number.
CivilDate CivilFromDays(std::int64_t days);

/// Weekday of the given day number: 0 = Monday .. 6 = Sunday.
/// (1970-01-01 was a Thursday, i.e., 3.)
int WeekdayFromDays(std::int64_t days);

/// True if `year` is a Gregorian leap year.
bool IsLeapYear(std::int64_t year);

/// Number of days in the given month of the given year.
int DaysInMonth(std::int64_t year, int month);

/// Months elapsed since January 1970 (0 for Jan 1970, negative before).
std::int64_t MonthsSinceEpoch(std::int64_t year, int month);

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_CIVIL_CALENDAR_H_
