#include "granmine/granularity/system.h"

#include <utility>

#include "granmine/common/check.h"

namespace granmine {

namespace {

// Day-tick indices (1-based, day 1 = 1970-01-01) of the given civil dates.
std::vector<Tick> HolidayDayTicks(const std::vector<CivilDate>& holidays) {
  std::vector<Tick> ticks;
  ticks.reserve(holidays.size());
  for (const CivilDate& date : holidays) {
    std::int64_t days = DaysFromCivil(date.year, date.month, date.day);
    GM_CHECK(days >= 0) << "holidays before 1970 are outside the support";
    int weekday = WeekdayFromDays(days);
    if (weekday >= 5) continue;  // weekend "holidays" are already excluded
    ticks.push_back(days + 1);
  }
  return ticks;
}

// Weekday selection pattern over `day`: day tick 1 = 1970-01-01 (Thursday),
// so the anchor inside the Monday-first week cycle is 3.
PeriodicPattern WeekdayPattern(std::vector<std::int64_t> kept) {
  return PeriodicPattern{/*base_period=*/7, std::move(kept), /*anchor=*/3};
}

void AddGregorianFamily(GranularitySystem* system, std::int64_t units_per_day,
                        bool with_subday_types,
                        const std::vector<CivilDate>& holidays) {
  const std::int64_t day_width = units_per_day;
  if (with_subday_types) {
    system->AddUniform("second", 1);
    system->AddUniform("minute", 60);
    system->AddUniform("hour", 3600);
  }
  const Granularity* day = system->AddUniform("day", day_width);
  // 1970-01-01 is a Thursday; the Monday on or before it is 3 days earlier.
  const Granularity* week =
      system->AddUniform("week", 7 * day_width, /*offset=*/-3 * day_width);
  const Granularity* month = system->AddMonths("month", units_per_day);
  system->AddGroup("quarter", month, 3);
  system->AddYears("year", units_per_day);
  const Granularity* b_day =
      system->AddFilter("b-day", day, WeekdayPattern({0, 1, 2, 3, 4}),
                        HolidayDayTicks(holidays));
  system->AddFilter("weekend-day", day, WeekdayPattern({5, 6}));
  system->AddGroupBy("b-week", b_day, week);
  system->AddGroupBy("b-month", b_day, month);
}

}  // namespace

std::unique_ptr<GranularitySystem> GranularitySystem::Gregorian(
    std::vector<CivilDate> holidays) {
  auto system = std::make_unique<GranularitySystem>();
  AddGregorianFamily(system.get(), kSecondsPerDay, /*with_subday_types=*/true,
                     holidays);
  return system;
}

std::unique_ptr<GranularitySystem> GranularitySystem::GregorianDays(
    std::vector<CivilDate> holidays) {
  auto system = std::make_unique<GranularitySystem>();
  AddGregorianFamily(system.get(), 1, /*with_subday_types=*/false, holidays);
  return system;
}

const Granularity* GranularitySystem::Register(
    std::unique_ptr<Granularity> g) {
  GM_CHECK(!frozen_) << "Register on a frozen system";
  GM_CHECK(by_name_.find(g->name()) == by_name_.end())
      << "duplicate granularity name " << g->name();
  g->id_ = static_cast<GranularityId>(family_.size());
  const Granularity* raw = g.get();
  by_name_.emplace(g->name(), raw);
  family_.push_back(raw);
  owned_.push_back(std::move(g));
  return raw;
}

bool GranularitySystem::RejectIfFrozen(const std::string& name) {
  if (!frozen_) return false;
  last_add_error_ = Status::Invalid(
      "cannot add granularity '" + name +
      "': the system is frozen (Freeze() ends the build phase; create a new "
      "GranularitySystem to define more types)");
  return true;
}

const Granularity* GranularitySystem::AddUniform(std::string name,
                                                 std::int64_t width,
                                                 TimePoint offset) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(
      std::make_unique<UniformGranularity>(std::move(name), width, offset));
}

const Granularity* GranularitySystem::AddMonths(std::string name,
                                                std::int64_t units_per_day) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(
      std::make_unique<MonthGranularity>(std::move(name), units_per_day));
}

const Granularity* GranularitySystem::AddYears(std::string name,
                                               std::int64_t units_per_day) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(
      std::make_unique<YearGranularity>(std::move(name), units_per_day));
}

const Granularity* GranularitySystem::AddFilter(std::string name,
                                                const Granularity* base,
                                                PeriodicPattern pattern,
                                                std::vector<Tick> removed) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(std::make_unique<FilterGranularity>(
      std::move(name), base, std::move(pattern), std::move(removed)));
}

const Granularity* GranularitySystem::AddGroup(std::string name,
                                               const Granularity* base,
                                               std::int64_t k,
                                               std::int64_t phase) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(
      std::make_unique<GroupGranularity>(std::move(name), base, k, phase));
}

const Granularity* GranularitySystem::AddGroupBy(std::string name,
                                                 const Granularity* inner,
                                                 const Granularity* outer) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(
      std::make_unique<GroupByGranularity>(std::move(name), inner, outer));
}

const Granularity* GranularitySystem::AddSynthetic(
    std::string name, std::int64_t period, std::vector<TimeSpan> ticks,
    TimePoint origin) {
  if (RejectIfFrozen(name)) return nullptr;
  return Register(std::make_unique<SyntheticGranularity>(
      std::move(name), period, std::move(ticks), origin));
}

const Granularity* GranularitySystem::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : it->second;
}

Status GranularitySystem::Freeze() {
  if (frozen_) return Status::OK();
  tables_.Seal(family_);
  coverage_.Seal(family_);
  frozen_ = true;
  return Status::OK();
}

Result<FrozenSystemImage> GranularitySystem::ExportFrozenImage() const {
  if (!frozen_) {
    return Status::Internal("ExportFrozenImage on an unfrozen system");
  }
  FrozenSystemImage image;
  image.sealed_k_cap = GranularityTables::kSealedKCap;
  image.names.reserve(family_.size());
  for (const Granularity* g : family_) image.names.push_back(g->name());
  image.table_rows = tables_.ExportSealedRows();
  image.coverage = coverage_.ExportSealedMatrix();
  return image;
}

Status GranularitySystem::FreezeFromImage(const FrozenSystemImage& image) {
  if (frozen_) return Status::Internal("system is already frozen");
  if (image.sealed_k_cap != GranularityTables::kSealedKCap) {
    return Status::Unsupported(
        "frozen image was sealed with k cap " +
        std::to_string(image.sealed_k_cap) + "; this build uses " +
        std::to_string(GranularityTables::kSealedKCap));
  }
  if (image.names.size() != family_.size()) {
    return Status::Invalid("frozen image describes " +
                           std::to_string(image.names.size()) +
                           " granularities; this system has " +
                           std::to_string(family_.size()));
  }
  const std::size_t n = family_.size();
  const std::size_t width =
      static_cast<std::size_t>(GranularityTables::kSealedKCap) + 1;
  if (image.table_rows.size() != n || image.coverage.size() != n * n) {
    return Status::Invalid("frozen image tables/coverage do not match a "
                           "family of " + std::to_string(n));
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (image.names[id] != family_[id]->name()) {
      return Status::Invalid("frozen image granularity " + std::to_string(id) +
                             " is named '" + image.names[id] +
                             "'; this system has '" + family_[id]->name() +
                             "'");
    }
    const GranularityTables::SealedRow& row = image.table_rows[id];
    if (row.minsize.size() != width || row.maxsize.size() != width ||
        row.mingap.size() != width) {
      return Status::Invalid("frozen image row for '" + image.names[id] +
                             "' has the wrong k span");
    }
  }
  // Names matching is necessary but not sufficient — the same name can be
  // registered with a different definition. Recomputing the cheapest table
  // values (k = 1, 2) through the unsealed memo path and comparing them to
  // the image catches that without paying for a full re-seal.
  for (std::size_t id = 0; id < n; ++id) {
    const Granularity& g = *family_[id];
    const GranularityTables::SealedRow& row = image.table_rows[id];
    for (std::int64_t k = 1;
         k <= 2 && k <= GranularityTables::kSealedKCap; ++k) {
      const auto sealed = [&](const std::vector<std::int64_t>& table) {
        const std::int64_t raw = table[static_cast<std::size_t>(k)];
        return raw == GranularityTables::kSealedNoValue
                   ? std::optional<std::int64_t>()
                   : std::optional<std::int64_t>(raw);
      };
      if (tables_.MinSize(g, k) != sealed(row.minsize) ||
          tables_.MaxSize(g, k) != sealed(row.maxsize) ||
          tables_.MinGap(g, k) != sealed(row.mingap)) {
        return Status::Invalid(
            "frozen image tables for '" + g.name() + "' disagree with this "
            "system's definition at k=" + std::to_string(k) +
            "; refusing warm start");
      }
    }
  }
  GM_RETURN_NOT_OK(tables_.SealFromRows(family_, image.table_rows));
  GM_RETURN_NOT_OK(coverage_.SealFromMatrix(family_, image.coverage));
  frozen_ = true;
  return Status::OK();
}

}  // namespace granmine
