#ifndef GRANMINE_GRANULARITY_FILTER_H_
#define GRANMINE_GRANULARITY_FILTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// A periodic selection of base-tick offsets: base tick b is kept iff
/// (b - 1 + anchor) mod base_period is in `kept`. For `b-day` over `day`
/// with day 1 = 1970-01-01 (a Thursday) and Monday = offset 0 the pattern is
/// {base_period = 7, kept = {0,1,2,3,4}, anchor = 3}.
struct PeriodicPattern {
  std::int64_t base_period = 1;
  std::vector<std::int64_t> kept;  ///< sorted, distinct, in [0, base_period)
  std::int64_t anchor = 0;         ///< in [0, base_period)
};

/// A granularity that keeps a periodic subset of another granularity's ticks
/// and renumbers them consecutively — `b-day`, `weekend-day`, and the like.
/// An optional finite list of `removed` base ticks ("holidays") is subtracted
/// on top of the pattern, which makes the type eventually periodic rather
/// than strictly periodic.
class FilterGranularity final : public Granularity {
 public:
  /// `base` must outlive this object. `removed` entries must be base-tick
  /// indices that the pattern keeps.
  FilterGranularity(std::string name, const Granularity* base,
                    PeriodicPattern pattern,
                    std::vector<Tick> removed = {});

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override;
  bool ticks_are_intervals() const override {
    return base_->ticks_are_intervals();
  }
  void TickExtent(Tick z, std::vector<TimeSpan>* out) const override;
  bool IsStrictlyPeriodic() const override { return removed_.empty(); }
  Tick LastDeviantTick() const override;

  const Granularity& base() const { return *base_; }

  /// Number of kept, non-removed base ticks in [1, base_tick].
  std::int64_t CountKept(Tick base_tick) const;
  /// The base tick of this granularity's tick z (z >= 1).
  Tick BaseTickOf(Tick z) const;
  /// Whether the pattern (ignoring removals) keeps this base tick.
  bool PatternKeeps(Tick base_tick) const;
  /// Whether base_tick is kept and not removed.
  bool Keeps(Tick base_tick) const;

 private:
  const Granularity* base_;
  PeriodicPattern pattern_;
  std::vector<Tick> removed_;  // sorted
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_FILTER_H_
