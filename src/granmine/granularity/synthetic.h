#ifndef GRANMINE_GRANULARITY_SYNTHETIC_H_
#define GRANMINE_GRANULARITY_SYNTHETIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// A fully explicit periodic granularity for toy calendars and tests: one
/// period of `period` primitive instants starting at `origin` contains the
/// given tick intervals (sorted, disjoint, within [0, period)), and the
/// pattern repeats forever. Gaps between intervals are outside the support.
///
/// Example: a "3-day toy week with a 1-day gap":
///   SyntheticGranularity("toy-week", 4, {TimeSpan::Of(0, 2)}).
class SyntheticGranularity final : public Granularity {
 public:
  SyntheticGranularity(std::string name, std::int64_t period,
                       std::vector<TimeSpan> ticks_in_period,
                       TimePoint origin = 0);

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override {
    return {period_, static_cast<std::int64_t>(ticks_.size())};
  }
  bool HasFullSupport() const override { return full_support_; }

 private:
  std::int64_t period_;
  std::vector<TimeSpan> ticks_;
  TimePoint origin_;
  bool full_support_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_SYNTHETIC_H_
