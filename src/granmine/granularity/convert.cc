#include "granmine/granularity/convert.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <vector>

#include "granmine/common/check.h"
#include "granmine/common/math.h"
#include "granmine/obs/obs.h"

namespace granmine {

std::optional<Tick> CoveringTick(const Granularity& mu, const Granularity& nu,
                                 Tick z) {
  if (z < 1) return std::nullopt;
  std::vector<TimeSpan> nu_extent;
  nu.TickExtent(z, &nu_extent);
  if (nu_extent.empty()) return std::nullopt;
  std::optional<Tick> candidate = mu.TickContaining(nu_extent.front().first);
  if (!candidate.has_value()) return std::nullopt;
  std::vector<TimeSpan> mu_extent;
  mu.TickExtent(*candidate, &mu_extent);
  // Every nu interval must lie inside some mu interval of the candidate tick.
  std::size_t j = 0;
  for (const TimeSpan& piece : nu_extent) {
    while (j < mu_extent.size() && mu_extent[j].last < piece.first) ++j;
    if (j >= mu_extent.size() || !mu_extent[j].Contains(piece)) {
      return std::nullopt;
    }
  }
  return candidate;
}

bool SupportContainsSpan(const Granularity& g, const TimeSpan& span) {
  if (span.empty()) return true;
  TimePoint t = span.first;
  std::vector<TimeSpan> extent;
  while (t <= span.last) {
    std::optional<Tick> z = g.TickContaining(t);
    if (!z.has_value()) return false;
    extent.clear();
    g.TickExtent(*z, &extent);
    TimePoint advanced = t;
    for (const TimeSpan& piece : extent) {
      if (piece.Contains(t)) {
        advanced = piece.last + 1;
        break;
      }
    }
    GM_CHECK(advanced > t) << "extent of " << g.name() << " tick " << *z
                           << " does not contain a covered instant";
    t = advanced;
  }
  return true;
}

bool SupportCovers(const Granularity& target, const Granularity& source,
                   std::int64_t scan_cap) {
  // Event timestamps are non-negative (§2: positive integers of the
  // primitive type), so coverage only has to hold on [0, +inf).
  const TimePoint source_start = std::max<TimePoint>(source.SupportStart(), 0);
  if (source.HasFullSupport()) {
    return target.HasFullSupport() && target.SupportStart() <= source_start;
  }
  if (target.HasFullSupport()) {
    return target.SupportStart() <= source_start;
  }
  // Both gapped: scan source ticks across one joint period, extended past
  // both exception windows.
  const Granularity::Periodicity ps = source.periodicity();
  const Granularity::Periodicity pt = target.periodicity();
  std::int64_t joint_period;
  if (__builtin_mul_overflow(ps.period / std::gcd(ps.period, pt.period),
                             pt.period, &joint_period)) {
    return false;  // conservatively infeasible
  }
  std::int64_t joint_source_ticks =
      joint_period / ps.period * ps.ticks_per_period;
  Tick last = source.LastDeviantTick() + joint_source_ticks;
  // Extend past the target's exception window as well.
  if (!target.IsStrictlyPeriodic()) {
    std::optional<TimeSpan> dev_hull =
        target.TickHull(target.LastDeviantTick() + 1);
    GM_CHECK(dev_hull.has_value());
    last = std::max(last, FirstTickEndingAtOrAfter(source, dev_hull->last) +
                              joint_source_ticks);
  }
  if (last > scan_cap) return false;  // conservatively infeasible
  std::vector<TimeSpan> extent;
  for (Tick z = 1; z <= last; ++z) {
    extent.clear();
    source.TickExtent(z, &extent);
    for (TimeSpan piece : extent) {
      piece.first = std::max<TimePoint>(piece.first, 0);
      if (!SupportContainsSpan(target, piece)) return false;
    }
  }
  return true;
}

void SupportCoverageCache::Seal(
    const std::vector<const Granularity*>& family) {
  if (sealed_) return;
  const std::size_t n = family.size();
  sealed_family_ = family;
  sealed_matrix_.assign(n * n, false);
  for (std::size_t t = 0; t < n; ++t) {
    GM_CHECK(family[t] != nullptr);
    GM_CHECK(family[t]->id() == static_cast<GranularityId>(t));
    for (std::size_t s = 0; s < n; ++s) {
      sealed_matrix_[t * n + s] = Covers(*family[t], *family[s]);
    }
  }
  sealed_ = true;
}

std::vector<bool> SupportCoverageCache::ExportSealedMatrix() const {
  GM_CHECK(sealed_) << "ExportSealedMatrix on an unsealed coverage cache";
  return sealed_matrix_;
}

Status SupportCoverageCache::SealFromMatrix(
    const std::vector<const Granularity*>& family, std::vector<bool> matrix) {
  if (sealed_) {
    return Status::Internal("support coverage cache is already sealed");
  }
  const std::size_t n = family.size();
  if (matrix.size() != n * n) {
    return Status::Invalid("coverage-matrix image has " +
                           std::to_string(matrix.size()) +
                           " cells for a family of " + std::to_string(n));
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (family[id] == nullptr ||
        family[id]->id() != static_cast<GranularityId>(id)) {
      return Status::Invalid("family member " + std::to_string(id) +
                             " is not id-indexed; cannot seal coverage");
    }
  }
  sealed_family_ = family;
  sealed_matrix_ = std::move(matrix);
  sealed_ = true;
  return Status::OK();
}

bool SupportCoverageCache::Covers(const Granularity& target,
                                  const Granularity& source) {
  if (sealed_) {
    const std::size_t n = sealed_family_.size();
    const GranularityId tid = target.id();
    const GranularityId sid = source.id();
    if (tid >= 0 && sid >= 0 && static_cast<std::size_t>(tid) < n &&
        static_cast<std::size_t>(sid) < n &&
        sealed_family_[static_cast<std::size_t>(tid)] == &target &&
        sealed_family_[static_cast<std::size_t>(sid)] == &source) {
      GM_COUNTER_ADD("granmine_coverage_lookups_total", "result=\"sealed\"",
                     1);
      return sealed_matrix_[static_cast<std::size_t>(tid) * n +
                            static_cast<std::size_t>(sid)];
    }
  }
  const Key key = std::make_pair(&target, &source);
  Shard& shard = ShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    if (auto it = shard.cache.find(key); it != shard.cache.end()) {
      GM_COUNTER_ADD("granmine_coverage_lookups_total", "result=\"hit\"", 1);
      return it->second;
    }
  }
  GM_COUNTER_ADD("granmine_coverage_lookups_total", "result=\"miss\"", 1);
  // SupportCovers is deterministic, so computing outside the lock at worst
  // duplicates work; emplace keeps the first answer (they are all equal).
  bool result = SupportCovers(target, source);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  shard.cache.emplace(key, result);
  return result;
}

}  // namespace granmine
