#include "granmine/granularity/group.h"

#include <algorithm>
#include <numeric>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

namespace {

// Appends `span` to `out`, merging with the previous interval when adjacent
// or overlapping, keeping the list maximal-disjoint-increasing.
void AppendMerging(const TimeSpan& span, std::vector<TimeSpan>* out) {
  if (span.empty()) return;
  if (!out->empty() && out->back().last + 1 >= span.first) {
    out->back().last = std::max(out->back().last, span.last);
  } else {
    out->push_back(span);
  }
}

}  // namespace

GroupGranularity::GroupGranularity(std::string name, const Granularity* base,
                                   std::int64_t k, std::int64_t phase)
    : Granularity(std::move(name)), base_(base), k_(k), phase_(phase) {
  GM_CHECK(base_ != nullptr);
  GM_CHECK(k_ >= 1);
  GM_CHECK(phase_ >= 0);
  GM_CHECK(base_->IsStrictlyPeriodic())
      << "GroupGranularity requires a strictly periodic base";
}

std::optional<Tick> GroupGranularity::TickContaining(TimePoint t) const {
  std::optional<Tick> b = base_->TickContaining(t);
  if (!b.has_value() || *b <= phase_) return std::nullopt;
  return (*b - phase_ - 1) / k_ + 1;
}

std::optional<TimeSpan> GroupGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  std::optional<TimeSpan> first = base_->TickHull(FirstBaseTick(z));
  std::optional<TimeSpan> last = base_->TickHull(FirstBaseTick(z) + k_ - 1);
  GM_CHECK(first.has_value() && last.has_value());
  return TimeSpan::Of(first->first, last->last);
}

Granularity::Periodicity GroupGranularity::periodicity() const {
  Periodicity base_p = base_->periodicity();
  std::int64_t g = std::gcd(k_, base_p.ticks_per_period);
  return {base_p.period * (k_ / g), base_p.ticks_per_period / g};
}

bool GroupGranularity::ticks_are_intervals() const {
  return base_->HasFullSupport() && base_->ticks_are_intervals();
}

void GroupGranularity::TickExtent(Tick z, std::vector<TimeSpan>* out) const {
  if (z < 1) return;
  std::vector<TimeSpan> inner;
  for (Tick b = FirstBaseTick(z); b <= FirstBaseTick(z) + k_ - 1; ++b) {
    inner.clear();
    base_->TickExtent(b, &inner);
    for (const TimeSpan& span : inner) AppendMerging(span, out);
  }
}

GroupByGranularity::GroupByGranularity(std::string name,
                                       const Granularity* inner,
                                       const Granularity* outer)
    : Granularity(std::move(name)), inner_(inner), outer_(outer) {
  GM_CHECK(inner_ != nullptr && outer_ != nullptr);
  GM_CHECK(outer_->IsStrictlyPeriodic())
      << "GroupByGranularity requires a strictly periodic outer type";
  // Validate refinement + non-emptiness over one joint period plus the
  // inner exception window.
  Periodicity joint = periodicity();
  std::optional<TimeSpan> dev_hull =
      inner_->IsStrictlyPeriodic()
          ? std::nullopt
          : inner_->TickHull(inner_->LastDeviantTick() + 1);
  Tick last_checked = joint.ticks_per_period + 1;
  if (dev_hull.has_value()) {
    std::optional<Tick> o = outer_->TickContaining(dev_hull->first);
    if (o.has_value()) last_checked = std::max(last_checked, *o + 1);
  }
  last_checked = std::min<Tick>(last_checked, 1 << 16);
  for (Tick z = 1; z <= last_checked; ++z) {
    std::pair<Tick, Tick> range = InnerRange(z);
    GM_CHECK(range.first <= range.second)
        << "outer tick " << z << " of " << outer_->name()
        << " contains no tick of " << inner_->name();
    std::optional<TimeSpan> outer_hull = outer_->TickHull(z);
    std::optional<TimeSpan> lo = inner_->TickHull(range.first);
    std::optional<TimeSpan> hi = inner_->TickHull(range.second);
    GM_CHECK(outer_hull->Contains(*lo) && outer_hull->Contains(*hi))
        << inner_->name() << " does not refine " << outer_->name()
        << " at outer tick " << z;
  }
}

std::pair<Tick, Tick> GroupByGranularity::InnerRange(Tick z) const {
  std::optional<TimeSpan> hull = outer_->TickHull(z);
  GM_CHECK(hull.has_value());
  Tick first = FirstTickEndingAtOrAfter(*inner_, hull->first);
  std::optional<Tick> last = LastTickStartingAtOrBefore(*inner_, hull->last);
  if (!last.has_value()) return {1, 0};  // empty
  // Trim ticks that merely touch but start before / end after the hull
  // (cannot happen under refinement, but keep the computation defensive).
  std::optional<TimeSpan> first_hull = inner_->TickHull(first);
  if (first_hull->first < hull->first) ++first;
  std::optional<TimeSpan> last_hull = inner_->TickHull(*last);
  if (last_hull->last > hull->last) --*last;
  return {first, *last};
}

std::optional<Tick> GroupByGranularity::TickContaining(TimePoint t) const {
  std::optional<Tick> i = inner_->TickContaining(t);
  if (!i.has_value()) return std::nullopt;
  std::optional<Tick> o = outer_->TickContaining(t);
  GM_DCHECK(o.has_value());
  return o;
}

std::optional<TimeSpan> GroupByGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  std::pair<Tick, Tick> range = InnerRange(z);
  GM_CHECK(range.first <= range.second);
  std::optional<TimeSpan> lo = inner_->TickHull(range.first);
  std::optional<TimeSpan> hi = inner_->TickHull(range.second);
  return TimeSpan::Of(lo->first, hi->last);
}

Granularity::Periodicity GroupByGranularity::periodicity() const {
  Periodicity pi = inner_->periodicity();
  Periodicity po = outer_->periodicity();
  std::int64_t period = std::lcm(pi.period, po.period);
  return {period, po.ticks_per_period * (period / po.period)};
}

void GroupByGranularity::TickExtent(Tick z,
                                    std::vector<TimeSpan>* out) const {
  if (z < 1) return;
  std::pair<Tick, Tick> range = InnerRange(z);
  std::vector<TimeSpan> spans;
  for (Tick i = range.first; i <= range.second; ++i) {
    spans.clear();
    inner_->TickExtent(i, &spans);
    for (const TimeSpan& span : spans) AppendMerging(span, out);
  }
}

Tick GroupByGranularity::LastDeviantTick() const {
  Tick deviant = 0;
  // Truncated boundary: the inner support starts after the first outer tick
  // begins, so early group hulls do not follow the periodic pattern.
  TimePoint inner_start = inner_->SupportStart();
  std::optional<TimeSpan> first_outer = outer_->TickHull(1);
  GM_CHECK(first_outer.has_value());
  if (inner_start > first_outer->first) {
    std::optional<Tick> o = outer_->TickContaining(inner_start);
    GM_CHECK(o.has_value());
    deviant = *o;
  }
  // Inner holiday overlays perturb groups up to the one past the window.
  if (!inner_->IsStrictlyPeriodic()) {
    std::optional<TimeSpan> hull =
        inner_->TickHull(inner_->LastDeviantTick() + 1);
    GM_CHECK(hull.has_value());
    std::optional<Tick> o = outer_->TickContaining(hull->last);
    GM_CHECK(o.has_value());
    deviant = std::max(deviant, *o + 1);
  }
  return deviant;
}

}  // namespace granmine
