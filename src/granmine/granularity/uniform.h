#ifndef GRANMINE_GRANULARITY_UNIFORM_H_
#define GRANMINE_GRANULARITY_UNIFORM_H_

#include <cstdint>
#include <optional>
#include <string>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// A granularity whose tick z is the interval
/// [offset + (z-1)*width, offset + z*width - 1]: `second`, `minute`, `hour`,
/// `day`, `week` and synthetic fixed-width toy types. `offset` may be
/// negative (the standard `week` is anchored to the Monday *before* the
/// epoch so that instant 0 lies inside tick 1).
class UniformGranularity final : public Granularity {
 public:
  UniformGranularity(std::string name, std::int64_t width,
                     TimePoint offset = 0);

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override { return {width_, 1}; }
  bool HasFullSupport() const override { return true; }

  std::optional<std::int64_t> AnalyticMinSize(std::int64_t k) const override;
  std::optional<std::int64_t> AnalyticMaxSize(std::int64_t k) const override;
  std::optional<std::int64_t> AnalyticMinGap(std::int64_t k) const override;

  std::int64_t width() const { return width_; }

 private:
  std::int64_t width_;
  TimePoint offset_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_UNIFORM_H_
