#ifndef GRANMINE_GRANULARITY_CONVERT_H_
#define GRANMINE_GRANULARITY_CONVERT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// The paper's `⌈z⌉^μ_ν` (§2): the unique tick z' of `mu` whose extent
/// contains the *entire* extent of tick z of `nu`, or nullopt when no single
/// tick of `mu` covers it (e.g., a week straddling two months).
std::optional<Tick> CoveringTick(const Granularity& mu, const Granularity& nu,
                                 Tick z);

/// Whether every instant of `span` belongs to the support of `g`.
bool SupportContainsSpan(const Granularity& g, const TimeSpan& span);

/// Decides the Appendix-A.1 feasibility precondition for converting
/// constraints from `source` into `target`:
///   for all i, t:  t ∈ source(i)  ⇒  exists j: t ∈ target(j),
/// i.e., support(source) ⊆ support(target). Full-support types are decided
/// in O(1); gapped pairs are scanned over one joint period (plus exception
/// windows). Returns false conservatively when the joint period exceeds
/// `scan_cap` source ticks — failing to convert is always sound.
bool SupportCovers(const Granularity& target, const Granularity& source,
                   std::int64_t scan_cap = std::int64_t{1} << 20);

/// Memoizing wrapper around SupportCovers, keyed by granularity addresses.
/// Not thread-safe; must not outlive the granularities it has seen.
class SupportCoverageCache {
 public:
  bool Covers(const Granularity& target, const Granularity& source);

 private:
  std::map<std::pair<const Granularity*, const Granularity*>, bool> cache_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_CONVERT_H_
