#ifndef GRANMINE_GRANULARITY_CONVERT_H_
#define GRANMINE_GRANULARITY_CONVERT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "granmine/common/status.h"
#include "granmine/granularity/granularity.h"

namespace granmine {

/// The paper's `⌈z⌉^μ_ν` (§2): the unique tick z' of `mu` whose extent
/// contains the *entire* extent of tick z of `nu`, or nullopt when no single
/// tick of `mu` covers it (e.g., a week straddling two months).
std::optional<Tick> CoveringTick(const Granularity& mu, const Granularity& nu,
                                 Tick z);

/// Whether every instant of `span` belongs to the support of `g`.
bool SupportContainsSpan(const Granularity& g, const TimeSpan& span);

/// Decides the Appendix-A.1 feasibility precondition for converting
/// constraints from `source` into `target`:
///   for all i, t:  t ∈ source(i)  ⇒  exists j: t ∈ target(j),
/// i.e., support(source) ⊆ support(target). Full-support types are decided
/// in O(1); gapped pairs are scanned over one joint period (plus exception
/// windows). Returns false conservatively when the joint period exceeds
/// `scan_cap` source ticks — failing to convert is always sound.
bool SupportCovers(const Granularity& target, const Granularity& source,
                   std::int64_t scan_cap = std::int64_t{1} << 20);

/// Memoizing wrapper around SupportCovers. Must not outlive the
/// granularities it has seen.
///
/// Identity has two phases, mirroring `GranularityTables`. While building,
/// pairs are keyed by address in hashed shards; after `Seal()` (driven by
/// `GranularitySystem::Freeze()`) every (target, source) answer for the
/// family lives in a flat id×id matrix and a lookup is two bounds-checked
/// array reads — no hashing, no lock. Pairs involving a granularity outside
/// the sealed family fall back to the sharded memo.
///
/// Thread safety: `Covers` may be called concurrently. Pre-seal (and on the
/// fallback path) the memo is split into address-hashed shards, each behind
/// a `std::shared_mutex`; hits take only the shared lock, and misses compute
/// `SupportCovers` (a pure function) outside any lock, so a race at worst
/// recomputes the same value. Post-seal the matrix is immutable, so sealed
/// hits are wait-free.
class SupportCoverageCache {
 public:
  bool Covers(const Granularity& target, const Granularity& source);

  /// Freezes coverage for `family` (listed in id order): precomputes
  /// SupportCovers for every ordered pair into a dense id×id matrix.
  /// Idempotent; must not race with `Covers` (freeze on the build thread,
  /// then share).
  void Seal(const std::vector<const Granularity*>& family);

  bool sealed() const { return sealed_; }

  /// The sealed id×id matrix as plain data, row-major target×source.
  /// Requires sealed().
  std::vector<bool> ExportSealedMatrix() const;

  /// Seals directly from a previously exported matrix, skipping the pairwise
  /// SupportCovers scans — the persist warm-start path. `family` as for
  /// `Seal`; `matrix` must be family-size squared. Fails (leaving the cache
  /// unsealed) on any shape mismatch; values are trusted, provenance is the
  /// caller's job (`GranularitySystem::FreezeFromImage`).
  Status SealFromMatrix(const std::vector<const Granularity*>& family,
                        std::vector<bool> matrix);

 private:
  using Key = std::pair<const Granularity*, const Granularity*>;

  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t h = std::hash<const void*>()(key.first);
      return h ^ (std::hash<const void*>()(key.second) +
                  std::size_t{0x9e3779b97f4a7c15ULL} + (h << 6) + (h >> 2));
    }
  };

  static constexpr std::size_t kShards = 8;

  struct Shard {
    std::shared_mutex mutex;
    std::unordered_map<Key, bool, KeyHash> cache;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[KeyHash()(key) % kShards];
  }

  Shard shards_[kShards];

  /// Immutable after Seal. `sealed_matrix_[target_id * n + source_id]`
  /// holds the answer; `sealed_family_` doubles as the id → address guard
  /// (a slot is trusted only when both addresses match).
  std::vector<const Granularity*> sealed_family_;
  std::vector<bool> sealed_matrix_;
  bool sealed_ = false;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_CONVERT_H_
