#ifndef GRANMINE_GRANULARITY_GRANULARITY_H_
#define GRANMINE_GRANULARITY_GRANULARITY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "granmine/common/time_span.h"

namespace granmine {

/// Dense index of a granularity within its owning `GranularitySystem`,
/// assigned in registration order. Ids are the identity the frozen caches
/// key on: after `GranularitySystem::Freeze()` every table/coverage lookup
/// is a bounds-checked array access on `id()` instead of pointer hashing.
using GranularityId = std::int32_t;

/// `id()` of a granularity not (yet) registered with a system.
inline constexpr GranularityId kInvalidGranularityId = -1;

/// A *temporal type* per §2 of the paper: a mapping from tick indices
/// (positive integers) to sets of absolute time instants such that
///   (1) non-empty ticks are monotonically ordered, and
///   (2) once a tick is empty all later ticks are empty.
///
/// Instances here are infinite (no tick is ever empty) and *eventually
/// periodic*: the hull pattern repeats with `periodicity()`, except possibly
/// inside a finite exception window (holiday overlays), see
/// `IsStrictlyPeriodic()`. Every algorithm in granmine manipulates
/// granularities exclusively through this interface.
///
/// Granularities are created and owned by a `GranularitySystem` and
/// referenced by `const Granularity*`; the system additionally assigns each
/// one a dense `GranularityId` (`id()`), which is the identity the shared
/// caches use after `Freeze()` — the pointer remains a convenient handle,
/// but the frozen tables and coverage matrix are indexed by id, not hashed
/// by address.
class Granularity {
 public:
  /// Periodic structure of the hull pattern:
  /// `TickHull(z + ticks_per_period).first == TickHull(z).first + period`
  /// for every tick z outside the exception window.
  struct Periodicity {
    std::int64_t period = 1;            ///< in primitive instants
    std::int64_t ticks_per_period = 1;  ///< number of ticks per period
  };

  explicit Granularity(std::string name) : name_(std::move(name)) {}
  virtual ~Granularity() = default;

  Granularity(const Granularity&) = delete;
  Granularity& operator=(const Granularity&) = delete;

  const std::string& name() const { return name_; }

  /// Dense index within the owning system (`kInvalidGranularityId` until
  /// registered). `system.family()[g->id()] == g` for registered types.
  GranularityId id() const { return id_; }

  /// The index of the tick whose extent contains instant `t`, or nullopt when
  /// `t` falls in a gap between ticks (e.g., a Saturday for `b-day`) or
  /// before tick 1. This is the paper's `⌈t⌉^μ` for a primitive instant t.
  virtual std::optional<Tick> TickContaining(TimePoint t) const = 0;

  /// The convex hull [min extent, max extent] of tick `z`, or nullopt when
  /// z < 1. For interval granularities the hull *is* the extent.
  virtual std::optional<TimeSpan> TickHull(Tick z) const = 0;

  virtual Periodicity periodicity() const = 0;

  /// True when every tick's extent equals its hull (no internal gaps).
  /// False for group-by types such as `b-month`, whose ticks are unions.
  virtual bool ticks_are_intervals() const { return true; }

  /// Appends the extent of tick `z` as maximal disjoint intervals in
  /// increasing order. Default: the hull as a single interval.
  virtual void TickExtent(Tick z, std::vector<TimeSpan>* out) const;

  /// True when the support (union of all extents) is a single unbounded
  /// interval [SupportStart(), +inf) — i.e., there are no gaps at all.
  virtual bool HasFullSupport() const { return false; }

  /// The first instant covered by any tick (== TickHull(1)->first).
  TimePoint SupportStart() const;

  /// True when the hull pattern is exactly periodic for *all* ticks.
  /// False only for exception overlays (holidays); see LastDeviantTick().
  virtual bool IsStrictlyPeriodic() const { return true; }

  /// For non-strictly-periodic types: an upper bound on the last tick index
  /// whose hull deviates from the pure periodic pattern; ticks after it obey
  /// `periodicity()`. Meaningless (0) for strictly periodic types.
  virtual Tick LastDeviantTick() const { return 0; }

  /// Exact closed-form tables where available (uniform types); nullopt means
  /// "compute by scanning" (see GranularityTables). All values in primitive
  /// instants; k >= 1.
  virtual std::optional<std::int64_t> AnalyticMinSize(std::int64_t k) const;
  virtual std::optional<std::int64_t> AnalyticMaxSize(std::int64_t k) const;
  virtual std::optional<std::int64_t> AnalyticMinGap(std::int64_t k) const;

  /// Whether instant `t` belongs to the support.
  bool InSupport(TimePoint t) const { return TickContaining(t).has_value(); }

 private:
  friend class GranularitySystem;  // assigns id_ at registration

  std::string name_;
  GranularityId id_ = kInvalidGranularityId;
};

/// `⌈t2⌉^μ − ⌈t1⌉^μ` when both ticks are defined, else nullopt.
std::optional<std::int64_t> TickDifference(const Granularity& g, TimePoint t1,
                                           TimePoint t2);

/// Smallest tick z with TickHull(z)->last >= t (the tick containing t, or the
/// first tick entirely after t). nullopt when t precedes tick 1's start and
/// z would be < 1 — never happens since tick 1 qualifies; returns 1 then.
Tick FirstTickEndingAtOrAfter(const Granularity& g, TimePoint t);

/// Largest tick z with TickHull(z)->first <= t, or nullopt when t precedes
/// the start of tick 1.
std::optional<Tick> LastTickStartingAtOrBefore(const Granularity& g,
                                               TimePoint t);

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_GRANULARITY_H_
