#ifndef GRANMINE_GRANULARITY_SYSTEM_H_
#define GRANMINE_GRANULARITY_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "granmine/common/result.h"
#include "granmine/common/status.h"
#include "granmine/granularity/calendar_types.h"
#include "granmine/granularity/civil_calendar.h"
#include "granmine/granularity/convert.h"
#include "granmine/granularity/filter.h"
#include "granmine/granularity/granularity.h"
#include "granmine/granularity/group.h"
#include "granmine/granularity/synthetic.h"
#include "granmine/granularity/tables.h"
#include "granmine/granularity/uniform.h"

namespace granmine {

/// A frozen system's sealed caches as plain data: the family names in id
/// order (the identity check on restore), every granularity's sealed table
/// rows, and the support-coverage matrix. Produced by
/// `GranularitySystem::ExportFrozenImage`, consumed by `FreezeFromImage`;
/// the persist layer (de)serializes it (persist/codecs.h) so `Engine` can
/// warm-start from a snapshot instead of re-running the `Freeze()` scans.
struct FrozenSystemImage {
  std::vector<std::string> names;
  /// The kSealedKCap the rows were computed with; rejected on mismatch.
  std::int64_t sealed_k_cap = 0;
  std::vector<GranularityTables::SealedRow> table_rows;
  /// Row-major target×source, names.size() squared.
  std::vector<bool> coverage;
};

/// Owns a family of granularities over one primitive time line, plus the
/// shared caches (Appendix-A.1 tables and support-coverage results) that the
/// constraint algorithms consult. The registry is append-only; each
/// granularity gets a dense `GranularityId` in registration order, and
/// pointers remain valid for the lifetime of the system.
///
/// Lifecycle: build → freeze → serve. `Freeze()` ends the build phase — it
/// seals `tables()` and `coverage()` into flat id-indexed arrays (lookups
/// become bounds-checked array reads, no hashing, no locks) and makes the
/// family immutable: any later `Add*` returns nullptr and records a Status
/// retrievable via `last_add_error()`. Freezing is optional; an unfrozen
/// system behaves exactly as before on the sharded-memo path.
///
/// Thread safety: the caches returned by `tables()` and `coverage()` are
/// internally synchronized, so a fully built system may be shared by any
/// number of reader/query threads — every worker warms the same tables
/// instead of rebuilding them. Registration (`Add*`) and `Freeze()` are not
/// synchronized; finish building (and freeze, if desired) before sharing
/// the system across threads. A *frozen* system needs no synchronization at
/// all for table/coverage hits within the sealed range.
class GranularitySystem {
 public:
  GranularitySystem() = default;
  GranularitySystem(const GranularitySystem&) = delete;
  GranularitySystem& operator=(const GranularitySystem&) = delete;

  /// The standard second-based Gregorian family: second, minute, hour, day,
  /// week (Monday-anchored), month, quarter, year, b-day, weekend-day,
  /// b-week, b-month. `holidays` (civil dates) are removed from the business
  /// types.
  static std::unique_ptr<GranularitySystem> Gregorian(
      std::vector<CivilDate> holidays = {});

  /// A day-grained Gregorian family (primitive instant = one day): day,
  /// week, month, year, b-day — convenient for examples whose events are
  /// daily and for tractable exact solving.
  static std::unique_ptr<GranularitySystem> GregorianDays(
      std::vector<CivilDate> holidays = {});

  const Granularity* AddUniform(std::string name, std::int64_t width,
                                TimePoint offset = 0);
  const Granularity* AddMonths(std::string name, std::int64_t units_per_day);
  const Granularity* AddYears(std::string name, std::int64_t units_per_day);
  const Granularity* AddFilter(std::string name, const Granularity* base,
                               PeriodicPattern pattern,
                               std::vector<Tick> removed = {});
  const Granularity* AddGroup(std::string name, const Granularity* base,
                              std::int64_t k, std::int64_t phase = 0);
  const Granularity* AddGroupBy(std::string name, const Granularity* inner,
                                const Granularity* outer);
  const Granularity* AddSynthetic(std::string name, std::int64_t period,
                                  std::vector<TimeSpan> ticks_in_period,
                                  TimePoint origin = 0);

  /// Looks up a granularity by name; nullptr when absent.
  const Granularity* Find(std::string_view name) const;

  /// Ends the build phase: precomputes the table/coverage caches into dense
  /// id-indexed arrays and rejects further `Add*` calls. Idempotent; call
  /// from the build thread before sharing the system. Always succeeds (an
  /// empty family freezes fine).
  Status Freeze();

  bool frozen() const { return frozen_; }

  /// The frozen caches as plain data for snapshotting. Requires frozen().
  Result<FrozenSystemImage> ExportFrozenImage() const;

  /// Ends the build phase by installing a previously exported image instead
  /// of recomputing the seal scans (warm start). The image must come from a
  /// family with the same names in the same id order; on top of the name
  /// check, table values for k = 1 and 2 are recomputed and compared so an
  /// image from a structurally different *definition* of the same names is
  /// rejected too. Fails without freezing on any mismatch — the system then
  /// still accepts a plain `Freeze()`.
  Status FreezeFromImage(const FrozenSystemImage& image);

  /// The registered granularities in id order: `family()[g->id()] == g`.
  const std::vector<const Granularity*>& family() const { return family_; }

  /// The Status of the most recent rejected `Add*` (one that returned
  /// nullptr because the system is frozen); OK when none has been rejected.
  const Status& last_add_error() const { return last_add_error_; }

  GranularityTables& tables() const { return tables_; }
  SupportCoverageCache& coverage() const { return coverage_; }

 private:
  const Granularity* Register(std::unique_ptr<Granularity> g);
  /// Records and rejects a post-freeze `Add*`; returns true when frozen.
  bool RejectIfFrozen(const std::string& name);

  std::vector<std::unique_ptr<Granularity>> owned_;
  std::vector<const Granularity*> family_;
  std::unordered_map<std::string, const Granularity*> by_name_;
  bool frozen_ = false;
  Status last_add_error_ = Status::OK();
  mutable GranularityTables tables_;
  mutable SupportCoverageCache coverage_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_SYSTEM_H_
