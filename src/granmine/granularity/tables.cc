#include "granmine/granularity/tables.h"

#include <algorithm>
#include <mutex>

#include "granmine/common/check.h"
#include "granmine/common/math.h"
#include "granmine/obs/obs.h"

namespace granmine {

GranularityTables::GranularityTables() : GranularityTables(Options{}) {}

GranularityTables::GranularityTables(Options options) : options_(options) {}

void GranularityTables::Seal(const std::vector<const Granularity*>& family) {
  if (sealed_) return;
  sealed_entries_.clear();
  sealed_entries_.resize(family.size());
  for (std::size_t id = 0; id < family.size(); ++id) {
    const Granularity* g = family[id];
    GM_CHECK(g != nullptr);
    GM_CHECK(g->id() == static_cast<GranularityId>(id));
    SealedEntry& slot = sealed_entries_[id];
    slot.minsize.assign(static_cast<std::size_t>(kSealedKCap) + 1,
                        kSealedNoValue);
    slot.maxsize.assign(static_cast<std::size_t>(kSealedKCap) + 1,
                        kSealedNoValue);
    slot.mingap.assign(static_cast<std::size_t>(kSealedKCap) + 1,
                       kSealedNoValue);
    for (std::int64_t k = 1; k <= kSealedKCap; ++k) {
      auto store = [k](std::vector<std::int64_t>& table,
                       std::optional<std::int64_t> v) {
        table[static_cast<std::size_t>(k)] = v.value_or(kSealedNoValue);
      };
      store(slot.minsize, MinSize(*g, k));
      store(slot.maxsize, MaxSize(*g, k));
      store(slot.mingap, MinGap(*g, k));
    }
    // Publish the guard pointer last: SealedValue only trusts a slot whose
    // address matches, so a granularity from a *different* system that
    // happens to share an id can never read a foreign row.
    slot.gran = g;
  }
  sealed_ = true;
}

std::vector<GranularityTables::SealedRow> GranularityTables::ExportSealedRows()
    const {
  GM_CHECK(sealed_) << "ExportSealedRows on unsealed tables";
  std::vector<SealedRow> rows;
  rows.reserve(sealed_entries_.size());
  for (const SealedEntry& slot : sealed_entries_) {
    rows.push_back(SealedRow{slot.minsize, slot.maxsize, slot.mingap});
  }
  return rows;
}

Status GranularityTables::SealFromRows(
    const std::vector<const Granularity*>& family,
    std::vector<SealedRow> rows) {
  if (sealed_) {
    return Status::Internal("granularity tables are already sealed");
  }
  if (rows.size() != family.size()) {
    return Status::Invalid("sealed-table image has " +
                           std::to_string(rows.size()) + " rows for a family "
                           "of " + std::to_string(family.size()));
  }
  const std::size_t width = static_cast<std::size_t>(kSealedKCap) + 1;
  for (std::size_t id = 0; id < family.size(); ++id) {
    const Granularity* g = family[id];
    if (g == nullptr || g->id() != static_cast<GranularityId>(id)) {
      return Status::Invalid("family member " + std::to_string(id) +
                             " is not id-indexed; cannot seal from rows");
    }
    const SealedRow& row = rows[id];
    if (row.minsize.size() != width || row.maxsize.size() != width ||
        row.mingap.size() != width) {
      return Status::Invalid("sealed-table row for '" + g->name() +
                             "' does not span k in [1, " +
                             std::to_string(kSealedKCap) + "]");
    }
  }
  sealed_entries_.clear();
  sealed_entries_.resize(family.size());
  for (std::size_t id = 0; id < family.size(); ++id) {
    SealedEntry& slot = sealed_entries_[id];
    slot.minsize = std::move(rows[id].minsize);
    slot.maxsize = std::move(rows[id].maxsize);
    slot.mingap = std::move(rows[id].mingap);
    slot.gran = family[id];
  }
  sealed_ = true;
  return Status::OK();
}

std::optional<std::optional<std::int64_t>> GranularityTables::SealedValue(
    Table table, const Granularity& g, std::int64_t k) const {
  if (!sealed_ || k < 1 || k > kSealedKCap) return std::nullopt;
  const GranularityId id = g.id();
  if (id < 0 || static_cast<std::size_t>(id) >= sealed_entries_.size()) {
    return std::nullopt;
  }
  const SealedEntry& slot = sealed_entries_[static_cast<std::size_t>(id)];
  if (slot.gran != &g) return std::nullopt;
  const std::vector<std::int64_t>* values = nullptr;
  switch (table) {
    case Table::kMinSize:
      values = &slot.minsize;
      break;
    case Table::kMaxSize:
      values = &slot.maxsize;
      break;
    default:
      values = &slot.mingap;
      break;
  }
  std::int64_t v = (*values)[static_cast<std::size_t>(k)];
  if (v == kSealedNoValue) {
    return std::optional<std::optional<std::int64_t>>(std::nullopt);
  }
  return std::optional<std::optional<std::int64_t>>(v);
}

GranularityTables::Entry& GranularityTables::EntryFor(const Granularity& g) {
  {
    std::shared_lock<std::shared_mutex> lock(entries_mutex_);
    if (auto it = entries_.find(&g); it != entries_.end()) {
      return *it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(entries_mutex_);
  std::unique_ptr<Entry>& slot = entries_[&g];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

std::optional<TimeSpan> GranularityTables::HullAt(Entry& entry,
                                                  const Granularity& g,
                                                  Tick z) {
  GM_CHECK(z >= 1);
  if (z > options_.hull_cache_cap) return std::nullopt;
  std::size_t index = static_cast<std::size_t>(z - 1);
  if (index >= entry.hulls.size()) {
    std::size_t old = entry.hulls.size();
    entry.hulls.resize(
        std::max<std::size_t>(index + 1, old + old / 2 + 16));
    for (std::size_t i = old; i < entry.hulls.size(); ++i) {
      std::optional<TimeSpan> hull = g.TickHull(static_cast<Tick>(i) + 1);
      GM_CHECK(hull.has_value());
      entry.hulls[i] = *hull;
    }
  }
  return entry.hulls[index];
}

std::int64_t GranularityTables::ScanStarts(const Granularity& g) const {
  // Hulls of ticks past LastDeviantTick() follow the periodic pattern, so
  // start positions [1, LastDeviantTick + ticks_per_period] exhibit every
  // possible span/gap shape (see DESIGN.md).
  return g.LastDeviantTick() + g.periodicity().ticks_per_period;
}

std::optional<std::int64_t> GranularityTables::ScannedValue(
    Table table, const Granularity& g, std::int64_t k) {
  Entry& entry = EntryFor(g);
  auto memo_of = [&](Entry& e) -> std::unordered_map<std::int64_t,
                                                     std::int64_t>& {
    switch (table) {
      case Table::kMinSize:
        return e.minsize;
      case Table::kMaxSize:
        return e.maxsize;
      default:
        return e.mingap;
    }
  };
  {
    std::shared_lock<std::shared_mutex> lock(entry.mutex);
    const auto& memo = memo_of(entry);
    if (auto it = memo.find(k); it != memo.end()) {
      GM_COUNTER_ADD("granmine_tables_lookups_total", "result=\"hit\"", 1);
      return it->second;
    }
  }
  // Miss: scan under the exclusive lock (HullAt mutates the hull cache).
  // Re-check first — another thread may have computed k while we waited.
  std::unique_lock<std::shared_mutex> lock(entry.mutex);
  auto& memo = memo_of(entry);
  if (auto it = memo.find(k); it != memo.end()) {
    GM_COUNTER_ADD("granmine_tables_lookups_total", "result=\"hit\"", 1);
    return it->second;
  }
  GM_COUNTER_ADD("granmine_tables_lookups_total", "result=\"miss\"", 1);
  const bool maximize = table == Table::kMaxSize;
  const Tick hi_offset = table == Table::kMinGap ? k : k - 1;
  std::int64_t starts = ScanStarts(g);
  std::int64_t best = maximize ? 0 : kInfinity;
  for (Tick i = 1; i <= starts; ++i) {
    std::optional<TimeSpan> lo = HullAt(entry, g, i);
    std::optional<TimeSpan> hi = HullAt(entry, g, i + hi_offset);
    if (!lo.has_value() || !hi.has_value()) return std::nullopt;
    std::int64_t value = table == Table::kMinGap
                             ? hi->first - lo->last
                             : hi->last - lo->first + 1;
    best = maximize ? std::max(best, value) : std::min(best, value);
  }
  memo.emplace(k, best);
  return best;
}

std::optional<std::int64_t> GranularityTables::MinSize(const Granularity& g,
                                                       std::int64_t k) {
  GM_CHECK(k >= 0);
  if (k == 0) return 0;
  if (auto sealed = SealedValue(Table::kMinSize, g, k); sealed.has_value()) {
    GM_COUNTER_ADD("granmine_tables_lookups_total", "result=\"sealed\"", 1);
    return *sealed;
  }
  if (std::optional<std::int64_t> v = g.AnalyticMinSize(k); v.has_value()) {
    return v;
  }
  return ScannedValue(Table::kMinSize, g, k);
}

std::optional<std::int64_t> GranularityTables::MaxSize(const Granularity& g,
                                                       std::int64_t k) {
  GM_CHECK(k >= 0);
  if (k == 0) return 0;
  if (auto sealed = SealedValue(Table::kMaxSize, g, k); sealed.has_value()) {
    GM_COUNTER_ADD("granmine_tables_lookups_total", "result=\"sealed\"", 1);
    return *sealed;
  }
  if (std::optional<std::int64_t> v = g.AnalyticMaxSize(k); v.has_value()) {
    return v;
  }
  return ScannedValue(Table::kMaxSize, g, k);
}

std::optional<std::int64_t> GranularityTables::MinGap(const Granularity& g,
                                                      std::int64_t k) {
  GM_CHECK(k >= 0);
  if (k == 0) {
    std::optional<std::int64_t> max1 = MaxSize(g, 1);
    if (!max1.has_value()) return std::nullopt;
    return 1 - *max1;
  }
  if (auto sealed = SealedValue(Table::kMinGap, g, k); sealed.has_value()) {
    GM_COUNTER_ADD("granmine_tables_lookups_total", "result=\"sealed\"", 1);
    return *sealed;
  }
  if (std::optional<std::int64_t> v = g.AnalyticMinGap(k); v.has_value()) {
    return v;
  }
  return ScannedValue(Table::kMinGap, g, k);
}

std::optional<std::int64_t> GranularityTables::LeastTicksCovering(
    const Granularity& g, std::int64_t x) {
  GM_CHECK(x >= 1);
  // minsize is strictly increasing in s and minsize(s) >= s, so the answer
  // (if representable) is at most x; tighten via the periodic structure.
  const Granularity::Periodicity p = g.periodicity();
  std::int64_t periods = FloorDiv(x, p.period) + 2;
  std::int64_t by_period = periods > kInfinity / p.ticks_per_period
                               ? kInfinity
                               : periods * p.ticks_per_period;
  std::int64_t hi = std::max<std::int64_t>(std::min(x, by_period), 1);
  std::optional<std::int64_t> at_hi = MinSize(g, hi);
  if (!at_hi.has_value()) return std::nullopt;
  while (*at_hi < x) {  // defensive; should not trigger
    hi *= 2;
    at_hi = MinSize(g, hi);
    if (!at_hi.has_value()) return std::nullopt;
  }
  std::int64_t lo = 1;
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    std::optional<std::int64_t> v = MinSize(g, mid);
    if (!v.has_value()) return std::nullopt;
    if (*v >= x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::optional<std::int64_t> GranularityTables::LeastTicksExceeding(
    const Granularity& g, std::int64_t x) {
  if (x < 0) return 0;
  // maxsize is strictly increasing with maxsize(r) >= r; the answer is at
  // most x + 1; tighten via periodicity.
  const Granularity::Periodicity p = g.periodicity();
  std::int64_t periods = FloorDiv(x, p.period) + 2;
  std::int64_t by_period = periods > kInfinity / p.ticks_per_period
                               ? kInfinity
                               : periods * p.ticks_per_period;
  std::int64_t hi = std::max<std::int64_t>(std::min(x + 1, by_period), 1);
  std::optional<std::int64_t> at_hi = MaxSize(g, hi);
  if (!at_hi.has_value()) return std::nullopt;
  while (*at_hi <= x) {  // defensive; should not trigger
    hi *= 2;
    at_hi = MaxSize(g, hi);
    if (!at_hi.has_value()) return std::nullopt;
  }
  std::int64_t lo = 0;
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    std::optional<std::int64_t> v = MaxSize(g, mid);
    if (!v.has_value()) return std::nullopt;
    if (*v > x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::optional<std::int64_t> GranularityTables::LeastTicksWithGapExceeding(
    const Granularity& g, std::int64_t x) {
  // mingap(s) >= minsize(s-1) + 1 >= s, so the answer is at most x + 1.
  const Granularity::Periodicity p = g.periodicity();
  std::int64_t periods = FloorDiv(std::max<std::int64_t>(x, 0), p.period) + 2;
  std::int64_t by_period = periods > kInfinity / p.ticks_per_period
                               ? kInfinity
                               : periods * p.ticks_per_period;
  std::int64_t hi = std::max<std::int64_t>(
      std::min(std::max<std::int64_t>(x, 0) + 1, by_period), 1);
  std::optional<std::int64_t> at_hi = MinGap(g, hi);
  if (!at_hi.has_value()) return std::nullopt;
  while (*at_hi <= x) {  // defensive; should not trigger
    hi *= 2;
    at_hi = MinGap(g, hi);
    if (!at_hi.has_value()) return std::nullopt;
  }
  std::int64_t lo = 1;
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    std::optional<std::int64_t> v = MinGap(g, mid);
    if (!v.has_value()) return std::nullopt;
    if (*v > x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace granmine
