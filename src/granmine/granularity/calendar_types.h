#ifndef GRANMINE_GRANULARITY_CALENDAR_TYPES_H_
#define GRANMINE_GRANULARITY_CALENDAR_TYPES_H_

#include <optional>
#include <string>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// Gregorian calendar months over a primitive instant of `unit` primitive
/// ticks per day (86400 for the real second-based calendar; 1 for day-grained
/// toy calendars). Tick 1 is January 1970; strictly periodic with a 400-year
/// cycle.
class MonthGranularity final : public Granularity {
 public:
  explicit MonthGranularity(std::string name,
                            std::int64_t units_per_day = 86400);

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override;
  bool HasFullSupport() const override { return true; }

 private:
  std::int64_t units_per_day_;
};

/// Gregorian calendar years; tick 1 is 1970.
class YearGranularity final : public Granularity {
 public:
  explicit YearGranularity(std::string name,
                           std::int64_t units_per_day = 86400);

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override;
  bool HasFullSupport() const override { return true; }

 private:
  std::int64_t units_per_day_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_CALENDAR_TYPES_H_
