#ifndef GRANMINE_GRANULARITY_TABLES_H_
#define GRANMINE_GRANULARITY_TABLES_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// Computes and caches the paper's Appendix-A.1 table functions, all
/// expressed in primitive instants:
///
///  * minsize(μ, k) / maxsize(μ, k): minimum / maximum length of the span of
///    k consecutive ticks of μ (from the first instant of the first tick to
///    the last instant of the last, inclusive);
///  * mingap(μ, k): minimum of min(μ(i+k)) − max(μ(i)) over i.
///
/// Values are exact: uniform types answer in closed form; periodic types are
/// scanned over one period of start positions (plus the finite exception
/// window of holiday overlays), which covers every hull pattern the type can
/// exhibit. Queries return nullopt only when a scan would exceed the
/// configured cap; callers treat that conservatively (no bound derived).
///
/// Granularities are keyed by address; a table instance must not outlive the
/// granularities it has been queried with.
///
/// Thread safety: all queries may be issued concurrently from any number of
/// threads. Entries are sharded per granularity behind a `std::shared_mutex`
/// each (memo hits take only the shared lock; a miss computes under the
/// exclusive lock, so each value is scanned once and then shared), and the
/// shard directory itself is guarded the same way. See docs/concurrency.md.
class GranularityTables {
 public:
  struct Options {
    /// Maximum tick index whose hull may be materialized per granularity.
    std::int64_t hull_cache_cap = std::int64_t{1} << 20;
  };

  GranularityTables();
  explicit GranularityTables(Options options);

  /// minsize(g, k); k >= 0 (0 yields 0).
  std::optional<std::int64_t> MinSize(const Granularity& g, std::int64_t k);
  /// maxsize(g, k); k >= 0 (0 yields 0).
  std::optional<std::int64_t> MaxSize(const Granularity& g, std::int64_t k);
  /// mingap(g, k); k >= 0. mingap(g, 0) = 1 - maxsize(g, 1) (may be negative).
  std::optional<std::int64_t> MinGap(const Granularity& g, std::int64_t k);

  /// Smallest s >= 1 with minsize(g, s) >= x (x >= 1), or nullopt when it
  /// cannot be established within the caps.
  std::optional<std::int64_t> LeastTicksCovering(const Granularity& g,
                                                 std::int64_t x);

  /// Smallest r >= 0 with maxsize(g, r) > x, or nullopt when it cannot be
  /// established within the caps. For x < 0 the answer is 0.
  std::optional<std::int64_t> LeastTicksExceeding(const Granularity& g,
                                                  std::int64_t x);

  /// Smallest s >= 1 with mingap(g, s) > x, or nullopt when it cannot be
  /// established within the caps. mingap is non-decreasing in s.
  std::optional<std::int64_t> LeastTicksWithGapExceeding(const Granularity& g,
                                                         std::int64_t x);

 private:
  /// One per-granularity shard: its own lock plus the memoized tables.
  struct Entry {
    std::shared_mutex mutex;
    std::vector<TimeSpan> hulls;  // hulls[i] = hull of tick i+1
    std::unordered_map<std::int64_t, std::int64_t> minsize;
    std::unordered_map<std::int64_t, std::int64_t> maxsize;
    std::unordered_map<std::int64_t, std::int64_t> mingap;
  };

  /// The table function a scan computes; selects memo map and fold.
  enum class Table { kMinSize, kMaxSize, kMinGap };

  Entry& EntryFor(const Granularity& g);
  /// Memoized lookup/compute of one table value for k >= 1 (analytic paths
  /// already exhausted by the caller). Locks the entry internally.
  std::optional<std::int64_t> ScannedValue(Table table, const Granularity& g,
                                           std::int64_t k);
  /// Hull of tick z via the per-granularity cache; nullopt past the cap.
  /// Requires the entry's exclusive lock.
  std::optional<TimeSpan> HullAt(Entry& entry, const Granularity& g, Tick z);
  /// Number of distinct scan start positions needed for exactness.
  std::int64_t ScanStarts(const Granularity& g) const;

  Options options_;
  std::shared_mutex entries_mutex_;
  // unique_ptr values keep Entry addresses stable and the map movable even
  // though Entry itself (owning a mutex) is not.
  std::unordered_map<const Granularity*, std::unique_ptr<Entry>> entries_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_TABLES_H_
