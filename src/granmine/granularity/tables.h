#ifndef GRANMINE_GRANULARITY_TABLES_H_
#define GRANMINE_GRANULARITY_TABLES_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "granmine/common/status.h"
#include "granmine/granularity/granularity.h"

namespace granmine {

/// Computes and caches the paper's Appendix-A.1 table functions, all
/// expressed in primitive instants:
///
///  * minsize(μ, k) / maxsize(μ, k): minimum / maximum length of the span of
///    k consecutive ticks of μ (from the first instant of the first tick to
///    the last instant of the last, inclusive);
///  * mingap(μ, k): minimum of min(μ(i+k)) − max(μ(i)) over i.
///
/// Values are exact: uniform types answer in closed form; periodic types are
/// scanned over one period of start positions (plus the finite exception
/// window of holiday overlays), which covers every hull pattern the type can
/// exhibit. Queries return nullopt only when a scan would exceed the
/// configured cap; callers treat that conservatively (no bound derived).
///
/// Identity has two phases. While *building*, granularities are keyed by
/// address in a sharded hashed directory; after `Seal()` (driven by
/// `GranularitySystem::Freeze()`) the family's values for k up to
/// `kSealedKCap` live in flat per-`GranularityId` arrays and a lookup is a
/// bounds-checked array read — no hashing, no lock. A table instance must
/// not outlive the granularities it has been queried with.
///
/// Thread safety: all queries may be issued concurrently from any number of
/// threads. Pre-seal (and for k beyond `kSealedKCap`, or granularities
/// outside the sealed family), entries are sharded per granularity behind a
/// `std::shared_mutex` each (memo hits take only the shared lock; a miss
/// computes under the exclusive lock, so each value is scanned once and then
/// shared), and the shard directory itself is guarded the same way. Post-seal
/// the dense arrays are immutable, so sealed hits are wait-free. See
/// docs/concurrency.md and docs/architecture.md.
class GranularityTables {
 public:
  struct Options {
    /// Maximum tick index whose hull may be materialized per granularity.
    std::int64_t hull_cache_cap = std::int64_t{1} << 20;
  };

  /// Largest k precomputed per (granularity, table) by `Seal`. Constraint
  /// conversion and propagation consult small k almost exclusively; larger
  /// k (deep binary-search probes of the Least* queries) stay on the memo.
  static constexpr std::int64_t kSealedKCap = 128;

  GranularityTables();
  explicit GranularityTables(Options options);

  /// Freezes the table set for `family` (granularities listed in id order,
  /// `family[i]->id() == i`): precomputes minsize/maxsize/mingap for every
  /// k in [1, kSealedKCap] into flat id-indexed arrays. Afterwards those
  /// lookups are plain array reads; anything else falls back to the sharded
  /// memo. Idempotent; must not race with queries (freeze on the build
  /// thread, then share).
  void Seal(const std::vector<const Granularity*>& family);

  bool sealed() const { return sealed_; }

  /// One granularity's sealed tables as plain data: `minsize[k]` etc. for k
  /// in [1, kSealedKCap] (index 0 unused, all three sized kSealedKCap + 1),
  /// `kSealedNoValue` marking "query answered nullopt". The unit of the
  /// persist warm-start image (docs/persistence.md).
  struct SealedRow {
    std::vector<std::int64_t> minsize;
    std::vector<std::int64_t> maxsize;
    std::vector<std::int64_t> mingap;
  };

  /// Sentinel inside sealed rows/entries for "no value within the caps".
  static constexpr std::int64_t kSealedNoValue =
      std::numeric_limits<std::int64_t>::min();

  /// The sealed tables as plain data, one row per id in id order.
  /// Requires sealed().
  std::vector<SealedRow> ExportSealedRows() const;

  /// Seals directly from previously exported rows, skipping the per-k scans
  /// — the persist warm-start path. `family` as for `Seal`; `rows` must
  /// carry one entry per family member with all three tables sized
  /// kSealedKCap + 1. Fails (leaving the tables unsealed, memo path intact)
  /// on any shape mismatch. The values themselves are trusted; callers
  /// establish provenance first (`GranularitySystem::FreezeFromImage`
  /// recomputes small k as a spot-check).
  Status SealFromRows(const std::vector<const Granularity*>& family,
                      std::vector<SealedRow> rows);

  /// minsize(g, k); k >= 0 (0 yields 0).
  std::optional<std::int64_t> MinSize(const Granularity& g, std::int64_t k);
  /// maxsize(g, k); k >= 0 (0 yields 0).
  std::optional<std::int64_t> MaxSize(const Granularity& g, std::int64_t k);
  /// mingap(g, k); k >= 0. mingap(g, 0) = 1 - maxsize(g, 1) (may be negative).
  std::optional<std::int64_t> MinGap(const Granularity& g, std::int64_t k);

  /// Smallest s >= 1 with minsize(g, s) >= x (x >= 1), or nullopt when it
  /// cannot be established within the caps.
  std::optional<std::int64_t> LeastTicksCovering(const Granularity& g,
                                                 std::int64_t x);

  /// Smallest r >= 0 with maxsize(g, r) > x, or nullopt when it cannot be
  /// established within the caps. For x < 0 the answer is 0.
  std::optional<std::int64_t> LeastTicksExceeding(const Granularity& g,
                                                  std::int64_t x);

  /// Smallest s >= 1 with mingap(g, s) > x, or nullopt when it cannot be
  /// established within the caps. mingap is non-decreasing in s.
  std::optional<std::int64_t> LeastTicksWithGapExceeding(const Granularity& g,
                                                         std::int64_t x);

 private:
  /// One per-granularity shard: its own lock plus the memoized tables.
  struct Entry {
    std::shared_mutex mutex;
    std::vector<TimeSpan> hulls;  // hulls[i] = hull of tick i+1
    std::unordered_map<std::int64_t, std::int64_t> minsize;
    std::unordered_map<std::int64_t, std::int64_t> maxsize;
    std::unordered_map<std::int64_t, std::int64_t> mingap;
  };

  /// The table function a scan computes; selects memo map and fold.
  enum class Table { kMinSize, kMaxSize, kMinGap };

  /// One frozen granularity's precomputed tables: `minsize[k]` etc. for k in
  /// [1, kSealedKCap] (index 0 unused), `kSealedNoValue` marking nullopt.
  /// `gran` guards against id collisions across systems: a lookup only
  /// trusts the slot when the address matches.
  struct SealedEntry {
    const Granularity* gran = nullptr;
    std::vector<std::int64_t> minsize;
    std::vector<std::int64_t> maxsize;
    std::vector<std::int64_t> mingap;
  };

  Entry& EntryFor(const Granularity& g);
  /// Memoized lookup/compute of one table value for k >= 1 (analytic paths
  /// already exhausted by the caller). Locks the entry internally.
  std::optional<std::int64_t> ScannedValue(Table table, const Granularity& g,
                                           std::int64_t k);
  /// Hull of tick z via the per-granularity cache; nullopt past the cap.
  /// Requires the entry's exclusive lock.
  std::optional<TimeSpan> HullAt(Entry& entry, const Granularity& g, Tick z);
  /// Number of distinct scan start positions needed for exactness.
  std::int64_t ScanStarts(const Granularity& g) const;

  /// Sealed fast path of ScannedValue: the precomputed value for
  /// (table, g, k), or nullopt when the lookup must fall back to the memo
  /// (not sealed, k out of range, or g outside the sealed family). The
  /// inner optional is the table answer itself (kSealedNoValue → nullopt).
  std::optional<std::optional<std::int64_t>> SealedValue(
      Table table, const Granularity& g, std::int64_t k) const;

  Options options_;
  std::shared_mutex entries_mutex_;
  // unique_ptr values keep Entry addresses stable and the map movable even
  // though Entry itself (owning a mutex) is not.
  std::unordered_map<const Granularity*, std::unique_ptr<Entry>> entries_;
  /// Immutable after Seal; indexed by GranularityId.
  std::vector<SealedEntry> sealed_entries_;
  bool sealed_ = false;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_TABLES_H_
