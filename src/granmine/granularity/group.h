#ifndef GRANMINE_GRANULARITY_GROUP_H_
#define GRANMINE_GRANULARITY_GROUP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "granmine/granularity/granularity.h"

namespace granmine {

/// Groups each `k` consecutive ticks of a base granularity into one tick:
/// `n-month` (used by the Theorem-1 reduction), `fortnight`, toy groupings.
/// A non-zero `phase` skips that many leading base ticks before tick 1 —
/// e.g., a fiscal year running April..March is
/// `GroupGranularity("fiscal-year", month, 12, /*phase=*/3)`.
class GroupGranularity final : public Granularity {
 public:
  /// `base` must outlive this object and be strictly periodic.
  /// 0 <= phase < k... (any non-negative phase is accepted; only
  /// `phase mod k` changes the alignment, the rest shifts the support).
  GroupGranularity(std::string name, const Granularity* base, std::int64_t k,
                   std::int64_t phase = 0);

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override;
  bool ticks_are_intervals() const override;
  void TickExtent(Tick z, std::vector<TimeSpan>* out) const override;
  bool HasFullSupport() const override { return base_->HasFullSupport(); }

  const Granularity& base() const { return *base_; }
  std::int64_t group_size() const { return k_; }
  std::int64_t phase() const { return phase_; }

 private:
  /// First base tick of group z (1-based).
  Tick FirstBaseTick(Tick z) const { return phase_ + (z - 1) * k_ + 1; }

  const Granularity* base_;
  std::int64_t k_;
  std::int64_t phase_;
};

/// Groups the ticks of `inner` by the tick of `outer` that contains them:
/// `b-week` = b-days grouped by week, `b-month` = b-days grouped by month.
/// Requires that inner refines outer (no inner tick straddles an outer
/// boundary) and that every outer tick contains at least one inner tick —
/// both validated at construction over one joint period.
class GroupByGranularity final : public Granularity {
 public:
  /// `inner` and `outer` must outlive this object.
  GroupByGranularity(std::string name, const Granularity* inner,
                     const Granularity* outer);

  std::optional<Tick> TickContaining(TimePoint t) const override;
  std::optional<TimeSpan> TickHull(Tick z) const override;
  Periodicity periodicity() const override;
  bool ticks_are_intervals() const override {
    return inner_->HasFullSupport() && inner_->ticks_are_intervals();
  }
  void TickExtent(Tick z, std::vector<TimeSpan>* out) const override;
  bool HasFullSupport() const override { return inner_->HasFullSupport(); }
  /// Group-by types are eventually periodic: the first outer tick may be
  /// truncated when the inner support starts mid-tick, and inner holiday
  /// overlays perturb a finite window.
  bool IsStrictlyPeriodic() const override { return LastDeviantTick() == 0; }
  Tick LastDeviantTick() const override;

  const Granularity& inner() const { return *inner_; }
  const Granularity& outer() const { return *outer_; }

 private:
  /// Inner ticks [first, last] inside outer tick z.
  std::pair<Tick, Tick> InnerRange(Tick z) const;

  const Granularity* inner_;
  const Granularity* outer_;
};

}  // namespace granmine

#endif  // GRANMINE_GRANULARITY_GROUP_H_
