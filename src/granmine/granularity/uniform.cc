#include "granmine/granularity/uniform.h"

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

UniformGranularity::UniformGranularity(std::string name, std::int64_t width,
                                       TimePoint offset)
    : Granularity(std::move(name)), width_(width), offset_(offset) {
  GM_CHECK(width > 0) << "uniform granularity width must be positive";
}

std::optional<Tick> UniformGranularity::TickContaining(TimePoint t) const {
  if (t < offset_) return std::nullopt;
  return FloorDiv(t - offset_, width_) + 1;
}

std::optional<TimeSpan> UniformGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  TimePoint first = offset_ + (z - 1) * width_;
  return TimeSpan::Of(first, first + width_ - 1);
}

namespace {
std::int64_t SaturatingScale(std::int64_t k, std::int64_t width) {
  if (k >= kInfinity / width) return kInfinity;
  return k * width;
}
}  // namespace

std::optional<std::int64_t> UniformGranularity::AnalyticMinSize(
    std::int64_t k) const {
  return SaturatingScale(k, width_);
}

std::optional<std::int64_t> UniformGranularity::AnalyticMaxSize(
    std::int64_t k) const {
  return SaturatingScale(k, width_);
}

std::optional<std::int64_t> UniformGranularity::AnalyticMinGap(
    std::int64_t k) const {
  return SaturatingAdd(SaturatingScale(k - 1, width_), 1);
}

}  // namespace granmine
