#include "granmine/granularity/civil_calendar.h"

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

std::int64_t DaysFromCivil(std::int64_t year, int month, int day) {
  GM_CHECK(month >= 1 && month <= 12) << "month=" << month;
  GM_CHECK(day >= 1 && day <= 31) << "day=" << day;
  // Hinnant: shift the year so it starts in March; then era arithmetic.
  year -= month <= 2;
  const std::int64_t era = FloorDiv(year, 400);
  const std::int64_t yoe = year - era * 400;                      // [0, 399]
  const std::int64_t mp = (month + 9) % 12;                       // [0, 11]
  const std::int64_t doy = (153 * mp + 2) / 5 + day - 1;          // [0, 365]
  const std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0,146096]
  return era * kDaysPerEra + doe - 719468;
}

CivilDate CivilFromDays(std::int64_t days) {
  days += 719468;
  const std::int64_t era = FloorDiv(days, kDaysPerEra);
  const std::int64_t doe = days - era * kDaysPerEra;  // [0, 146096]
  const std::int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const std::int64_t mp = (5 * doy + 2) / 153;  // [0, 11]
  const int d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  const int m = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  return CivilDate{y + (m <= 2), m, d};
}

int WeekdayFromDays(std::int64_t days) {
  // Day 0 (1970-01-01) is Thursday = 3 with Monday = 0.
  return static_cast<int>(FloorMod(days + 3, 7));
}

bool IsLeapYear(std::int64_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int DaysInMonth(std::int64_t year, int month) {
  GM_CHECK(month >= 1 && month <= 12);
  static constexpr int kLengths[] = {31, 28, 31, 30, 31, 30,
                                     31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kLengths[month - 1];
}

std::int64_t MonthsSinceEpoch(std::int64_t year, int month) {
  return (year - 1970) * 12 + (month - 1);
}

}  // namespace granmine
