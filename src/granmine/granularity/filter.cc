#include "granmine/granularity/filter.h"

#include <algorithm>
#include <numeric>

#include "granmine/common/check.h"
#include "granmine/common/math.h"

namespace granmine {

FilterGranularity::FilterGranularity(std::string name, const Granularity* base,
                                     PeriodicPattern pattern,
                                     std::vector<Tick> removed)
    : Granularity(std::move(name)),
      base_(base),
      pattern_(std::move(pattern)),
      removed_(std::move(removed)) {
  GM_CHECK(base_ != nullptr);
  GM_CHECK(pattern_.base_period >= 1);
  GM_CHECK(!pattern_.kept.empty()) << "filter pattern keeps no ticks";
  GM_CHECK(std::is_sorted(pattern_.kept.begin(), pattern_.kept.end()));
  GM_CHECK(std::adjacent_find(pattern_.kept.begin(), pattern_.kept.end()) ==
           pattern_.kept.end());
  GM_CHECK(pattern_.kept.front() >= 0 &&
           pattern_.kept.back() < pattern_.base_period);
  GM_CHECK(pattern_.anchor >= 0 && pattern_.anchor < pattern_.base_period);
  std::sort(removed_.begin(), removed_.end());
  removed_.erase(std::unique(removed_.begin(), removed_.end()),
                 removed_.end());
  for (Tick b : removed_) {
    GM_CHECK(b >= 1 && PatternKeeps(b))
        << "removed base tick " << b << " is not kept by the pattern";
  }
}

bool FilterGranularity::PatternKeeps(Tick base_tick) const {
  std::int64_t offset =
      FloorMod(base_tick - 1 + pattern_.anchor, pattern_.base_period);
  return std::binary_search(pattern_.kept.begin(), pattern_.kept.end(),
                            offset);
}

bool FilterGranularity::Keeps(Tick base_tick) const {
  return PatternKeeps(base_tick) &&
         !std::binary_search(removed_.begin(), removed_.end(), base_tick);
}

std::int64_t FilterGranularity::CountKept(Tick base_tick) const {
  if (base_tick < 1) return 0;
  // F(x) = #{j in [0, x] : j mod base_period is kept}; count over the shifted
  // index j = b - 1 + anchor for b in [1, base_tick].
  auto count_from_zero = [this](std::int64_t x) -> std::int64_t {
    if (x < 0) return 0;
    std::int64_t q = (x + 1) / pattern_.base_period;
    std::int64_t r = (x + 1) % pattern_.base_period;
    std::int64_t partial =
        std::lower_bound(pattern_.kept.begin(), pattern_.kept.end(), r) -
        pattern_.kept.begin();
    return q * static_cast<std::int64_t>(pattern_.kept.size()) + partial;
  };
  std::int64_t by_pattern = count_from_zero(base_tick - 1 + pattern_.anchor) -
                            count_from_zero(pattern_.anchor - 1);
  std::int64_t removed_below =
      std::upper_bound(removed_.begin(), removed_.end(), base_tick) -
      removed_.begin();
  return by_pattern - removed_below;
}

Tick FilterGranularity::BaseTickOf(Tick z) const {
  GM_CHECK(z >= 1);
  // Binary search the smallest base tick b with CountKept(b) >= z.
  const std::int64_t kept_per_cycle =
      static_cast<std::int64_t>(pattern_.kept.size());
  Tick hi = ((z + static_cast<std::int64_t>(removed_.size())) /
                 kept_per_cycle +
             2) *
                pattern_.base_period +
            1;
  GM_CHECK(CountKept(hi) >= z);
  Tick lo = 1;
  while (lo < hi) {
    Tick mid = lo + (hi - lo) / 2;
    if (CountKept(mid) >= z) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  GM_DCHECK(Keeps(lo));
  return lo;
}

std::optional<Tick> FilterGranularity::TickContaining(TimePoint t) const {
  std::optional<Tick> b = base_->TickContaining(t);
  if (!b.has_value() || !Keeps(*b)) return std::nullopt;
  return CountKept(*b);
}

std::optional<TimeSpan> FilterGranularity::TickHull(Tick z) const {
  if (z < 1) return std::nullopt;
  return base_->TickHull(BaseTickOf(z));
}

void FilterGranularity::TickExtent(Tick z,
                                   std::vector<TimeSpan>* out) const {
  if (z < 1) return;
  base_->TickExtent(BaseTickOf(z), out);
}

Granularity::Periodicity FilterGranularity::periodicity() const {
  Periodicity base_p = base_->periodicity();
  // The joint cycle must align both the base hull pattern (every
  // base_p.ticks_per_period base ticks) and the selection pattern (every
  // pattern_.base_period base ticks).
  std::int64_t base_ticks =
      std::lcm(pattern_.base_period, base_p.ticks_per_period);
  std::int64_t period = base_p.period * (base_ticks / base_p.ticks_per_period);
  std::int64_t ticks = (base_ticks / pattern_.base_period) *
                       static_cast<std::int64_t>(pattern_.kept.size());
  return {period, ticks};
}

Tick FilterGranularity::LastDeviantTick() const {
  if (removed_.empty()) return 0;
  return CountKept(removed_.back()) + 1;
}

}  // namespace granmine
