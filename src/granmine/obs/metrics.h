#ifndef GRANMINE_OBS_METRICS_H_
#define GRANMINE_OBS_METRICS_H_

// Lock-free metrics registry: named counters, gauges, and power-of-two-bucket
// histograms. Hot-path updates touch only a per-thread shard of atomic cells
// (relaxed fetch_add on thread-local cache lines); shards are merged only when
// a snapshot is taken, so the enabled steady-state cost of a counter bump is
// one relaxed atomic add plus a thread-local pointer load.
//
// The registry is a process-wide singleton (`MetricsRegistry::Global()`).
// Shards are leased to threads on first use and returned to a free list when
// the thread exits, so short-lived executor workers recycle cells instead of
// growing the shard table without bound.
//
// The classes here compile in every configuration; the GRANMINE_OBS kill
// switch (see obs.h) only controls whether the instrumentation *macros* in the
// library's hot paths expand to calls into this registry.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace granmine::obs {

/// Microseconds since a process-stable epoch (steady clock; first use).
std::uint64_t NowMicros();

/// Escapes one label *value* per the Prometheus text-exposition spec:
/// backslash -> \\, double-quote -> \", newline -> \n. Use when composing a
/// label body from runtime data, e.g.
///   "path=\"" + EscapeLabelValue(path) + "\"".
std::string EscapeLabelValue(std::string_view value);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Histogram buckets are keyed by std::bit_width(value): bucket b holds the
/// observations whose value needs exactly b bits, i.e. value in
/// [2^(b-1), 2^b - 1] (bucket 0 holds the zeros). 65 buckets cover uint64.
inline constexpr int kHistogramBuckets = 65;

/// Index of a registered metric. For counters this is the shard cell slot;
/// for histograms the first of kHistogramBuckets + 1 consecutive slots (the
/// extra slot accumulates the sum of observed values); for gauges an index
/// into the registry's global gauge array.
using MetricId = std::uint32_t;

/// One aggregated metric in a snapshot.
struct MetricValue {
  std::string name;
  std::string labels;  // Prometheus label body, e.g. `result="hit"`; may be "".
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;                // counter total / histogram count
  std::int64_t gauge = 0;                 // gauge value
  std::vector<std::uint64_t> buckets;     // histogram: per-bit-width counts
  std::uint64_t sum = 0;                  // histogram: sum of observed values
};

/// Point-in-time aggregation of every registered metric, sorted by
/// (name, labels) so the exposition text is deterministic.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  /// Prometheus text exposition format (one # TYPE line per metric name,
  /// histogram rendered as cumulative _bucket{le=...} series + _sum + _count).
  std::string ToPrometheusText() const;

  /// Returns the metric with the given name and label body, or nullptr.
  const MetricValue* Find(std::string_view name,
                          std::string_view labels = "") const;
};

class MetricsRegistry {
 public:
  /// Cells per thread shard. Registration fails (GM_CHECK) if the slot space
  /// is exhausted; the library's own inventory uses well under 10% of it.
  static constexpr std::size_t kSlotCapacity = 4096;
  static constexpr std::size_t kGaugeCapacity = 256;

  /// The process-wide registry. Never destroyed (thread-exit hooks may
  /// release shards after static destructors would have run).
  static MetricsRegistry& Global();

  /// Runtime enable. Defaults to off: every update is a single relaxed load
  /// and branch until something (CLI flag, test, bench) turns metrics on.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Idempotent: re-registering the same (name, labels) returns the existing
  /// id. The kind must match the original registration.
  MetricId RegisterCounter(std::string_view name, std::string_view labels = "");
  MetricId RegisterGauge(std::string_view name, std::string_view labels = "");
  MetricId RegisterHistogram(std::string_view name,
                             std::string_view labels = "");

  void Add(MetricId id, std::uint64_t n = 1) {
    if (!enabled()) return;
    LocalShard().cells[id].fetch_add(n, std::memory_order_relaxed);
  }

  void Observe(MetricId id, std::uint64_t value) {
    if (!enabled()) return;
    Shard& shard = LocalShard();
    const int bucket = std::bit_width(value);  // 0..64
    shard.cells[id + static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    shard.cells[id + kHistogramBuckets].fetch_add(value,
                                                  std::memory_order_relaxed);
  }

  void GaugeSet(MetricId gauge_id, std::int64_t value) {
    if (!enabled()) return;
    gauges_[gauge_id].store(value, std::memory_order_relaxed);
  }

  void GaugeAdd(MetricId gauge_id, std::int64_t delta) {
    if (!enabled()) return;
    gauges_[gauge_id].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Aggregates all shards. Concurrent updates may or may not be included
  /// (relaxed reads); callers wanting exact totals must quiesce writers first.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every cell and gauge. Registrations are kept.
  void Reset();

 private:
  struct Shard {
    Shard() : cells(kSlotCapacity) {}
    std::vector<std::atomic<std::uint64_t>> cells;
    bool leased = false;  // guarded by MetricsRegistry::mutex_
  };

  struct Descriptor {
    std::string name;
    std::string labels;
    MetricKind kind;
    MetricId id;
  };

  MetricsRegistry() = default;

  MetricId RegisterMetric(std::string_view name, std::string_view labels,
                          MetricKind kind);
  Shard* AcquireShard();
  void ReleaseShard(Shard* shard);

  Shard& LocalShard() {
    struct Lease {
      MetricsRegistry* registry = nullptr;
      Shard* shard = nullptr;
      ~Lease() {
        if (registry != nullptr) registry->ReleaseShard(shard);
      }
    };
    thread_local Lease lease;
    if (lease.shard == nullptr) {
      lease.registry = this;
      lease.shard = AcquireShard();
    }
    return *lease.shard;
  }

  std::atomic<bool> enabled_{false};
  std::array<std::atomic<std::int64_t>, kGaugeCapacity> gauges_{};

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;  // guarded by mutex_
  std::vector<Descriptor> descriptors_;         // guarded by mutex_
  std::size_t next_slot_ = 0;                   // guarded by mutex_
  std::size_t next_gauge_ = 0;                  // guarded by mutex_
};

}  // namespace granmine::obs

#endif  // GRANMINE_OBS_METRICS_H_
