#include "granmine/obs/trace.h"

#include <algorithm>
#include <cstring>

#include "granmine/obs/metrics.h"

namespace granmine::obs {

TraceCollector& TraceCollector::Global() {
  // Leaked for the same reason as MetricsRegistry::Global(): spans may unwind
  // during static destruction.
  static TraceCollector* const collector = new TraceCollector();
  return *collector;
}

std::uint64_t TraceSpan::NowMicrosForTrace() { return NowMicros(); }

std::uint64_t TraceSpan::ExchangeCurrentSpan(std::uint64_t span_id) {
  thread_local std::uint64_t tls_current_span = 0;
  const std::uint64_t previous = tls_current_span;
  tls_current_span = span_id;
  return previous;
}

void TraceCollector::Record(const char* name, std::uint64_t ts_us,
                            std::uint64_t dur_us, std::uint64_t span_id,
                            std::uint64_t parent_id,
                            std::uint64_t request_id) {
  if (!enabled()) return;
  // Spans mark coarse stages (scan phases, committed groups, snapshots), so a
  // single mutex is uncontended enough; the per-span cost is dominated by the
  // two clock reads in TraceSpan anyway.
  thread_local std::uint32_t cached_tid = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (cached_tid == 0) cached_tid = next_tid_++;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    // Overflow is observable, not silent: the drop count is exported as a
    // counter alongside the spans that did fit (docs/observability.md).
    static const MetricId dropped_id =
        MetricsRegistry::Global().RegisterCounter(
            "granmine_trace_dropped_total", "");
    MetricsRegistry::Global().Add(dropped_id, 1);
    return;
  }
  events_.push_back(
      Event{name, ts_us, dur_us, cached_tid, span_id, parent_id, request_id});
}

namespace {

void AppendJsonString(std::string& out, const char* text) {
  out += '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string TraceCollector::ExportJson() const {
  std::vector<Event> events = Events();
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.name, b.name) < 0;
  });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    AppendJsonString(out, event.name);
    out += ",\"cat\":\"granmine\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(event.ts_us);
    out += ",\"dur\":";
    out += std::to_string(event.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"args\":{\"request_id\":";
    out += std::to_string(event.request_id);
    out += ",\"span\":";
    out += std::to_string(event.span_id);
    out += ",\"parent\":";
    out += std::to_string(event.parent_id);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::vector<TraceCollector::Event> TraceCollector::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
  next_span_id_.store(1, std::memory_order_relaxed);
}

std::size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

}  // namespace granmine::obs
