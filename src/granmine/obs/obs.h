#ifndef GRANMINE_OBS_OBS_H_
#define GRANMINE_OBS_OBS_H_

// Instrumentation macros for granmine's hot paths, plus the compile-time kill
// switch. The build defines GRANMINE_OBS_ENABLED (1 by default, 0 under
// `cmake -DGRANMINE_OBS=OFF`); when it is 0 every macro below expands to
// *nothing* — no declarations, no clock reads, no branches — so a disabled
// build is byte-for-byte unobservant. When it is 1, each macro is still
// runtime-gated on MetricsRegistry/TraceCollector `enabled()`, a single
// relaxed atomic load, so the default-off cost is one predicted branch.
//
// Metric names and label bodies must be string literals: each call site
// registers its metric once via a function-local static MetricId.

#ifndef GRANMINE_OBS_ENABLED
#define GRANMINE_OBS_ENABLED 1
#endif

#if GRANMINE_OBS_ENABLED

#include "granmine/obs/log.h"
#include "granmine/obs/metrics.h"
#include "granmine/obs/trace.h"

#define GM_OBS_CONCAT_INNER(a, b) a##b
#define GM_OBS_CONCAT(a, b) GM_OBS_CONCAT_INNER(a, b)

// Wraps code that exists only for observability (timing locals, flush
// helpers). Expands to its arguments verbatim when obs is compiled in.
#define GM_OBS_ONLY(...) __VA_ARGS__

#define GM_COUNTER_ADD(name, labels, n)                                   \
  do {                                                                    \
    if (::granmine::obs::MetricsRegistry::Global().enabled()) {           \
      static const ::granmine::obs::MetricId gm_obs_metric_id =           \
          ::granmine::obs::MetricsRegistry::Global().RegisterCounter(     \
              (name), (labels));                                          \
      ::granmine::obs::MetricsRegistry::Global().Add(                     \
          gm_obs_metric_id, static_cast<std::uint64_t>(n));               \
    }                                                                     \
  } while (false)

#define GM_GAUGE_SET(name, labels, value)                                 \
  do {                                                                    \
    if (::granmine::obs::MetricsRegistry::Global().enabled()) {           \
      static const ::granmine::obs::MetricId gm_obs_metric_id =           \
          ::granmine::obs::MetricsRegistry::Global().RegisterGauge(       \
              (name), (labels));                                          \
      ::granmine::obs::MetricsRegistry::Global().GaugeSet(                \
          gm_obs_metric_id, static_cast<std::int64_t>(value));            \
    }                                                                     \
  } while (false)

#define GM_HISTOGRAM_OBSERVE(name, labels, value)                         \
  do {                                                                    \
    if (::granmine::obs::MetricsRegistry::Global().enabled()) {           \
      static const ::granmine::obs::MetricId gm_obs_metric_id =           \
          ::granmine::obs::MetricsRegistry::Global().RegisterHistogram(   \
              (name), (labels));                                          \
      ::granmine::obs::MetricsRegistry::Global().Observe(                 \
          gm_obs_metric_id, static_cast<std::uint64_t>(value));           \
    }                                                                     \
  } while (false)

// Scoped span: records a Chrome trace_event complete event covering the
// enclosing scope. `name` must be a string literal.
#define GM_TRACE_SPAN(name) \
  ::granmine::obs::TraceSpan GM_OBS_CONCAT(gm_obs_span_, __LINE__)((name))

// One structured log record (obs/log.h): severity, component (string
// literal), message, then zero or more {"key", value} LogField initializers.
// The record carries the thread's current request id. Each call site owns a
// static LogSite token bucket, so a looping site is rate-limited on its own.
// Like the metric macros, gated on one relaxed atomic load — and on the
// GRANMINE_OBS kill switch, so an obs-off build evaluates nothing here.
#define GM_LOG(level, component, message, ...)                           \
  do {                                                                   \
    if (::granmine::obs::EventLog::Global().active()) {                  \
      static ::granmine::obs::LogSite gm_obs_log_site;                   \
      ::granmine::obs::EventLog::Global().Log(                           \
          &gm_obs_log_site, (level), (component), (message),             \
          {__VA_ARGS__});                                                \
    }                                                                    \
  } while (false)

#else  // !GRANMINE_OBS_ENABLED

#define GM_OBS_ONLY(...)
#define GM_COUNTER_ADD(name, labels, n)
#define GM_GAUGE_SET(name, labels, value)
#define GM_HISTOGRAM_OBSERVE(name, labels, value)
#define GM_TRACE_SPAN(name)
#define GM_LOG(level, component, message, ...)

#endif  // GRANMINE_OBS_ENABLED

#endif  // GRANMINE_OBS_OBS_H_
