#ifndef GRANMINE_OBS_FLIGHT_RECORDER_H_
#define GRANMINE_OBS_FLIGHT_RECORDER_H_

// A fixed-size ring of the most recent structured-log records, attached to
// EventLog by the owning Engine (docs/observability.md, "flight recorder").
// Unlike the log sink, the recorder sees every record at every severity —
// no level filter, no rate limiting — so when a request ends badly (governor
// trip, admission shed, degradation, refused restore) the Engine can dump
// the last N events *with the request's context* and a post-mortem of a
// PARTIAL report needs no re-run.
//
// The ring reuses common/ring_buffer; RingBuffer grows when full, so the
// recorder enforces its fixed capacity by retiring the oldest entry before
// each append — O(1) either way.
//
// Thread safety: Append/Entries/Clear are safe from any thread (EventLog
// calls Append under its own mutex from arbitrary logging threads).

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "granmine/common/ring_buffer.h"
#include "granmine/obs/log.h"

namespace granmine::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// One recorded log event: the timestamp and severity (for dump headers)
  /// plus the fully rendered JSON line.
  struct Entry {
    std::uint64_t ts_us = 0;
    LogLevel level = LogLevel::kInfo;
    std::string json;
  };

  void Append(Entry entry);

  /// The retained entries, oldest first.
  std::vector<Entry> Entries() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Entries ever appended (size() saturates at capacity; this does not).
  std::uint64_t total_appended() const;

  void Clear();

  /// One JSON line holding the dump header (reason, stop cause, request id)
  /// and the retained events as an embedded array:
  ///   {"severity":"error","component":"flight_recorder","request_id":N,
  ///    "reason":"governor-trip","stop_cause":"deadline",
  ///    "dropped":K,"events":[{...},{...}]}
  /// `dropped` counts entries the ring had already retired.
  std::string RenderDumpJson(std::string_view reason,
                             std::string_view stop_cause,
                             std::uint64_t request_id) const;

  /// Human rendering of the same dump for a stderr post-mortem: a header
  /// naming the reason/stop cause/request id, then one line per event.
  std::string RenderDumpText(std::string_view reason,
                             std::string_view stop_cause,
                             std::uint64_t request_id) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  RingBuffer<Entry> ring_;         // guarded by mu_
  std::uint64_t total_ = 0;        // guarded by mu_
};

}  // namespace granmine::obs

#endif  // GRANMINE_OBS_FLIGHT_RECORDER_H_
