#include "granmine/obs/flight_recorder.h"

namespace granmine::obs {

void FlightRecorder::Append(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(entry));
  ++total_;
}

std::vector<FlightRecorder::Entry> FlightRecorder::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

std::string FlightRecorder::RenderDumpJson(std::string_view reason,
                                           std::string_view stop_cause,
                                           std::uint64_t request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      "{\"severity\":\"error\",\"component\":\"flight_recorder\","
      "\"request_id\":";
  out += std::to_string(request_id);
  out += ",\"reason\":\"";
  AppendJsonEscaped(out, reason);
  out += "\",\"stop_cause\":\"";
  AppendJsonEscaped(out, stop_cause);
  out += "\",\"dropped\":";
  out += std::to_string(total_ - ring_.size());
  out += ",\"events\":[";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (i > 0) out += ',';
    out += ring_[i].json;  // already a rendered JSON object
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::RenderDumpText(std::string_view reason,
                                           std::string_view stop_cause,
                                           std::uint64_t request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "flight recorder dump: reason ";
  out += reason;
  out += ", stop-cause ";
  out += stop_cause;
  out += ", request ";
  out += std::to_string(request_id);
  out += " (last ";
  out += std::to_string(ring_.size());
  out += " of ";
  out += std::to_string(total_);
  out += " event(s)):\n";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out += "  ";
    out += ring_[i].json;
    out += '\n';
  }
  return out;
}

}  // namespace granmine::obs
