#ifndef GRANMINE_OBS_CONTEXT_H_
#define GRANMINE_OBS_CONTEXT_H_

// Request-scoped diagnostic context (docs/observability.md, "request
// context"). The Engine mints one deterministic request id per serving call
// (an engine-scoped counter, never wall clock) and installs it on the
// calling thread with a RequestScope; every trace span, structured log line,
// and flight-recorder entry recorded under the scope carries the id, so a
// Perfetto tree or a post-mortem log can be filtered down to one request.
//
// The id travels two ways: implicitly, via the thread-local scope, for the
// thread that entered the engine; and explicitly, via the `request_id`
// fields on MinerOptions / ScanDriverOptions / OnlineMinerOptions, for the
// executor workers a scan fans out to — each worker re-installs the scope
// before evaluating its chunk, so spans emitted on pool threads are
// attributed identically to the serial path.
//
// Like the metrics/trace classes, this compiles in every configuration: the
// GRANMINE_OBS kill switch gates only the instrumentation macros. A scope
// is two thread-local stores; it is cheap enough to install unconditionally.

#include <cstdint>

namespace granmine::obs {

/// Id 0 means "no request context" everywhere (the default for code running
/// outside an Engine entry point).
inline constexpr std::uint64_t kNoRequestId = 0;

/// RAII installation of a request id on the current thread. Nests: the
/// destructor restores whatever was current at construction, so an inner
/// engine call (e.g. a snapshot save issued while mining) re-attributes only
/// its own scope.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t request_id);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// The id installed on the current thread, or kNoRequestId.
  static std::uint64_t current();

 private:
  std::uint64_t saved_;
};

}  // namespace granmine::obs

#endif  // GRANMINE_OBS_CONTEXT_H_
