#include "granmine/obs/metrics.h"

#include <algorithm>
#include <chrono>

#include "granmine/common/check.h"

namespace granmine::obs {

std::uint64_t NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: thread-exit lease destructors may release shards after
  // static destructors would have torn a function-local instance down.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

MetricId MetricsRegistry::RegisterMetric(std::string_view name,
                                         std::string_view labels,
                                         MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Descriptor& descriptor : descriptors_) {
    if (descriptor.name == name && descriptor.labels == labels) {
      GM_CHECK(descriptor.kind == kind)
          << "metric '" << descriptor.name << "' re-registered as a different "
          << "kind";
      return descriptor.id;
    }
  }
  MetricId id = 0;
  if (kind == MetricKind::kGauge) {
    GM_CHECK(next_gauge_ < kGaugeCapacity) << "metric gauge space exhausted";
    id = static_cast<MetricId>(next_gauge_);
    next_gauge_ += 1;
  } else {
    const std::size_t slots =
        kind == MetricKind::kHistogram ? kHistogramBuckets + 1 : 1;
    GM_CHECK(next_slot_ + slots <= kSlotCapacity)
        << "metric slot space exhausted";
    id = static_cast<MetricId>(next_slot_);
    next_slot_ += slots;
  }
  descriptors_.push_back(
      Descriptor{std::string(name), std::string(labels), kind, id});
  return id;
}

MetricId MetricsRegistry::RegisterCounter(std::string_view name,
                                          std::string_view labels) {
  return RegisterMetric(name, labels, MetricKind::kCounter);
}

MetricId MetricsRegistry::RegisterGauge(std::string_view name,
                                        std::string_view labels) {
  return RegisterMetric(name, labels, MetricKind::kGauge);
}

MetricId MetricsRegistry::RegisterHistogram(std::string_view name,
                                            std::string_view labels) {
  return RegisterMetric(name, labels, MetricKind::kHistogram);
}

MetricsRegistry::Shard* MetricsRegistry::AcquireShard() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->leased) {
      shard->leased = true;
      return shard.get();
    }
  }
  shards_.push_back(std::make_unique<Shard>());
  shards_.back()->leased = true;
  return shards_.back().get();
}

void MetricsRegistry::ReleaseShard(Shard* shard) {
  if (shard == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // Counts stay in the shard: a released shard still contributes to
  // snapshots, and the next thread to lease it continues accumulating.
  shard->leased = false;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(descriptors_.size());
  for (const Descriptor& descriptor : descriptors_) {
    MetricValue value;
    value.name = descriptor.name;
    value.labels = descriptor.labels;
    value.kind = descriptor.kind;
    switch (descriptor.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const std::unique_ptr<Shard>& shard : shards_) {
          total += shard->cells[descriptor.id].load(std::memory_order_relaxed);
        }
        value.value = total;
        break;
      }
      case MetricKind::kGauge:
        value.gauge = gauges_[descriptor.id].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        value.buckets.assign(kHistogramBuckets, 0);
        for (const std::unique_ptr<Shard>& shard : shards_) {
          for (int b = 0; b < kHistogramBuckets; ++b) {
            value.buckets[static_cast<std::size_t>(b)] +=
                shard->cells[descriptor.id + static_cast<std::size_t>(b)].load(
                    std::memory_order_relaxed);
          }
          value.sum += shard->cells[descriptor.id + kHistogramBuckets].load(
              std::memory_order_relaxed);
        }
        for (std::uint64_t count : value.buckets) value.value += count;
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::atomic<std::uint64_t>& cell : shard->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  for (std::atomic<std::int64_t>& gauge : gauges_) {
    gauge.store(0, std::memory_order_relaxed);
  }
}

namespace {

const char* TypeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Repairs a pre-rendered label body whose quoted values carry raw
/// backslashes or newlines (the text-exposition spec requires \\ / \n / \").
/// Values escaped correctly at registration time — e.g. through
/// EscapeLabelValue — pass through unchanged. A raw interior double-quote is
/// indistinguishable from the value terminator in the stored rendering, so
/// quotes must be escaped by the producer; this pass handles the two
/// characters that are unambiguous after the fact.
std::string SanitizeLabelBody(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  bool in_value = false;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const char c = labels[i];
    if (!in_value) {
      out += c;
      if (c == '"') in_value = true;
      continue;
    }
    if (c == '"') {
      out += c;
      in_value = false;
    } else if (c == '\\') {
      const char next = i + 1 < labels.size() ? labels[i + 1] : '\0';
      if (next == '\\' || next == '"' || next == 'n') {
        out += c;
        out += next;
        ++i;
      } else {
        out += "\\\\";
      }
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendSeries(std::string& out, const std::string& name,
                  const std::string& labels, const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += SanitizeLabelBody(labels);
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

/// Upper bound of bit-width bucket b as a decimal string: 2^b - 1.
std::string BucketUpperBound(int bucket) {
  if (bucket >= 64) return "18446744073709551615";
  return std::to_string((std::uint64_t{1} << bucket) - 1);
}

void AppendHistogram(std::string& out, const MetricValue& metric) {
  // Cumulative Prometheus buckets. Trailing all-zero buckets are elided (the
  // +Inf series still closes the cumulative sequence, so the exposition stays
  // well-formed and deterministic).
  int last = kHistogramBuckets - 1;
  while (last > 0 && metric.buckets[static_cast<std::size_t>(last)] == 0) {
    --last;
  }
  std::uint64_t cumulative = 0;
  for (int b = 0; b <= last; ++b) {
    cumulative += metric.buckets[static_cast<std::size_t>(b)];
    std::string labels = metric.labels;
    if (!labels.empty()) labels += ',';
    labels += "le=\"" + BucketUpperBound(b) + "\"";
    AppendSeries(out, metric.name + "_bucket", labels,
                 std::to_string(cumulative));
  }
  std::string inf_labels = metric.labels;
  if (!inf_labels.empty()) inf_labels += ',';
  inf_labels += "le=\"+Inf\"";
  AppendSeries(out, metric.name + "_bucket", inf_labels,
               std::to_string(metric.value));
  AppendSeries(out, metric.name + "_sum", metric.labels,
               std::to_string(metric.sum));
  AppendSeries(out, metric.name + "_count", metric.labels,
               std::to_string(metric.value));
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  const std::string* last_name = nullptr;
  for (const MetricValue& metric : metrics) {
    if (last_name == nullptr || *last_name != metric.name) {
      out += "# TYPE " + metric.name + ' ' + TypeName(metric.kind) + '\n';
      last_name = &metric.name;
    }
    switch (metric.kind) {
      case MetricKind::kCounter:
        AppendSeries(out, metric.name, metric.labels,
                     std::to_string(metric.value));
        break;
      case MetricKind::kGauge:
        AppendSeries(out, metric.name, metric.labels,
                     std::to_string(metric.gauge));
        break;
      case MetricKind::kHistogram:
        AppendHistogram(out, metric);
        break;
    }
  }
  return out;
}

const MetricValue* MetricsSnapshot::Find(std::string_view name,
                                         std::string_view labels) const {
  for (const MetricValue& metric : metrics) {
    if (metric.name == name && metric.labels == labels) return &metric;
  }
  return nullptr;
}

}  // namespace granmine::obs
