#include "granmine/obs/log.h"

#include <algorithm>

#include "granmine/obs/context.h"
#include "granmine/obs/flight_recorder.h"
#include "granmine/obs/metrics.h"

namespace granmine::obs {

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      if (c == '\n') {
        out += "\\n";
      } else if (c == '\t') {
        out += "\\t";
      } else {
        out += "\\u00";
        out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
        out += kHex[static_cast<unsigned char>(c) & 0xF];
      }
    } else {
      out += c;
    }
  }
}

std::string RenderLogLine(std::uint64_t ts_us, LogLevel level,
                          const char* component, std::uint64_t request_id,
                          std::string_view message,
                          std::initializer_list<LogField> fields) {
  std::string out = "{\"ts_us\":";
  out += std::to_string(ts_us);
  out += ",\"severity\":\"";
  out += LogLevelToString(level);
  out += "\",\"component\":\"";
  AppendJsonEscaped(out, component);
  out += "\",\"request_id\":";
  out += std::to_string(request_id);
  out += ",\"message\":\"";
  AppendJsonEscaped(out, message);
  out += '"';
  if (fields.size() > 0) {
    out += ",\"fields\":{";
    bool first = true;
    for (const LogField& field : fields) {
      if (!first) out += ',';
      first = false;
      out += '"';
      AppendJsonEscaped(out, field.key);
      out += "\":\"";
      AppendJsonEscaped(out, field.value);
      out += '"';
    }
    out += '}';
  }
  out += '}';
  return out;
}

EventLog& EventLog::Global() {
  // Leaked for the same reason as MetricsRegistry::Global().
  static EventLog* const log = new EventLog();
  return *log;
}

void EventLog::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(on, std::memory_order_relaxed);
  UpdateActiveLocked();
}

void EventLog::set_rate_limit(double per_sec, double burst) {
  std::lock_guard<std::mutex> lock(mutex_);
  rate_per_sec_ = per_sec;
  burst_ = burst;
}

Status EventLog::OpenJsonFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  file_.close();
  file_.clear();
  file_.open(path);
  if (!file_) {
    file_open_ = false;
    return Status::Internal("cannot open log sink '" + path + "'");
  }
  file_open_ = true;
  capture_ = nullptr;
  enabled_.store(true, std::memory_order_relaxed);
  UpdateActiveLocked();
  return Status::OK();
}

void EventLog::CloseSink() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_open_) file_.close();
  file_open_ = false;
  capture_ = nullptr;
}

void EventLog::CaptureForTest(std::string* capture) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_open_) file_.close();
  file_open_ = false;
  capture_ = capture;
  if (capture != nullptr) enabled_.store(true, std::memory_order_relaxed);
  UpdateActiveLocked();
}

bool EventLog::sink_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_open_ || capture_ != nullptr;
}

void EventLog::AttachRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(recorders_.begin(), recorders_.end(), recorder) ==
      recorders_.end()) {
    recorders_.push_back(recorder);
  }
  UpdateActiveLocked();
}

void EventLog::DetachRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  recorders_.erase(
      std::remove(recorders_.begin(), recorders_.end(), recorder),
      recorders_.end());
  UpdateActiveLocked();
}

void EventLog::UpdateActiveLocked() {
  active_.store(enabled_.load(std::memory_order_relaxed) ||
                    !recorders_.empty(),
                std::memory_order_relaxed);
}

bool EventLog::AdmitLocked(LogSite* site, std::uint64_t now_us) {
  if (site == nullptr) return true;
  if (!site->primed) {
    site->tokens = burst_;
    site->last_refill_us = now_us;
    site->primed = true;
  }
  const double elapsed_sec =
      static_cast<double>(now_us - site->last_refill_us) / 1e6;
  site->last_refill_us = now_us;
  site->tokens = std::min(burst_, site->tokens + elapsed_sec * rate_per_sec_);
  if (site->tokens < 1.0) {
    ++site->suppressed;
    return false;
  }
  site->tokens -= 1.0;
  return true;
}

void EventLog::Log(LogSite* site, LogLevel level, const char* component,
                   std::string_view message,
                   std::initializer_list<LogField> fields) {
  if (!active()) return;
  const std::uint64_t now_us = NowMicros();
  const std::uint64_t request_id = RequestScope::current();
  std::string line =
      RenderLogLine(now_us, level, component, request_id, message, fields);
  bool suppressed_line = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Flight recorders tap the stream BEFORE the level filter and the rate
    // limiter: a post-mortem ring that only held what the sink accepted
    // would miss exactly the debug chatter a dump exists to recover.
    for (FlightRecorder* recorder : recorders_) {
      recorder->Append(
          FlightRecorder::Entry{now_us, level, line});
    }
    if (!enabled_.load(std::memory_order_relaxed) ||
        static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
      return;
    }
    if (!AdmitLocked(site, now_us)) {
      suppressed_line = true;
    } else {
      if (file_open_) {
        file_ << line << '\n';
        file_.flush();
      } else if (capture_ != nullptr) {
        *capture_ += line;
        *capture_ += '\n';
      }
      emitted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (suppressed_line) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    // Suppression is observable, not silent (satellite of the trace-dropped
    // counter): exported alongside the metrics the line would have joined.
    static const MetricId suppressed_id =
        MetricsRegistry::Global().RegisterCounter(
            "granmine_log_suppressed_total", "");
    MetricsRegistry::Global().Add(suppressed_id, 1);
  }
}

void EventLog::WriteRawLine(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_open_) {
    file_ << json_line << '\n';
    file_.flush();
  } else if (capture_ != nullptr) {
    *capture_ += json_line;
    *capture_ += '\n';
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

void EventLog::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  min_level_.store(static_cast<int>(LogLevel::kInfo),
                   std::memory_order_relaxed);
  rate_per_sec_ = kDefaultRatePerSec;
  burst_ = kDefaultBurst;
  if (file_open_) file_.close();
  file_open_ = false;
  capture_ = nullptr;
  recorders_.clear();
  emitted_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
  UpdateActiveLocked();
}

}  // namespace granmine::obs
