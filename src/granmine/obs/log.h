#ifndef GRANMINE_OBS_LOG_H_
#define GRANMINE_OBS_LOG_H_

// Structured event log: JSON-lines records with a severity, a component, the
// current request id (obs/context.h), and free-form key/value fields
// (docs/observability.md, "structured event log").
//
//   {"ts_us":1234,"severity":"warn","component":"governor","request_id":3,
//    "message":"governor stop","fields":{"cause":"deadline"}}
//
// Discipline mirrors the metrics registry: the hot-path macro (GM_LOG in
// obs.h) is gated on one relaxed atomic load and compiled out entirely under
// GRANMINE_OBS=OFF; each call site owns a static LogSite whose token bucket
// rate-limits that site alone, so a looping WARN cannot drown the sink —
// suppressed lines are counted (per site and globally) and exported as the
// `granmine_log_suppressed_total` counter, never dropped silently.
//
// Sinks: a JSON-lines file (CLI `--log-out`), a test capture string, or
// none. With no sink open, admitted records go nowhere visible but still
// feed every attached FlightRecorder — the recorder sees ALL severities
// regardless of min_level or rate limiting, which is what makes its
// post-mortem dumps useful.
//
// Like the metrics/trace classes, EventLog compiles in every configuration;
// the GRANMINE_OBS kill switch gates only the GM_LOG macro, so the CLI can
// route its once-per-run diagnostics through the logger directly even in an
// obs-off build.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "granmine/common/status.h"

namespace granmine::obs {

enum class LogLevel : int { kDebug = 0, kInfo, kWarn, kError };

/// Canonical lowercase name ("debug", "info", "warn", "error").
std::string_view LogLevelToString(LogLevel level);

/// Parses a canonical name; false on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// One key/value field. Keys must be string literals (call-site owned);
/// values are copied.
struct LogField {
  const char* key;
  std::string value;
};

/// Per-call-site rate-limiter state. Declared static at each GM_LOG site;
/// all members are guarded by the EventLog mutex.
struct LogSite {
  double tokens = 0;
  std::uint64_t last_refill_us = 0;
  std::uint64_t suppressed = 0;
  bool primed = false;
};

class FlightRecorder;

/// Process-wide structured logger. Thread-safe; hot path is one relaxed
/// atomic load when inactive.
class EventLog {
 public:
  /// Default token bucket per call site: a burst of 64 lines, refilled at 16
  /// lines/second.
  static constexpr double kDefaultBurst = 64.0;
  static constexpr double kDefaultRatePerSec = 16.0;

  /// Never destroyed, like MetricsRegistry::Global().
  static EventLog& Global();

  /// Whether Log() has anything to do: enabled, or a recorder is attached.
  /// The single relaxed load gating GM_LOG.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on);

  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Reconfigures every site's token bucket (tests use a tiny burst).
  void set_rate_limit(double per_sec, double burst);

  /// Opens `path` as the JSON-lines sink and enables the log. Replaces any
  /// previous sink.
  Status OpenJsonFile(const std::string& path);
  void CloseSink();
  /// Appends JSON lines to `*capture` instead of a file (tests). Enables.
  /// Pass nullptr to detach.
  void CaptureForTest(std::string* capture);
  bool sink_open() const;

  /// Recorders receive every record (all severities, no rate limit) while
  /// attached. Attach/detach are engine-lifecycle operations, not hot path.
  void AttachRecorder(FlightRecorder* recorder);
  void DetachRecorder(FlightRecorder* recorder);

  /// Emits one record. `site` may be null (no rate limiting — one-shot CLI
  /// diagnostics and flight-recorder dumps). `component` and field keys must
  /// be string literals; `message` and field values are copied.
  void Log(LogSite* site, LogLevel level, const char* component,
           std::string_view message, std::initializer_list<LogField> fields);

  /// Writes one pre-rendered JSON line straight to the sink, bypassing the
  /// level filter and rate limiter (flight-recorder dumps).
  void WriteRawLine(const std::string& json_line);

  /// Lines written to the sink / suppressed by a site's token bucket.
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// Tests: back to the default-constructed state (disabled, info level,
  /// default rate limit, no sink, recorders detached, counters zeroed).
  void ResetForTest();

 private:
  EventLog() = default;

  void UpdateActiveLocked();
  bool AdmitLocked(LogSite* site, std::uint64_t now_us);

  std::atomic<bool> active_{false};
  std::atomic<bool> enabled_{false};
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};

  mutable std::mutex mutex_;
  double rate_per_sec_ = kDefaultRatePerSec;    // guarded by mutex_
  double burst_ = kDefaultBurst;                // guarded by mutex_
  std::ofstream file_;                          // guarded by mutex_
  bool file_open_ = false;                      // guarded by mutex_
  std::string* capture_ = nullptr;              // guarded by mutex_
  std::vector<FlightRecorder*> recorders_;      // guarded by mutex_
};

/// Renders one record as a JSON line (no trailing newline). Exposed so the
/// flight recorder and tests share the exact sink format.
std::string RenderLogLine(std::uint64_t ts_us, LogLevel level,
                          const char* component, std::uint64_t request_id,
                          std::string_view message,
                          std::initializer_list<LogField> fields);

/// JSON string escaping shared by the log/statusz renderers: `"` and `\`
/// escaped, control characters emitted as \u00XX.
void AppendJsonEscaped(std::string& out, std::string_view text);

}  // namespace granmine::obs

#endif  // GRANMINE_OBS_LOG_H_
