#include "granmine/obs/context.h"

namespace granmine::obs {

namespace {
thread_local std::uint64_t tls_request_id = kNoRequestId;
}  // namespace

RequestScope::RequestScope(std::uint64_t request_id)
    : saved_(tls_request_id) {
  tls_request_id = request_id;
}

RequestScope::~RequestScope() { tls_request_id = saved_; }

std::uint64_t RequestScope::current() { return tls_request_id; }

}  // namespace granmine::obs
