#ifndef GRANMINE_OBS_TRACE_H_
#define GRANMINE_OBS_TRACE_H_

// Scoped trace spans exported as Chrome trace_event JSON ("ph":"X" complete
// events), loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Span names must be string literals (the collector stores the pointer).
//
// Every span carries three correlation ids in its "args" object:
//   - "span":       a collector-unique id for this span;
//   - "parent":     the id of the span enclosing it on the same logical
//                   request (0 at the root), maintained per thread, so a
//                   per-request tree (admission wait → freeze → screen →
//                   scan chunks → merge) can be reassembled exactly;
//   - "request_id": the Engine request the span served (obs/context.h;
//                   0 outside a request scope).
//
// Recording is runtime-gated: a disabled collector costs one relaxed load per
// span. Like the metrics registry, these classes compile in every
// configuration; GRANMINE_OBS only controls the call-site macros (obs.h).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "granmine/obs/context.h"

namespace granmine::obs {

class TraceCollector {
 public:
  /// Hard cap on buffered events; once full, further spans are counted in
  /// dropped() instead of recorded (a trace that large is unusable anyway).
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 20;

  static TraceCollector& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// One recorded complete event plus its correlation ids.
  struct Event {
    const char* name;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    std::uint32_t tid;
    std::uint64_t span_id;
    std::uint64_t parent_id;
    std::uint64_t request_id;
  };

  /// Records one complete event. `name` must be a string literal (or
  /// otherwise outlive the collector).
  void Record(const char* name, std::uint64_t ts_us, std::uint64_t dur_us,
              std::uint64_t span_id = 0, std::uint64_t parent_id = 0,
              std::uint64_t request_id = 0);

  /// Issues a collector-unique span id (> 0). Relaxed; ids order nothing,
  /// they only key parent/child edges.
  std::uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON: {"traceEvents":[...]} with events sorted by
  /// (ts, tid, name) so exports are deterministic for a fixed set of spans.
  std::string ExportJson() const;

  /// A copy of the recorded events (tests and statusz).
  std::vector<Event> Events() const;

  void Clear();
  std::size_t size() const;
  std::uint64_t dropped() const;

 private:
  TraceCollector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{1};
  mutable std::mutex mutex_;
  std::vector<Event> events_;     // guarded by mutex_
  std::uint64_t dropped_ = 0;     // guarded by mutex_
  std::uint32_t next_tid_ = 1;    // guarded by mutex_
};

/// RAII span: captures the start time on construction and records a complete
/// event on destruction. Cheap no-op when the collector is disabled at
/// construction time. Construction pushes the span onto the thread's parent
/// chain; destruction pops it, so nested spans (and scan-driver workers that
/// re-install a RequestScope) form the per-request tree described above.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), active_(TraceCollector::Global().enabled()) {
    if (active_) {
      start_us_ = NowMicrosForTrace();
      span_id_ = TraceCollector::Global().NextSpanId();
      parent_id_ = ExchangeCurrentSpan(span_id_);
      request_id_ = RequestScope::current();
    }
  }
  ~TraceSpan() {
    if (active_) {
      ExchangeCurrentSpan(parent_id_);
      const std::uint64_t now = NowMicrosForTrace();
      TraceCollector::Global().Record(name_, start_us_, now - start_us_,
                                      span_id_, parent_id_, request_id_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static std::uint64_t NowMicrosForTrace();
  /// Swaps the thread's current-span id, returning the previous one.
  static std::uint64_t ExchangeCurrentSpan(std::uint64_t span_id);

  const char* name_;
  std::uint64_t start_us_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t request_id_ = 0;
  bool active_;
};

}  // namespace granmine::obs

#endif  // GRANMINE_OBS_TRACE_H_
