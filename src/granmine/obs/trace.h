#ifndef GRANMINE_OBS_TRACE_H_
#define GRANMINE_OBS_TRACE_H_

// Scoped trace spans exported as Chrome trace_event JSON ("ph":"X" complete
// events), loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Span names must be string literals (the collector stores the pointer).
//
// Recording is runtime-gated: a disabled collector costs one relaxed load per
// span. Like the metrics registry, these classes compile in every
// configuration; GRANMINE_OBS only controls the call-site macros (obs.h).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace granmine::obs {

class TraceCollector {
 public:
  /// Hard cap on buffered events; once full, further spans are counted in
  /// dropped() instead of recorded (a trace that large is unusable anyway).
  static constexpr std::size_t kMaxEvents = std::size_t{1} << 20;

  static TraceCollector& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Records one complete event. `name` must be a string literal (or
  /// otherwise outlive the collector).
  void Record(const char* name, std::uint64_t ts_us, std::uint64_t dur_us);

  /// Chrome trace_event JSON: {"traceEvents":[...]} with events sorted by
  /// (ts, tid, name) so exports are deterministic for a fixed set of spans.
  std::string ExportJson() const;

  void Clear();
  std::size_t size() const;
  std::uint64_t dropped() const;

 private:
  struct Event {
    const char* name;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    std::uint32_t tid;
  };

  TraceCollector() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Event> events_;     // guarded by mutex_
  std::uint64_t dropped_ = 0;     // guarded by mutex_
  std::uint32_t next_tid_ = 1;    // guarded by mutex_
};

/// RAII span: captures the start time on construction and records a complete
/// event on destruction. Cheap no-op when the collector is disabled at
/// construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), active_(TraceCollector::Global().enabled()) {
    if (active_) start_us_ = NowMicrosForTrace();
  }
  ~TraceSpan() {
    if (active_) {
      const std::uint64_t now = NowMicrosForTrace();
      TraceCollector::Global().Record(name_, start_us_, now - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static std::uint64_t NowMicrosForTrace();

  const char* name_;
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace granmine::obs

#endif  // GRANMINE_OBS_TRACE_H_
